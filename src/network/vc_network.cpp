#include "network/vc_network.hpp"

#include "common/config.hpp"
#include "common/log.hpp"
#include "common/rng.hpp"
#include "sim/kernel.hpp"

namespace frfc {

namespace {

PortId
opposite(PortId port)
{
    switch (port) {
      case kEast:
        return kWest;
      case kWest:
        return kEast;
      case kNorth:
        return kSouth;
      case kSouth:
        return kNorth;
      default:
        panic("no opposite for port ", port);
    }
}

}  // namespace

VcNetwork::VcNetwork(const Config& cfg)
{
    topo_ = makeTopology(cfg);
    routing_ = makeRouting(cfg, *topo_);
    pattern_ = makePattern(cfg, *topo_);
    offered_ = cfg.getDouble("offered", 0.5) * capacity();

    const auto seed = static_cast<std::uint64_t>(cfg.getInt("seed", 1));
    const Cycle data_lat = cfg.getInt("data_link_latency", 4);
    const Cycle credit_lat = cfg.getInt("credit_link_latency", 1);

    VcRouterParams& params = params_;
    params.numVcs = static_cast<int>(cfg.getInt("num_vcs", 2));
    params.vcDepth = static_cast<int>(cfg.getInt("vc_depth", 4));
    params.sharedPool = cfg.getBool("shared_pool", false);
    const std::string forwarding =
        cfg.getString("forwarding", "flit");
    if (forwarding == "flit") {
        params.forwarding = Forwarding::kFlit;
    } else if (forwarding == "cut_through") {
        params.forwarding = Forwarding::kCutThrough;
    } else if (forwarding == "store_and_forward") {
        params.forwarding = Forwarding::kStoreAndForward;
    } else {
        fatal("unknown forwarding '", forwarding,
              "' (flit, cut_through, or store_and_forward)");
    }
    if (params.forwarding != Forwarding::kFlit
        && cfg.getInt("packet_length", 5) > params.vcDepth) {
        fatal("packet-granular forwarding needs vc_depth >= "
              "packet_length (", cfg.getInt("packet_length", 5),
              " flits)");
    }

    const int n = topo_->numNodes();
    kernel_.setMode(kernelModeFromConfig(cfg));
    validator_.setLevel(validateLevelFromConfig(cfg));
    if (validator_.enabled())
        kernel_.setValidator(&validator_);
    middle_node_ = topo_->nodeAt(topo_->sizeX() / 2, topo_->sizeY() / 2);
    sink_ = std::make_unique<EjectionSink>("sink", &registry_, &metrics_);
    if (validator_.enabled())
        sink_->setValidator(&validator_);

    generators_ = makeGenerators(cfg, *topo_, pattern_.get(), offered_);
    for (NodeId node = 0; node < n; ++node) {
        routers_.push_back(std::make_unique<VcRouter>(
            "router" + std::to_string(node), node, *routing_, params,
            Rng(seed, 0x1000 + static_cast<std::uint64_t>(node)),
            &metrics_));
        sources_.push_back(std::make_unique<VcSource>(
            "source" + std::to_string(node), node,
            generators_[static_cast<std::size_t>(node)].get(),
            &registry_, params.numVcs, params.vcDepth, params.sharedPool,
            Rng(seed, 0x2000 + static_cast<std::uint64_t>(node)),
            &metrics_));
    }

    auto make_flit_channel = [this](std::string name, Cycle lat) {
        flit_channels_.push_back(
            std::make_unique<Channel<Flit>>(std::move(name), lat, 1));
        return flit_channels_.back().get();
    };
    auto make_credit_channel = [this](std::string name, Cycle lat) {
        // A router can in principle free several buffers of one
        // neighbor per cycle only through distinct VCs; one grant per
        // input port per cycle bounds it to 1, but the local port's
        // grant can coincide — width 2 is safely conservative.
        credit_channels_.push_back(
            std::make_unique<Channel<Credit>>(std::move(name), lat, 2));
        return credit_channels_.back().get();
    };

    // Inter-router links.
    for (NodeId node = 0; node < n; ++node) {
        for (PortId port = kEast; port <= kSouth; ++port) {
            const NodeId peer = topo_->neighbor(node, port);
            if (peer == kInvalidNode)
                continue;
            const std::string tag =
                std::to_string(node) + "->" + std::to_string(peer);
            Channel<Flit>* data = make_flit_channel("d:" + tag, data_lat);
            routers_[node]->connectDataOut(port, data);
            routers_[peer]->connectDataIn(opposite(port), data);
            data->bindSink(&kernel_, routers_[peer].get(),
                          /*lazy_wake=*/true);
            Channel<Credit>* credit =
                make_credit_channel("c:" + tag, credit_lat);
            routers_[peer]->connectCreditOut(opposite(port), credit);
            routers_[node]->connectCreditIn(port, credit);
            credit->bindSink(&kernel_, routers_[node].get(),
                          /*lazy_wake=*/true);
            if (validator_.enabled()) {
                VcLinkRec rec;
                rec.up = routers_[node].get();
                rec.upPort = port;
                rec.down = routers_[peer].get();
                rec.downPort = opposite(port);
                rec.data = data;
                rec.credit = credit;
                vc_links_.push_back(rec);
            }
        }
    }

    // Injection and ejection.
    for (NodeId node = 0; node < n; ++node) {
        const std::string tag = std::to_string(node);
        Channel<Flit>* inj = make_flit_channel("inj:" + tag, 1);
        sources_[node]->connectDataOut(inj);
        routers_[node]->connectDataIn(kLocal, inj);
        inj->bindSink(&kernel_, routers_[node].get(),
                      /*lazy_wake=*/true);
        Channel<Credit>* inj_cr = make_credit_channel("injc:" + tag, 1);
        routers_[node]->connectCreditOut(kLocal, inj_cr);
        sources_[node]->connectCreditIn(inj_cr);
        inj_cr->bindSink(&kernel_, sources_[node].get());
        if (validator_.enabled()) {
            VcLinkRec rec;
            rec.src = sources_[node].get();
            rec.down = routers_[node].get();
            rec.downPort = kLocal;
            rec.data = inj;
            rec.credit = inj_cr;
            vc_links_.push_back(rec);
        }

        Channel<Flit>* ej = make_flit_channel("ej:" + tag, 1);
        routers_[node]->connectDataOut(kLocal, ej);
        sink_->addChannel(ej);
        ej->bindSink(&kernel_, sink_.get());
    }

    probe_ = std::make_unique<Probe>(*this);
    fullness_.setThreshold(1.0);

    for (auto& source : sources_)
        kernel_.add(source.get());
    for (auto& router : routers_)
        kernel_.add(router.get());
    kernel_.add(sink_.get());
    kernel_.add(probe_.get());
}

void
VcNetwork::Probe::tick(Cycle now)
{
    if (net_.validator_.paranoid())
        net_.validateState(now);
    if (!net_.sampling_)
        return;
    // Matches the FR probe: one specific input pool of a middle router.
    VcRouter& router = *net_.routers_[net_.middle_node_];
    const int buffered = router.bufferedFlits(kWest);
    net_.occupancy_.sample(now, static_cast<double>(buffered));
    net_.fullness_.sample(
        now, buffered >= router.bufferCapacity() ? 1.0 : 0.0);
}

double
VcNetwork::avgSourceQueue() const
{
    double total = 0.0;
    for (const auto& source : sources_)
        total += source->queueLength();
    return total / static_cast<double>(sources_.size());
}

void
VcNetwork::setGenerating(bool on)
{
    for (auto& source : sources_) {
        source->setGenerating(on);
        if (on)
            kernel_.wake(source.get(), kernel_.now());
    }
}

void
VcNetwork::startOccupancySampling()
{
    sampling_ = true;
    occupancy_.reset(kernel_.now());
    fullness_.reset(kernel_.now());
    kernel_.wake(probe_.get(), kernel_.now());
}

double
VcNetwork::middlePoolFullFraction() const
{
    return fullness_.atOrAboveFraction();
}

double
VcNetwork::middlePoolAvgOccupancy() const
{
    return occupancy_.average();
}

void
VcNetwork::validateState(Cycle now)
{
    if (!validator_.enabled())
        return;
    // Flit conservation: every flit a source put on a wire is
    // delivered, queued in some input VC, or in flight on a data
    // channel. Probe runs after routers and sink in registration
    // order, so the snapshot is consistent.
    std::int64_t injected = 0;
    for (const auto& source : sources_)
        injected += source->flitsInjected();
    std::int64_t accounted = sink_->flitsEjected();
    for (const auto& router : routers_)
        accounted += router->totalBufferedFlits();
    for (const auto& ch : flit_channels_)
        accounted += ch->pendingCount();
    if (injected != accounted) {
        validator_.fail(
            "flit.conservation", now, "vc_network", kInvalidPort,
            std::to_string(injected) + " data flits injected but "
                + std::to_string(accounted)
                + " accounted for (delivered + buffered + in flight)");
    }

    // Credit conservation per link: each of the vcDepth buffer slots
    // of a downstream VC is, at any instant, exactly one of — a credit
    // held upstream, a flit on the data wire, a queued flit, or a
    // credit on the return wire.
    for (const VcLinkRec& rec : vc_links_) {
        if (params_.sharedPool) {
            const int upstream = rec.up != nullptr
                ? rec.up->poolCredits(rec.upPort)
                : rec.src->injectionPoolCredits();
            std::int64_t total = upstream
                + rec.down->bufferedFlits(rec.downPort)
                + rec.data->pendingCount() + rec.credit->pendingCount();
            const std::int64_t capacity =
                static_cast<std::int64_t>(params_.numVcs)
                * params_.vcDepth;
            if (total != capacity) {
                validator_.fail(
                    "credit.conservation", now, rec.data->name(),
                    rec.downPort,
                    "pool accounts for " + std::to_string(total)
                        + " slots, capacity "
                        + std::to_string(capacity));
            }
            continue;
        }
        for (VcId vc = 0; vc < params_.numVcs; ++vc) {
            const int upstream = rec.up != nullptr
                ? rec.up->outVcCredits(rec.upPort, vc)
                : rec.src->injectionCredits(vc);
            std::int64_t data_in_flight = 0;
            rec.data->forEachPending([&](const Flit& flit) {
                if (flit.vc == vc)
                    ++data_in_flight;
            });
            std::int64_t credits_in_flight = 0;
            rec.credit->forEachPending([&](const Credit& credit) {
                if (credit.vc == vc)
                    ++credits_in_flight;
            });
            const std::int64_t total = upstream + data_in_flight
                + credits_in_flight
                + rec.down->inVcQueueLen(rec.downPort, vc);
            if (total != params_.vcDepth) {
                validator_.fail(
                    "credit.conservation", now, rec.data->name(),
                    rec.downPort,
                    "vc " + std::to_string(vc) + " accounts for "
                        + std::to_string(total) + " slots, depth "
                        + std::to_string(params_.vcDepth));
            }
        }
    }
}

}  // namespace frfc
