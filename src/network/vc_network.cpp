#include "network/vc_network.hpp"

#include "common/config.hpp"
#include "common/log.hpp"
#include "common/rng.hpp"
#include "sim/kernel.hpp"
#include "traffic/workload.hpp"

namespace frfc {

namespace {

PortId
opposite(PortId port)
{
    switch (port) {
      case kEast:
        return kWest;
      case kWest:
        return kEast;
      case kNorth:
        return kSouth;
      case kSouth:
        return kNorth;
      default:
        panic("no opposite for port ", port);
    }
}

}  // namespace

VcNetwork::VcNetwork(const Config& cfg)
{
    topo_ = makeTopology(cfg);
    routing_ = makeRouting(cfg, *topo_);
    pattern_ = makePattern(cfg, *topo_);
    offered_ = workloadOfferedFraction(cfg) * capacity();

    const auto seed = static_cast<std::uint64_t>(cfg.getInt("seed", 1));
    const Cycle data_lat = cfg.getInt("data_link_latency", 4);
    const Cycle credit_lat = cfg.getInt("credit_link_latency", 1);

    VcRouterParams& params = params_;
    params.numVcs = static_cast<int>(cfg.getInt("num_vcs", 2));
    params.vcDepth = static_cast<int>(cfg.getInt("vc_depth", 4));
    params.sharedPool = cfg.getBool("shared_pool", false);
    const std::string forwarding =
        cfg.getString("forwarding", "flit");
    if (forwarding == "flit") {
        params.forwarding = Forwarding::kFlit;
    } else if (forwarding == "cut_through") {
        params.forwarding = Forwarding::kCutThrough;
    } else if (forwarding == "store_and_forward") {
        params.forwarding = Forwarding::kStoreAndForward;
    } else {
        fatal("unknown forwarding '", forwarding,
              "' (flit, cut_through, or store_and_forward)");
    }
    if (params.forwarding != Forwarding::kFlit
        && workloadMaxPacketFlits(cfg) > params.vcDepth) {
        fatal("packet-granular forwarding needs vc_depth >= the longest "
              "workload packet (", workloadMaxPacketFlits(cfg),
              " flits)");
    }

    fault_plan_ = FaultPlan::fromConfig(cfg, "vc");

    const int n = topo_->numNodes();
    validator_.setLevel(validateLevelFromConfig(cfg));
    initSimKernel(cfg, *topo_);
    middle_node_ = topo_->nodeAt(topo_->sizeX() / 2, topo_->sizeY() / 2);

    generators_ = makeGenerators(cfg, *topo_, pattern_.get(), offered_);
    if (validator_.enabled()) {
        for (const auto& gen : generators_) {
            if (gen->closedLoop()) {
                validator_.initClassAccounting(n);
                break;
            }
        }
    }
    for (NodeId node = 0; node < n; ++node) {
        routers_.push_back(std::make_unique<VcRouter>(
            "router" + std::to_string(node), node, *routing_, params,
            Rng(seed, 0x1000 + static_cast<std::uint64_t>(node)),
            &metrics_));
        sources_.push_back(std::make_unique<VcSource>(
            "source" + std::to_string(node), node,
            generators_[static_cast<std::size_t>(node)].get(),
            ledgerFor(node), params.numVcs, params.vcDepth,
            params.sharedPool,
            Rng(seed, 0x2000 + static_cast<std::uint64_t>(node)),
            &metrics_));
        if (validator_.enabled())
            sources_.back()->setValidator(&validator_);
        if (fault_plan_.recovery) {
            sources_.back()->enableRecovery(fault_plan_.ackTimeout,
                                            fault_plan_.backoffCap,
                                            fault_plan_.maxAttempts);
        }
    }
    if (fault_plan_.anyLinkFaults()) {
        for (NodeId node = 0; node < n; ++node) {
            injectors_.push_back(std::make_unique<FaultInjector>(
                Rng(seed,
                    kFaultRngSalt + static_cast<std::uint64_t>(node)),
                fault_plan_));
            routers_[static_cast<std::size_t>(node)]->setFaultInjector(
                injectors_.back().get());
        }
    }
    if (fault_plan_.recovery) {
        for (auto& sink : sinks_)
            sink->enableRecovery();
    }

    auto make_flit_channel = [this](std::string name, Cycle lat) {
        flit_channels_.push_back(
            std::make_unique<Channel<Flit>>(std::move(name), lat, 1));
        return flit_channels_.back().get();
    };
    auto make_credit_channel = [this](std::string name, Cycle lat) {
        // A router can in principle free several buffers of one
        // neighbor per cycle only through distinct VCs; one grant per
        // input port per cycle bounds it to 1, but the local port's
        // grant can coincide — width 2 is safely conservative.
        credit_channels_.push_back(
            std::make_unique<Channel<Credit>>(std::move(name), lat, 2));
        return credit_channels_.back().get();
    };

    // Inter-router links. rxSide() splits any cross-shard wire into
    // its mailbox pair; the sender keeps pushing into the first
    // channel either way. The link records reference the receiver-side
    // halves: conservation is swept at quiescent points, where the
    // sender-side stubs are always drained.
    for (NodeId node = 0; node < n; ++node) {
        for (PortId port = kEast; port <= kSouth; ++port) {
            const NodeId peer = topo_->neighbor(node, port);
            if (peer == kInvalidNode)
                continue;
            const std::string tag =
                std::to_string(node) + "->" + std::to_string(peer);
            Channel<Flit>* data = make_flit_channel("d:" + tag, data_lat);
            Channel<Flit>* data_rx = rxSide(data, node, peer, [&] {
                return make_flit_channel("d:" + tag + ":rx", data_lat);
            });
            routers_[node]->connectDataOut(port, data);
            routers_[peer]->connectDataIn(opposite(port), data_rx);
            data_rx->bindSink(kernelFor(peer), routers_[peer].get(),
                              /*lazy_wake=*/true);
            // Scheduled outages for the directed link node -> peer
            // strike everything peer receives on this input port.
            if (!injectors_.empty()) {
                for (const OutageWindow& w :
                     fault_plan_.takeOutages(node, peer)) {
                    injectors_[static_cast<std::size_t>(peer)]
                        ->addOutage(opposite(port), w.start, w.end);
                }
            }
            Channel<Credit>* credit =
                make_credit_channel("c:" + tag, credit_lat);
            Channel<Credit>* credit_rx = rxSide(credit, peer, node, [&] {
                return make_credit_channel("c:" + tag + ":rx",
                                           credit_lat);
            });
            routers_[peer]->connectCreditOut(opposite(port), credit);
            routers_[node]->connectCreditIn(port, credit_rx);
            credit_rx->bindSink(kernelFor(node), routers_[node].get(),
                                /*lazy_wake=*/true);
            if (validator_.enabled()) {
                VcLinkRec rec;
                rec.up = routers_[node].get();
                rec.upPort = port;
                rec.down = routers_[peer].get();
                rec.downPort = opposite(port);
                rec.data = data_rx;
                rec.credit = credit_rx;
                vc_links_.push_back(rec);
            }
        }
    }
    fault_plan_.checkAllOutagesWired();

    // Injection and ejection: node-local, hence always intra-shard.
    for (NodeId node = 0; node < n; ++node) {
        const std::string tag = std::to_string(node);
        Kernel* kernel = kernelFor(node);
        Channel<Flit>* inj = make_flit_channel("inj:" + tag, 1);
        sources_[node]->connectDataOut(inj);
        routers_[node]->connectDataIn(kLocal, inj);
        inj->bindSink(kernel, routers_[node].get(),
                      /*lazy_wake=*/true);
        Channel<Credit>* inj_cr = make_credit_channel("injc:" + tag, 1);
        routers_[node]->connectCreditOut(kLocal, inj_cr);
        sources_[node]->connectCreditIn(inj_cr);
        inj_cr->bindSink(kernel, sources_[node].get());
        if (validator_.enabled()) {
            VcLinkRec rec;
            rec.src = sources_[node].get();
            rec.down = routers_[node].get();
            rec.downPort = kLocal;
            rec.data = inj;
            rec.credit = inj_cr;
            vc_links_.push_back(rec);
        }

        Channel<Flit>* ej = make_flit_channel("ej:" + tag, 1);
        routers_[node]->connectDataOut(kLocal, ej);
        sinkFor(node).addChannel(ej, node);
        ej->bindSink(kernel, &sinkFor(node));

        // Closed-loop feedback: sink slice -> source, node-local (never
        // crosses a shard cut). A node ejects at most one flit per
        // cycle, so at most one completion per cycle fits width 1.
        if (generators_[static_cast<std::size_t>(node)]->closedLoop()) {
            completion_channels_.push_back(
                std::make_unique<Channel<PacketCompletion>>(
                    "done:" + tag, /*latency=*/1, /*width=*/1));
            Channel<PacketCompletion>* done =
                completion_channels_.back().get();
            sinkFor(node).bindFeedback(node, done);
            sources_[node]->connectCompletionIn(done);
            done->bindSink(kernel, sources_[node].get());
        }
    }

    // Ack fabric (recovery only): one wire per (destination, source)
    // pair, sink slice -> source; see FrNetwork for the determinism
    // argument (destination-ascending drains, set-based application).
    if (fault_plan_.recovery) {
        for (NodeId dest = 0; dest < n; ++dest) {
            for (NodeId src = 0; src < n; ++src) {
                const std::string tag = "ack:" + std::to_string(dest)
                                        + "->" + std::to_string(src);
                ack_channels_.push_back(
                    std::make_unique<Channel<PacketCompletion>>(
                        tag, fault_plan_.ackDelay, /*width=*/1));
                Channel<PacketCompletion>* ack =
                    ack_channels_.back().get();
                Channel<PacketCompletion>* ack_rx =
                    rxSide(ack, dest, src, [&] {
                        ack_channels_.push_back(
                            std::make_unique<Channel<PacketCompletion>>(
                                tag + ":rx", fault_plan_.ackDelay,
                                /*width=*/1));
                        return ack_channels_.back().get();
                    });
                sinkFor(dest).bindAck(dest, src, ack);
                sources_[src]->connectAckIn(ack_rx);
                ack_rx->bindSink(kernelFor(src), sources_[src].get(),
                                 /*lazy_wake=*/true);
                ack_rx_.push_back(ack_rx);
            }
        }
    }

    probe_ = std::make_unique<Probe>(*this);
    fullness_.setThreshold(1.0);

    // Per-kernel registration order matches the serial build: sources
    // (node ascending), routers (node ascending), sink, then probe on
    // the middle node's shard.
    for (NodeId node = 0; node < n; ++node)
        kernelFor(node)->add(sources_[node].get());
    for (NodeId node = 0; node < n; ++node)
        kernelFor(node)->add(routers_[node].get());
    registerSinks();
    kernelFor(middle_node_)->add(probe_.get());
}

void
VcNetwork::Probe::tick(Cycle now)
{
    // Parallel runs sweep from the window-boundary hook instead: the
    // sweep reads whole-network state, which is only consistent while
    // every shard worker is parked.
    if (net_.validator_.paranoid() && net_.parallel_ == nullptr)
        net_.validateState(now);
    if (!net_.sampling_)
        return;
    // Matches the FR probe: one specific input pool of a middle router.
    VcRouter& router = *net_.routers_[net_.middle_node_];
    const int buffered = router.bufferedFlits(kWest);
    net_.occupancy_.sample(now, static_cast<double>(buffered));
    net_.fullness_.sample(
        now, buffered >= router.bufferCapacity() ? 1.0 : 0.0);
}

double
VcNetwork::avgSourceQueue() const
{
    double total = 0.0;
    for (const auto& source : sources_)
        total += source->queueLength();
    return total / static_cast<double>(sources_.size());
}

void
VcNetwork::setGenerating(bool on)
{
    const Cycle now = driver().now();
    for (NodeId node = 0; node < topo_->numNodes(); ++node) {
        sources_[static_cast<std::size_t>(node)]->setGenerating(on);
        if (on)
            kernelFor(node)->wake(
                sources_[static_cast<std::size_t>(node)].get(), now);
    }
}

void
VcNetwork::startOccupancySampling()
{
    sampling_ = true;
    occupancy_.reset(driver().now());
    fullness_.reset(driver().now());
    kernelFor(middle_node_)->wake(probe_.get(), driver().now());
}

double
VcNetwork::middlePoolFullFraction() const
{
    return fullness_.atOrAboveFraction();
}

double
VcNetwork::middlePoolAvgOccupancy() const
{
    return occupancy_.average();
}

std::int64_t
VcNetwork::totalPoisoned() const
{
    std::int64_t total = 0;
    for (const auto& router : routers_)
        total += router->dataPoisoned();
    return total;
}

std::int64_t
VcNetwork::totalPoisonedDiscarded() const
{
    std::int64_t total = 0;
    for (const auto& sink : sinks_)
        total += sink->poisonedDiscarded();
    return total;
}

std::int64_t
VcNetwork::totalDupDiscarded() const
{
    std::int64_t total = 0;
    for (const auto& sink : sinks_)
        total += sink->dupDiscarded();
    return total;
}

std::int64_t
VcNetwork::totalRetransmits() const
{
    std::int64_t total = 0;
    for (const auto& source : sources_)
        total += source->retransmits().retransmitsTotal();
    return total;
}

void
VcNetwork::validateState(Cycle now)
{
    if (!validator_.enabled())
        return;
    // Flit conservation: every flit a source put on a wire is
    // delivered, queued in some input VC, in flight on a data channel,
    // or reached the sink and was discarded there (fault-poisoned, or
    // a retransmission duplicate). Probe runs after routers and sink
    // in registration order, so the snapshot is consistent.
    std::int64_t injected = 0;
    for (const auto& source : sources_)
        injected += source->flitsInjected();
    std::int64_t accounted = flitsEjectedTotal();
    for (const auto& router : routers_)
        accounted += router->totalBufferedFlits();
    for (const auto& sink : sinks_)
        accounted += sink->poisonedDiscarded() + sink->dupDiscarded();
    for (const auto& ch : flit_channels_)
        accounted += ch->pendingCount();
    if (injected != accounted) {
        validator_.fail(
            "flit.conservation", now, "vc_network", kInvalidPort,
            std::to_string(injected) + " data flits injected but "
                + std::to_string(accounted)
                + " accounted for (delivered + buffered + in flight"
                + " + discarded)");
    }
    // Retransmit-buffer conservation (see FrNetwork::validateState).
    if (fault_plan_.recovery) {
        std::int64_t unacked = 0;
        for (const auto& source : sources_)
            unacked += source->retransmits().unackedCount();
        std::int64_t pending_acks = 0;
        for (const Channel<PacketCompletion>* ch : ack_rx_)
            pending_acks += ch->pendingCount();
        const std::int64_t in_flight = registry_.packetsInFlight();
        if (unacked != in_flight + pending_acks) {
            validator_.fail(
                "recovery.conservation", now, "vc_network", kInvalidPort,
                std::to_string(unacked) + " unacked packets vs "
                    + std::to_string(in_flight) + " in flight + "
                    + std::to_string(pending_acks) + " acks pending");
        }
    }

    // Credit conservation per link: each of the vcDepth buffer slots
    // of a downstream VC is, at any instant, exactly one of — a credit
    // held upstream, a flit on the data wire, a queued flit, or a
    // credit on the return wire.
    for (const VcLinkRec& rec : vc_links_) {
        if (params_.sharedPool) {
            const int upstream = rec.up != nullptr
                ? rec.up->poolCredits(rec.upPort)
                : rec.src->injectionPoolCredits();
            std::int64_t total = upstream
                + rec.down->bufferedFlits(rec.downPort)
                + rec.data->pendingCount() + rec.credit->pendingCount();
            const std::int64_t capacity =
                static_cast<std::int64_t>(params_.numVcs)
                * params_.vcDepth;
            if (total != capacity) {
                validator_.fail(
                    "credit.conservation", now, rec.data->name(),
                    rec.downPort,
                    "pool accounts for " + std::to_string(total)
                        + " slots, capacity "
                        + std::to_string(capacity));
            }
            continue;
        }
        for (VcId vc = 0; vc < params_.numVcs; ++vc) {
            const int upstream = rec.up != nullptr
                ? rec.up->outVcCredits(rec.upPort, vc)
                : rec.src->injectionCredits(vc);
            std::int64_t data_in_flight = 0;
            rec.data->forEachPending([&](const Flit& flit) {
                if (flit.vc == vc)
                    ++data_in_flight;
            });
            std::int64_t credits_in_flight = 0;
            rec.credit->forEachPending([&](const Credit& credit) {
                if (credit.vc == vc)
                    ++credits_in_flight;
            });
            const std::int64_t total = upstream + data_in_flight
                + credits_in_flight
                + rec.down->inVcQueueLen(rec.downPort, vc);
            if (total != params_.vcDepth) {
                validator_.fail(
                    "credit.conservation", now, rec.data->name(),
                    rec.downPort,
                    "vc " + std::to_string(vc) + " accounts for "
                        + std::to_string(total) + " slots, depth "
                        + std::to_string(params_.vcDepth));
            }
        }
    }
}

}  // namespace frfc
