#include "network/network.hpp"

#include "common/log.hpp"
#include "network/fr_network.hpp"
#include "network/vc_network.hpp"

namespace frfc {

std::unique_ptr<NetworkModel>
makeNetwork(const Config& cfg)
{
    const std::string scheme = cfg.getString("scheme", "vc");
    if (scheme == "vc")
        return std::make_unique<VcNetwork>(cfg);
    if (scheme == "fr")
        return std::make_unique<FrNetwork>(cfg);
    fatal("unknown scheme '", scheme, "' (expected vc or fr)");
}

}  // namespace frfc
