#include "network/network.hpp"

#include "common/log.hpp"
#include "network/fr_network.hpp"
#include "network/vc_network.hpp"

namespace frfc {

void
NetworkModel::initSimKernel(const Config& cfg, const Topology& topo)
{
    const SimKernelKind kind = simKernelFromConfig(cfg);
    if (kind != SimKernelKind::kParallel) {
        kernel_.setMode(kind == SimKernelKind::kStepped
                            ? KernelMode::kStepped
                            : KernelMode::kEvent);
        if (validator_.enabled())
            kernel_.setValidator(&validator_);
        sinks_.push_back(std::make_unique<EjectionSink>(
            "sink", &registry_, &metrics_));
    } else {
        plan_ = makeShardPlan(cfg, topo);
        parallel_ = std::make_unique<ParallelKernel>(plan_.shards);
        parallel_->setBoundaryHook(
            [this](Cycle now) { onWindowBoundary(now); });
        for (int s = 0; s < plan_.shards; ++s) {
            if (validator_.enabled())
                parallel_->shard(s).setValidator(&validator_);
            shard_ledgers_.push_back(
                std::make_unique<DeferredPacketLedger>());
            ledger_ptrs_.push_back(shard_ledgers_.back().get());
            // Slices keep private counters; the network publishes the
            // aggregate under the serial runs' metric path.
            sinks_.push_back(std::make_unique<EjectionSink>(
                "sink" + std::to_string(s),
                shard_ledgers_.back().get(), nullptr));
        }
        metrics_.attachCounter("sink.flits_ejected", sink_flits_total_);
        metrics_.attachCounter("sink.poisoned_discarded",
                               sink_poisoned_total_);
        metrics_.attachCounter("sink.dup_discarded", sink_dup_total_);
    }
    if (validator_.enabled())
        for (auto& sink : sinks_)
            sink->setValidator(&validator_);
}

void
NetworkModel::registerSinks()
{
    for (std::size_t s = 0; s < sinks_.size(); ++s) {
        Kernel& kernel = parallel_ != nullptr
            ? parallel_->shard(static_cast<int>(s))
            : kernel_;
        kernel.add(sinks_[s].get());
    }
}

std::int64_t
NetworkModel::flitsEjectedTotal() const
{
    std::int64_t total = 0;
    for (const auto& sink : sinks_)
        total += sink->flitsEjected();
    return total;
}

void
NetworkModel::syncAggregates()
{
    if (parallel_ == nullptr)
        return;
    sink_flits_total_.reset();
    sink_flits_total_.add(flitsEjectedTotal());
    std::int64_t poisoned = 0;
    std::int64_t dups = 0;
    for (const auto& sink : sinks_) {
        poisoned += sink->poisonedDiscarded();
        dups += sink->dupDiscarded();
    }
    sink_poisoned_total_.reset();
    sink_poisoned_total_.add(poisoned);
    sink_dup_total_.reset();
    sink_dup_total_.add(dups);
}

void
NetworkModel::onWindowBoundary(Cycle now)
{
    replayDeferredLedgers(registry_, ledger_ptrs_, replay_scratch_);
    syncAggregates();
    // Serial paranoid runs sweep from the probe's per-cycle tick; here
    // the sweep needs whole-network (cross-shard) state, so it runs at
    // the boundary instead, over the last fully-executed cycle.
    if (validator_.paranoid())
        validateState(now - 1);
}

std::unique_ptr<NetworkModel>
makeNetwork(const Config& cfg)
{
    const std::string scheme = cfg.getString("scheme", "vc");
    if (scheme == "vc")
        return std::make_unique<VcNetwork>(cfg);
    if (scheme == "fr")
        return std::make_unique<FrNetwork>(cfg);
    fatal("unknown scheme '", scheme, "' (expected vc or fr)");
}

}  // namespace frfc
