#include "network/fr_network.hpp"

#include "common/config.hpp"
#include "common/log.hpp"
#include "common/rng.hpp"
#include "sim/kernel.hpp"
#include "traffic/workload.hpp"

namespace frfc {

namespace {

PortId
opposite(PortId port)
{
    switch (port) {
      case kEast:
        return kWest;
      case kWest:
        return kEast;
      case kNorth:
        return kSouth;
      case kSouth:
        return kNorth;
      default:
        panic("no opposite for port ", port);
    }
}

}  // namespace

FrNetwork::FrNetwork(const Config& cfg)
{
    topo_ = makeTopology(cfg);
    routing_ = makeRouting(cfg, *topo_);
    pattern_ = makePattern(cfg, *topo_);
    offered_ = workloadOfferedFraction(cfg) * capacity();

    const auto seed = static_cast<std::uint64_t>(cfg.getInt("seed", 1));

    params_.dataBuffers = static_cast<int>(cfg.getInt("data_buffers", 6));
    params_.ctrlVcs = static_cast<int>(cfg.getInt("ctrl_vcs", 2));
    params_.ctrlVcDepth = static_cast<int>(cfg.getInt("ctrl_vc_depth", 3));
    params_.horizon = static_cast<int>(cfg.getInt("horizon", 32));
    params_.ctrlWidth = static_cast<int>(cfg.getInt("ctrl_width", 2));
    params_.dataLinkLatency = cfg.getInt("data_link_latency", 4);
    params_.ctrlLinkLatency = cfg.getInt("ctrl_link_latency", 1);
    params_.flitsPerControl =
        static_cast<int>(cfg.getInt("flits_per_ctrl", 1));
    params_.leadTime = cfg.getInt("lead_time", 0);
    params_.allOrNothing = cfg.getBool("all_or_nothing", false);
    params_.speedup = static_cast<int>(cfg.getInt("speedup", 1));
    params_.creditSlack = cfg.getBool("plesiochronous", false) ? 1 : 0;
    fault_plan_ = FaultPlan::fromConfig(cfg, "fr");
    params_.speculative = cfg.getBool("fr.speculative", false);
    if (params_.speculative && !fault_plan_.recovery) {
        fatal("fr.speculative=1 requires fault.recovery=1: a nacked "
              "speculative launch is recovered by retransmission");
    }

    if (params_.flitsPerControl < 1
        || params_.flitsPerControl > kMaxEntriesPerControl) {
        fatal("flits_per_ctrl must be in [1, ", kMaxEntriesPerControl,
              "]");
    }
    if (params_.dataLinkLatency + 2 >= params_.horizon)
        fatal("horizon too short for the data link latency");

    const int n = topo_->numNodes();
    validator_.setLevel(validateLevelFromConfig(cfg));
    initSimKernel(cfg, *topo_);
    middle_node_ = topo_->nodeAt(topo_->sizeX() / 2, topo_->sizeY() / 2);

    generators_ = makeGenerators(cfg, *topo_, pattern_.get(), offered_);
    if (validator_.enabled()) {
        for (const auto& gen : generators_) {
            if (gen->closedLoop()) {
                validator_.initClassAccounting(n);
                break;
            }
        }
    }
    for (NodeId node = 0; node < n; ++node) {
        routers_.push_back(std::make_unique<FrRouter>(
            "router" + std::to_string(node), node, *routing_, params_,
            Rng(seed, 0x1000 + static_cast<std::uint64_t>(node)),
            &metrics_));
        sources_.push_back(std::make_unique<FrSource>(
            "source" + std::to_string(node), node,
            generators_[static_cast<std::size_t>(node)].get(),
            ledgerFor(node), params_,
            Rng(seed, 0x2000 + static_cast<std::uint64_t>(node)),
            &metrics_));
        if (validator_.enabled()) {
            routers_.back()->setValidator(&validator_);
            sources_.back()->setValidator(&validator_);
        }
        if (fault_plan_.recovery) {
            sources_.back()->enableRecovery(fault_plan_.ackTimeout,
                                            fault_plan_.backoffCap,
                                            fault_plan_.maxAttempts);
        }
    }
    if (fault_plan_.anyLinkFaults()) {
        for (NodeId node = 0; node < n; ++node) {
            injectors_.push_back(std::make_unique<FaultInjector>(
                Rng(seed,
                    kFaultRngSalt + static_cast<std::uint64_t>(node)),
                fault_plan_));
            routers_[static_cast<std::size_t>(node)]->setFaultInjector(
                injectors_.back().get());
        }
    }
    if (fault_plan_.recovery) {
        for (auto& sink : sinks_)
            sink->enableRecovery();
    }

    // A killed control worm makes the receiving router push recovered
    // credits upstream in the same cycle its normal traffic does, so
    // control-fault runs double the credit wires' width headroom.
    const int fault_headroom = fault_plan_.ctrlFaultsPossible() ? 2 : 1;
    const int ctrl_credit_width = params_.ctrlWidth * fault_headroom;
    const int credit_width =
        params_.ctrlWidth * params_.flitsPerControl * fault_headroom;

    auto flit_ch = [this](std::string name, Cycle lat) {
        flit_channels_.push_back(
            std::make_unique<Channel<Flit>>(std::move(name), lat, 1));
        return flit_channels_.back().get();
    };
    auto ctrl_ch = [this](std::string name, Cycle lat) {
        ctrl_channels_.push_back(std::make_unique<Channel<ControlFlit>>(
            std::move(name), lat, params_.ctrlWidth));
        return ctrl_channels_.back().get();
    };
    auto fr_credit_ch = [this, credit_width](std::string name, Cycle lat) {
        fr_credit_channels_.push_back(std::make_unique<Channel<FrCredit>>(
            std::move(name), lat, credit_width));
        return fr_credit_channels_.back().get();
    };
    auto ctrl_credit_ch = [this, ctrl_credit_width](std::string name,
                                                    Cycle lat) {
        ctrl_credit_channels_.push_back(std::make_unique<Channel<Credit>>(
            std::move(name), lat, ctrl_credit_width));
        return ctrl_credit_channels_.back().get();
    };

    // Inter-router links: data + control forward, two credit wires back.
    // rxSide() splits any cross-shard wire into its mailbox pair; the
    // sender keeps pushing into the first channel either way.
    for (NodeId node = 0; node < n; ++node) {
        for (PortId port = kEast; port <= kSouth; ++port) {
            const NodeId peer = topo_->neighbor(node, port);
            if (peer == kInvalidNode)
                continue;
            const PortId rev = opposite(port);
            const std::string tag =
                std::to_string(node) + "->" + std::to_string(peer);

            Channel<Flit>* data =
                flit_ch("d:" + tag, params_.dataLinkLatency);
            Channel<Flit>* data_rx = rxSide(data, node, peer, [&] {
                return flit_ch("d:" + tag + ":rx",
                               params_.dataLinkLatency);
            });
            routers_[node]->connectDataOut(port, data);
            routers_[peer]->connectDataIn(rev, data_rx);
            data_rx->bindSink(kernelFor(peer), routers_[peer].get(),
                              /*lazy_wake=*/true);

            // Scheduled outages for the directed link node -> peer
            // strike everything peer receives on this input port.
            if (!injectors_.empty()) {
                for (const OutageWindow& w :
                     fault_plan_.takeOutages(node, peer)) {
                    injectors_[static_cast<std::size_t>(peer)]
                        ->addOutage(rev, w.start, w.end);
                }
            }

            Channel<ControlFlit>* ctrl =
                ctrl_ch("ctl:" + tag, params_.ctrlLinkLatency);
            Channel<ControlFlit>* ctrl_rx = rxSide(ctrl, node, peer, [&] {
                return ctrl_ch("ctl:" + tag + ":rx",
                               params_.ctrlLinkLatency);
            });
            routers_[node]->connectCtrlOut(port, ctrl);
            routers_[peer]->connectCtrlIn(rev, ctrl_rx);
            ctrl_rx->bindSink(kernelFor(peer), routers_[peer].get(),
                              /*lazy_wake=*/true);

            Channel<FrCredit>* frc =
                fr_credit_ch("frc:" + tag, params_.ctrlLinkLatency);
            Channel<FrCredit>* frc_rx = rxSide(frc, peer, node, [&] {
                return fr_credit_ch("frc:" + tag + ":rx",
                                    params_.ctrlLinkLatency);
            });
            routers_[peer]->connectFrCreditOut(rev, frc);
            routers_[node]->connectFrCreditIn(port, frc_rx);
            frc_rx->bindSink(kernelFor(node), routers_[node].get(),
                             /*lazy_wake=*/true);
            if (validator_.enabled()) {
                // Ledger for this wire: peer sends (commitEntry for
                // data arriving on its `rev` input), node applies into
                // its `port` output table. Conservation is checked at
                // quiescent points, where a cross-shard stub is always
                // drained, so the receiver-side channel alone carries
                // the in-flight credits.
                const int link = validator_.addCreditLink("frc:" + tag);
                routers_[peer]->bindCreditLedger(rev, link);
                routers_[node]->bindCreditFeedback(port, link);
                credit_links_.push_back(CreditLinkRec{link, frc_rx});
            }

            Channel<Credit>* ctc =
                ctrl_credit_ch("ctc:" + tag, params_.ctrlLinkLatency);
            Channel<Credit>* ctc_rx = rxSide(ctc, peer, node, [&] {
                return ctrl_credit_ch("ctc:" + tag + ":rx",
                                      params_.ctrlLinkLatency);
            });
            routers_[peer]->connectCtrlCreditOut(rev, ctc);
            routers_[node]->connectCtrlCreditIn(port, ctc_rx);
            ctc_rx->bindSink(kernelFor(node), routers_[node].get(),
                             /*lazy_wake=*/true);
        }
    }
    fault_plan_.checkAllOutagesWired();

    // Injection (source -> router local input) and ejection. Endpoint
    // wiring is node-local, hence always intra-shard.
    for (NodeId node = 0; node < n; ++node) {
        const std::string tag = std::to_string(node);
        Kernel* kernel = kernelFor(node);

        Channel<Flit>* inj = flit_ch("inj:" + tag, 1);
        sources_[node]->connectDataOut(inj);
        routers_[node]->connectDataIn(kLocal, inj);
        inj->bindSink(kernel, routers_[node].get(),
                      /*lazy_wake=*/true);

        Channel<ControlFlit>* inj_ctl =
            ctrl_ch("injctl:" + tag, params_.ctrlLinkLatency);
        sources_[node]->connectCtrlOut(inj_ctl);
        routers_[node]->connectCtrlIn(kLocal, inj_ctl);
        inj_ctl->bindSink(kernel, routers_[node].get(),
                      /*lazy_wake=*/true);

        Channel<FrCredit>* inj_frc = fr_credit_ch("injfrc:" + tag, 1);
        routers_[node]->connectFrCreditOut(kLocal, inj_frc);
        sources_[node]->connectFrCreditIn(inj_frc);
        inj_frc->bindSink(kernel, sources_[node].get());
        if (validator_.enabled()) {
            const int link = validator_.addCreditLink("injfrc:" + tag);
            routers_[node]->bindCreditLedger(kLocal, link);
            sources_[node]->bindCreditFeedback(link);
            credit_links_.push_back(CreditLinkRec{link, inj_frc});
        }

        Channel<Credit>* inj_ctc = ctrl_credit_ch("injctc:" + tag, 1);
        routers_[node]->connectCtrlCreditOut(kLocal, inj_ctc);
        sources_[node]->connectCtrlCreditIn(inj_ctc);
        inj_ctc->bindSink(kernel, sources_[node].get());

        Channel<Flit>* ej = flit_ch("ej:" + tag, 1);
        routers_[node]->connectDataOut(kLocal, ej);
        sinkFor(node).addChannel(ej, node);
        ej->bindSink(kernel, &sinkFor(node));

        // Speculative nacks: router -> its own source, node-local. A
        // router can nack several spec arrivals in one cycle (one per
        // input port, plus evictions), hence the generous width.
        if (params_.speculative) {
            nack_channels_.push_back(std::make_unique<Channel<FrNack>>(
                "nack:" + tag, /*latency=*/1, /*width=*/2 * kNumPorts));
            Channel<FrNack>* nack = nack_channels_.back().get();
            routers_[node]->connectNackOut(nack);
            sources_[node]->connectNackIn(nack);
            nack->bindSink(kernel, sources_[node].get(),
                           /*lazy_wake=*/true);
        }

        // Closed-loop feedback: sink slice -> source, node-local (never
        // crosses a shard cut). A node ejects at most one flit per
        // cycle, so at most one completion per cycle fits width 1.
        if (generators_[static_cast<std::size_t>(node)]->closedLoop()) {
            completion_channels_.push_back(
                std::make_unique<Channel<PacketCompletion>>(
                    "done:" + tag, /*latency=*/1, /*width=*/1));
            Channel<PacketCompletion>* done =
                completion_channels_.back().get();
            sinkFor(node).bindFeedback(node, done);
            sources_[node]->connectCompletionIn(done);
            done->bindSink(kernel, sources_[node].get());
        }
    }

    // Ack fabric (recovery only): one wire per (destination, source)
    // pair, sink slice -> source. A node ejects at most one flit per
    // cycle, so it completes at most one packet per cycle — width 1.
    // Sources drain these destination-ascending and apply acks as a
    // set, so shard-cut-driven drain timing cannot change the outcome.
    if (fault_plan_.recovery) {
        for (NodeId dest = 0; dest < n; ++dest) {
            for (NodeId src = 0; src < n; ++src) {
                const std::string tag = "ack:" + std::to_string(dest)
                                        + "->" + std::to_string(src);
                ack_channels_.push_back(
                    std::make_unique<Channel<PacketCompletion>>(
                        tag, fault_plan_.ackDelay, /*width=*/1));
                Channel<PacketCompletion>* ack =
                    ack_channels_.back().get();
                Channel<PacketCompletion>* ack_rx =
                    rxSide(ack, dest, src, [&] {
                        ack_channels_.push_back(
                            std::make_unique<Channel<PacketCompletion>>(
                                tag + ":rx", fault_plan_.ackDelay,
                                /*width=*/1));
                        return ack_channels_.back().get();
                    });
                sinkFor(dest).bindAck(dest, src, ack);
                sources_[src]->connectAckIn(ack_rx);
                ack_rx->bindSink(kernelFor(src), sources_[src].get(),
                                 /*lazy_wake=*/true);
                ack_rx_.push_back(ack_rx);
            }
        }
    }

    probe_ = std::make_unique<Probe>(*this);
    fullness_.setThreshold(1.0);

    // Per-kernel registration order matches the serial build: sources
    // (node ascending), routers (node ascending), sink, then probe on
    // the middle node's shard.
    for (NodeId node = 0; node < n; ++node)
        kernelFor(node)->add(sources_[node].get());
    for (NodeId node = 0; node < n; ++node)
        kernelFor(node)->add(routers_[node].get());
    registerSinks();
    kernelFor(middle_node_)->add(probe_.get());
}

void
FrNetwork::Probe::tick(Cycle now)
{
    // Parallel runs sweep from the window-boundary hook instead: the
    // sweep reads whole-network state, which is only consistent while
    // every shard worker is parked.
    if (net_.validator_.paranoid() && net_.parallel_ == nullptr)
        net_.validateState(now);
    if (!net_.sampling_)
        return;
    // The paper tracks "a specific buffer pool of a router in the
    // middle of the mesh"; we watch the middle router's West input.
    FrRouter& router = *net_.routers_[net_.middle_node_];
    const BufferPool& pool = router.inputTable(kWest).pool();
    net_.occupancy_.sample(now, static_cast<double>(pool.usedCount()));
    net_.fullness_.sample(now, pool.full() ? 1.0 : 0.0);
}

double
FrNetwork::avgSourceQueue() const
{
    double total = 0.0;
    for (const auto& source : sources_)
        total += source->queueLength();
    return total / static_cast<double>(sources_.size());
}

void
FrNetwork::setGenerating(bool on)
{
    const Cycle now = driver().now();
    for (NodeId node = 0; node < topo_->numNodes(); ++node) {
        sources_[static_cast<std::size_t>(node)]->setGenerating(on);
        if (on)
            kernelFor(node)->wake(
                sources_[static_cast<std::size_t>(node)].get(), now);
    }
}

void
FrNetwork::startOccupancySampling()
{
    sampling_ = true;
    occupancy_.reset(driver().now());
    fullness_.reset(driver().now());
    kernelFor(middle_node_)->wake(probe_.get(), driver().now());
}

double
FrNetwork::middlePoolFullFraction() const
{
    return fullness_.atOrAboveFraction();
}

double
FrNetwork::middlePoolAvgOccupancy() const
{
    return occupancy_.average();
}

double
FrNetwork::avgControlLead() const
{
    Accumulator merged;
    for (const auto& router : routers_)
        merged.merge(router->controlLeadAtDestination());
    return merged.mean();
}

std::int64_t
FrNetwork::totalBypasses() const
{
    std::int64_t total = 0;
    for (const auto& router : routers_) {
        for (PortId port = 0; port < kNumPorts; ++port)
            total += router->inputTable(port).bypasses();
    }
    return total;
}

std::int64_t
FrNetwork::totalDropped() const
{
    std::int64_t total = 0;
    for (const auto& router : routers_)
        total += router->dataFlitsDropped();
    return total;
}

std::int64_t
FrNetwork::totalCtrlDropped() const
{
    std::int64_t total = 0;
    for (const auto& router : routers_)
        total += router->ctrlFlitsDropped();
    return total;
}

std::int64_t
FrNetwork::totalCtrlOrphanDrops() const
{
    std::int64_t total = 0;
    for (const auto& router : routers_)
        total += router->ctrlOrphanDrops();
    return total;
}

std::int64_t
FrNetwork::totalCreditsCorrupted() const
{
    std::int64_t total = 0;
    for (const auto& router : routers_)
        total += router->creditsCorrupted();
    return total;
}

std::int64_t
FrNetwork::totalSpecDropped() const
{
    std::int64_t total = 0;
    for (const auto& router : routers_)
        total += router->specDropped();
    return total;
}

std::int64_t
FrNetwork::totalSpecEvicted() const
{
    std::int64_t total = 0;
    for (const auto& router : routers_)
        total += router->specEvicted();
    return total;
}

std::int64_t
FrNetwork::totalDupDiscarded() const
{
    std::int64_t total = 0;
    for (const auto& sink : sinks_)
        total += sink->dupDiscarded();
    return total;
}

std::int64_t
FrNetwork::totalRetransmits() const
{
    std::int64_t total = 0;
    for (const auto& source : sources_)
        total += source->retransmits().retransmitsTotal();
    return total;
}

std::int64_t
FrNetwork::totalLostArrivals() const
{
    std::int64_t total = 0;
    for (const auto& router : routers_) {
        for (PortId port = 0; port < kNumPorts; ++port)
            total += router->inputTable(port).lostArrivals();
    }
    return total;
}

std::int64_t
FrNetwork::totalParked() const
{
    std::int64_t total = 0;
    for (const auto& router : routers_) {
        for (PortId port = 0; port < kNumPorts; ++port)
            total += router->inputTable(port).parkedTotal();
    }
    return total;
}

void
FrNetwork::validateState(Cycle now)
{
    if (!validator_.enabled())
        return;
    // Data-flit conservation: every flit a source put on a wire is
    // delivered, held in an input buffer pool (parked flits included —
    // they own pool buffers), in flight on a data channel, or lost to
    // a known fault/recovery cause — injector drops, orphan discards
    // after a killed control worm, failed or evicted speculative
    // launches, duplicates suppressed at the sink. Probe runs after
    // routers and sink in registration order, so the snapshot is
    // consistent.
    std::int64_t injected = 0;
    for (const auto& source : sources_)
        injected += source->flitsInjected();
    std::int64_t accounted = flitsEjectedTotal();
    for (const auto& router : routers_) {
        accounted += router->dataFlitsDropped();
        accounted += router->ctrlOrphanDrops();
        accounted += router->specDropped();
        accounted += router->specEvicted();
        for (PortId port = 0; port < kNumPorts; ++port)
            accounted += router->inputTable(port).pool().usedCount();
    }
    for (const auto& sink : sinks_)
        accounted += sink->dupDiscarded();
    for (const auto& ch : flit_channels_)
        accounted += ch->pendingCount();
    if (injected != accounted) {
        validator_.fail(
            "flit.conservation", now, "fr_network", kInvalidPort,
            std::to_string(injected) + " data flits injected but "
                + std::to_string(accounted)
                + " accounted for (delivered + pooled + in flight"
                + " + lost to faults/recovery)");
    }
    // Retransmit-buffer conservation: every unacked packet is either
    // still incomplete in the registry or its ack is in flight on an
    // ack wire. Sources drain acks before the sink pushes new ones, so
    // the identity is exact at every sweep point (serial probe ticks
    // last; parallel sweeps run after ledger replay at a boundary).
    if (fault_plan_.recovery) {
        std::int64_t unacked = 0;
        for (const auto& source : sources_)
            unacked += source->retransmits().unackedCount();
        std::int64_t pending_acks = 0;
        for (const Channel<PacketCompletion>* ch : ack_rx_)
            pending_acks += ch->pendingCount();
        const std::int64_t in_flight = registry_.packetsInFlight();
        if (unacked != in_flight + pending_acks) {
            validator_.fail(
                "recovery.conservation", now, "fr_network", kInvalidPort,
                std::to_string(unacked) + " unacked packets vs "
                    + std::to_string(in_flight) + " in flight + "
                    + std::to_string(pending_acks) + " acks pending");
        }
    }
    // Advance-credit ledgers: sent == applied + in flight, per wire.
    for (const CreditLinkRec& rec : credit_links_)
        validator_.checkCreditLink(rec.link, rec.channel->pendingCount(),
                                   now);
    for (const auto& router : routers_)
        router->auditInvariants(now);
    for (const auto& source : sources_)
        source->auditInvariants(now);
}

}  // namespace frfc
