#include "network/runner.hpp"

#include <chrono>

#include "common/config.hpp"
#include "common/log.hpp"
#include "network/network.hpp"
#include "stats/histogram.hpp"
#include "stats/warmup.hpp"
#include "topology/topology.hpp"

namespace frfc {

RunOptions
RunOptions::fromConfig(const Config& cfg)
{
    return fromConfig(cfg, RunOptions{});
}

RunOptions
RunOptions::fromConfig(const Config& cfg, const RunOptions& base)
{
    RunOptions opt = base;
    const ConfigScope run = cfg.scope("run");
    opt.samplePackets = run.get("sample_packets", opt.samplePackets);
    opt.minWarmup = run.get("min_warmup", opt.minWarmup);
    opt.maxWarmup = run.get("max_warmup", opt.maxWarmup);
    opt.maxCycles = run.get("max_cycles", opt.maxCycles);
    opt.warmupWindow = run.get("warmup_window", opt.warmupWindow);
    opt.warmupTolerance = run.get("warmup_tolerance",
                                  opt.warmupTolerance);
    opt.trackOccupancy = run.get("track_occupancy", opt.trackOccupancy);
    opt.threads = run.get("threads", opt.threads);

    const ConfigScope out = cfg.scope("out");
    opt.outFormat = out.get("format", opt.outFormat);
    opt.outFile = out.get("file", opt.outFile);
    opt.outMetrics = out.get("metrics", opt.outMetrics);
    if (opt.outFormat != "table" && opt.outFormat != "json"
        && opt.outFormat != "csv") {
        fatal("out.format must be table, json, or csv (got '",
              opt.outFormat, "')");
    }
    if (opt.outMetrics != "full" && opt.outMetrics != "none") {
        fatal("out.metrics must be full or none (got '", opt.outMetrics,
              "')");
    }
    return opt;
}

double
RunResult::cyclesPerSecond() const
{
    return wallSeconds > 0.0
        ? static_cast<double>(totalCycles) / wallSeconds
        : 0.0;
}

namespace {

bool
classStatsEqual(const ClassStats& a, const ClassStats& b)
{
    return a.created == b.created && a.delivered == b.delivered
        && a.avgLatency == b.avgLatency && a.p50Latency == b.p50Latency
        && a.p95Latency == b.p95Latency && a.p99Latency == b.p99Latency;
}

ClassStats
classStatsFrom(const PacketRegistry& registry, MessageClass cls)
{
    ClassStats stats;
    stats.created = registry.classCreated(cls);
    stats.delivered = registry.classDelivered(cls);
    stats.avgLatency = registry.sampleClassLatency(cls).mean();
    const Histogram& hist = registry.sampleClassHistogram(cls);
    stats.p50Latency = hist.total() > 0 ? hist.quantile(0.5) : 0.0;
    stats.p95Latency = hist.total() > 0 ? hist.quantile(0.95) : 0.0;
    stats.p99Latency = hist.total() > 0 ? hist.quantile(0.99) : 0.0;
    return stats;
}

}  // namespace

bool
RunResult::bitIdentical(const RunResult& other) const
{
    return offered == other.offered
        && offeredFraction == other.offeredFraction
        && avgLatency == other.avgLatency
        && ci95 == other.ci95
        && minLatency == other.minLatency
        && maxLatency == other.maxLatency
        && p50Latency == other.p50Latency
        && p95Latency == other.p95Latency
        && p99Latency == other.p99Latency
        && accepted == other.accepted
        && acceptedFraction == other.acceptedFraction
        && complete == other.complete
        && warmupCycles == other.warmupCycles
        && totalCycles == other.totalCycles
        && packetsDelivered == other.packetsDelivered
        && poolFullFraction == other.poolFullFraction
        && poolAvgOccupancy == other.poolAvgOccupancy
        && hasClasses == other.hasClasses
        && classStatsEqual(requestStats, other.requestStats)
        && classStatsEqual(replyStats, other.replyStats)
        && metrics == other.metrics;
}

RunOptions
RunOptions::quick()
{
    RunOptions opt;
    opt.samplePackets = 2000;
    opt.minWarmup = 2000;
    opt.maxWarmup = 6000;
    opt.maxCycles = 120000;
    return opt;
}

RunResult
runMeasurement(NetworkModel& net, const RunOptions& opt)
{
    const auto wall_start = std::chrono::steady_clock::now();
    SimDriver& kernel = net.driver();
    PacketRegistry& registry = net.registry();

    // Phase 1 — warm-up: run until the average source queue length has
    // stabilized, at least minWarmup cycles (paper protocol).
    WarmupDetector detector(opt.minWarmup, opt.warmupWindow,
                            opt.warmupTolerance);
    while (!detector.stable() && kernel.now() < opt.maxWarmup) {
        kernel.run(1);
        detector.sample(kernel.now(), net.avgSourceQueue());
    }
    const Cycle warmup_end = kernel.now();

    // Phase 2 — measurement: tag the next samplePackets created packets
    // and run until all of them have been delivered.
    registry.startSampling(opt.samplePackets);
    if (opt.trackOccupancy)
        net.startOccupancySampling();
    const std::int64_t flits_before = registry.flitsDelivered();
    const Cycle measure_start = kernel.now();

    const bool complete = kernel.runUntil(
        [&registry] { return registry.sampleFullyDelivered(); },
        opt.maxCycles - kernel.now());

    const Cycle end = kernel.now();
    // End-of-run sanitizer sweep (sim.validate >= 1): conservation
    // invariants must hold at every quiescent point, so check them at
    // least once per run even when the paranoid per-cycle probe is off.
    if (net.validator().enabled())
        net.validateState(end);
    const double cycles =
        static_cast<double>(end - measure_start);
    const double nodes = static_cast<double>(net.topology().numNodes());

    RunResult result;
    result.offered = net.offeredLoad();
    result.offeredFraction = net.offeredLoad() / net.capacity();
    const Accumulator& lat = registry.sampleLatency();
    result.avgLatency = lat.mean();
    result.ci95 = lat.ci95HalfWidth();
    result.minLatency = lat.count() > 0 ? lat.min() : 0.0;
    result.maxLatency = lat.count() > 0 ? lat.max() : 0.0;
    const Histogram& hist = registry.sampleLatencyHistogram();
    result.p50Latency = hist.total() > 0 ? hist.quantile(0.5) : 0.0;
    result.p95Latency = hist.total() > 0 ? hist.quantile(0.95) : 0.0;
    result.p99Latency = hist.total() > 0 ? hist.quantile(0.99) : 0.0;
    result.accepted = cycles > 0
        ? static_cast<double>(registry.flitsDelivered() - flits_before)
            / (cycles * nodes)
        : 0.0;
    result.acceptedFraction = result.accepted / net.capacity();
    result.complete = complete;
    result.warmupCycles = warmup_end;
    result.totalCycles = end;
    result.packetsDelivered = registry.packetsDelivered();
    // Per-class breakdown: simulation-determined (a reply only exists
    // when a closed-loop generator minted one), so hasClasses itself is
    // part of the bit-identity contract across kernels.
    result.hasClasses = registry.classCreated(MessageClass::kReply) > 0;
    if (result.hasClasses) {
        result.requestStats =
            classStatsFrom(registry, MessageClass::kRequest);
        result.replyStats =
            classStatsFrom(registry, MessageClass::kReply);
    }
    if (opt.trackOccupancy) {
        result.poolFullFraction = net.middlePoolFullFraction();
        result.poolAvgOccupancy = net.middlePoolAvgOccupancy();
    }
    if (opt.collectMetrics()) {
        net.finalizeMetrics();
        result.metrics = net.metrics().snapshot();
    }
    result.wallSeconds = std::chrono::duration<double>(
        std::chrono::steady_clock::now() - wall_start).count();
    return result;
}

RunResult
runExperiment(const Config& cfg, const RunOptions& opt)
{
    auto net = makeNetwork(cfg);
    return runMeasurement(*net, opt);
}

}  // namespace frfc
