/**
 * @file
 * Fully-assembled flit-reservation network (the paper's contribution).
 *
 * Config keys in addition to the common ones (see VcNetwork):
 *   data_buffers (6)       b_d per input pool (FR6; 13 for FR13)
 *   ctrl_vcs (2)           v_c control virtual channels
 *   ctrl_vc_depth (3)      control buffers per control VC
 *   horizon (32)           scheduling horizon s
 *   ctrl_width (2)         control flits per link per cycle
 *   ctrl_link_latency (1)  control and credit wire delay
 *   data_link_latency (4)  data wire delay (1 in leading-control mode)
 *   flits_per_ctrl (1)     d, data flits led per control flit
 *   lead_time (0)          leading control: defer data N cycles
 *   all_or_nothing (false) Section 5 scheduling ablation
 *   speedup (1)            departures per input per cycle (footnote 7)
 */

#ifndef FRFC_NETWORK_FR_NETWORK_HPP
#define FRFC_NETWORK_FR_NETWORK_HPP

#include <memory>
#include <vector>

#include "frfc/fr_router.hpp"
#include "frfc/fr_source.hpp"
#include "network/ejection_sink.hpp"
#include "network/network.hpp"
#include "routing/routing.hpp"
#include "sim/fault.hpp"
#include "stats/time_average.hpp"
#include "topology/topology.hpp"
#include "traffic/generator.hpp"
#include "traffic/pattern.hpp"

namespace frfc {

/** Builds and owns every component of a flit-reservation network. */
class FrNetwork : public NetworkModel
{
  public:
    explicit FrNetwork(const Config& cfg);

    const Topology& topology() const override { return *topo_; }
    double capacity() const override { return topo_->uniformCapacity(); }
    double offeredLoad() const override { return offered_; }
    double avgSourceQueue() const override;
    void setGenerating(bool on) override;
    double middlePoolFullFraction() const override;
    double middlePoolAvgOccupancy() const override;
    void startOccupancySampling() override;
    std::int64_t flitsForwarded(NodeId node, PortId port) const override
    {
        return routers_[static_cast<std::size_t>(node)]->flitsForwarded(
            port);
    }
    std::string scheme() const override { return "fr"; }

    /**
     * The output tables keep their occupancy time-averages exact by
     * recording changes when advance() crosses the affected cycles, and
     * a quiescent router may not have advanced for a while. Slide every
     * table to the last simulated cycle — where the stepped kernel's
     * final tick left them — so pending expiries land with their exact
     * timestamps before the instruments are closed out.
     */
    void
    finalizeMetrics() override
    {
        const Cycle end = driver().now();
        if (end > 0)
            for (auto& r : routers_)
                r->syncMetrics(end - 1);
        NetworkModel::finalizeMetrics();
    }

    /** Mean control-flit lead over data at destinations (cycles). */
    double avgControlLead() const;

    /** Total data-flit bypasses (arrive, depart next cycle). */
    std::int64_t totalBypasses() const;

    /** Total flits that arrived before their control flit. */
    std::int64_t totalParked() const;

    /** Data flits discarded by fault injection (error-recovery study). */
    std::int64_t totalDropped() const;

    /** Reservations that executed vacuously after a loss. */
    std::int64_t totalLostArrivals() const;

    /** @{ Fault and recovery statistics (summed across components). */
    std::int64_t totalCtrlDropped() const;
    std::int64_t totalCtrlOrphanDrops() const;
    std::int64_t totalCreditsCorrupted() const;
    std::int64_t totalSpecDropped() const;
    std::int64_t totalSpecEvicted() const;
    std::int64_t totalDupDiscarded() const;
    std::int64_t totalRetransmits() const;
    /** @} */

    /** Resolved fault.* configuration for this run. */
    const FaultPlan& faultPlan() const { return fault_plan_; }

    /** Direct access for tests. */
    FrRouter& router(NodeId node) { return *routers_[node]; }
    FrSource& source(NodeId node) { return *sources_[node]; }
    const FrParams& params() const { return params_; }

    /**
     * Whole-network invariant sweep (see NetworkModel::validateState):
     * data-flit conservation (injected == delivered + pooled +
     * in flight + dropped), every advance-credit link ledger against
     * its wire, per-table credit conservation, and — in paranoid mode —
     * the parked-flit orphan scan. Pure observation; never perturbs
     * simulation state.
     */
    void validateState(Cycle now) override;

  private:
    class Probe : public Clocked
    {
      public:
        Probe(FrNetwork& net) : Clocked("probe"), net_(net) {}
        void tick(Cycle now) override;

        /** Samples every cycle while enabled; otherwise inert. A
         *  paranoid validator also keeps it hot so the per-cycle sweep
         *  (and the kernel's shadow audit) covers every cycle, even
         *  ones the event kernel would otherwise skip.
         *  startOccupancySampling() wakes it explicitly. */
        Cycle nextWake(Cycle now) const override
        {
            return net_.sampling_ || net_.validator_.paranoid()
                ? now + 1
                : kInvalidCycle;
        }

      private:
        FrNetwork& net_;
    };

    std::unique_ptr<Topology> topo_;
    std::unique_ptr<RoutingFunction> routing_;
    std::unique_ptr<TrafficPattern> pattern_;
    double offered_ = 0.0;
    FrParams params_;

    std::vector<std::unique_ptr<PacketGenerator>> generators_;
    std::vector<std::unique_ptr<FrSource>> sources_;
    std::vector<std::unique_ptr<FrRouter>> routers_;
    std::unique_ptr<Probe> probe_;

    /** Resolved fault.* config plus one injector per router when any
     *  link fault is enabled (private RNG streams; see sim/fault.hpp). */
    FaultPlan fault_plan_;
    std::vector<std::unique_ptr<FaultInjector>> injectors_;

    std::vector<std::unique_ptr<Channel<Flit>>> flit_channels_;
    std::vector<std::unique_ptr<Channel<ControlFlit>>> ctrl_channels_;
    std::vector<std::unique_ptr<Channel<FrCredit>>> fr_credit_channels_;
    std::vector<std::unique_ptr<Channel<Credit>>> ctrl_credit_channels_;
    /** Recovery fabric: ack wires (one per destination -> source pair,
     *  receiver-side listed in ack_rx_ for the conservation sweep) and
     *  node-local speculative-nack wires. */
    std::vector<std::unique_ptr<Channel<PacketCompletion>>> ack_channels_;
    std::vector<Channel<PacketCompletion>*> ack_rx_;
    std::vector<std::unique_ptr<Channel<FrNack>>> nack_channels_;

    /** One ledger entry per advance-credit wire: the validator link id
     *  and the channel whose in-flight credits close the equation. */
    struct CreditLinkRec
    {
        int link;
        Channel<FrCredit>* channel;
    };
    std::vector<CreditLinkRec> credit_links_;

    NodeId middle_node_ = 0;
    bool sampling_ = false;
    TimeAverage occupancy_;
    TimeAverage fullness_;
};

}  // namespace frfc

#endif  // FRFC_NETWORK_FR_NETWORK_HPP
