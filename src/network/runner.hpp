/**
 * @file
 * Measurement protocol, following Section 4 of the paper: warm up until
 * average source queue lengths stabilize (minimum 10,000 cycles), then
 * inject a fixed sample of packets and run until all of them have been
 * received, measuring average latency (with 95% confidence interval)
 * and accepted throughput.
 */

#ifndef FRFC_NETWORK_RUNNER_HPP
#define FRFC_NETWORK_RUNNER_HPP

#include <cstdint>
#include <string>

#include "common/types.hpp"
#include "stats/metrics.hpp"

namespace frfc {

class Config;
class NetworkModel;

/** Knobs of one measured simulation run. */
struct RunOptions
{
    std::int64_t samplePackets = 100000;  ///< paper default
    Cycle minWarmup = 10000;              ///< paper minimum
    Cycle maxWarmup = 30000;              ///< give up waiting for stability
    Cycle maxCycles = 1000000;   ///< total budget; exceeded => saturated
    int warmupWindow = 200;               ///< cycles per stability window
    double warmupTolerance = 0.05;        ///< relative window-mean change
    bool trackOccupancy = false;          ///< Section 4.2 statistic

    /**
     * Worker threads for sweep-level parallelism (harness/parallel):
     * 0 = one per hardware thread, 1 = serial/inline, n = n workers.
     * Results are bit-identical for every value (each run owns its
     * RNG streams); only wall-clock changes.
     */
    int threads = 0;

    /** @{
     * Structured output (harness/report): where and how benches emit
     * their Report. "table" writes the classic human-readable text;
     * "json" and "csv" serialize the full report. Empty outFile means
     * stdout. outMetrics selects whether per-run registry snapshots
     * are collected ("full") or skipped ("none").
     */
    std::string outFormat = "table";  ///< out.format: table|json|csv
    std::string outFile;              ///< out.file: path, "" = stdout
    std::string outMetrics = "full";  ///< out.metrics: full|none
    /** @} */

    /** True when runMeasurement should snapshot the metric registry. */
    bool collectMetrics() const { return outMetrics != "none"; }

    /**
     * Reads run.* keys (run.sample_packets, run.min_warmup, ...) and
     * out.* keys (out.format, out.file, out.metrics); absent keys keep
     * the values of @p base (paper-scale defaults in the
     * single-argument form).
     */
    static RunOptions fromConfig(const Config& cfg,
                                 const RunOptions& base);
    static RunOptions fromConfig(const Config& cfg);

    /** Scaled-down options for smoke tests and quick benches. */
    static RunOptions quick();
};

/** Per-message-class slice of a run's outcome (closed-loop runs). */
struct ClassStats
{
    std::int64_t created = 0;    ///< packets of this class created
    std::int64_t delivered = 0;  ///< packets of this class delivered
    double avgLatency = 0.0;     ///< cycles, mean over sampled packets
    double p50Latency = 0.0;
    double p95Latency = 0.0;
    double p99Latency = 0.0;
};

/** Outcome of one measured run. */
struct RunResult
{
    double offered = 0.0;       ///< flits/node/cycle
    double offeredFraction = 0.0;  ///< of capacity
    double avgLatency = 0.0;    ///< cycles, mean over the sample
    double ci95 = 0.0;          ///< 95% CI half-width on the mean
    double minLatency = 0.0;
    double maxLatency = 0.0;
    double p50Latency = 0.0;    ///< median over the sample
    double p95Latency = 0.0;    ///< tail over the sample
    double p99Latency = 0.0;    ///< tail over the sample
    double accepted = 0.0;      ///< flits/node/cycle ejected
    double acceptedFraction = 0.0;  ///< of capacity
    bool complete = false;      ///< sample delivered within budget
    Cycle warmupCycles = 0;
    Cycle totalCycles = 0;
    std::int64_t packetsDelivered = 0;
    double poolFullFraction = 0.0;  ///< valid if trackOccupancy
    double poolAvgOccupancy = 0.0;  ///< valid if trackOccupancy

    /** @{ Per-class breakdown; populated (and hasClasses set) when the
     *  workload created any reply packet, i.e. ran closed-loop. */
    bool hasClasses = false;
    ClassStats requestStats;
    ClassStats replyStats;
    /** @} */

    /** Per-component registry snapshot taken when the run ended
     *  (empty when RunOptions::outMetrics is "none"). */
    MetricsSnapshot metrics;

    /** @{ Wall-clock observability (host-dependent, never compared). */
    double wallSeconds = 0.0;       ///< host time spent in the run
    /** Simulated cycles per host second (0 if the run was too fast
     *  for the clock to resolve). */
    double cyclesPerSecond() const;
    /** @} */

    /**
     * True if every simulation-determined field matches @p other.
     * Wall-clock fields are excluded: they vary between hosts and
     * runs while the simulation outcome must stay bit-identical for
     * equal seeds, serial or parallel.
     */
    bool bitIdentical(const RunResult& other) const;
};

/** Run the warm-up / sample / drain protocol on @p net. */
RunResult runMeasurement(NetworkModel& net, const RunOptions& opt);

/**
 * Convenience: build the network described by @p cfg, run it, return
 * the result.
 */
RunResult runExperiment(const Config& cfg, const RunOptions& opt);

}  // namespace frfc

#endif  // FRFC_NETWORK_RUNNER_HPP
