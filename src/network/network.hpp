/**
 * @file
 * Network model base: a fully-assembled simulated network (topology,
 * routers, sources, sink, channels) behind one interface the
 * measurement harness can drive.
 *
 * The base also owns the simulation-kernel selection (`sim.kernel`):
 * the serial stepped/event kernels, or the sharded parallel kernel
 * (sim/parallel_kernel.hpp). Subclass constructors stay kernel-agnostic
 * by wiring through the protected helpers — kernelFor()/ledgerFor()/
 * sinkFor() pick the per-shard instance, and rxSide() splits a
 * cross-shard link into its mailbox stub/twin pair. A serial run takes
 * the degenerate path through the same helpers (one kernel, the
 * registry itself as ledger, one sink), so there is exactly one wiring
 * code path to keep correct.
 */

#ifndef FRFC_NETWORK_NETWORK_HPP
#define FRFC_NETWORK_NETWORK_HPP

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "check/validator.hpp"
#include "common/config.hpp"
#include "common/log.hpp"
#include "common/types.hpp"
#include "network/ejection_sink.hpp"
#include "proto/packet_registry.hpp"
#include "sim/kernel.hpp"
#include "sim/parallel_kernel.hpp"
#include "sim/shard.hpp"
#include "stats/metrics.hpp"

namespace frfc {

class Topology;

/** A runnable network: kernel + endpoints + registry. */
class NetworkModel
{
  public:
    virtual ~NetworkModel() = default;

    /** The simulation driver for this run: the serial kernel, or the
     *  sharded parallel kernel when sim.kernel=parallel. */
    SimDriver&
    driver()
    {
        if (parallel_ != nullptr)
            return *parallel_;
        return kernel_;
    }
    const SimDriver&
    driver() const
    {
        if (parallel_ != nullptr)
            return *parallel_;
        return kernel_;
    }

    /** The serial kernel. Tests poke it directly; parallel runs have
     *  no single kernel, so this is serial-only by contract. */
    Kernel&
    kernel()
    {
        FRFC_ASSERT(parallel_ == nullptr,
                    "kernel() is serial-only; use driver()");
        return kernel_;
    }

    /** True when this run shards the network (sim.kernel=parallel). */
    bool parallelEnabled() const { return parallel_ != nullptr; }

    /** The parallel kernel (null in serial runs). */
    ParallelKernel* parallelKernel() { return parallel_.get(); }

    /** Node-to-shard assignment (shards == 1 for serial runs). */
    const ShardPlan& shardPlan() const { return plan_; }

    PacketRegistry& registry() { return registry_; }
    const PacketRegistry& registry() const { return registry_; }

    /** Metric registry every component publishes into (see
     *  stats/metrics.hpp for the path scheme). */
    MetricRegistry& metrics() { return metrics_; }
    const MetricRegistry& metrics() const { return metrics_; }

    /** Close out time-weighted instruments at the current cycle; call
     *  once when measurement ends, before snapshotting. Overrides flush
     *  component-held event-driven instruments first (see FrNetwork). */
    virtual void
    finalizeMetrics()
    {
        syncAggregates();
        metrics_.finishTimeAverages(driver().now());
    }

    /** Topology of this network. */
    virtual const Topology& topology() const = 0;

    /** 100%-capacity injection bandwidth, flits/node/cycle. */
    virtual double capacity() const = 0;

    /** Offered load in flits/node/cycle. */
    virtual double offeredLoad() const = 0;

    /** Mean source queue length across nodes (warm-up signal). */
    virtual double avgSourceQueue() const = 0;

    /** Enable/disable packet generation at every source. */
    virtual void setGenerating(bool on) = 0;

    /**
     * Fraction of observed cycles during which a middle router's input
     * buffer pools were completely full (Section 4.2 statistic).
     * Sampling starts after startOccupancySampling().
     */
    virtual double middlePoolFullFraction() const = 0;
    virtual double middlePoolAvgOccupancy() const = 0;
    virtual void startOccupancySampling() = 0;

    /** Scheme name for reports ("vc", "fr", ...). */
    virtual std::string scheme() const = 0;

    /** Data flits forwarded through output @p port of @p node. */
    virtual std::int64_t flitsForwarded(NodeId node,
                                        PortId port) const = 0;

    /** Reservation-protocol sanitizer (sim.validate); see
     *  src/check/validator.hpp and DESIGN.md section 9. */
    Validator& validator() { return validator_; }
    const Validator& validator() const { return validator_; }

    /**
     * Whole-network invariant sweep at cycle @p now: flit conservation,
     * per-link credit ledgers, per-table conservation audits, orphan
     * scans. No-op unless the subclass wires its components up (and
     * sim.validate enables the sanitizer). Must not perturb simulation
     * state: a validated run stays bit-identical to an unvalidated one.
     */
    virtual void validateState(Cycle /* now */) {}

  protected:
    /**
     * Select and build the simulation kernel from `sim.kernel`, plus —
     * in parallel mode — the shard plan, the per-shard deferred packet
     * ledgers, and the per-shard ejection-sink slices. Call after
     * validator_.setLevel() and before any component wiring.
     */
    void initSimKernel(const Config& cfg, const Topology& topo);

    /** Shard owning @p node (always 0 in serial runs). */
    int
    shardOf(NodeId node) const
    {
        return parallel_ != nullptr ? plan_.ownerOf(node) : 0;
    }

    /** Kernel that ticks components placed at @p node. */
    Kernel*
    kernelFor(NodeId node)
    {
        return parallel_ != nullptr ? &parallel_->shard(shardOf(node))
                                    : &kernel_;
    }

    /** Packet ledger for endpoints at @p node: the registry itself in
     *  serial runs, the node's shard ledger in parallel ones. */
    PacketLedger*
    ledgerFor(NodeId node)
    {
        if (parallel_ == nullptr)
            return &registry_;
        return shard_ledgers_[static_cast<std::size_t>(shardOf(node))]
            .get();
    }

    /** Ejection-sink slice covering @p node. */
    EjectionSink&
    sinkFor(NodeId node)
    {
        return *sinks_[static_cast<std::size_t>(shardOf(node))];
    }

    /**
     * Receiver-side half of the link sender -> receiver carried by
     * @p ch. Same shard (or serial): @p ch itself. Cross-shard: @p ch
     * becomes the unbound sender-side mailbox stub and @p make_twin
     * must construct its receiver-side twin (same latency and width,
     * owned by the subclass's channel list like any other channel);
     * the pair is registered with the parallel kernel, which drains
     * the stub into the twin at every window boundary. The receiver
     * binds to and drains the returned channel.
     */
    template <typename T, typename MakeTwin>
    Channel<T>*
    rxSide(Channel<T>* ch, NodeId sender, NodeId receiver,
           MakeTwin&& make_twin)
    {
        if (parallel_ == nullptr || shardOf(sender) == shardOf(receiver))
            return ch;
        Channel<T>* twin = make_twin();
        parallel_->addCrossChannel(shardOf(receiver), ch, twin);
        return twin;
    }

    /** Register the sink slices with their kernels. Call after sources
     *  and routers so every shard keeps the serial registration order
     *  (sources, routers, sink, probe). */
    void registerSinks();

    /** Flits delivered to destinations, summed over sink slices. */
    std::int64_t flitsEjectedTotal() const;

    /**
     * Parallel window-boundary bookkeeping, run single-threaded by the
     * kernel while every shard worker is parked: replay the shard
     * ledgers into the registry in serial order, refresh aggregate
     * metrics, and — in paranoid mode — sweep the whole-network
     * invariants at the last executed cycle.
     */
    void onWindowBoundary(Cycle now);

    /** Refresh metrics aggregated across shards (parallel only). */
    void syncAggregates();

    Kernel kernel_;
    PacketRegistry registry_;
    MetricRegistry metrics_;
    Validator validator_;

    // sim.kernel=parallel state; empty/null for serial runs.
    ShardPlan plan_;
    std::unique_ptr<ParallelKernel> parallel_;
    std::vector<std::unique_ptr<DeferredPacketLedger>> shard_ledgers_;
    std::vector<DeferredPacketLedger*> ledger_ptrs_;
    LedgerReplayScratch replay_scratch_;

    /** Sink slices: exactly one in serial runs, one per shard in
     *  parallel ones. */
    std::vector<std::unique_ptr<EjectionSink>> sinks_;
    /** Per-node completion-feedback channels (closed-loop workloads
     *  only; sink slice -> the node's source, latency 1). Node-local,
     *  so they never cross a shard cut. */
    std::vector<std::unique_ptr<Channel<PacketCompletion>>>
        completion_channels_;
    /** Parallel runs: aggregates of the slices' private counters,
     *  published under the serial runs' metric paths so snapshots
     *  match path-for-path and value-for-value. */
    Counter sink_flits_total_;
    Counter sink_poisoned_total_;
    Counter sink_dup_total_;
};

/**
 * Build a network from a Config. Key "scheme" selects:
 *   vc        virtual-channel flow control (default); num_vcs = 1
 *             models wormhole flow control
 *   fr        flit-reservation flow control
 * See VcNetwork / FrNetwork for the full key set.
 */
std::unique_ptr<NetworkModel> makeNetwork(const Config& cfg);

}  // namespace frfc

#endif  // FRFC_NETWORK_NETWORK_HPP
