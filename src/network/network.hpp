/**
 * @file
 * Network model base: a fully-assembled simulated network (topology,
 * routers, sources, sink, channels) behind one interface the
 * measurement harness can drive.
 */

#ifndef FRFC_NETWORK_NETWORK_HPP
#define FRFC_NETWORK_NETWORK_HPP

#include <cstdint>
#include <memory>
#include <string>

#include "check/validator.hpp"
#include "common/config.hpp"
#include "common/types.hpp"
#include "proto/packet_registry.hpp"
#include "sim/kernel.hpp"
#include "stats/metrics.hpp"

namespace frfc {

class Topology;

/** A runnable network: kernel + endpoints + registry. */
class NetworkModel
{
  public:
    virtual ~NetworkModel() = default;

    Kernel& kernel() { return kernel_; }
    PacketRegistry& registry() { return registry_; }
    const PacketRegistry& registry() const { return registry_; }

    /** Metric registry every component publishes into (see
     *  stats/metrics.hpp for the path scheme). */
    MetricRegistry& metrics() { return metrics_; }
    const MetricRegistry& metrics() const { return metrics_; }

    /** Close out time-weighted instruments at the current cycle; call
     *  once when measurement ends, before snapshotting. Overrides flush
     *  component-held event-driven instruments first (see FrNetwork). */
    virtual void
    finalizeMetrics()
    {
        metrics_.finishTimeAverages(kernel_.now());
    }

    /** Topology of this network. */
    virtual const Topology& topology() const = 0;

    /** 100%-capacity injection bandwidth, flits/node/cycle. */
    virtual double capacity() const = 0;

    /** Offered load in flits/node/cycle. */
    virtual double offeredLoad() const = 0;

    /** Mean source queue length across nodes (warm-up signal). */
    virtual double avgSourceQueue() const = 0;

    /** Enable/disable packet generation at every source. */
    virtual void setGenerating(bool on) = 0;

    /**
     * Fraction of observed cycles during which a middle router's input
     * buffer pools were completely full (Section 4.2 statistic).
     * Sampling starts after startOccupancySampling().
     */
    virtual double middlePoolFullFraction() const = 0;
    virtual double middlePoolAvgOccupancy() const = 0;
    virtual void startOccupancySampling() = 0;

    /** Scheme name for reports ("vc", "fr", ...). */
    virtual std::string scheme() const = 0;

    /** Data flits forwarded through output @p port of @p node. */
    virtual std::int64_t flitsForwarded(NodeId node,
                                        PortId port) const = 0;

    /** Reservation-protocol sanitizer (sim.validate); see
     *  src/check/validator.hpp and DESIGN.md section 9. */
    Validator& validator() { return validator_; }
    const Validator& validator() const { return validator_; }

    /**
     * Whole-network invariant sweep at cycle @p now: flit conservation,
     * per-link credit ledgers, per-table conservation audits, orphan
     * scans. No-op unless the subclass wires its components up (and
     * sim.validate enables the sanitizer). Must not perturb simulation
     * state: a validated run stays bit-identical to an unvalidated one.
     */
    virtual void validateState(Cycle /* now */) {}

  protected:
    Kernel kernel_;
    PacketRegistry registry_;
    MetricRegistry metrics_;
    Validator validator_;
};

/**
 * Build a network from a Config. Key "scheme" selects:
 *   vc        virtual-channel flow control (default); num_vcs = 1
 *             models wormhole flow control
 *   fr        flit-reservation flow control
 * See VcNetwork / FrNetwork for the full key set.
 */
std::unique_ptr<NetworkModel> makeNetwork(const Config& cfg);

}  // namespace frfc

#endif  // FRFC_NETWORK_NETWORK_HPP
