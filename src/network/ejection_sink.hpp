/**
 * @file
 * Destination endpoint: drains per-node ejection channels into the
 * packet registry (which verifies reassembly and records latency).
 */

#ifndef FRFC_NETWORK_EJECTION_SINK_HPP
#define FRFC_NETWORK_EJECTION_SINK_HPP

#include <cstdint>
#include <vector>

#include "check/validator.hpp"
#include "proto/flit.hpp"
#include "sim/channel.hpp"
#include "sim/clocked.hpp"
#include "stats/metrics.hpp"

namespace frfc {

class PacketRegistry;

/** Drains ejected flits and reports them to the registry. */
class EjectionSink : public Clocked
{
  public:
    /**
     * @param metrics registry to publish the `sink.flits_ejected`
     *        counter into; null = keep a private counter only
     */
    EjectionSink(std::string name, PacketRegistry* registry,
                 MetricRegistry* metrics = nullptr);

    /** Register one node's ejection channel. */
    void addChannel(Channel<Flit>* ch) { channels_.push_back(ch); }

    void tick(Cycle now) override;

    /**
     * Quiescence: purely arrival-driven — ejection channel pushes wake
     * it, and a tick with no arrivals is a no-op.
     */
    Cycle nextWake(Cycle /* now */) const override
    {
        return kInvalidCycle;
    }

    /** Flits delivered to destinations since construction. */
    std::int64_t flitsEjected() const { return flits_ejected_.value(); }

    /**
     * Attach the run's validator. Channels must then be added in node
     * order (channel index == destination node) so every ejected flit
     * can be checked against its header's destination (sink.misroute —
     * the end-to-end symptom of corrupted data-flit steering).
     */
    void setValidator(Validator* validator) { validator_ = validator; }

    /** Delivered-flit count is the sink's only external effect. */
    std::uint64_t
    activityFingerprint() const override
    {
        return fingerprintMix(
            0, static_cast<std::uint64_t>(flits_ejected_.value()));
    }

  private:
    PacketRegistry* registry_;
    Validator* validator_ = nullptr;
    std::vector<Channel<Flit>*> channels_;
    std::vector<Flit> drain_scratch_;

    Counter flits_ejected_;
};

}  // namespace frfc

#endif  // FRFC_NETWORK_EJECTION_SINK_HPP
