/**
 * @file
 * Destination endpoint: drains per-node ejection channels into the
 * packet registry (which verifies reassembly and records latency).
 */

#ifndef FRFC_NETWORK_EJECTION_SINK_HPP
#define FRFC_NETWORK_EJECTION_SINK_HPP

#include <vector>

#include "proto/flit.hpp"
#include "sim/channel.hpp"
#include "sim/clocked.hpp"

namespace frfc {

class PacketRegistry;

/** Drains ejected flits and reports them to the registry. */
class EjectionSink : public Clocked
{
  public:
    EjectionSink(std::string name, PacketRegistry* registry);

    /** Register one node's ejection channel. */
    void addChannel(Channel<Flit>* ch) { channels_.push_back(ch); }

    void tick(Cycle now) override;

  private:
    PacketRegistry* registry_;
    std::vector<Channel<Flit>*> channels_;
};

}  // namespace frfc

#endif  // FRFC_NETWORK_EJECTION_SINK_HPP
