/**
 * @file
 * Destination endpoint: drains per-node ejection channels into the
 * packet registry (which verifies reassembly and records latency).
 */

#ifndef FRFC_NETWORK_EJECTION_SINK_HPP
#define FRFC_NETWORK_EJECTION_SINK_HPP

#include <cstdint>
#include <vector>

#include "check/validator.hpp"
#include "common/flat_map.hpp"
#include "proto/flit.hpp"
#include "sim/channel.hpp"
#include "sim/clocked.hpp"
#include "stats/metrics.hpp"

namespace frfc {

class PacketLedger;

/**
 * Drains ejected flits and reports them to the packet ledger. Serial
 * networks run one sink covering every node; the parallel kernel runs
 * one per shard (over that shard's nodes only), each reporting into
 * its shard's deferred ledger, with the network aggregating the
 * `sink.flits_ejected` metric across slices.
 */
class EjectionSink : public Clocked
{
  public:
    /**
     * @param metrics registry to publish the `sink.flits_ejected`
     *        counter into; null = keep a private counter only
     */
    EjectionSink(std::string name, PacketLedger* ledger,
                 MetricRegistry* metrics = nullptr);

    /** Register @p node's ejection channel. Channels are drained in
     *  registration order, which networks keep at node-ascending. */
    void
    addChannel(Channel<Flit>* ch, NodeId node)
    {
        channels_.push_back(ch);
        nodes_.push_back(node);
        feedback_.push_back(nullptr);
    }

    /**
     * Wire @p node's completion-feedback channel (closed-loop
     * workloads): when the last flit of a packet ejects at the node,
     * the sink pushes a PacketCompletion for the node's source to hand
     * to its generator. Register the node's ejection channel first.
     */
    void bindFeedback(NodeId node, Channel<PacketCompletion>* ch);

    void tick(Cycle now) override;

    /**
     * Quiescence: purely arrival-driven — ejection channel pushes wake
     * it, and a tick with no arrivals is a no-op.
     */
    Cycle nextWake(Cycle /* now */) const override
    {
        return kInvalidCycle;
    }

    /** Flits delivered to destinations since construction. */
    std::int64_t flitsEjected() const { return flits_ejected_.value(); }

    /**
     * Attach the run's validator: every ejected flit is then checked
     * against its header's destination (sink.misroute — the end-to-end
     * symptom of corrupted data-flit steering).
     */
    void setValidator(Validator* validator) { validator_ = validator; }

    /** Delivered-flit count is the sink's only external effect. */
    std::uint64_t
    activityFingerprint() const override
    {
        return fingerprintMix(
            0, static_cast<std::uint64_t>(flits_ejected_.value()));
    }

  private:
    PacketLedger* ledger_;
    Validator* validator_ = nullptr;
    std::vector<Channel<Flit>*> channels_;
    std::vector<NodeId> nodes_;
    /** Per registered channel; null = node has no closed-loop source. */
    std::vector<Channel<PacketCompletion>*> feedback_;
    std::vector<Flit> drain_scratch_;
    /** Flits still missing per partially ejected packet (completion
     *  detection; only populated for nodes with feedback wired). */
    FlatMap<int> remaining_;

    Counter flits_ejected_;
};

}  // namespace frfc

#endif  // FRFC_NETWORK_EJECTION_SINK_HPP
