/**
 * @file
 * Destination endpoint: drains per-node ejection channels into the
 * packet registry (which verifies reassembly and records latency).
 */

#ifndef FRFC_NETWORK_EJECTION_SINK_HPP
#define FRFC_NETWORK_EJECTION_SINK_HPP

#include <cstdint>
#include <vector>

#include "check/validator.hpp"
#include "common/flat_map.hpp"
#include "proto/flit.hpp"
#include "sim/channel.hpp"
#include "sim/clocked.hpp"
#include "stats/metrics.hpp"

namespace frfc {

class PacketLedger;

/**
 * Drains ejected flits and reports them to the packet ledger. Serial
 * networks run one sink covering every node; the parallel kernel runs
 * one per shard (over that shard's nodes only), each reporting into
 * its shard's deferred ledger, with the network aggregating the
 * `sink.flits_ejected` metric across slices.
 */
class EjectionSink : public Clocked
{
  public:
    /**
     * @param metrics registry to publish the `sink.flits_ejected`
     *        counter into; null = keep a private counter only
     */
    EjectionSink(std::string name, PacketLedger* ledger,
                 MetricRegistry* metrics = nullptr);

    /** Register @p node's ejection channel. Channels are drained in
     *  registration order, which networks keep at node-ascending. */
    void
    addChannel(Channel<Flit>* ch, NodeId node)
    {
        channels_.push_back(ch);
        nodes_.push_back(node);
        feedback_.push_back(nullptr);
        ack_.emplace_back();
    }

    /**
     * Wire @p node's completion-feedback channel (closed-loop
     * workloads): when the last flit of a packet ejects at the node,
     * the sink pushes a PacketCompletion for the node's source to hand
     * to its generator. Register the node's ejection channel first.
     */
    void bindFeedback(NodeId node, Channel<PacketCompletion>* ch);

    /**
     * End-to-end recovery (fault.recovery=1): the sink tracks a
     * delivered-flit bitmask per packet, discards duplicates from
     * retransmitted attempts before they reach the ledger, and pushes
     * an ack toward the source when the mask completes. Masks are
     * never erased — a late duplicate of a completed packet must still
     * be recognized — so recovery runs pay O(packets) sink memory.
     */
    void enableRecovery() { recovery_ = true; }

    /**
     * Wire the ack channel carrying @p node's completion acks back to
     * @p src's source. Required for every (registered node, source)
     * pair once recovery is enabled.
     */
    void bindAck(NodeId node, NodeId src, Channel<PacketCompletion>* ch);

    void tick(Cycle now) override;

    /**
     * Quiescence: purely arrival-driven — ejection channel pushes wake
     * it, and a tick with no arrivals is a no-op.
     */
    Cycle nextWake(Cycle /* now */) const override
    {
        return kInvalidCycle;
    }

    /** Flits delivered to destinations since construction. */
    std::int64_t flitsEjected() const { return flits_ejected_.value(); }

    /** Fault-poisoned flits discarded on arrival (never delivered). */
    std::int64_t
    poisonedDiscarded() const
    {
        return poisoned_discarded_.value();
    }

    /** Retransmission duplicates suppressed before the ledger. */
    std::int64_t dupDiscarded() const { return dup_discarded_.value(); }

    /**
     * Attach the run's validator: every ejected flit is then checked
     * against its header's destination (sink.misroute — the end-to-end
     * symptom of corrupted data-flit steering).
     */
    void setValidator(Validator* validator) { validator_ = validator; }

    /** Delivered and discarded flit counts are the sink's external
     *  effects (delivery masks are a pure function of deliveries). */
    std::uint64_t
    activityFingerprint() const override
    {
        std::uint64_t h = fingerprintMix(
            0, static_cast<std::uint64_t>(flits_ejected_.value()));
        h = fingerprintMix(
            h, static_cast<std::uint64_t>(poisoned_discarded_.value()));
        h = fingerprintMix(
            h, static_cast<std::uint64_t>(dup_discarded_.value()));
        return h;
    }

  private:
    PacketLedger* ledger_;
    Validator* validator_ = nullptr;
    std::vector<Channel<Flit>*> channels_;
    std::vector<NodeId> nodes_;
    /** Per registered channel; null = node has no closed-loop source. */
    std::vector<Channel<PacketCompletion>*> feedback_;
    std::vector<Flit> drain_scratch_;
    /** Flits still missing per partially ejected packet (completion
     *  detection; only populated for nodes with feedback wired). */
    FlatMap<int> remaining_;

    /** @{ End-to-end recovery (enableRecovery). `ack_[i][src]` carries
     *  node `nodes_[i]`'s acks back to `src`'s retransmit buffer. */
    bool recovery_ = false;
    std::vector<std::vector<Channel<PacketCompletion>*>> ack_;
    /** Delivered-flit bitmask per packet; entries are never erased
     *  (late duplicates of completed packets must stay recognizable),
     *  so packet lengths are capped at 64 flits under recovery. */
    FlatMap<std::uint64_t> delivered_;
    /** @} */

    Counter flits_ejected_;
    Counter poisoned_discarded_;
    Counter dup_discarded_;
};

}  // namespace frfc

#endif  // FRFC_NETWORK_EJECTION_SINK_HPP
