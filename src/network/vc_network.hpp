/**
 * @file
 * Fully-assembled virtual-channel network (the paper's baseline).
 *
 * Config keys (defaults in parentheses):
 *   topology (mesh), size_x (8), size_y (8), routing (xy)
 *   traffic (uniform), injection (bernoulli), seed (1)
 *   packet_length (5)
 *   offered (0.5)            offered load as a fraction of capacity
 *   num_vcs (2), vc_depth (4), shared_pool (false)
 *   data_link_latency (4), credit_link_latency (1)
 */

#ifndef FRFC_NETWORK_VC_NETWORK_HPP
#define FRFC_NETWORK_VC_NETWORK_HPP

#include <memory>
#include <vector>

#include "network/ejection_sink.hpp"
#include "network/network.hpp"
#include "routing/routing.hpp"
#include "stats/time_average.hpp"
#include "topology/topology.hpp"
#include "traffic/generator.hpp"
#include "traffic/pattern.hpp"
#include "vc/vc_router.hpp"
#include "vc/vc_source.hpp"

namespace frfc {

/** Builds and owns every component of a VC-flow-control network. */
class VcNetwork : public NetworkModel
{
  public:
    explicit VcNetwork(const Config& cfg);

    const Topology& topology() const override { return *topo_; }
    double capacity() const override { return topo_->uniformCapacity(); }
    double offeredLoad() const override { return offered_; }
    double avgSourceQueue() const override;
    void setGenerating(bool on) override;
    double middlePoolFullFraction() const override;
    double middlePoolAvgOccupancy() const override;
    void startOccupancySampling() override;
    std::int64_t flitsForwarded(NodeId node, PortId port) const override
    {
        return routers_[static_cast<std::size_t>(node)]->flitsForwarded(
            port);
    }
    std::string scheme() const override { return "vc"; }

    /** Direct access for tests. */
    VcRouter& router(NodeId node) { return *routers_[node]; }
    VcSource& source(NodeId node) { return *sources_[node]; }

  private:
    /** Samples middle-router occupancy each cycle. */
    class Probe : public Clocked
    {
      public:
        Probe(VcNetwork& net) : Clocked("probe"), net_(net) {}
        void tick(Cycle now) override;

        /** Samples every cycle while enabled; otherwise inert.
         *  startOccupancySampling() wakes it explicitly. */
        Cycle nextWake(Cycle now) const override
        {
            return net_.sampling_ ? now + 1 : kInvalidCycle;
        }

      private:
        VcNetwork& net_;
    };

    std::unique_ptr<Topology> topo_;
    std::unique_ptr<RoutingFunction> routing_;
    std::unique_ptr<TrafficPattern> pattern_;
    double offered_ = 0.0;

    std::vector<std::unique_ptr<PacketGenerator>> generators_;
    std::vector<std::unique_ptr<VcSource>> sources_;
    std::vector<std::unique_ptr<VcRouter>> routers_;
    std::unique_ptr<EjectionSink> sink_;
    std::unique_ptr<Probe> probe_;

    std::vector<std::unique_ptr<Channel<Flit>>> flit_channels_;
    std::vector<std::unique_ptr<Channel<Credit>>> credit_channels_;

    NodeId middle_node_ = 0;
    bool sampling_ = false;
    TimeAverage occupancy_;   ///< middle router total buffered flits
    TimeAverage fullness_;    ///< 1.0 when a directional pool is full
};

}  // namespace frfc

#endif  // FRFC_NETWORK_VC_NETWORK_HPP
