/**
 * @file
 * Fully-assembled virtual-channel network (the paper's baseline).
 *
 * Config keys (defaults in parentheses):
 *   topology (mesh), size_x (8), size_y (8), routing (xy)
 *   traffic (uniform), injection (bernoulli), seed (1)
 *   packet_length (5)
 *   offered (0.5)            offered load as a fraction of capacity
 *   num_vcs (2), vc_depth (4), shared_pool (false)
 *   data_link_latency (4), credit_link_latency (1)
 */

#ifndef FRFC_NETWORK_VC_NETWORK_HPP
#define FRFC_NETWORK_VC_NETWORK_HPP

#include <memory>
#include <vector>

#include "network/ejection_sink.hpp"
#include "network/network.hpp"
#include "routing/routing.hpp"
#include "sim/fault.hpp"
#include "stats/time_average.hpp"
#include "topology/topology.hpp"
#include "traffic/generator.hpp"
#include "traffic/pattern.hpp"
#include "vc/vc_router.hpp"
#include "vc/vc_source.hpp"

namespace frfc {

/** Builds and owns every component of a VC-flow-control network. */
class VcNetwork : public NetworkModel
{
  public:
    explicit VcNetwork(const Config& cfg);

    const Topology& topology() const override { return *topo_; }
    double capacity() const override { return topo_->uniformCapacity(); }
    double offeredLoad() const override { return offered_; }
    double avgSourceQueue() const override;
    void setGenerating(bool on) override;
    double middlePoolFullFraction() const override;
    double middlePoolAvgOccupancy() const override;
    void startOccupancySampling() override;
    std::int64_t flitsForwarded(NodeId node, PortId port) const override
    {
        return routers_[static_cast<std::size_t>(node)]->flitsForwarded(
            port);
    }
    std::string scheme() const override { return "vc"; }

    /** Direct access for tests. */
    VcRouter& router(NodeId node) { return *routers_[node]; }
    VcSource& source(NodeId node) { return *sources_[node]; }

    /** @{ Fault and recovery statistics (summed across components).
     *  VC link faults poison flits rather than deleting them (see
     *  VcRouter::setFaultInjector), so "dropped" here means poisoned
     *  at a router and discarded undelivered at the ejection sink. */
    std::int64_t totalPoisoned() const;
    std::int64_t totalPoisonedDiscarded() const;
    std::int64_t totalDupDiscarded() const;
    std::int64_t totalRetransmits() const;
    /** @} */

    /** Resolved fault.* configuration for this run. */
    const FaultPlan& faultPlan() const { return fault_plan_; }

    /**
     * Whole-network invariant sweep (see NetworkModel::validateState):
     * flit conservation (injected == delivered + buffered + in flight)
     * and, per link and per VC, credit conservation — upstream credits
     * plus downstream queue plus flits and credits on the wires must
     * equal the VC depth (the pool capacity in shared_pool mode).
     * Pure observation; never perturbs simulation state.
     */
    void validateState(Cycle now) override;

  private:
    /** Samples middle-router occupancy each cycle. */
    class Probe : public Clocked
    {
      public:
        Probe(VcNetwork& net) : Clocked("probe"), net_(net) {}
        void tick(Cycle now) override;

        /** Samples every cycle while enabled; otherwise inert. A
         *  paranoid validator also keeps it hot so the per-cycle
         *  sweep (and the kernel's shadow audit) covers every cycle.
         *  startOccupancySampling() wakes it explicitly. */
        Cycle nextWake(Cycle now) const override
        {
            return net_.sampling_ || net_.validator_.paranoid()
                ? now + 1
                : kInvalidCycle;
        }

      private:
        VcNetwork& net_;
    };

    std::unique_ptr<Topology> topo_;
    std::unique_ptr<RoutingFunction> routing_;
    std::unique_ptr<TrafficPattern> pattern_;
    double offered_ = 0.0;
    VcRouterParams params_;

    std::vector<std::unique_ptr<PacketGenerator>> generators_;
    std::vector<std::unique_ptr<VcSource>> sources_;
    std::vector<std::unique_ptr<VcRouter>> routers_;
    std::unique_ptr<Probe> probe_;

    /** Resolved fault.* config plus one injector per router when any
     *  link fault is enabled (private RNG streams; see sim/fault.hpp). */
    FaultPlan fault_plan_;
    std::vector<std::unique_ptr<FaultInjector>> injectors_;

    std::vector<std::unique_ptr<Channel<Flit>>> flit_channels_;
    std::vector<std::unique_ptr<Channel<Credit>>> credit_channels_;
    /** Recovery fabric: ack wires, one per (destination, source) pair;
     *  receiver-side halves listed in ack_rx_ for the sweeps. */
    std::vector<std::unique_ptr<Channel<PacketCompletion>>> ack_channels_;
    std::vector<Channel<PacketCompletion>*> ack_rx_;

    /** One record per credited link, for the per-VC conservation
     *  sweep. Injection links have src set and up null; router-router
     *  links the reverse. Ejection links carry no credits. */
    struct VcLinkRec
    {
        VcRouter* up = nullptr;      ///< sending router (or null)
        PortId upPort = kInvalidPort;
        VcSource* src = nullptr;     ///< sending source (or null)
        VcRouter* down = nullptr;    ///< receiving router
        PortId downPort = kInvalidPort;
        Channel<Flit>* data = nullptr;
        Channel<Credit>* credit = nullptr;
    };
    std::vector<VcLinkRec> vc_links_;

    NodeId middle_node_ = 0;
    bool sampling_ = false;
    TimeAverage occupancy_;   ///< middle router total buffered flits
    TimeAverage fullness_;    ///< 1.0 when a directional pool is full
};

}  // namespace frfc

#endif  // FRFC_NETWORK_VC_NETWORK_HPP
