#include "network/ejection_sink.hpp"

#include "proto/packet_registry.hpp"

namespace frfc {

EjectionSink::EjectionSink(std::string name, PacketRegistry* registry,
                           MetricRegistry* metrics)
    : Clocked(std::move(name)), registry_(registry)
{
    if (metrics != nullptr)
        metrics->attachCounter("sink.flits_ejected", flits_ejected_);
}

void
EjectionSink::tick(Cycle now)
{
    for (Channel<Flit>* ch : channels_) {
        ch->drainInto(now, drain_scratch_);
        for (const Flit& flit : drain_scratch_) {
            registry_->deliverFlit(now, flit);
            flits_ejected_.inc();
        }
    }
}

}  // namespace frfc
