#include "network/ejection_sink.hpp"

#include "proto/packet_registry.hpp"

namespace frfc {

EjectionSink::EjectionSink(std::string name, PacketRegistry* registry)
    : Clocked(std::move(name)), registry_(registry)
{
}

void
EjectionSink::tick(Cycle now)
{
    for (Channel<Flit>* ch : channels_) {
        for (const Flit& flit : ch->drain(now))
            registry_->deliverFlit(now, flit);
    }
}

}  // namespace frfc
