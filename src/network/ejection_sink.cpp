#include "network/ejection_sink.hpp"

#include "common/log.hpp"
#include "proto/packet_registry.hpp"

namespace frfc {

EjectionSink::EjectionSink(std::string name, PacketLedger* ledger,
                           MetricRegistry* metrics)
    : Clocked(std::move(name)), ledger_(ledger)
{
    if (metrics != nullptr) {
        metrics->attachCounter("sink.flits_ejected", flits_ejected_);
        metrics->attachCounter("sink.poisoned_discarded",
                               poisoned_discarded_);
        metrics->attachCounter("sink.dup_discarded", dup_discarded_);
    }
}

void
EjectionSink::bindAck(NodeId node, NodeId src,
                      Channel<PacketCompletion>* ch)
{
    FRFC_ASSERT(ch != nullptr, "null ack channel");
    for (std::size_t i = 0; i < nodes_.size(); ++i) {
        if (nodes_[i] != node)
            continue;
        auto& row = ack_[i];
        if (row.size() <= static_cast<std::size_t>(src))
            row.resize(static_cast<std::size_t>(src) + 1, nullptr);
        FRFC_ASSERT(row[static_cast<std::size_t>(src)] == nullptr,
                    "ack already bound for node ", node, " source ",
                    src);
        row[static_cast<std::size_t>(src)] = ch;
        return;
    }
    FRFC_ASSERT(false, "no ejection channel registered for node ", node);
}

void
EjectionSink::bindFeedback(NodeId node, Channel<PacketCompletion>* ch)
{
    FRFC_ASSERT(ch != nullptr, "null feedback channel");
    for (std::size_t i = 0; i < nodes_.size(); ++i) {
        if (nodes_[i] == node) {
            FRFC_ASSERT(feedback_[i] == nullptr,
                        "feedback already bound for node ", node);
            feedback_[i] = ch;
            return;
        }
    }
    FRFC_ASSERT(false, "no ejection channel registered for node ", node);
}

void
EjectionSink::tick(Cycle now)
{
    for (std::size_t i = 0; i < channels_.size(); ++i) {
        const NodeId node = nodes_[i];
        channels_[i]->drainInto(now, drain_scratch_);
        for (const Flit& flit : drain_scratch_) {
            // Fault-poisoned flits model a link drop: they were
            // carried to the ejection point only so buffer and credit
            // accounting stays exact, and vanish here uncounted.
            if (flit.poisoned) {
                poisoned_discarded_.inc();
                continue;
            }
            if (validator_ != nullptr && flit.dest != node) {
                validator_->fail(
                    "sink.misroute", now, name(),
                    static_cast<PortId>(node),
                    flit.toString() + " ejected at node "
                        + std::to_string(node));
            }
            if (recovery_) {
                // Retransmitted attempts may re-deliver flits an
                // earlier attempt already landed: the per-packet mask
                // suppresses them before the ledger (which treats a
                // duplicate as a simulator bug).
                FRFC_ASSERT(flit.packetLength <= 64,
                            "recovery caps packets at 64 flits, got ",
                            flit.packetLength);
                std::uint64_t& mask =
                    delivered_.findOrInsert(flit.packet, 0);
                const std::uint64_t bit = std::uint64_t{1}
                                          << flit.seq;
                if ((mask & bit) != 0) {
                    dup_discarded_.inc();
                    continue;
                }
                mask |= bit;
                ledger_->deliverFlit(now, flit);
                flits_ejected_.inc();
                const std::uint64_t full =
                    flit.packetLength == 64
                        ? ~std::uint64_t{0}
                        : (std::uint64_t{1} << flit.packetLength) - 1;
                if (mask != full)
                    continue;
                PacketCompletion done;
                done.packet = flit.packet;
                done.src = flit.src;
                done.dest = node;
                done.length = flit.packetLength;
                done.cls = flit.cls;
                done.completed = now;
                FRFC_ASSERT(
                    ack_[i].size() > static_cast<std::size_t>(flit.src)
                        && ack_[i][static_cast<std::size_t>(flit.src)]
                               != nullptr,
                    "no ack channel from node ", node, " to source ",
                    flit.src);
                ack_[i][static_cast<std::size_t>(flit.src)]->push(now,
                                                                  done);
                if (feedback_[i] != nullptr)
                    feedback_[i]->push(now, done);
                if (validator_ != nullptr)
                    validator_->onPacketCompleted(node);
                continue;
            }
            ledger_->deliverFlit(now, flit);
            flits_ejected_.inc();
            if (feedback_[i] == nullptr)
                continue;
            // Count the packet down; its last flit emits a completion
            // (arriving at the source next cycle, channel latency 1).
            int& left =
                remaining_.findOrInsert(flit.packet, flit.packetLength);
            if (--left > 0)
                continue;
            remaining_.erase(flit.packet);
            PacketCompletion done;
            done.packet = flit.packet;
            done.src = flit.src;
            done.dest = node;
            done.length = flit.packetLength;
            done.cls = flit.cls;
            done.completed = now;
            feedback_[i]->push(now, done);
            if (validator_ != nullptr)
                validator_->onPacketCompleted(node);
        }
    }
}

}  // namespace frfc
