#include "network/ejection_sink.hpp"

#include "proto/packet_registry.hpp"

namespace frfc {

EjectionSink::EjectionSink(std::string name, PacketLedger* ledger,
                           MetricRegistry* metrics)
    : Clocked(std::move(name)), ledger_(ledger)
{
    if (metrics != nullptr)
        metrics->attachCounter("sink.flits_ejected", flits_ejected_);
}

void
EjectionSink::tick(Cycle now)
{
    for (std::size_t i = 0; i < channels_.size(); ++i) {
        const NodeId node = nodes_[i];
        channels_[i]->drainInto(now, drain_scratch_);
        for (const Flit& flit : drain_scratch_) {
            if (validator_ != nullptr && flit.dest != node) {
                validator_->fail(
                    "sink.misroute", now, name(),
                    static_cast<PortId>(node),
                    flit.toString() + " ejected at node "
                        + std::to_string(node));
            }
            ledger_->deliverFlit(now, flit);
            flits_ejected_.inc();
        }
    }
}

}  // namespace frfc
