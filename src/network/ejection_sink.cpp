#include "network/ejection_sink.hpp"

#include "common/log.hpp"
#include "proto/packet_registry.hpp"

namespace frfc {

EjectionSink::EjectionSink(std::string name, PacketLedger* ledger,
                           MetricRegistry* metrics)
    : Clocked(std::move(name)), ledger_(ledger)
{
    if (metrics != nullptr)
        metrics->attachCounter("sink.flits_ejected", flits_ejected_);
}

void
EjectionSink::bindFeedback(NodeId node, Channel<PacketCompletion>* ch)
{
    FRFC_ASSERT(ch != nullptr, "null feedback channel");
    for (std::size_t i = 0; i < nodes_.size(); ++i) {
        if (nodes_[i] == node) {
            FRFC_ASSERT(feedback_[i] == nullptr,
                        "feedback already bound for node ", node);
            feedback_[i] = ch;
            return;
        }
    }
    FRFC_ASSERT(false, "no ejection channel registered for node ", node);
}

void
EjectionSink::tick(Cycle now)
{
    for (std::size_t i = 0; i < channels_.size(); ++i) {
        const NodeId node = nodes_[i];
        channels_[i]->drainInto(now, drain_scratch_);
        for (const Flit& flit : drain_scratch_) {
            if (validator_ != nullptr && flit.dest != node) {
                validator_->fail(
                    "sink.misroute", now, name(),
                    static_cast<PortId>(node),
                    flit.toString() + " ejected at node "
                        + std::to_string(node));
            }
            ledger_->deliverFlit(now, flit);
            flits_ejected_.inc();
            if (feedback_[i] == nullptr)
                continue;
            // Count the packet down; its last flit emits a completion
            // (arriving at the source next cycle, channel latency 1).
            int& left =
                remaining_.findOrInsert(flit.packet, flit.packetLength);
            if (--left > 0)
                continue;
            remaining_.erase(flit.packet);
            PacketCompletion done;
            done.packet = flit.packet;
            done.src = flit.src;
            done.dest = node;
            done.length = flit.packetLength;
            done.cls = flit.cls;
            done.completed = now;
            feedback_[i]->push(now, done);
            if (validator_ != nullptr)
                validator_->onPacketCompleted(node);
        }
    }
}

}  // namespace frfc
