#include "network/ejection_sink.hpp"

#include "proto/packet_registry.hpp"

namespace frfc {

EjectionSink::EjectionSink(std::string name, PacketRegistry* registry,
                           MetricRegistry* metrics)
    : Clocked(std::move(name)), registry_(registry)
{
    if (metrics != nullptr)
        metrics->attachCounter("sink.flits_ejected", flits_ejected_);
}

void
EjectionSink::tick(Cycle now)
{
    for (std::size_t node = 0; node < channels_.size(); ++node) {
        channels_[node]->drainInto(now, drain_scratch_);
        for (const Flit& flit : drain_scratch_) {
            if (validator_ != nullptr
                && flit.dest != static_cast<NodeId>(node)) {
                validator_->fail(
                    "sink.misroute", now, name(),
                    static_cast<PortId>(node),
                    flit.toString() + " ejected at node "
                        + std::to_string(node));
            }
            registry_->deliverFlit(now, flit);
            flits_ejected_.inc();
        }
    }
}

}  // namespace frfc
