/**
 * @file
 * Synthetic traffic patterns.
 *
 * The paper evaluates uniformly distributed traffic to random
 * destinations; the standard permutation patterns (transpose,
 * bit-complement, bit-reverse, shuffle, tornado, neighbor) and a hotspot
 * pattern are provided for the examples and for stress-testing.
 */

#ifndef FRFC_TRAFFIC_PATTERN_HPP
#define FRFC_TRAFFIC_PATTERN_HPP

#include <memory>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "common/types.hpp"

namespace frfc {

class Config;
class Topology;

/** Chooses a destination for each generated packet. */
class TrafficPattern
{
  public:
    virtual ~TrafficPattern() = default;

    /** Destination for a packet injected at @p src (never src itself). */
    virtual NodeId dest(NodeId src, Rng& rng) const = 0;

    virtual std::string describe() const = 0;
};

/** Uniform random destinations, excluding the source. */
class UniformPattern : public TrafficPattern
{
  public:
    explicit UniformPattern(const Topology& topo);
    NodeId dest(NodeId src, Rng& rng) const override;
    std::string describe() const override { return "uniform"; }

  private:
    int num_nodes_;
};

/** Matrix transpose: (x, y) -> (y, x); diagonal nodes fall back to uniform. */
class TransposePattern : public TrafficPattern
{
  public:
    explicit TransposePattern(const Topology& topo);
    NodeId dest(NodeId src, Rng& rng) const override;
    std::string describe() const override { return "transpose"; }

  private:
    const Topology& topo_;
    UniformPattern fallback_;
};

/** Bit complement on the flat node id. */
class BitComplementPattern : public TrafficPattern
{
  public:
    explicit BitComplementPattern(const Topology& topo);
    NodeId dest(NodeId src, Rng& rng) const override;
    std::string describe() const override { return "bitcomp"; }

  private:
    int num_nodes_;
    int bits_;
    UniformPattern fallback_;
};

/** Bit reversal on the flat node id. */
class BitReversePattern : public TrafficPattern
{
  public:
    explicit BitReversePattern(const Topology& topo);
    NodeId dest(NodeId src, Rng& rng) const override;
    std::string describe() const override { return "bitrev"; }

  private:
    int num_nodes_;
    int bits_;
    UniformPattern fallback_;
};

/** Perfect shuffle: rotate the flat id left by one bit. */
class ShufflePattern : public TrafficPattern
{
  public:
    explicit ShufflePattern(const Topology& topo);
    NodeId dest(NodeId src, Rng& rng) const override;
    std::string describe() const override { return "shuffle"; }

  private:
    int num_nodes_;
    int bits_;
    UniformPattern fallback_;
};

/** Tornado: half-way around each dimension. */
class TornadoPattern : public TrafficPattern
{
  public:
    explicit TornadoPattern(const Topology& topo);
    NodeId dest(NodeId src, Rng& rng) const override;
    std::string describe() const override { return "tornado"; }

  private:
    const Topology& topo_;
    UniformPattern fallback_;
};

/** Nearest neighbor: one hop east (with wraparound on the flat grid). */
class NeighborPattern : public TrafficPattern
{
  public:
    explicit NeighborPattern(const Topology& topo);
    NodeId dest(NodeId src, Rng& rng) const override;
    std::string describe() const override { return "neighbor"; }

  private:
    const Topology& topo_;
};

/**
 * Hotspot: a fraction of traffic targets designated hot nodes; the rest
 * is uniform.
 */
class HotspotPattern : public TrafficPattern
{
  public:
    /**
     * @param topo      topology
     * @param hotspots  hot destination nodes (non-empty)
     * @param fraction  probability a packet targets a hot node
     */
    HotspotPattern(const Topology& topo, std::vector<NodeId> hotspots,
                   double fraction);
    NodeId dest(NodeId src, Rng& rng) const override;
    std::string describe() const override { return "hotspot"; }

  private:
    std::vector<NodeId> hotspots_;
    double fraction_;
    UniformPattern fallback_;
};

/**
 * Build a pattern from config keys:
 *   traffic = uniform | transpose | bitcomp | bitrev | shuffle |
 *             tornado | neighbor | hotspot          (default uniform)
 *   hotspot_nodes    comma-free single node id       (default 0)
 *   hotspot_fraction fraction of traffic to hotspot  (default 0.1)
 */
std::unique_ptr<TrafficPattern>
makePattern(const Config& cfg, const Topology& topo);

}  // namespace frfc

#endif  // FRFC_TRAFFIC_PATTERN_HPP
