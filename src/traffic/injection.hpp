/**
 * @file
 * Packet injection processes.
 *
 * The paper uses a "constant rate source inject[ing] packets at a
 * percentage of the capacity of the network". We provide both a
 * Bernoulli process (geometric inter-arrivals, the common open-loop
 * model) and a periodic process (fixed inter-arrival with fractional
 * accumulation). Rates are given in flits/node/cycle and converted to
 * packets internally.
 */

#ifndef FRFC_TRAFFIC_INJECTION_HPP
#define FRFC_TRAFFIC_INJECTION_HPP

#include <memory>
#include <string>

#include "common/rng.hpp"
#include "common/types.hpp"

namespace frfc {

class Config;

/** Decides, per node per cycle, whether a new packet is generated. */
class InjectionProcess
{
  public:
    virtual ~InjectionProcess() = default;

    /** True if this node generates a packet during this cycle. */
    virtual bool inject(Rng& rng) = 0;

    /** Packet generation rate in packets/node/cycle. */
    virtual double packetRate() const = 0;

    virtual std::string describe() const = 0;
};

/** Bernoulli: independently each cycle with probability rate. */
class BernoulliInjection : public InjectionProcess
{
  public:
    explicit BernoulliInjection(double packets_per_cycle);
    bool inject(Rng& rng) override;
    double packetRate() const override { return rate_; }
    std::string describe() const override { return "bernoulli"; }

  private:
    double rate_;
};

/** Periodic: deterministic fractional accumulator (jitter-free). */
class PeriodicInjection : public InjectionProcess
{
  public:
    explicit PeriodicInjection(double packets_per_cycle);
    bool inject(Rng& rng) override;
    double packetRate() const override { return rate_; }
    std::string describe() const override { return "periodic"; }

  private:
    double rate_;
    double credit_ = 0.0;
};

/**
 * Build an injection process.
 * @param cfg              reads workload.injection (bernoulli | periodic;
 *                         legacy key "injection" still honored)
 * @param flits_per_cycle  offered load in flits/node/cycle
 * @param packet_length    flits per packet
 */
std::unique_ptr<InjectionProcess>
makeInjection(const Config& cfg, double flits_per_cycle, int packet_length);

}  // namespace frfc

#endif  // FRFC_TRAFFIC_INJECTION_HPP
