#include "traffic/pattern.hpp"

#include "common/config.hpp"
#include "common/log.hpp"
#include "topology/topology.hpp"

namespace frfc {

namespace {

/** Number of bits needed to index @p n nodes; -1 if n not a power of 2. */
int
log2Exact(int n)
{
    int bits = 0;
    int v = n;
    while (v > 1) {
        if (v % 2 != 0)
            return -1;
        v /= 2;
        ++bits;
    }
    return bits;
}

}  // namespace

UniformPattern::UniformPattern(const Topology& topo)
    : num_nodes_(topo.numNodes())
{
}

NodeId
UniformPattern::dest(NodeId src, Rng& rng) const
{
    // Draw from the n-1 non-source nodes without rejection.
    auto draw = static_cast<NodeId>(
        rng.nextBounded(static_cast<std::uint64_t>(num_nodes_ - 1)));
    return draw >= src ? draw + 1 : draw;
}

TransposePattern::TransposePattern(const Topology& topo)
    : topo_(topo), fallback_(topo)
{
    if (topo.sizeX() != topo.sizeY())
        fatal("transpose pattern requires a square topology");
}

NodeId
TransposePattern::dest(NodeId src, Rng& rng) const
{
    const NodeId d = topo_.nodeAt(topo_.yOf(src), topo_.xOf(src));
    return d == src ? fallback_.dest(src, rng) : d;
}

BitComplementPattern::BitComplementPattern(const Topology& topo)
    : num_nodes_(topo.numNodes()), bits_(log2Exact(topo.numNodes())),
      fallback_(topo)
{
    if (bits_ < 0)
        fatal("bitcomp pattern requires a power-of-two node count");
}

NodeId
BitComplementPattern::dest(NodeId src, Rng& rng) const
{
    const NodeId d = static_cast<NodeId>(~src & (num_nodes_ - 1));
    return d == src ? fallback_.dest(src, rng) : d;
}

BitReversePattern::BitReversePattern(const Topology& topo)
    : num_nodes_(topo.numNodes()), bits_(log2Exact(topo.numNodes())),
      fallback_(topo)
{
    if (bits_ < 0)
        fatal("bitrev pattern requires a power-of-two node count");
}

NodeId
BitReversePattern::dest(NodeId src, Rng& rng) const
{
    NodeId d = 0;
    for (int i = 0; i < bits_; ++i) {
        if (src & (1 << i))
            d |= 1 << (bits_ - 1 - i);
    }
    return d == src ? fallback_.dest(src, rng) : d;
}

ShufflePattern::ShufflePattern(const Topology& topo)
    : num_nodes_(topo.numNodes()), bits_(log2Exact(topo.numNodes())),
      fallback_(topo)
{
    if (bits_ < 0)
        fatal("shuffle pattern requires a power-of-two node count");
}

NodeId
ShufflePattern::dest(NodeId src, Rng& rng) const
{
    const NodeId high = (src >> (bits_ - 1)) & 1;
    const NodeId d = static_cast<NodeId>(((src << 1) | high)
                                         & (num_nodes_ - 1));
    return d == src ? fallback_.dest(src, rng) : d;
}

TornadoPattern::TornadoPattern(const Topology& topo)
    : topo_(topo), fallback_(topo)
{
}

NodeId
TornadoPattern::dest(NodeId src, Rng& rng) const
{
    const int dx = (topo_.xOf(src) + (topo_.sizeX() / 2 - 1))
        % topo_.sizeX();
    const int dy = (topo_.yOf(src) + (topo_.sizeY() / 2 - 1))
        % topo_.sizeY();
    const NodeId d = topo_.nodeAt(dx, dy);
    return d == src ? fallback_.dest(src, rng) : d;
}

NeighborPattern::NeighborPattern(const Topology& topo) : topo_(topo) {}

NodeId
NeighborPattern::dest(NodeId src, Rng& /* rng */) const
{
    const int dx = (topo_.xOf(src) + 1) % topo_.sizeX();
    return topo_.nodeAt(dx, topo_.yOf(src));
}

HotspotPattern::HotspotPattern(const Topology& topo,
                               std::vector<NodeId> hotspots,
                               double fraction)
    : hotspots_(std::move(hotspots)), fraction_(fraction), fallback_(topo)
{
    if (hotspots_.empty())
        fatal("hotspot pattern requires at least one hot node");
    if (fraction < 0.0 || fraction > 1.0)
        fatal("hotspot fraction must be in [0, 1]");
    for (NodeId h : hotspots_) {
        if (h < 0 || h >= topo.numNodes())
            fatal("hotspot node ", h, " out of range");
    }
}

NodeId
HotspotPattern::dest(NodeId src, Rng& rng) const
{
    if (rng.nextBool(fraction_)) {
        const NodeId d = hotspots_[rng.nextBounded(hotspots_.size())];
        if (d != src)
            return d;
    }
    return fallback_.dest(src, rng);
}

std::unique_ptr<TrafficPattern>
makePattern(const Config& cfg, const Topology& topo)
{
    const std::string kind = cfg.getString("traffic", "uniform");
    if (kind == "uniform")
        return std::make_unique<UniformPattern>(topo);
    if (kind == "transpose")
        return std::make_unique<TransposePattern>(topo);
    if (kind == "bitcomp")
        return std::make_unique<BitComplementPattern>(topo);
    if (kind == "bitrev")
        return std::make_unique<BitReversePattern>(topo);
    if (kind == "shuffle")
        return std::make_unique<ShufflePattern>(topo);
    if (kind == "tornado")
        return std::make_unique<TornadoPattern>(topo);
    if (kind == "neighbor")
        return std::make_unique<NeighborPattern>(topo);
    if (kind == "hotspot") {
        const auto node = static_cast<NodeId>(cfg.getInt("hotspot_node", 0));
        const double fraction = cfg.getDouble("hotspot_fraction", 0.1);
        return std::make_unique<HotspotPattern>(
            topo, std::vector<NodeId>{node}, fraction);
    }
    fatal("unknown traffic pattern '", kind, "'");
}

}  // namespace frfc
