/**
 * @file
 * Unified workload configuration surface.
 *
 * All workload-shaping keys live under the `workload.*` namespace and
 * are resolved here, in exactly one place, so no other layer of the
 * simulator hard-codes a workload key string (enforced by the
 * frfc-lint `workload-keys` rule):
 *
 *   workload.kind          synthetic | trace | memory (default inferred:
 *                          "trace" when a trace file is named, else
 *                          "synthetic")
 *   workload.offered       offered load, fraction of capacity (0.5)
 *   workload.packet_length flits per synthetic packet (5)
 *   workload.injection     bernoulli | periodic (bernoulli)
 *   workload.reply_length  synthetic request-reply mode: >0 makes every
 *                          packet a request answered by a reply of this
 *                          many flits from its destination (0 = open loop)
 *   workload.trace.file    trace path (selects kind=trace when set)
 *   workload.memory.*      memory-system generator knobs (see
 *                          traffic/memory.hpp): directories, hotspot,
 *                          req_length, reply_length, mshrs, burst_on,
 *                          burst_off
 *
 * The pre-PR-7 flat keys (`offered`, `packet_length`, `injection`,
 * `trace`) keep working as a deprecated fallback: when only the legacy
 * key is present its value is used and a one-time warning names the
 * replacement; when both are present the `workload.*` key wins and the
 * warning says the legacy key was ignored.
 */

#ifndef FRFC_TRAFFIC_WORKLOAD_HPP
#define FRFC_TRAFFIC_WORKLOAD_HPP

#include <string>

namespace frfc {

class Config;

/** @{ Canonical workload.* key names. Code outside src/traffic/ must
 *  spell workload keys through these constants (frfc-lint enforces). */
inline constexpr const char* kWorkloadKindKey = "workload.kind";
inline constexpr const char* kWorkloadOfferedKey = "workload.offered";
inline constexpr const char* kWorkloadPacketLengthKey =
    "workload.packet_length";
inline constexpr const char* kWorkloadInjectionKey = "workload.injection";
inline constexpr const char* kWorkloadReplyLengthKey =
    "workload.reply_length";
inline constexpr const char* kWorkloadTraceFileKey = "workload.trace.file";
inline constexpr const char* kWorkloadMemDirectoriesKey =
    "workload.memory.directories";
inline constexpr const char* kWorkloadMemHotspotKey =
    "workload.memory.hotspot";
inline constexpr const char* kWorkloadMemReqLengthKey =
    "workload.memory.req_length";
inline constexpr const char* kWorkloadMemReplyLengthKey =
    "workload.memory.reply_length";
inline constexpr const char* kWorkloadMemMshrsKey = "workload.memory.mshrs";
inline constexpr const char* kWorkloadMemBurstOnKey =
    "workload.memory.burst_on";
inline constexpr const char* kWorkloadMemBurstOffKey =
    "workload.memory.burst_off";
/** @} */

/** Workload family: "synthetic", "trace", or "memory". Validates
 *  workload.kind; infers "trace" when only a trace file is named. */
std::string workloadKind(const Config& cfg);

/** Offered load as a fraction of network capacity. */
double workloadOfferedFraction(const Config& cfg, double dflt = 0.5);

/** Set the offered-load fraction (the sweep helpers' single write
 *  path; wins over any legacy `offered` in @p cfg by resolution
 *  order). */
void setWorkloadOffered(Config& cfg, double fraction);

/** Synthetic packet length in flits. */
int workloadPacketLength(const Config& cfg);

/** Synthetic request-reply mode: reply length in flits, 0 = open loop. */
int workloadReplyLength(const Config& cfg);

/** Longest packet this workload can inject (forwarding-mode checks). */
int workloadMaxPacketFlits(const Config& cfg);

/** Injection-process name ("bernoulli" / "periodic"). */
std::string workloadInjectionKind(const Config& cfg);

/** Trace path; empty when no trace is configured. */
std::string workloadTraceFile(const Config& cfg);

/** Map a legacy flat workload key ("offered", "packet_length",
 *  "injection", "trace") to its workload.* equivalent; any other key
 *  is returned unchanged. Lets override paths (CLI key=value) keep
 *  honoring the legacy spellings even on configs that already carry
 *  workload.* defaults. */
std::string canonicalWorkloadKey(const std::string& key);

}  // namespace frfc

#endif  // FRFC_TRAFFIC_WORKLOAD_HPP
