/**
 * @file
 * Packet generation: the open-loop sources ask a PacketGenerator, once
 * per node per cycle, whether a packet is born. The synthetic generator
 * combines an InjectionProcess with a TrafficPattern and a fixed packet
 * length (the paper's workloads); the trace generator replays a
 * recorded workload with per-packet destinations and lengths, enabling
 * application-driven studies and exact cross-scheme workload replay.
 */

#ifndef FRFC_TRAFFIC_GENERATOR_HPP
#define FRFC_TRAFFIC_GENERATOR_HPP

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "common/types.hpp"

namespace frfc {

class Config;
class InjectionProcess;
class Topology;
class TrafficPattern;

/** A packet to be injected. */
struct GeneratedPacket
{
    NodeId dest = kInvalidNode;
    int length = 0;
};

/** Per-node packet birth process. */
class PacketGenerator
{
  public:
    virtual ~PacketGenerator() = default;

    /**
     * Called once per cycle for @p src. Returns the packet born this
     * cycle, if any. Implementations may assume strictly increasing
     * @p now per source.
     */
    virtual std::optional<GeneratedPacket>
    generate(Cycle now, NodeId src, Rng& rng) = 0;

    virtual std::string describe() const = 0;
};

/** Synthetic: injection process + traffic pattern + fixed length. */
class SyntheticGenerator : public PacketGenerator
{
  public:
    /**
     * @param pattern   destination chooser (borrowed)
     * @param injection per-node injection process (owned)
     * @param length    flits per packet
     */
    SyntheticGenerator(const TrafficPattern* pattern,
                       std::unique_ptr<InjectionProcess> injection,
                       int length);
    ~SyntheticGenerator() override;

    std::optional<GeneratedPacket>
    generate(Cycle now, NodeId src, Rng& rng) override;

    std::string describe() const override { return "synthetic"; }

  private:
    const TrafficPattern* pattern_;
    std::unique_ptr<InjectionProcess> injection_;
    int length_;
};

/** One recorded packet birth. */
struct TraceEntry
{
    Cycle cycle = 0;
    NodeId src = kInvalidNode;
    NodeId dest = kInvalidNode;
    int length = 0;
};

/**
 * Replays a trace. One instance per node, built from a shared parsed
 * trace (entries for other nodes are skipped).
 */
class TraceGenerator : public PacketGenerator
{
  public:
    /**
     * @param entries full trace, sorted by cycle
     * @param node    the node this generator serves
     */
    TraceGenerator(std::shared_ptr<const std::vector<TraceEntry>> entries,
                   NodeId node);

    std::optional<GeneratedPacket>
    generate(Cycle now, NodeId src, Rng& rng) override;

    std::string describe() const override { return "trace"; }

  private:
    std::shared_ptr<const std::vector<TraceEntry>> entries_;
    std::size_t next_ = 0;
};

/**
 * Parse a trace file: one packet per line, "cycle src dest length",
 * '#' comments. Entries must be sorted by cycle; src/dest must be in
 * range and length positive — violations are fatal (user error).
 */
std::vector<TraceEntry>
parseTraceFile(const std::string& path, int num_nodes);

/**
 * Render entries in the trace file format (for writing workloads).
 */
std::string formatTrace(const std::vector<TraceEntry>& entries);

/**
 * Build one generator per node. If the config has a "trace" key the
 * named file is replayed (and "offered"/"packet_length" are ignored);
 * otherwise each node gets a SyntheticGenerator at @p offered_flits
 * flits/node/cycle with the configured injection process and
 * packet_length, drawing destinations from @p pattern.
 */
std::vector<std::unique_ptr<PacketGenerator>>
makeGenerators(const Config& cfg, const Topology& topo,
               const TrafficPattern* pattern, double offered_flits);

}  // namespace frfc

#endif  // FRFC_TRAFFIC_GENERATOR_HPP
