/**
 * @file
 * Packet generation: sources ask a PacketGenerator, once per node per
 * cycle, whether a packet is born. Generators come in two closure
 * modes:
 *
 *  - Open loop (closedLoop() == false): births depend only on the
 *    cycle and the node's private RNG stream. Sources may pre-scan
 *    such a generator ahead of `now` (one draw per cycle, in stream
 *    order) so the event kernel can sleep until the next birth.
 *
 *  - Closed loop (closedLoop() == true): births can depend on packet
 *    ejections, fed back through onPacketEjected(). Sources tick a
 *    closed-loop generator live, exactly once per cycle while
 *    generating, and the ejection sink's per-node completion channel
 *    (latency 1) delivers feedback one cycle after the last flit
 *    ejects — identically under the stepped, event, and parallel
 *    kernels, because the feedback channel is node-local (never
 *    crosses a shard cut).
 *
 * Three families are provided: the synthetic generator (injection
 * process + traffic pattern, optionally request-reply), the trace
 * generator (exact replay, optionally dependency-tracked via reply-to
 * tags), and the memory-system generator (traffic/memory.hpp). All are
 * selected through the workload.* config namespace resolved in
 * makeGenerators (traffic/workload.hpp).
 */

#ifndef FRFC_TRAFFIC_GENERATOR_HPP
#define FRFC_TRAFFIC_GENERATOR_HPP

#include <memory>
#include <optional>
#include <string>
#include <unordered_set>
#include <utility>
#include <vector>

#include "common/rng.hpp"
#include "common/types.hpp"
#include "proto/flit.hpp"

namespace frfc {

class Config;
class InjectionProcess;
class Topology;
class TrafficPattern;

/** A packet to be injected. */
struct GeneratedPacket
{
    NodeId dest = kInvalidNode;
    int length = 0;
    MessageClass cls = MessageClass::kRequest;
};

/**
 * Everything a generator may consult when deciding on a birth: the
 * cycle, the node it serves, and the node's private RNG stream. Passed
 * by the owning source; generators must draw randomness only from
 * ctx.rng so runs stay bit-identical across kernels.
 */
struct WorkloadContext
{
    Cycle now = 0;
    NodeId node = kInvalidNode;
    Rng* rng = nullptr;
};

/** One "key = value" descriptive parameter of a generator. */
using GeneratorParam = std::pair<std::string, std::string>;

/** Structured generator self-description (Report metadata). */
struct GeneratorInfo
{
    std::string kind;        ///< "synthetic" / "trace" / "memory" / ...
    bool closedLoop = false;
    std::vector<GeneratorParam> params;

    /** One-line rendering, `kind(k=v, ...)`, for notes and logs. */
    std::string summary() const;
};

/** Per-node packet birth process. */
class PacketGenerator
{
  public:
    virtual ~PacketGenerator() = default;

    /**
     * Called once per cycle for ctx.node, with strictly increasing
     * ctx.now per node. Returns the packet born this cycle, if any.
     */
    virtual std::optional<GeneratedPacket>
    generate(const WorkloadContext& ctx) = 0;

    /**
     * Ejection feedback (closed-loop generators only): a packet has
     * completed at ctx.node — ctx.now is one cycle after the last
     * flit ejected. May return a dependent packet (typically the
     * reply) for the source to inject immediately, ahead of any
     * same-cycle generate() birth.
     */
    virtual std::optional<GeneratedPacket>
    onPacketEjected(const PacketCompletion& /* done */,
                    const WorkloadContext& /* ctx */)
    {
        return std::nullopt;
    }

    /**
     * True when this generator consumes ejection feedback. The owning
     * source then wires the node's completion channel and ticks the
     * generator live every cycle instead of pre-scanning ahead of now.
     */
    virtual bool closedLoop() const { return false; }

    virtual GeneratorInfo describe() const = 0;
};

/**
 * Synthetic: injection process + traffic pattern + fixed length. With
 * reply_length > 0 every birth is a request, and the destination's
 * generator answers each completed request with a reply_length-flit
 * reply (closed loop).
 */
class SyntheticGenerator : public PacketGenerator
{
  public:
    /**
     * @param pattern      destination chooser (borrowed)
     * @param injection    per-node injection process (owned)
     * @param length       flits per request packet
     * @param reply_length flits per reply, 0 = open loop
     */
    SyntheticGenerator(const TrafficPattern* pattern,
                       std::unique_ptr<InjectionProcess> injection,
                       int length, int reply_length = 0);
    ~SyntheticGenerator() override;

    std::optional<GeneratedPacket>
    generate(const WorkloadContext& ctx) override;

    std::optional<GeneratedPacket>
    onPacketEjected(const PacketCompletion& done,
                    const WorkloadContext& ctx) override;

    bool closedLoop() const override { return reply_length_ > 0; }

    GeneratorInfo describe() const override;

  private:
    const TrafficPattern* pattern_;
    std::unique_ptr<InjectionProcess> injection_;
    int length_;
    int reply_length_;
};

/** One recorded packet birth. */
struct TraceEntry
{
    Cycle cycle = 0;
    NodeId src = kInvalidNode;
    NodeId dest = kInvalidNode;
    int length = 0;
    int tag = -1;      ///< optional id other entries can reply to
    int replyTo = -1;  ///< tag of the request this entry answers
    /** Resolved at parse time: the parent's deterministic PacketId
     *  (kInvalidPacket for independent entries). */
    PacketId parent = kInvalidPacket;
    MessageClass cls = MessageClass::kRequest;
};

/**
 * Replays a trace. One instance per node, built from a shared parsed
 * trace (entries for other nodes are skipped). Entries carrying a
 * reply-to dependency stall — holding every later entry of the node
 * behind them, preserving trace order — until the parent packet's
 * completion is reported through onPacketEjected (closed loop).
 */
class TraceGenerator : public PacketGenerator
{
  public:
    /**
     * @param entries full trace, sorted by cycle
     * @param node    the node this generator serves
     */
    TraceGenerator(std::shared_ptr<const std::vector<TraceEntry>> entries,
                   NodeId node);

    std::optional<GeneratedPacket>
    generate(const WorkloadContext& ctx) override;

    std::optional<GeneratedPacket>
    onPacketEjected(const PacketCompletion& done,
                    const WorkloadContext& ctx) override;

    bool closedLoop() const override { return has_dependents_; }

    GeneratorInfo describe() const override;

  private:
    std::shared_ptr<const std::vector<TraceEntry>> entries_;
    NodeId node_;
    std::size_t next_ = 0;
    bool has_dependents_ = false;
    /** Packets observed complete at this node (dependency release). */
    std::unordered_set<PacketId> completed_;
};

/**
 * Parse a trace file: one packet per line,
 *   cycle src dest length [tag [reply_to]]
 * with '#' comments. Entries must be sorted by cycle; src/dest must be
 * in range and length positive. A non-negative tag names the entry; a
 * non-negative reply_to makes the entry a reply to the earlier entry
 * carrying that tag — it must originate at the parent's destination
 * and is held back until the parent packet ejects. Violations are
 * fatal (user error).
 */
std::vector<TraceEntry>
parseTraceFile(const std::string& path, int num_nodes);

/**
 * Render entries in the trace file format (for writing workloads).
 * Tag/reply-to columns are emitted only when some entry uses them.
 */
std::string formatTrace(const std::vector<TraceEntry>& entries);

/**
 * Build one generator per node from the workload.* config namespace
 * (traffic/workload.hpp): workload.kind selects synthetic, trace
 * replay (workload.trace.file), or the memory-system generator
 * (workload.memory.*). Synthetic nodes inject @p offered_flits
 * flits/node/cycle with the configured injection process and packet
 * length, drawing destinations from @p pattern.
 */
std::vector<std::unique_ptr<PacketGenerator>>
makeGenerators(const Config& cfg, const Topology& topo,
               const TrafficPattern* pattern, double offered_flits);

}  // namespace frfc

#endif  // FRFC_TRAFFIC_GENERATOR_HPP
