/**
 * @file
 * Memory-system traffic generator (workload.kind = memory).
 *
 * Models the dominant on-chip traffic pattern of a CMP memory system:
 * most nodes are cache-side *requesters* whose misses emit short
 * request packets; a few evenly spaced nodes are *directories* that
 * answer each request with a long data reply. Requesters alternate
 * between bursty ON and quiet OFF phases (a two-state MMPP: geometric
 * dwell times drawn once per cycle), miss only while ON, and are
 * limited to a fixed number of outstanding misses (MSHRs) — a miss
 * with all MSHRs busy is simply dropped, as a blocked cache would
 * stall. An optional hotspot fraction skews requests toward the first
 * directory.
 *
 * Every node is closed-loop: directories need request completions to
 * mint replies, requesters need reply completions to free MSHRs. All
 * randomness comes from the per-node RNG in the WorkloadContext, with
 * a fixed draw pattern per cycle, so the workload is bit-identical
 * across the stepped, event, and parallel kernels.
 *
 * Config (see traffic/workload.hpp key constants):
 *   workload.memory.directories  directory count (4, clamped to n-1)
 *   workload.memory.hotspot      fraction of misses sent to the first
 *                                directory (0.0 = uniform)
 *   workload.memory.req_length   request flits (1)
 *   workload.memory.reply_length reply flits (5)
 *   workload.memory.mshrs        outstanding misses per requester (8)
 *   workload.memory.burst_on     mean ON-phase length, cycles (64)
 *   workload.memory.burst_off    mean OFF-phase length, cycles (192)
 */

#ifndef FRFC_TRAFFIC_MEMORY_HPP
#define FRFC_TRAFFIC_MEMORY_HPP

#include <memory>
#include <vector>

#include "traffic/generator.hpp"

namespace frfc {

class Config;

/** Shared knobs of one memory workload (same for every node). */
struct MemoryParams
{
    std::vector<NodeId> directories;
    double missRate = 0.0;  ///< P(miss) per ON cycle, requesters
    double hotspot = 0.0;   ///< fraction of misses aimed at dirs[0]
    int reqLength = 1;
    int replyLength = 5;
    int mshrs = 8;
    double burstOn = 64.0;   ///< mean ON dwell, cycles
    double burstOff = 192.0; ///< mean OFF dwell, cycles
};

/** One node of the memory system: requester or directory. */
class MemoryTrafficGenerator : public PacketGenerator
{
  public:
    MemoryTrafficGenerator(std::shared_ptr<const MemoryParams> params,
                           NodeId node);

    std::optional<GeneratedPacket>
    generate(const WorkloadContext& ctx) override;

    std::optional<GeneratedPacket>
    onPacketEjected(const PacketCompletion& done,
                    const WorkloadContext& ctx) override;

    bool closedLoop() const override { return true; }

    GeneratorInfo describe() const override;

  private:
    NodeId pickDirectory(Rng& rng) const;

    std::shared_ptr<const MemoryParams> params_;
    NodeId node_;
    bool directory_ = false;
    bool on_ = false;         ///< MMPP phase (requesters)
    int outstanding_ = 0;     ///< busy MSHRs (requesters)
};

/**
 * Build the per-node generator set for workload.kind = memory.
 * @p offered_flits (flits/node/cycle) sets the long-run request rate;
 * the ON-phase miss probability is inflated by the MMPP duty cycle so
 * the time-average offered load matches the open-loop meaning of
 * workload.offered.
 */
std::vector<std::unique_ptr<PacketGenerator>>
makeMemoryGenerators(const Config& cfg, int num_nodes,
                     double offered_flits);

}  // namespace frfc

#endif  // FRFC_TRAFFIC_MEMORY_HPP
