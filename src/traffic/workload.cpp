#include "traffic/workload.hpp"

#include <algorithm>
#include <atomic>

#include "common/config.hpp"
#include "common/log.hpp"

namespace frfc {

namespace {

/**
 * One warning per process, not per run: sweeps build thousands of
 * configs (concurrently, on the executor's thread pool), and the
 * deprecation notice is advice to the human, not run state. The latch
 * is an atomic touched only on the (cold) legacy path and never feeds
 * back into simulation behavior, so it is shard-safe by construction.
 */
// frfc-analyzer: allow(determinism.static): cold-path atomic latch
std::atomic<bool> legacy_warned{false};

void
warnLegacyUsed(const char* legacy, const char* canonical)
{
    if (legacy_warned.exchange(true))
        return;
    warn("config key '", legacy, "' is deprecated; use '", canonical,
         "' (all workload keys now live under workload.*)");
}

void
warnLegacyIgnored(const char* legacy, const char* canonical)
{
    if (legacy_warned.exchange(true))
        return;
    warn("config sets both '", canonical, "' and legacy '", legacy,
         "'; the workload.* key wins and the legacy key is ignored");
}

/** Resolve @p key, falling back to @p legacy with a one-time warning. */
template <typename T>
T
resolve(const Config& cfg, const char* key, const char* legacy,
        const T& dflt)
{
    if (cfg.has(key)) {
        if (legacy != nullptr && cfg.has(legacy))
            warnLegacyIgnored(legacy, key);
        return cfg.get<T>(key);
    }
    if (legacy != nullptr && cfg.has(legacy)) {
        warnLegacyUsed(legacy, key);
        return cfg.get<T>(legacy);
    }
    return dflt;
}

}  // namespace

std::string
workloadKind(const Config& cfg)
{
    const std::string kind =
        resolve<std::string>(cfg, kWorkloadKindKey, nullptr, "");
    if (!kind.empty()) {
        if (kind != "synthetic" && kind != "trace" && kind != "memory") {
            fatal("workload.kind must be synthetic, trace, or memory "
                  "(got '", kind, "')");
        }
        return kind;
    }
    // Inferred: a named trace file selects trace replay, as the legacy
    // flat `trace` key always did.
    return workloadTraceFile(cfg).empty() ? "synthetic" : "trace";
}

double
workloadOfferedFraction(const Config& cfg, double dflt)
{
    return resolve<double>(cfg, kWorkloadOfferedKey, "offered", dflt);
}

void
setWorkloadOffered(Config& cfg, double fraction)
{
    cfg.set(kWorkloadOfferedKey, fraction);
}

int
workloadPacketLength(const Config& cfg)
{
    return resolve<int>(cfg, kWorkloadPacketLengthKey, "packet_length", 5);
}

int
workloadReplyLength(const Config& cfg)
{
    return resolve<int>(cfg, kWorkloadReplyLengthKey, nullptr, 0);
}

int
workloadMaxPacketFlits(const Config& cfg)
{
    int flits = std::max(workloadPacketLength(cfg),
                         workloadReplyLength(cfg));
    if (workloadKind(cfg) == "memory") {
        flits = std::max(
            flits, resolve<int>(cfg, kWorkloadMemReqLengthKey, nullptr, 1));
        flits = std::max(
            flits,
            resolve<int>(cfg, kWorkloadMemReplyLengthKey, nullptr, 5));
    }
    return flits;
}

std::string
workloadInjectionKind(const Config& cfg)
{
    return resolve<std::string>(cfg, kWorkloadInjectionKey, "injection",
                                "bernoulli");
}

std::string
workloadTraceFile(const Config& cfg)
{
    return resolve<std::string>(cfg, kWorkloadTraceFileKey, "trace", "");
}

std::string
canonicalWorkloadKey(const std::string& key)
{
    if (key == "offered")
        return kWorkloadOfferedKey;
    if (key == "packet_length")
        return kWorkloadPacketLengthKey;
    if (key == "injection")
        return kWorkloadInjectionKey;
    if (key == "trace")
        return kWorkloadTraceFileKey;
    return key;
}

}  // namespace frfc
