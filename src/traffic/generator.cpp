#include "traffic/generator.hpp"

#include <fstream>
#include <sstream>
#include <unordered_map>

#include "common/config.hpp"
#include "common/log.hpp"
#include "proto/packet_registry.hpp"
#include "topology/topology.hpp"
#include "traffic/injection.hpp"
#include "traffic/memory.hpp"
#include "traffic/pattern.hpp"
#include "traffic/workload.hpp"

namespace frfc {

std::string
GeneratorInfo::summary() const
{
    std::ostringstream os;
    os << kind;
    if (!params.empty()) {
        os << "(";
        bool first = true;
        for (const GeneratorParam& p : params) {
            if (!first)
                os << ", ";
            first = false;
            os << p.first << "=" << p.second;
        }
        os << ")";
    }
    return os.str();
}

SyntheticGenerator::SyntheticGenerator(
    const TrafficPattern* pattern,
    std::unique_ptr<InjectionProcess> injection, int length,
    int reply_length)
    : pattern_(pattern), injection_(std::move(injection)),
      length_(length), reply_length_(reply_length)
{
    FRFC_ASSERT(pattern_ != nullptr, "null traffic pattern");
    FRFC_ASSERT(injection_ != nullptr, "null injection process");
    FRFC_ASSERT(length_ > 0, "packet length must be positive");
    FRFC_ASSERT(reply_length_ >= 0, "reply length must be non-negative");
}

SyntheticGenerator::~SyntheticGenerator() = default;

std::optional<GeneratedPacket>
SyntheticGenerator::generate(const WorkloadContext& ctx)
{
    if (!injection_->inject(*ctx.rng))
        return std::nullopt;
    return GeneratedPacket{pattern_->dest(ctx.node, *ctx.rng), length_,
                           MessageClass::kRequest};
}

std::optional<GeneratedPacket>
SyntheticGenerator::onPacketEjected(const PacketCompletion& done,
                                    const WorkloadContext& /* ctx */)
{
    // Answer each completed request; replies terminate the exchange.
    if (reply_length_ <= 0 || done.cls != MessageClass::kRequest)
        return std::nullopt;
    return GeneratedPacket{done.src, reply_length_, MessageClass::kReply};
}

GeneratorInfo
SyntheticGenerator::describe() const
{
    GeneratorInfo info;
    info.kind = "synthetic";
    info.closedLoop = closedLoop();
    info.params.emplace_back("injection", injection_->describe());
    info.params.emplace_back("length", std::to_string(length_));
    if (reply_length_ > 0)
        info.params.emplace_back("reply_length",
                                 std::to_string(reply_length_));
    return info;
}

TraceGenerator::TraceGenerator(
    std::shared_ptr<const std::vector<TraceEntry>> entries, NodeId node)
    : entries_(std::move(entries)), node_(node)
{
    FRFC_ASSERT(entries_ != nullptr, "null trace");
    for (const TraceEntry& e : *entries_) {
        if (e.src == node_ && e.parent != kInvalidPacket) {
            has_dependents_ = true;
            break;
        }
    }
    // Position at this node's first entry.
    while (next_ < entries_->size() && (*entries_)[next_].src != node_)
        ++next_;
}

std::optional<GeneratedPacket>
TraceGenerator::generate(const WorkloadContext& ctx)
{
    FRFC_ASSERT(ctx.node == node_, "trace generator bound to node ",
                node_, " asked to generate for node ", ctx.node);
    if (next_ >= entries_->size())
        return std::nullopt;
    const TraceEntry& entry = (*entries_)[next_];
    if (entry.cycle > ctx.now)
        return std::nullopt;
    // A dependent entry stalls — holding all later entries of this node
    // behind it, preserving trace order — until its parent ejects here.
    if (entry.parent != kInvalidPacket
        && completed_.find(entry.parent) == completed_.end()) {
        return std::nullopt;
    }
    // One packet per cycle per node: later same-cycle entries slip to
    // the following cycles, preserving order.
    ++next_;
    while (next_ < entries_->size() && (*entries_)[next_].src != node_)
        ++next_;
    return GeneratedPacket{entry.dest, entry.length, entry.cls};
}

std::optional<GeneratedPacket>
TraceGenerator::onPacketEjected(const PacketCompletion& done,
                                const WorkloadContext& /* ctx */)
{
    // Record the completion; any dependent reply is already in the
    // trace and is released from generate() on a later cycle.
    completed_.insert(done.packet);
    return std::nullopt;
}

GeneratorInfo
TraceGenerator::describe() const
{
    GeneratorInfo info;
    info.kind = "trace";
    info.closedLoop = closedLoop();
    std::size_t mine = 0;
    for (const TraceEntry& e : *entries_) {
        if (e.src == node_)
            ++mine;
    }
    info.params.emplace_back("entries", std::to_string(mine));
    if (has_dependents_)
        info.params.emplace_back("dependent", "true");
    return info;
}

std::vector<TraceEntry>
parseTraceFile(const std::string& path, int num_nodes)
{
    std::ifstream in(path);
    if (!in)
        fatal("cannot open trace file '", path, "'");
    std::vector<TraceEntry> entries;
    // Packet ids are deterministic — the n-th packet created at a node
    // gets makePacketId(node, n). In trace mode every packet of a node
    // flows through generate() in trace order, so the trace position
    // alone fixes each entry's eventual id; precompute them so replies
    // can name their parent packet.
    std::vector<PacketId> ids;
    std::vector<std::int64_t> ordinals(
        static_cast<std::size_t>(num_nodes), 0);
    std::unordered_map<int, std::size_t> tag_index;
    std::string line;
    int lineno = 0;
    Cycle prev_cycle = 0;
    while (std::getline(in, line)) {
        ++lineno;
        const std::size_t hash = line.find('#');
        if (hash != std::string::npos)
            line.erase(hash);
        std::istringstream is(line);
        TraceEntry entry;
        if (!(is >> entry.cycle))
            continue;  // blank/comment line
        if (!(is >> entry.src >> entry.dest >> entry.length)) {
            fatal("trace '", path, "' line ", lineno,
                  ": expected 'cycle src dest length'");
        }
        // Optional dependency columns: 'tag' names this entry,
        // 'reply_to' defers it until the named entry's packet ejects.
        // (Extract into locals: a failed >> zero-fills its target.)
        int tag = -1;
        int reply_to = -1;
        if (is >> tag) {
            entry.tag = tag;
            if (is >> reply_to)
                entry.replyTo = reply_to;
        }
        if (entry.cycle < prev_cycle)
            fatal("trace '", path, "' line ", lineno,
                  ": cycles must be non-decreasing");
        if (entry.src < 0 || entry.src >= num_nodes || entry.dest < 0
            || entry.dest >= num_nodes) {
            fatal("trace '", path, "' line ", lineno,
                  ": node out of range for ", num_nodes, " nodes");
        }
        if (entry.src == entry.dest)
            fatal("trace '", path, "' line ", lineno,
                  ": self-traffic is not routable");
        if (entry.length <= 0)
            fatal("trace '", path, "' line ", lineno,
                  ": length must be positive");
        if (entry.replyTo >= 0) {
            const auto it = tag_index.find(entry.replyTo);
            if (it == tag_index.end()) {
                fatal("trace '", path, "' line ", lineno, ": reply_to ",
                      entry.replyTo, " references no earlier tag");
            }
            const TraceEntry& parent = entries[it->second];
            if (parent.dest != entry.src) {
                fatal("trace '", path, "' line ", lineno,
                      ": a reply must originate at its parent's "
                      "destination (parent tag ", entry.replyTo,
                      " goes to node ", parent.dest, ")");
            }
            entry.parent = ids[it->second];
            entry.cls = MessageClass::kReply;
        }
        if (entry.tag >= 0) {
            if (!tag_index.emplace(entry.tag, entries.size()).second) {
                fatal("trace '", path, "' line ", lineno,
                      ": duplicate tag ", entry.tag);
            }
        }
        prev_cycle = entry.cycle;
        ids.push_back(makePacketId(
            entry.src, ordinals[static_cast<std::size_t>(entry.src)]++));
        entries.push_back(entry);
    }
    return entries;
}

std::vector<std::unique_ptr<PacketGenerator>>
makeGenerators(const Config& cfg, const Topology& topo,
               const TrafficPattern* pattern, double offered_flits)
{
    std::vector<std::unique_ptr<PacketGenerator>> generators;
    const int n = topo.numNodes();
    generators.reserve(static_cast<std::size_t>(n));
    const std::string kind = workloadKind(cfg);
    if (kind == "trace") {
        const std::string path = workloadTraceFile(cfg);
        if (path.empty())
            fatal("workload.kind=trace requires ", kWorkloadTraceFileKey);
        auto entries = std::make_shared<std::vector<TraceEntry>>(
            parseTraceFile(path, n));
        for (NodeId node = 0; node < n; ++node) {
            generators.push_back(
                std::make_unique<TraceGenerator>(entries, node));
        }
        return generators;
    }
    if (kind == "memory")
        return makeMemoryGenerators(cfg, n, offered_flits);
    const int length = workloadPacketLength(cfg);
    const int reply_length = workloadReplyLength(cfg);
    for (NodeId node = 0; node < n; ++node) {
        generators.push_back(std::make_unique<SyntheticGenerator>(
            pattern, makeInjection(cfg, offered_flits, length), length,
            reply_length));
    }
    return generators;
}

std::string
formatTrace(const std::vector<TraceEntry>& entries)
{
    bool tagged = false;
    for (const TraceEntry& e : entries) {
        if (e.tag >= 0 || e.replyTo >= 0) {
            tagged = true;
            break;
        }
    }
    std::ostringstream os;
    os << (tagged ? "# cycle src dest length tag reply_to\n"
                  : "# cycle src dest length\n");
    for (const TraceEntry& e : entries) {
        os << e.cycle << " " << e.src << " " << e.dest << " " << e.length;
        if (tagged)
            os << " " << e.tag << " " << e.replyTo;
        os << "\n";
    }
    return os.str();
}

}  // namespace frfc
