#include "traffic/generator.hpp"

#include <fstream>
#include <sstream>

#include "common/config.hpp"
#include "common/log.hpp"
#include "topology/topology.hpp"
#include "traffic/injection.hpp"
#include "traffic/pattern.hpp"

namespace frfc {

SyntheticGenerator::SyntheticGenerator(
    const TrafficPattern* pattern,
    std::unique_ptr<InjectionProcess> injection, int length)
    : pattern_(pattern), injection_(std::move(injection)),
      length_(length)
{
    FRFC_ASSERT(pattern_ != nullptr, "null traffic pattern");
    FRFC_ASSERT(injection_ != nullptr, "null injection process");
    FRFC_ASSERT(length_ > 0, "packet length must be positive");
}

SyntheticGenerator::~SyntheticGenerator() = default;

std::optional<GeneratedPacket>
SyntheticGenerator::generate(Cycle /* now */, NodeId src, Rng& rng)
{
    if (!injection_->inject(rng))
        return std::nullopt;
    return GeneratedPacket{pattern_->dest(src, rng), length_};
}

TraceGenerator::TraceGenerator(
    std::shared_ptr<const std::vector<TraceEntry>> entries, NodeId node)
    : entries_(std::move(entries))
{
    FRFC_ASSERT(entries_ != nullptr, "null trace");
    // Position at this node's first entry.
    while (next_ < entries_->size() && (*entries_)[next_].src != node)
        ++next_;
}

std::optional<GeneratedPacket>
TraceGenerator::generate(Cycle now, NodeId src, Rng& /* rng */)
{
    if (next_ >= entries_->size())
        return std::nullopt;
    const TraceEntry& entry = (*entries_)[next_];
    if (entry.cycle > now)
        return std::nullopt;
    // One packet per cycle per node: later same-cycle entries slip to
    // the following cycles, preserving order.
    ++next_;
    while (next_ < entries_->size() && (*entries_)[next_].src != src)
        ++next_;
    return GeneratedPacket{entry.dest, entry.length};
}

std::vector<TraceEntry>
parseTraceFile(const std::string& path, int num_nodes)
{
    std::ifstream in(path);
    if (!in)
        fatal("cannot open trace file '", path, "'");
    std::vector<TraceEntry> entries;
    std::string line;
    int lineno = 0;
    Cycle prev_cycle = 0;
    while (std::getline(in, line)) {
        ++lineno;
        const std::size_t hash = line.find('#');
        if (hash != std::string::npos)
            line.erase(hash);
        std::istringstream is(line);
        TraceEntry entry;
        if (!(is >> entry.cycle))
            continue;  // blank/comment line
        if (!(is >> entry.src >> entry.dest >> entry.length)) {
            fatal("trace '", path, "' line ", lineno,
                  ": expected 'cycle src dest length'");
        }
        if (entry.cycle < prev_cycle)
            fatal("trace '", path, "' line ", lineno,
                  ": cycles must be non-decreasing");
        if (entry.src < 0 || entry.src >= num_nodes || entry.dest < 0
            || entry.dest >= num_nodes) {
            fatal("trace '", path, "' line ", lineno,
                  ": node out of range for ", num_nodes, " nodes");
        }
        if (entry.src == entry.dest)
            fatal("trace '", path, "' line ", lineno,
                  ": self-traffic is not routable");
        if (entry.length <= 0)
            fatal("trace '", path, "' line ", lineno,
                  ": length must be positive");
        prev_cycle = entry.cycle;
        entries.push_back(entry);
    }
    return entries;
}

std::vector<std::unique_ptr<PacketGenerator>>
makeGenerators(const Config& cfg, const Topology& topo,
               const TrafficPattern* pattern, double offered_flits)
{
    std::vector<std::unique_ptr<PacketGenerator>> generators;
    const int n = topo.numNodes();
    generators.reserve(static_cast<std::size_t>(n));
    if (cfg.has("trace")) {
        auto entries = std::make_shared<std::vector<TraceEntry>>(
            parseTraceFile(cfg.getString("trace"), n));
        for (NodeId node = 0; node < n; ++node) {
            generators.push_back(
                std::make_unique<TraceGenerator>(entries, node));
        }
        return generators;
    }
    const int length = static_cast<int>(cfg.getInt("packet_length", 5));
    for (NodeId node = 0; node < n; ++node) {
        generators.push_back(std::make_unique<SyntheticGenerator>(
            pattern, makeInjection(cfg, offered_flits, length), length));
    }
    return generators;
}

std::string
formatTrace(const std::vector<TraceEntry>& entries)
{
    std::ostringstream os;
    os << "# cycle src dest length\n";
    for (const TraceEntry& e : entries) {
        os << e.cycle << " " << e.src << " " << e.dest << " " << e.length
           << "\n";
    }
    return os.str();
}

}  // namespace frfc
