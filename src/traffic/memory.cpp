#include "traffic/memory.hpp"

#include <algorithm>
#include <string>

#include "common/config.hpp"
#include "common/log.hpp"
#include "traffic/workload.hpp"

namespace frfc {

MemoryTrafficGenerator::MemoryTrafficGenerator(
    std::shared_ptr<const MemoryParams> params, NodeId node)
    : params_(std::move(params)), node_(node)
{
    FRFC_ASSERT(params_ != nullptr, "null memory params");
    directory_ = std::find(params_->directories.begin(),
                           params_->directories.end(), node_)
        != params_->directories.end();
}

NodeId
MemoryTrafficGenerator::pickDirectory(Rng& rng) const
{
    const std::vector<NodeId>& dirs = params_->directories;
    if (params_->hotspot > 0.0 && rng.nextDouble() < params_->hotspot)
        return dirs.front();
    return dirs[rng.nextBounded(dirs.size())];
}

std::optional<GeneratedPacket>
MemoryTrafficGenerator::generate(const WorkloadContext& ctx)
{
    // Directories are passive: zero draws, traffic only via replies.
    if (directory_)
        return std::nullopt;
    // Exactly one phase-transition draw per cycle (geometric dwells),
    // then one miss draw while ON — a fixed per-cycle draw pattern, so
    // the RNG stream is kernel-independent.
    if (on_) {
        if (ctx.rng->nextBool(1.0 / params_->burstOn))
            on_ = false;
    } else {
        if (ctx.rng->nextBool(1.0 / params_->burstOff))
            on_ = true;
    }
    if (!on_ || !ctx.rng->nextBool(params_->missRate))
        return std::nullopt;
    // All MSHRs busy: the miss stalls the cache and is not re-offered.
    if (outstanding_ >= params_->mshrs)
        return std::nullopt;
    ++outstanding_;
    return GeneratedPacket{pickDirectory(*ctx.rng), params_->reqLength,
                           MessageClass::kRequest};
}

std::optional<GeneratedPacket>
MemoryTrafficGenerator::onPacketEjected(const PacketCompletion& done,
                                        const WorkloadContext& /* ctx */)
{
    if (directory_) {
        // A request reached this directory: send the data reply.
        if (done.cls == MessageClass::kRequest) {
            return GeneratedPacket{done.src, params_->replyLength,
                                   MessageClass::kReply};
        }
        return std::nullopt;
    }
    // A reply came home: the miss is satisfied, free its MSHR.
    if (done.cls == MessageClass::kReply && outstanding_ > 0)
        --outstanding_;
    return std::nullopt;
}

GeneratorInfo
MemoryTrafficGenerator::describe() const
{
    GeneratorInfo info;
    info.kind = "memory";
    info.closedLoop = true;
    info.params.emplace_back("role",
                             directory_ ? "directory" : "requester");
    info.params.emplace_back(
        "directories", std::to_string(params_->directories.size()));
    if (params_->hotspot > 0.0)
        info.params.emplace_back("hotspot",
                                 std::to_string(params_->hotspot));
    info.params.emplace_back("mshrs", std::to_string(params_->mshrs));
    return info;
}

std::vector<std::unique_ptr<PacketGenerator>>
makeMemoryGenerators(const Config& cfg, int num_nodes,
                     double offered_flits)
{
    FRFC_ASSERT(num_nodes >= 2, "memory workload needs at least 2 nodes");
    auto params = std::make_shared<MemoryParams>();
    const int want_dirs =
        cfg.get<int>(kWorkloadMemDirectoriesKey, 4);
    const int num_dirs =
        std::max(1, std::min(want_dirs, num_nodes - 1));
    if (num_dirs != want_dirs) {
        warn("memory workload: clamping ", kWorkloadMemDirectoriesKey,
             "=", want_dirs, " to ", num_dirs, " for ", num_nodes,
             " nodes");
    }
    // Directories evenly spaced across the node id range.
    params->directories.reserve(static_cast<std::size_t>(num_dirs));
    for (int d = 0; d < num_dirs; ++d) {
        params->directories.push_back(static_cast<NodeId>(
            (static_cast<std::int64_t>(d) * num_nodes) / num_dirs));
    }
    params->hotspot = cfg.get<double>(kWorkloadMemHotspotKey, 0.0);
    params->reqLength = cfg.get<int>(kWorkloadMemReqLengthKey, 1);
    params->replyLength = cfg.get<int>(kWorkloadMemReplyLengthKey, 5);
    params->mshrs = cfg.get<int>(kWorkloadMemMshrsKey, 8);
    params->burstOn = cfg.get<double>(kWorkloadMemBurstOnKey, 64.0);
    params->burstOff = cfg.get<double>(kWorkloadMemBurstOffKey, 192.0);
    // Config-driven values get fatal() (exit 1, names the key), not
    // an assert: these are user input, not programmer errors.
    if (params->hotspot < 0.0 || params->hotspot > 1.0)
        fatal("config key '", kWorkloadMemHotspotKey,
              "' must be in [0, 1] (got ", params->hotspot, ")");
    if (params->reqLength <= 0)
        fatal("config key '", kWorkloadMemReqLengthKey,
              "' must be positive (got ", params->reqLength, ")");
    if (params->replyLength <= 0)
        fatal("config key '", kWorkloadMemReplyLengthKey,
              "' must be positive (got ", params->replyLength, ")");
    if (params->mshrs <= 0)
        fatal("config key '", kWorkloadMemMshrsKey,
              "' must be positive (got ", params->mshrs, ")");
    if (params->burstOn < 1.0 || params->burstOff < 1.0)
        fatal("config keys '", kWorkloadMemBurstOnKey, "' and '",
              kWorkloadMemBurstOffKey,
              "' must be >= 1 cycle (got ", params->burstOn, ", ",
              params->burstOff, ")");
    // workload.offered keeps its open-loop meaning (time-average
    // request flits/node/cycle): inflate the ON-phase miss probability
    // by the duty cycle so bursts concentrate the same long-run load.
    const double duty =
        params->burstOn / (params->burstOn + params->burstOff);
    const double packets_per_cycle =
        offered_flits / static_cast<double>(params->reqLength);
    params->missRate = std::min(1.0, packets_per_cycle / duty);

    std::vector<std::unique_ptr<PacketGenerator>> generators;
    generators.reserve(static_cast<std::size_t>(num_nodes));
    for (NodeId node = 0; node < num_nodes; ++node) {
        generators.push_back(
            std::make_unique<MemoryTrafficGenerator>(params, node));
    }
    return generators;
}

}  // namespace frfc
