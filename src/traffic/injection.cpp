#include "traffic/injection.hpp"

#include "common/config.hpp"
#include "common/log.hpp"
#include "traffic/workload.hpp"

namespace frfc {

BernoulliInjection::BernoulliInjection(double packets_per_cycle)
    : rate_(packets_per_cycle)
{
    if (rate_ < 0.0 || rate_ > 1.0)
        fatal("bernoulli packet rate ", rate_, " outside [0, 1]");
}

bool
BernoulliInjection::inject(Rng& rng)
{
    return rng.nextBool(rate_);
}

PeriodicInjection::PeriodicInjection(double packets_per_cycle)
    : rate_(packets_per_cycle)
{
    if (rate_ < 0.0 || rate_ > 1.0)
        fatal("periodic packet rate ", rate_, " outside [0, 1]");
}

bool
PeriodicInjection::inject(Rng& /* rng */)
{
    credit_ += rate_;
    if (credit_ >= 1.0) {
        credit_ -= 1.0;
        return true;
    }
    return false;
}

std::unique_ptr<InjectionProcess>
makeInjection(const Config& cfg, double flits_per_cycle, int packet_length)
{
    if (packet_length <= 0)
        fatal("packet length must be positive");
    const double packet_rate = flits_per_cycle / packet_length;
    const std::string kind = workloadInjectionKind(cfg);
    if (kind == "bernoulli")
        return std::make_unique<BernoulliInjection>(packet_rate);
    if (kind == "periodic")
        return std::make_unique<PeriodicInjection>(packet_rate);
    fatal("unknown injection process '", kind, "'");
}

}  // namespace frfc
