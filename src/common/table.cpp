#include "common/table.hpp"

#include <algorithm>
#include <iomanip>
#include <sstream>

namespace frfc {

void
TextTable::setHeader(std::vector<std::string> header)
{
    header_ = std::move(header);
}

void
TextTable::addRow(std::vector<std::string> row)
{
    rows_.push_back(std::move(row));
}

std::string
TextTable::num(double value, int precision)
{
    std::ostringstream os;
    os << std::fixed << std::setprecision(precision) << value;
    return os.str();
}

std::string
TextTable::percent(double fraction, int precision)
{
    return num(fraction * 100.0, precision) + "%";
}

void
TextTable::print(std::ostream& os) const
{
    std::vector<std::size_t> widths;
    auto grow = [&widths](const std::vector<std::string>& row) {
        if (widths.size() < row.size())
            widths.resize(row.size(), 0);
        for (std::size_t i = 0; i < row.size(); ++i)
            widths[i] = std::max(widths[i], row[i].size());
    };
    grow(header_);
    for (const auto& row : rows_)
        grow(row);

    auto emit = [&](const std::vector<std::string>& row) {
        for (std::size_t i = 0; i < row.size(); ++i) {
            if (i > 0)
                os << "  ";
            os << std::left << std::setw(static_cast<int>(widths[i]))
               << row[i];
        }
        os << "\n";
    };
    if (!header_.empty()) {
        emit(header_);
        std::size_t total = 0;
        for (std::size_t i = 0; i < widths.size(); ++i)
            total += widths[i] + (i > 0 ? 2 : 0);
        os << std::string(total, '-') << "\n";
    }
    for (const auto& row : rows_)
        emit(row);
}

void
TextTable::printCsv(std::ostream& os) const
{
    auto emit = [&os](const std::vector<std::string>& row) {
        for (std::size_t i = 0; i < row.size(); ++i) {
            if (i > 0)
                os << ",";
            os << row[i];
        }
        os << "\n";
    };
    if (!header_.empty())
        emit(header_);
    for (const auto& row : rows_)
        emit(row);
}

}  // namespace frfc
