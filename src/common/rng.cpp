#include "common/rng.hpp"

#include "common/log.hpp"

namespace frfc {

namespace {

inline std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

}  // namespace

std::uint64_t
splitMix64(std::uint64_t& state)
{
    state += 0x9e3779b97f4a7c15ULL;
    std::uint64_t z = state;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

Rng::Rng(std::uint64_t seed, std::uint64_t salt)
{
    // SplitMix64 expands the (seed, salt) pair into four nonzero words.
    std::uint64_t sm = seed ^ (salt * 0xda942042e4dd58b5ULL);
    for (auto& word : s_)
        word = splitMix64(sm);
    // xoshiro must not start from the all-zero state.
    if (s_[0] == 0 && s_[1] == 0 && s_[2] == 0 && s_[3] == 0)
        s_[0] = 1;
}

std::uint64_t
Rng::next()
{
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
}

std::uint64_t
Rng::nextBounded(std::uint64_t bound)
{
    FRFC_ASSERT(bound > 0, "nextBounded requires bound > 0");
    // Rejection sampling to remove modulo bias.
    const std::uint64_t threshold = (0 - bound) % bound;
    for (;;) {
        const std::uint64_t draw = next();
        if (draw >= threshold)
            return draw % bound;
    }
}

std::int64_t
Rng::nextRange(std::int64_t lo, std::int64_t hi)
{
    FRFC_ASSERT(lo <= hi, "nextRange requires lo <= hi");
    const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
    return lo + static_cast<std::int64_t>(nextBounded(span));
}

double
Rng::nextDouble()
{
    // 53 high bits give a uniform double in [0, 1).
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

bool
Rng::nextBool(double p)
{
    if (p <= 0.0)
        return false;
    if (p >= 1.0)
        return true;
    return nextDouble() < p;
}

Rng
Rng::split(std::uint64_t salt)
{
    return Rng(next(), salt);
}

}  // namespace frfc
