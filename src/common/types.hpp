/**
 * @file
 * Fundamental scalar types shared across the simulator.
 */

#ifndef FRFC_COMMON_TYPES_HPP
#define FRFC_COMMON_TYPES_HPP

#include <cstdint>
#include <limits>

namespace frfc {

/** Simulation time in clock cycles. */
using Cycle = std::int64_t;

/** Sentinel for "no cycle" / unscheduled. */
inline constexpr Cycle kInvalidCycle = std::numeric_limits<Cycle>::min();

/** Flat node identifier within a topology (0 .. numNodes-1). */
using NodeId = std::int32_t;

/** Sentinel node id. */
inline constexpr NodeId kInvalidNode = -1;

/** Router port index (0 .. radix-1). */
using PortId = std::int32_t;

/** Sentinel port id. */
inline constexpr PortId kInvalidPort = -1;

/** Virtual-channel index within a port. */
using VcId = std::int32_t;

/** Sentinel VC id. */
inline constexpr VcId kInvalidVc = -1;

/** Globally unique packet identifier. */
using PacketId = std::int64_t;

/** Sentinel packet id. */
inline constexpr PacketId kInvalidPacket = -1;

/** Buffer slot index within a buffer pool. */
using BufferId = std::int32_t;

/** Sentinel buffer id. */
inline constexpr BufferId kInvalidBuffer = -1;

}  // namespace frfc

#endif  // FRFC_COMMON_TYPES_HPP
