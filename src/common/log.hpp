/**
 * @file
 * Error-reporting helpers in the gem5 tradition.
 *
 * fatal()  — the simulation cannot continue because of a user error
 *            (bad configuration, invalid argument); exits with code 1.
 * panic()  — an internal invariant was violated (a simulator bug);
 *            aborts so a debugger/core dump can capture state.
 * warn()   — something is questionable but simulation continues.
 * inform() — plain status output.
 */

#ifndef FRFC_COMMON_LOG_HPP
#define FRFC_COMMON_LOG_HPP

#include <cstdlib>
#include <sstream>
#include <string>

namespace frfc {

namespace detail {

/** Builds a message from streamable parts. */
template <typename... Args>
std::string
concat(Args&&... args)
{
    std::ostringstream os;
    (os << ... << args);
    return os.str();
}

[[noreturn]] void fatalImpl(const std::string& msg);
[[noreturn]] void panicImpl(const std::string& msg);
void warnImpl(const std::string& msg);
void informImpl(const std::string& msg);

}  // namespace detail

/** Report a user-caused error and exit(1). */
template <typename... Args>
[[noreturn]] void
fatal(Args&&... args)
{
    detail::fatalImpl(detail::concat(std::forward<Args>(args)...));
}

/** Report a simulator bug and abort(). */
template <typename... Args>
[[noreturn]] void
panic(Args&&... args)
{
    detail::panicImpl(detail::concat(std::forward<Args>(args)...));
}

/** Emit a warning; simulation continues. */
template <typename... Args>
void
warn(Args&&... args)
{
    detail::warnImpl(detail::concat(std::forward<Args>(args)...));
}

/** Emit a status message. */
template <typename... Args>
void
inform(Args&&... args)
{
    detail::informImpl(detail::concat(std::forward<Args>(args)...));
}

/**
 * Check an internal invariant; panics with location info on failure.
 * Active in all build types (simulation correctness beats a few percent
 * of speed, and the hot paths have been measured to tolerate it).
 */
#define FRFC_ASSERT(cond, ...)                                              \
    do {                                                                    \
        if (!(cond)) {                                                      \
            ::frfc::panic("assertion failed: ", #cond, " at ", __FILE__,    \
                          ":", __LINE__, " ", ##__VA_ARGS__);               \
        }                                                                   \
    } while (0)

}  // namespace frfc

#endif  // FRFC_COMMON_LOG_HPP
