/**
 * @file
 * Growable power-of-two ring-buffer FIFO (DESIGN.md §12).
 *
 * The router hot paths queue flits and control flits with strict FIFO
 * discipline and small, mostly bounded depths (a control VC holds at
 * most ctrlVcDepth flits; an input VC at most vcDepth). std::deque
 * pays a heap-allocated block map plus double indirection for that;
 * this ring keeps the elements in one contiguous power-of-two array
 * indexed by `(head + i) & mask`, growing (rarely — only unbounded
 * source queues ever do) by doubling. Interface mirrors the deque
 * subset the routers use: push_back / emplace_back / front / pop_front
 * / size / empty / clear.
 */

#ifndef FRFC_COMMON_RING_QUEUE_HPP
#define FRFC_COMMON_RING_QUEUE_HPP

#include <bit>
#include <cstddef>
#include <utility>
#include <vector>

namespace frfc {

/** Contiguous FIFO over a power-of-two slot ring. */
template <typename T>
class RingQueue
{
  public:
    RingQueue() : slots_(kMinCapacity) {}

    bool empty() const { return count_ == 0; }
    std::size_t size() const { return count_; }

    T& front() { return slots_[head_]; }
    const T& front() const { return slots_[head_]; }

    T& back() { return slots_[(head_ + count_ - 1) & mask()]; }
    const T&
    back() const
    {
        return slots_[(head_ + count_ - 1) & mask()];
    }

    /** i-th element from the front (0 = front). */
    T& operator[](std::size_t i) { return slots_[(head_ + i) & mask()]; }
    const T&
    operator[](std::size_t i) const
    {
        return slots_[(head_ + i) & mask()];
    }

    void
    push_back(const T& value)
    {
        if (count_ == slots_.size())
            grow();
        slots_[(head_ + count_) & mask()] = value;
        ++count_;
    }

    void
    push_back(T&& value)
    {
        if (count_ == slots_.size())
            grow();
        slots_[(head_ + count_) & mask()] = std::move(value);
        ++count_;
    }

    template <typename... Args>
    T&
    emplace_back(Args&&... args)
    {
        if (count_ == slots_.size())
            grow();
        T& slot = slots_[(head_ + count_) & mask()];
        slot = T(std::forward<Args>(args)...);
        ++count_;
        return slot;
    }

    void
    pop_front()
    {
        slots_[head_] = T();  // release payload resources eagerly
        head_ = (head_ + 1) & mask();
        --count_;
    }

    void
    clear()
    {
        while (count_ > 0)
            pop_front();
        head_ = 0;
    }

    /** Ensure capacity for @p n elements without further growth. */
    void
    reserve(std::size_t n)
    {
        if (n > slots_.size())
            rebuild(std::bit_ceil(n));
    }

  private:
    static constexpr std::size_t kMinCapacity = 4;

    std::size_t mask() const { return slots_.size() - 1; }

    void grow() { rebuild(slots_.size() * 2); }

    void
    rebuild(std::size_t capacity)
    {
        std::vector<T> next(capacity);
        for (std::size_t i = 0; i < count_; ++i)
            next[i] = std::move(slots_[(head_ + i) & mask()]);
        slots_ = std::move(next);
        head_ = 0;
    }

    std::vector<T> slots_;
    std::size_t head_ = 0;
    std::size_t count_ = 0;
};

}  // namespace frfc

#endif  // FRFC_COMMON_RING_QUEUE_HPP
