/**
 * @file
 * Key/value configuration store.
 *
 * Every experiment is a Config: a flat map from string keys to string
 * values with typed accessors. Values come from programmatic set() calls,
 * `key=value` command-line tokens, or simple `key = value` config files
 * ('#' starts a comment). Typed getters fatal() on missing keys or
 * malformed values — configuration errors are user errors.
 *
 * The typed read API is `get<T>(key)` / `get<T>(key, dflt)` with
 * T ∈ {std::string, std::int64_t, int, double, bool}. Namespaced key
 * groups are read through scope(): `cfg.scope("run").get<int>("threads")`
 * reads `run.threads`. The legacy getString/getInt/getDouble/getBool
 * names remain as thin deprecated wrappers over get<T>.
 *
 * Key namespaces understood by the harness rather than the simulated
 * network:
 *   run.* — measurement protocol (RunOptions::fromConfig): sample size,
 *           warm-up bounds, cycle budget, and `run.threads`, the worker
 *           count of the parallel executor (0 = one per hardware thread).
 *   out.* — report emission: `out.format=table|json|csv`, `out.file=...`
 *           (empty = stdout), `out.metrics=full|none`.
 * Any bench or example that applies CLI tokens accepts them, e.g.
 * `fig5_latency_5flit run.threads=8 out.format=json out.file=fig5.json`.
 */

#ifndef FRFC_COMMON_CONFIG_HPP
#define FRFC_COMMON_CONFIG_HPP

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace frfc {

class ConfigScope;

/** Flat typed key/value configuration with defaults and overrides. */
class Config
{
  public:
    Config() = default;

    /** Set (or override) a key from any streamable value. */
    void set(const std::string& key, const std::string& value);
    void set(const std::string& key, const char* value);
    void set(const std::string& key, std::int64_t value);
    void set(const std::string& key, int value);
    void set(const std::string& key, double value);
    void set(const std::string& key, bool value);

    /** True if the key has a value. */
    bool has(const std::string& key) const;

    /**
     * Typed read; fatal() if the key is absent or its value does not
     * parse as T. Specialized for std::string, std::int64_t, int,
     * double, and bool (bool accepts true/1/yes/on and false/0/no/off;
     * integers accept any strtoll base-0 literal, hex included).
     */
    template <typename T>
    T get(const std::string& key) const;

    /** Typed read with a default for absent keys. */
    template <typename T>
    T
    get(const std::string& key, const T& dflt) const
    {
        return has(key) ? get<T>(key) : dflt;
    }

    /** Convenience so get(key, "literal") deduces std::string. */
    std::string
    get(const std::string& key, const char* dflt) const
    {
        return get<std::string>(key, std::string(dflt));
    }

    /**
     * A read-only view of the keys under `prefix.`; scope("run")
     * resolves get<T>("threads") against "run.threads". The view
     * borrows this Config — keep it on the stack, not past the
     * Config's lifetime.
     */
    ConfigScope scope(const std::string& prefix) const;

    /** @{ Deprecated: thin wrappers over get<T>; prefer get<T>(). */
    std::string getString(const std::string& key) const;
    std::int64_t getInt(const std::string& key) const;
    double getDouble(const std::string& key) const;
    bool getBool(const std::string& key) const;
    std::string getString(const std::string& key,
                          const std::string& dflt) const;
    std::int64_t getInt(const std::string& key, std::int64_t dflt) const;
    double getDouble(const std::string& key, double dflt) const;
    bool getBool(const std::string& key, bool dflt) const;
    /** @} */

    /**
     * Apply `key=value` tokens (e.g. from argv). Tokens without '=' are
     * returned unconsumed so callers can treat them as positional args.
     */
    std::vector<std::string>
    applyArgs(const std::vector<std::string>& tokens);

    /** Load `key = value` lines from a file; fatal() if unreadable. */
    void loadFile(const std::string& path);

    /** All keys in sorted order (for dumps and fingerprints). */
    std::vector<std::string> keys() const;

    /** Render as sorted "key = value" lines. */
    std::string toString() const;

  private:
    std::optional<std::string> lookup(const std::string& key) const;

    std::map<std::string, std::string> values_;
};

template <>
std::string Config::get<std::string>(const std::string& key) const;
template <>
std::int64_t Config::get<std::int64_t>(const std::string& key) const;
template <>
int Config::get<int>(const std::string& key) const;
template <>
double Config::get<double>(const std::string& key) const;
template <>
bool Config::get<bool>(const std::string& key) const;

/**
 * Read-only namespaced view into a Config (see Config::scope). All
 * reads prepend `prefix.` to the given key.
 */
class ConfigScope
{
  public:
    ConfigScope(const Config& cfg, std::string prefix);

    const std::string& prefix() const { return prefix_; }

    bool
    has(const std::string& key) const
    {
        return cfg_->has(full(key));
    }

    template <typename T>
    T
    get(const std::string& key) const
    {
        return cfg_->get<T>(full(key));
    }

    template <typename T>
    T
    get(const std::string& key, const T& dflt) const
    {
        return cfg_->get<T>(full(key), dflt);
    }

    std::string
    get(const std::string& key, const char* dflt) const
    {
        return cfg_->get(full(key), dflt);
    }

    /** Keys present under the prefix, with the prefix stripped. */
    std::vector<std::string> keys() const;

  private:
    std::string
    full(const std::string& key) const
    {
        return prefix_ + key;
    }

    const Config* cfg_;
    std::string prefix_;  ///< including the trailing '.'
};

}  // namespace frfc

#endif  // FRFC_COMMON_CONFIG_HPP
