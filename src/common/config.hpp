/**
 * @file
 * Key/value configuration store.
 *
 * Every experiment is a Config: a flat map from string keys to string
 * values with typed accessors. Values come from programmatic set() calls,
 * `key=value` command-line tokens, or simple `key = value` config files
 * ('#' starts a comment). Typed getters fatal() on missing keys or
 * malformed values — configuration errors are user errors.
 *
 * The `run.*` namespace configures the measurement protocol rather
 * than the simulated network (RunOptions::fromConfig): sample size,
 * warm-up bounds, cycle budget, and `run.threads` — the worker count
 * of the parallel experiment executor (0 = one per hardware thread).
 * Any bench or example that applies CLI tokens accepts them, e.g.
 * `fig5_latency_5flit run.threads=8`.
 */

#ifndef FRFC_COMMON_CONFIG_HPP
#define FRFC_COMMON_CONFIG_HPP

#include <map>
#include <optional>
#include <string>
#include <vector>

namespace frfc {

/** Flat typed key/value configuration with defaults and overrides. */
class Config
{
  public:
    Config() = default;

    /** Set (or override) a key from any streamable value. */
    void set(const std::string& key, const std::string& value);
    void set(const std::string& key, const char* value);
    void set(const std::string& key, std::int64_t value);
    void set(const std::string& key, int value);
    void set(const std::string& key, double value);
    void set(const std::string& key, bool value);

    /** True if the key has a value. */
    bool has(const std::string& key) const;

    /** Typed getters; fatal() if absent or malformed. */
    std::string getString(const std::string& key) const;
    std::int64_t getInt(const std::string& key) const;
    double getDouble(const std::string& key) const;
    bool getBool(const std::string& key) const;

    /** Typed getters with a default for absent keys. */
    std::string getString(const std::string& key,
                          const std::string& dflt) const;
    std::int64_t getInt(const std::string& key, std::int64_t dflt) const;
    double getDouble(const std::string& key, double dflt) const;
    bool getBool(const std::string& key, bool dflt) const;

    /**
     * Apply `key=value` tokens (e.g. from argv). Tokens without '=' are
     * returned unconsumed so callers can treat them as positional args.
     */
    std::vector<std::string>
    applyArgs(const std::vector<std::string>& tokens);

    /** Load `key = value` lines from a file; fatal() if unreadable. */
    void loadFile(const std::string& path);

    /** All keys in sorted order (for dumps and fingerprints). */
    std::vector<std::string> keys() const;

    /** Render as sorted "key = value" lines. */
    std::string toString() const;

  private:
    std::optional<std::string> lookup(const std::string& key) const;

    std::map<std::string, std::string> values_;
};

}  // namespace frfc

#endif  // FRFC_COMMON_CONFIG_HPP
