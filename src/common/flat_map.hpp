/**
 * @file
 * Open-addressing hash map for non-negative integer keys.
 *
 * A flat alternative to std::unordered_map for hot paths that key on
 * ids (PacketId, NodeId): one contiguous slot array, linear probing,
 * backward-shift deletion (no tombstones), power-of-two capacity. Keys
 * must be >= 0; the empty-slot sentinel is -1.
 */

#ifndef FRFC_COMMON_FLAT_MAP_HPP
#define FRFC_COMMON_FLAT_MAP_HPP

#include <bit>
#include <cstdint>
#include <vector>

#include "common/log.hpp"

namespace frfc {

/** Flat open-addressing map from non-negative int64 keys to V. */
template <typename V>
class FlatMap
{
  public:
    struct Slot
    {
        std::int64_t key = kEmpty;
        V value{};
    };

    FlatMap() : slots_(kMinSlots) {}

    /** Pre-size for @p n live entries without rehashing. */
    void
    reserve(std::size_t n)
    {
        const std::size_t want = std::bit_ceil(n * 2);
        if (want > slots_.size())
            rehash(want);
    }

    std::size_t size() const { return count_; }
    bool empty() const { return count_ == 0; }

    /** Value for @p key, inserting a copy of @p init if absent. */
    V&
    findOrInsert(std::int64_t key, const V& init)
    {
        FRFC_ASSERT(key >= 0, "flat map key must be non-negative");
        if ((count_ + 1) * 4 > slots_.size() * 3)
            rehash(slots_.size() * 2);
        std::size_t i = indexFor(key);
        while (slots_[i].key != kEmpty) {
            if (slots_[i].key == key)
                return slots_[i].value;
            i = (i + 1) & mask();
        }
        slots_[i].key = key;
        slots_[i].value = init;
        ++count_;
        return slots_[i].value;
    }

    /** Pointer to @p key's value, or null when absent. */
    V*
    find(std::int64_t key)
    {
        std::size_t i = indexFor(key);
        while (slots_[i].key != kEmpty) {
            if (slots_[i].key == key)
                return &slots_[i].value;
            i = (i + 1) & mask();
        }
        return nullptr;
    }

    /** Remove @p key (must be present). Backward-shifts the probe
     *  chain so lookups never need tombstones. */
    void
    erase(std::int64_t key)
    {
        std::size_t i = indexFor(key);
        while (slots_[i].key != key) {
            FRFC_ASSERT(slots_[i].key != kEmpty,
                        "erase of missing flat map key ", key);
            i = (i + 1) & mask();
        }
        std::size_t hole = i;
        for (std::size_t j = (hole + 1) & mask();
             slots_[j].key != kEmpty; j = (j + 1) & mask()) {
            // Shift back any entry whose home slot cannot reach it
            // once the hole interrupts its probe chain.
            const std::size_t home = indexFor(slots_[j].key);
            const bool reachable =
                ((j - home) & mask()) >= ((j - hole) & mask());
            if (reachable) {
                slots_[hole] = slots_[j];
                hole = j;
            }
        }
        slots_[hole].key = kEmpty;
        slots_[hole].value = V{};
        --count_;
    }

    void
    clear()
    {
        for (Slot& slot : slots_)
            slot = Slot{};
        count_ = 0;
    }

  private:
    static constexpr std::int64_t kEmpty = -1;
    static constexpr std::size_t kMinSlots = 8;

    std::size_t mask() const { return slots_.size() - 1; }

    std::size_t
    indexFor(std::int64_t key) const
    {
        // splitmix64 finalizer: ids are often sequential in the low
        // bits, so spread them across the table.
        auto h = static_cast<std::uint64_t>(key);
        h = (h ^ (h >> 30)) * 0xbf58476d1ce4e5b9ULL;
        h = (h ^ (h >> 27)) * 0x94d049bb133111ebULL;
        return static_cast<std::size_t>(h ^ (h >> 31)) & mask();
    }

    void
    rehash(std::size_t new_slots)
    {
        std::vector<Slot> old = std::move(slots_);
        slots_.assign(new_slots, Slot{});
        count_ = 0;
        for (Slot& slot : old) {
            if (slot.key != kEmpty)
                findOrInsert(slot.key, slot.value);
        }
    }

    std::vector<Slot> slots_;
    std::size_t count_ = 0;
};

}  // namespace frfc

#endif  // FRFC_COMMON_FLAT_MAP_HPP
