/**
 * @file
 * Plain-text and CSV table emitters used by the benchmark harnesses to
 * print paper-style rows and series.
 */

#ifndef FRFC_COMMON_TABLE_HPP
#define FRFC_COMMON_TABLE_HPP

#include <ostream>
#include <string>
#include <vector>

namespace frfc {

/**
 * Column-aligned text table. Collect rows of cells, then render with
 * print(); also exports CSV for downstream plotting.
 */
class TextTable
{
  public:
    /** Set the header row. */
    void setHeader(std::vector<std::string> header);

    /** Append a data row (cell count may differ from header). */
    void addRow(std::vector<std::string> row);

    /** Convenience: format a double with fixed precision. */
    static std::string num(double value, int precision = 2);

    /** Convenience: format a percentage ("77.0%"). */
    static std::string percent(double fraction, int precision = 1);

    /** Render the aligned table. */
    void print(std::ostream& os) const;

    /** Render as CSV. */
    void printCsv(std::ostream& os) const;

    /** Number of data rows. */
    std::size_t rowCount() const { return rows_.size(); }

  private:
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;
};

}  // namespace frfc

#endif  // FRFC_COMMON_TABLE_HPP
