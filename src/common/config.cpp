#include "common/config.hpp"

#include <cctype>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "common/log.hpp"

namespace frfc {

namespace {

std::string
trim(const std::string& s)
{
    std::size_t begin = 0;
    std::size_t end = s.size();
    while (begin < end && std::isspace(static_cast<unsigned char>(s[begin])))
        ++begin;
    while (end > begin && std::isspace(static_cast<unsigned char>(s[end - 1])))
        --end;
    return s.substr(begin, end - begin);
}

}  // namespace

void
Config::set(const std::string& key, const std::string& value)
{
    values_[key] = value;
}

void
Config::set(const std::string& key, const char* value)
{
    values_[key] = value;
}

void
Config::set(const std::string& key, std::int64_t value)
{
    values_[key] = std::to_string(value);
}

void
Config::set(const std::string& key, int value)
{
    values_[key] = std::to_string(value);
}

void
Config::set(const std::string& key, double value)
{
    std::ostringstream os;
    os.precision(17);
    os << value;
    values_[key] = os.str();
}

void
Config::set(const std::string& key, bool value)
{
    values_[key] = value ? "true" : "false";
}

bool
Config::has(const std::string& key) const
{
    return values_.count(key) > 0;
}

std::optional<std::string>
Config::lookup(const std::string& key) const
{
    auto it = values_.find(key);
    if (it == values_.end())
        return std::nullopt;
    return it->second;
}

template <>
std::string
Config::get<std::string>(const std::string& key) const
{
    auto v = lookup(key);
    if (!v)
        fatal("missing config key '", key, "'");
    return *v;
}

template <>
std::int64_t
Config::get<std::int64_t>(const std::string& key) const
{
    const std::string v = get<std::string>(key);
    char* end = nullptr;
    const long long parsed = std::strtoll(v.c_str(), &end, 0);
    if (end == v.c_str() || *end != '\0')
        fatal("config key '", key, "' = '", v, "' is not an integer");
    return parsed;
}

template <>
int
Config::get<int>(const std::string& key) const
{
    return static_cast<int>(get<std::int64_t>(key));
}

template <>
double
Config::get<double>(const std::string& key) const
{
    const std::string v = get<std::string>(key);
    char* end = nullptr;
    const double parsed = std::strtod(v.c_str(), &end);
    if (end == v.c_str() || *end != '\0')
        fatal("config key '", key, "' = '", v, "' is not a number");
    return parsed;
}

template <>
bool
Config::get<bool>(const std::string& key) const
{
    const std::string v = get<std::string>(key);
    if (v == "true" || v == "1" || v == "yes" || v == "on")
        return true;
    if (v == "false" || v == "0" || v == "no" || v == "off")
        return false;
    fatal("config key '", key, "' = '", v, "' is not a boolean");
}

ConfigScope
Config::scope(const std::string& prefix) const
{
    return ConfigScope(*this, prefix);
}

std::string
Config::getString(const std::string& key) const
{
    return get<std::string>(key);
}

std::int64_t
Config::getInt(const std::string& key) const
{
    return get<std::int64_t>(key);
}

double
Config::getDouble(const std::string& key) const
{
    return get<double>(key);
}

bool
Config::getBool(const std::string& key) const
{
    return get<bool>(key);
}

std::string
Config::getString(const std::string& key, const std::string& dflt) const
{
    return get<std::string>(key, dflt);
}

std::int64_t
Config::getInt(const std::string& key, std::int64_t dflt) const
{
    return get<std::int64_t>(key, dflt);
}

double
Config::getDouble(const std::string& key, double dflt) const
{
    return get<double>(key, dflt);
}

bool
Config::getBool(const std::string& key, bool dflt) const
{
    return get<bool>(key, dflt);
}

std::vector<std::string>
Config::applyArgs(const std::vector<std::string>& tokens)
{
    std::vector<std::string> positional;
    for (const auto& token : tokens) {
        const std::size_t eq = token.find('=');
        if (eq == std::string::npos || eq == 0) {
            positional.push_back(token);
            continue;
        }
        set(trim(token.substr(0, eq)), trim(token.substr(eq + 1)));
    }
    return positional;
}

void
Config::loadFile(const std::string& path)
{
    std::ifstream in(path);
    if (!in)
        fatal("cannot open config file '", path, "'");
    std::string line;
    int lineno = 0;
    while (std::getline(in, line)) {
        ++lineno;
        const std::size_t hash = line.find('#');
        if (hash != std::string::npos)
            line.erase(hash);
        line = trim(line);
        if (line.empty())
            continue;
        const std::size_t eq = line.find('=');
        if (eq == std::string::npos || eq == 0) {
            fatal("config file '", path, "' line ", lineno,
                  ": expected 'key = value'");
        }
        set(trim(line.substr(0, eq)), trim(line.substr(eq + 1)));
    }
}

std::vector<std::string>
Config::keys() const
{
    std::vector<std::string> out;
    out.reserve(values_.size());
    for (const auto& [key, value] : values_)
        out.push_back(key);
    return out;
}

std::string
Config::toString() const
{
    std::ostringstream os;
    for (const auto& [key, value] : values_)
        os << key << " = " << value << "\n";
    return os.str();
}

ConfigScope::ConfigScope(const Config& cfg, std::string prefix)
    : cfg_(&cfg), prefix_(std::move(prefix))
{
    if (prefix_.empty() || prefix_.back() != '.')
        prefix_ += '.';
}

std::vector<std::string>
ConfigScope::keys() const
{
    std::vector<std::string> out;
    for (const std::string& key : cfg_->keys()) {
        if (key.size() > prefix_.size() &&
            key.compare(0, prefix_.size(), prefix_) == 0) {
            out.push_back(key.substr(prefix_.size()));
        }
    }
    return out;
}

}  // namespace frfc
