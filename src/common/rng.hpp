/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * Every stochastic component of the simulator (traffic sources, random
 * arbiters) owns its own Rng stream, seeded deterministically from a
 * master seed plus a component-specific salt. Runs with equal seeds are
 * bit-identical regardless of evaluation order.
 *
 * The generator is xoshiro256**, seeded through SplitMix64 — fast,
 * well-distributed, and trivially reproducible across platforms.
 */

#ifndef FRFC_COMMON_RNG_HPP
#define FRFC_COMMON_RNG_HPP

#include <array>
#include <cstdint>

namespace frfc {

/** Stateless 64-bit mixer used for seeding and stream splitting. */
std::uint64_t splitMix64(std::uint64_t& state);

/**
 * xoshiro256** pseudo-random generator with convenience draws.
 */
class Rng
{
  public:
    /** Construct from a master seed and an optional stream salt. */
    explicit Rng(std::uint64_t seed, std::uint64_t salt = 0);

    /** Next raw 64-bit draw. */
    std::uint64_t next();

    /** Uniform integer in [0, bound) (bound > 0), unbiased. */
    std::uint64_t nextBounded(std::uint64_t bound);

    /** Uniform integer in [lo, hi] inclusive. */
    std::int64_t nextRange(std::int64_t lo, std::int64_t hi);

    /** Uniform double in [0, 1). */
    double nextDouble();

    /** Bernoulli draw: true with probability p. */
    bool nextBool(double p);

    /** Derive an independent child stream (for per-component RNGs). */
    Rng split(std::uint64_t salt);

  private:
    std::array<std::uint64_t, 4> s_;
};

}  // namespace frfc

#endif  // FRFC_COMMON_RNG_HPP
