#include "proto/flit.hpp"

#include <sstream>

namespace frfc {

const char*
messageClassName(MessageClass cls)
{
    return cls == MessageClass::kReply ? "reply" : "request";
}

std::uint64_t
Flit::expectedPayload(PacketId id, int seq)
{
    // A cheap mix so corrupted routing shows up as a payload mismatch.
    std::uint64_t v = static_cast<std::uint64_t>(id) * 0x9e3779b97f4a7c15ULL
        + static_cast<std::uint64_t>(seq) * 0xbf58476d1ce4e5b9ULL;
    v ^= v >> 29;
    return v;
}

std::string
Flit::toString() const
{
    std::ostringstream os;
    os << "flit(pkt=" << packet << " seq=" << seq << "/" << packetLength
       << (head ? " H" : "") << (tail ? " T" : "") << " " << src << "->"
       << dest << " vc=" << vc << ")";
    return os.str();
}

}  // namespace frfc
