#include "proto/packet_registry.hpp"

#include <cstdlib>

#include "common/log.hpp"

namespace frfc {

PacketId
PacketRegistry::create(NodeId src, NodeId dest, int length, Cycle now)
{
    FRFC_ASSERT(length > 0, "packet needs at least one flit");
    const PacketId id = next_id_++;
    Record rec;
    rec.src = src;
    rec.dest = dest;
    rec.length = length;
    rec.created = now;
    rec.seen.assign(static_cast<std::size_t>(length), false);
    if (sampling_ && sample_created_ < sample_target_) {
        rec.sample = true;
        ++sample_created_;
    }
    inflight_.emplace(id, std::move(rec));
    ++created_;
    return id;
}

void
PacketRegistry::deliverFlit(Cycle now, const Flit& flit)
{
    auto it = inflight_.find(flit.packet);
    FRFC_ASSERT(it != inflight_.end(), "delivery of unknown/duplicate ",
                flit.toString());
    Record& rec = it->second;
    FRFC_ASSERT(flit.seq >= 0 && flit.seq < rec.length,
                "sequence out of range: ", flit.toString());
    FRFC_ASSERT(!rec.seen[static_cast<std::size_t>(flit.seq)],
                "duplicate delivery: ", flit.toString());
    FRFC_ASSERT(flit.dest == rec.dest, "misdelivered ", flit.toString());
    FRFC_ASSERT(flit.payload == Flit::expectedPayload(flit.packet,
                                                      flit.seq),
                "corrupted payload: ", flit.toString());
    rec.seen[static_cast<std::size_t>(flit.seq)] = true;
    ++rec.flitsSeen;
    ++flits_delivered_;

    if (rec.flitsSeen == rec.length) {
        if (rec.sample) {
            sample_latency_.add(static_cast<double>(now - rec.created));
            sample_hist_.add(static_cast<double>(now - rec.created));
            ++sample_delivered_;
        }
        inflight_.erase(it);
        ++delivered_;
    }
}

void
PacketRegistry::startSampling(std::int64_t target)
{
    FRFC_ASSERT(!sampling_, "sampling already started");
    sampling_ = true;
    sample_target_ = target;
}

bool
PacketRegistry::sampleFullyCreated() const
{
    return sampling_ && sample_created_ >= sample_target_;
}

bool
PacketRegistry::sampleFullyDelivered() const
{
    return sampleFullyCreated() && sample_delivered_ >= sample_target_;
}

}  // namespace frfc
