#include "proto/packet_registry.hpp"

#include <algorithm>
#include <cstdlib>

#include "common/log.hpp"

namespace frfc {

PacketId
PacketRegistry::create(NodeId src, NodeId dest, int length, Cycle now,
                       MessageClass cls)
{
    const PacketId id = makePacketId(src, next_seq_[src]++);
    recordCreate(id, src, dest, length, now, cls);
    return id;
}

void
PacketRegistry::recordCreate(PacketId id, NodeId src, NodeId dest,
                             int length, Cycle now, MessageClass cls)
{
    FRFC_ASSERT(length > 0, "packet needs at least one flit");
    Record rec;
    rec.src = src;
    rec.dest = dest;
    rec.length = length;
    rec.created = now;
    rec.cls = cls;
    rec.seen.assign(static_cast<std::size_t>(length), false);
    if (sampling_ && sample_created_ < sample_target_) {
        rec.sample = true;
        ++sample_created_;
    }
    const bool inserted = inflight_.emplace(id, std::move(rec)).second;
    FRFC_ASSERT(inserted, "duplicate packet id ", id, " from node ",
                src);
    ++created_;
    ++class_created_[static_cast<std::size_t>(cls)];
}

void
PacketRegistry::deliverFlit(Cycle now, const Flit& flit)
{
    auto it = inflight_.find(flit.packet);
    FRFC_ASSERT(it != inflight_.end(), "delivery of unknown/duplicate ",
                flit.toString());
    Record& rec = it->second;
    FRFC_ASSERT(flit.seq >= 0 && flit.seq < rec.length,
                "sequence out of range: ", flit.toString());
    FRFC_ASSERT(!rec.seen[static_cast<std::size_t>(flit.seq)],
                "duplicate delivery: ", flit.toString());
    FRFC_ASSERT(flit.dest == rec.dest, "misdelivered ", flit.toString());
    FRFC_ASSERT(flit.payload == Flit::expectedPayload(flit.packet,
                                                      flit.seq),
                "corrupted payload: ", flit.toString());
    FRFC_ASSERT(flit.cls == rec.cls, "message class changed in flight: ",
                flit.toString());
    rec.seen[static_cast<std::size_t>(flit.seq)] = true;
    ++rec.flitsSeen;
    ++flits_delivered_;

    if (rec.flitsSeen == rec.length) {
        const std::size_t cls = static_cast<std::size_t>(rec.cls);
        if (rec.sample) {
            const double latency = static_cast<double>(now - rec.created);
            sample_latency_.add(latency);
            sample_hist_.add(latency);
            class_latency_[cls].add(latency);
            class_hist_[cls].add(latency);
            ++sample_delivered_;
        }
        inflight_.erase(it);
        ++delivered_;
        ++class_delivered_[cls];
    }
}

void
PacketRegistry::startSampling(std::int64_t target)
{
    FRFC_ASSERT(!sampling_, "sampling already started");
    sampling_ = true;
    sample_target_ = target;
}

bool
PacketRegistry::sampleFullyCreated() const
{
    return sampling_ && sample_created_ >= sample_target_;
}

bool
PacketRegistry::sampleFullyDelivered() const
{
    return sampleFullyCreated() && sample_delivered_ >= sample_target_;
}

PacketId
DeferredPacketLedger::create(NodeId src, NodeId dest, int length,
                             Cycle now, MessageClass cls)
{
    const PacketId id = makePacketId(src, next_seq_[src]++);
    creates_.push_back(CreateEvent{now, src, dest, id, length, cls});
    return id;
}

void
DeferredPacketLedger::deliverFlit(Cycle now, const Flit& flit)
{
    delivers_.push_back(DeliverEvent{now, flit});
}

void
replayDeferredLedgers(PacketRegistry& registry,
                      std::vector<DeferredPacketLedger*>& ledgers,
                      LedgerReplayScratch& scratch)
{
    // Each shard's buffers are already sorted — its kernel executes
    // cycles in order, and within a cycle sources/sink slices run in
    // node order — so a k-way merge would do; a sort of the merged
    // window is simpler and the windows are small (one cycle in the
    // common lookahead-1 case). The caller-owned scratch keeps the
    // per-window merge allocation-free in steady state.
    auto& creates = scratch.creates;
    auto& delivers = scratch.delivers;
    creates.clear();
    delivers.clear();
    for (const DeferredPacketLedger* ledger : ledgers) {
        creates.insert(creates.end(), ledger->creates().begin(),
                       ledger->creates().end());
        delivers.insert(delivers.end(), ledger->delivers().begin(),
                        ledger->delivers().end());
    }
    // Creations order by (cycle, id): ids are (source, mint ordinal),
    // so this is node order with a node's same-cycle creations — a
    // completion-triggered reply, then its own birth — kept in the
    // order the node minted them, exactly as a serial kernel runs.
    std::sort(creates.begin(), creates.end(),
              [](const auto& a, const auto& b) {
                  return a.cycle != b.cycle ? a.cycle < b.cycle
                                            : a.id < b.id;
              });
    std::sort(delivers.begin(), delivers.end(),
              [](const auto& a, const auto& b) {
                  return a.cycle != b.cycle
                      ? a.cycle < b.cycle
                      : a.flit.dest < b.flit.dest;
              });

    // Serial order within a cycle: all creations (sources tick before
    // routers and the sink in registration order), then deliveries.
    std::size_t ci = 0;
    std::size_t di = 0;
    while (ci < creates.size() || di < delivers.size()) {
        const bool take_create = ci < creates.size()
            && (di >= delivers.size()
                || creates[ci].cycle <= delivers[di].cycle);
        if (take_create) {
            const auto& ev = creates[ci++];
            registry.recordCreate(ev.id, ev.src, ev.dest, ev.length,
                                  ev.cycle, ev.cls);
        } else {
            const auto& ev = delivers[di++];
            registry.deliverFlit(ev.cycle, ev.flit);
        }
    }
    for (DeferredPacketLedger* ledger : ledgers)
        ledger->clearEvents();
}

}  // namespace frfc
