/**
 * @file
 * Flit, packet, and credit message types.
 *
 * A Flit carries simulator-side identity (packet id, sequence, payload
 * checksum) used for verification and statistics. Flow-control logic is
 * not allowed to steer data flits by these fields under flit-reservation
 * flow control — there, data flits are identified purely by arrival
 * time — but the fields let tests prove the schedule delivered the right
 * bits to the right place.
 */

#ifndef FRFC_PROTO_FLIT_HPP
#define FRFC_PROTO_FLIT_HPP

#include <cstdint>
#include <string>

#include "common/types.hpp"

namespace frfc {

/**
 * Protocol message class. Closed-loop workloads separate traffic into
 * requests (injected by an initiator) and replies (injected by the
 * responder only after the request's last flit ejects there). The
 * class rides on every flit so per-class accounting and the
 * reply-causality check (Validator, "class.reply-without-request")
 * can observe it end to end.
 */
enum class MessageClass : std::uint8_t
{
    kRequest = 0,
    kReply = 1,
};

constexpr int kNumMessageClasses = 2;

/** Stable lowercase name ("request" / "reply") for reports. */
const char* messageClassName(MessageClass cls);

/** A data flit (or, for VC flow control, any flit of a packet). */
struct Flit
{
    PacketId packet = kInvalidPacket;
    int seq = 0;           ///< flit index within the packet
    int packetLength = 0;  ///< total flits in the packet
    bool head = false;
    bool tail = false;
    NodeId src = kInvalidNode;
    NodeId dest = kInvalidNode;
    VcId vc = kInvalidVc;  ///< VC currently occupied (VC flow control)
    Cycle created = kInvalidCycle;   ///< packet creation time
    Cycle injected = kInvalidCycle;  ///< cycle the flit entered the network
    std::uint64_t payload = 0;       ///< verification payload
    MessageClass cls = MessageClass::kRequest;  ///< protocol class
    /** Corrupted by a fault injector (VC model): the flit flows
     *  through the network normally but the sink discards it. */
    bool poisoned = false;
    /** Speculative FR launch (fr.speculative): no buffer was reserved
     *  at the first-hop router; it may be dropped or evicted there. */
    bool spec = false;

    /** Deterministic payload for packet @p id flit @p seq. */
    static std::uint64_t expectedPayload(PacketId id, int seq);

    std::string toString() const;
};

/**
 * End-to-end completion notice: the last flit of a packet has ejected
 * at its destination. The ejection sink pushes one of these onto a
 * per-node feedback channel (latency 1, node-local, hence always
 * intra-shard) wired back to the node's source, which forwards it to a
 * closed-loop PacketGenerator — the only sanctioned path by which
 * ejection can influence injection.
 */
struct PacketCompletion
{
    PacketId packet = kInvalidPacket;
    NodeId src = kInvalidNode;   ///< the packet's original source
    NodeId dest = kInvalidNode;  ///< node the packet completed at
    int length = 0;              ///< flits delivered
    MessageClass cls = MessageClass::kRequest;
    Cycle completed = kInvalidCycle;  ///< ejection cycle of the last flit
};

/** Credit returned upstream by virtual-channel flow control. */
struct Credit
{
    VcId vc = kInvalidVc;
};

/**
 * Timestamped credit used by flit-reservation flow control: the
 * downstream buffer becomes free from cycle @ref freeFrom onwards
 * (downstream departure time), letting the upstream output reservation
 * table increment its future free-buffer counts.
 */
struct FrCredit
{
    Cycle freeFrom = kInvalidCycle;
};

/**
 * Negative acknowledgement for a speculative FR launch: the first-hop
 * router dropped (pool full on arrival) or evicted (buffer reclaimed
 * for a reserved flit) speculative data of @ref packet. Travels on a
 * node-local wire back to the router's own source, which schedules a
 * reserved retransmission instead of waiting out the ack timeout.
 */
struct FrNack
{
    PacketId packet = kInvalidPacket;
};

}  // namespace frfc

#endif  // FRFC_PROTO_FLIT_HPP
