/**
 * @file
 * Flit, packet, and credit message types.
 *
 * A Flit carries simulator-side identity (packet id, sequence, payload
 * checksum) used for verification and statistics. Flow-control logic is
 * not allowed to steer data flits by these fields under flit-reservation
 * flow control — there, data flits are identified purely by arrival
 * time — but the fields let tests prove the schedule delivered the right
 * bits to the right place.
 */

#ifndef FRFC_PROTO_FLIT_HPP
#define FRFC_PROTO_FLIT_HPP

#include <cstdint>
#include <string>

#include "common/types.hpp"

namespace frfc {

/** A data flit (or, for VC flow control, any flit of a packet). */
struct Flit
{
    PacketId packet = kInvalidPacket;
    int seq = 0;           ///< flit index within the packet
    int packetLength = 0;  ///< total flits in the packet
    bool head = false;
    bool tail = false;
    NodeId src = kInvalidNode;
    NodeId dest = kInvalidNode;
    VcId vc = kInvalidVc;  ///< VC currently occupied (VC flow control)
    Cycle created = kInvalidCycle;   ///< packet creation time
    Cycle injected = kInvalidCycle;  ///< cycle the flit entered the network
    std::uint64_t payload = 0;       ///< verification payload

    /** Deterministic payload for packet @p id flit @p seq. */
    static std::uint64_t expectedPayload(PacketId id, int seq);

    std::string toString() const;
};

/** Credit returned upstream by virtual-channel flow control. */
struct Credit
{
    VcId vc = kInvalidVc;
};

/**
 * Timestamped credit used by flit-reservation flow control: the
 * downstream buffer becomes free from cycle @ref freeFrom onwards
 * (downstream departure time), letting the upstream output reservation
 * table increment its future free-buffer counts.
 */
struct FrCredit
{
    Cycle freeFrom = kInvalidCycle;
};

}  // namespace frfc

#endif  // FRFC_PROTO_FLIT_HPP
