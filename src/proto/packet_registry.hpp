/**
 * @file
 * Central packet bookkeeping: creation, delivery verification, latency
 * sampling, and throughput counting.
 *
 * Every delivered flit is verified (destination, sequence range,
 * payload, no duplication); a packet completes when all of its flits
 * have been ejected, and its latency — creation of the first flit to
 * ejection of the last, including source queueing, exactly as the paper
 * measures — is recorded if the packet belongs to the measurement
 * sample.
 */

#ifndef FRFC_PROTO_PACKET_REGISTRY_HPP
#define FRFC_PROTO_PACKET_REGISTRY_HPP

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/types.hpp"
#include "proto/flit.hpp"
#include "stats/accumulator.hpp"
#include "stats/histogram.hpp"

namespace frfc {

/** Tracks every in-flight packet and verifies delivery. */
class PacketRegistry
{
  public:
    PacketRegistry() = default;

    /** Register a new packet; returns its globally unique id. */
    PacketId create(NodeId src, NodeId dest, int length, Cycle now);

    /**
     * Record (and verify) a delivered flit; panics on misdelivery.
     * Completes the packet when its last flit arrives.
     */
    void deliverFlit(Cycle now, const Flit& flit);

    /**
     * Mark the next @p target created packets as the measurement
     * sample (the paper's "100,000 packets are injected and the
     * simulation is run till these packets ... have all been received").
     */
    void startSampling(std::int64_t target);

    /** True once the full sample has been created. */
    bool sampleFullyCreated() const;

    /** True once every sample packet has been delivered. */
    bool sampleFullyDelivered() const;

    /** Latency statistics over delivered sample packets (cycles). */
    const Accumulator& sampleLatency() const { return sample_latency_; }

    /** Latency distribution over the sample (1-cycle buckets to 8192,
     *  then an overflow bucket; quantiles interpolate bucket centers). */
    const Histogram& sampleLatencyHistogram() const
    {
        return sample_hist_;
    }

    std::int64_t packetsCreated() const { return created_; }
    std::int64_t packetsDelivered() const { return delivered_; }
    std::int64_t flitsDelivered() const { return flits_delivered_; }
    std::int64_t packetsInFlight() const { return created_ - delivered_; }

  private:
    struct Record
    {
        NodeId src = kInvalidNode;
        NodeId dest = kInvalidNode;
        int length = 0;
        Cycle created = kInvalidCycle;
        int flitsSeen = 0;
        bool sample = false;
        std::vector<bool> seen;  ///< per-seq delivery bitmap
    };

    std::unordered_map<PacketId, Record> inflight_;
    PacketId next_id_ = 0;
    std::int64_t created_ = 0;
    std::int64_t delivered_ = 0;
    std::int64_t flits_delivered_ = 0;

    bool sampling_ = false;
    std::int64_t sample_target_ = 0;
    std::int64_t sample_created_ = 0;
    std::int64_t sample_delivered_ = 0;
    Accumulator sample_latency_;
    Histogram sample_hist_{0.0, 8192.0, 2048};
};

}  // namespace frfc

#endif  // FRFC_PROTO_PACKET_REGISTRY_HPP
