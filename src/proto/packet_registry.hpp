/**
 * @file
 * Central packet bookkeeping: creation, delivery verification, latency
 * sampling, and throughput counting.
 *
 * Every delivered flit is verified (destination, sequence range,
 * payload, no duplication); a packet completes when all of its flits
 * have been ejected, and its latency — creation of the first flit to
 * ejection of the last, including source queueing, exactly as the paper
 * measures — is recorded if the packet belongs to the measurement
 * sample.
 *
 * Sources and sinks talk to the registry through the PacketLedger
 * interface. Serial kernels hand them the registry itself; the parallel
 * kernel hands each shard a DeferredPacketLedger that merely logs the
 * events, and the window-boundary hook replays all shards' logs into
 * the registry in exact serial order — creates by (cycle, packet id),
 * deliveries by (cycle, destination), creates before deliveries — so
 * sample marking and the floating-point latency accumulation happen in
 * an order bit-identical to a serial run.
 *
 * Packet ids are position-deterministic: id = (source << 40) | per-
 * source sequence number. Any ledger can mint them locally, and the
 * same packet gets the same id in serial and parallel runs.
 */

#ifndef FRFC_PROTO_PACKET_REGISTRY_HPP
#define FRFC_PROTO_PACKET_REGISTRY_HPP

#include <array>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/types.hpp"
#include "proto/flit.hpp"
#include "stats/accumulator.hpp"
#include "stats/histogram.hpp"

namespace frfc {

/** Bits of a PacketId reserved for the per-source sequence number. */
constexpr int kPacketSeqBits = 40;

/** Deterministic packet id: source node in the high bits, that
 *  source's creation ordinal in the low bits. */
constexpr PacketId
makePacketId(NodeId src, std::int64_t seq)
{
    return (static_cast<PacketId>(src) << kPacketSeqBits) | seq;
}

/** Source node a packet id was minted by. */
constexpr NodeId
packetIdSource(PacketId id)
{
    return static_cast<NodeId>(id >> kPacketSeqBits);
}

/**
 * What injection sources and ejection sinks need from the packet
 * bookkeeping: register a birth (returns the packet's id) and report a
 * delivered flit. PacketRegistry applies both immediately;
 * DeferredPacketLedger logs them for ordered replay at a parallel
 * window boundary.
 */
class PacketLedger
{
  public:
    virtual ~PacketLedger() = default;

    /** Register a new packet born at @p src; returns its id. */
    virtual PacketId create(NodeId src, NodeId dest, int length,
                            Cycle now, MessageClass cls) = 0;

    /** Convenience for class-agnostic callers: a plain request.
     *  (Non-virtual on purpose — a virtual default argument would bind
     *  to the static type; derived classes pull this overload back in
     *  with `using PacketLedger::create`.) */
    PacketId create(NodeId src, NodeId dest, int length, Cycle now)
    {
        return create(src, dest, length, now, MessageClass::kRequest);
    }

    /** Record a flit delivered to its destination. */
    virtual void deliverFlit(Cycle now, const Flit& flit) = 0;
};

/** Tracks every in-flight packet and verifies delivery. */
class PacketRegistry : public PacketLedger
{
  public:
    PacketRegistry()
    {
        // Steady-state in-flight counts are far below this; paying for
        // the buckets up front keeps create/deliver rehash-free.
        inflight_.reserve(1024);
        next_seq_.reserve(64);
    }

    using PacketLedger::create;

    /** Register a new packet; returns its deterministic id. */
    PacketId create(NodeId src, NodeId dest, int length, Cycle now,
                    MessageClass cls) override;

    /**
     * Record (and verify) a delivered flit; panics on misdelivery —
     * including a flit whose class disagrees with its packet's.
     * Completes the packet when its last flit arrives.
     */
    void deliverFlit(Cycle now, const Flit& flit) override;

    /**
     * Register a packet whose id a shard ledger already minted
     * (deferred-replay path; create() composes this with minting).
     */
    void recordCreate(PacketId id, NodeId src, NodeId dest, int length,
                      Cycle now, MessageClass cls = MessageClass::kRequest);

    /**
     * Mark the next @p target created packets as the measurement
     * sample (the paper's "100,000 packets are injected and the
     * simulation is run till these packets ... have all been received").
     */
    void startSampling(std::int64_t target);

    /** True once the full sample has been created. */
    bool sampleFullyCreated() const;

    /** True once every sample packet has been delivered. */
    bool sampleFullyDelivered() const;

    /** Latency statistics over delivered sample packets (cycles). */
    const Accumulator& sampleLatency() const { return sample_latency_; }

    /** Latency distribution over the sample (1-cycle buckets to 8192,
     *  then an overflow bucket; quantiles interpolate bucket centers). */
    const Histogram& sampleLatencyHistogram() const
    {
        return sample_hist_;
    }

    std::int64_t packetsCreated() const { return created_; }
    std::int64_t packetsDelivered() const { return delivered_; }
    std::int64_t flitsDelivered() const { return flits_delivered_; }
    std::int64_t packetsInFlight() const { return created_ - delivered_; }

    /** @{ Per-message-class accounting. The counters cover every
     *  packet; the latency statistics cover sample packets only,
     *  mirroring sampleLatency(). Open-loop runs never create a reply,
     *  so classCreated(kReply) > 0 identifies closed-loop traffic. */
    std::int64_t classCreated(MessageClass cls) const
    {
        return class_created_[static_cast<std::size_t>(cls)];
    }
    std::int64_t classDelivered(MessageClass cls) const
    {
        return class_delivered_[static_cast<std::size_t>(cls)];
    }
    const Accumulator& sampleClassLatency(MessageClass cls) const
    {
        return class_latency_[static_cast<std::size_t>(cls)];
    }
    const Histogram& sampleClassHistogram(MessageClass cls) const
    {
        return class_hist_[static_cast<std::size_t>(cls)];
    }
    /** @} */

  private:
    struct Record
    {
        NodeId src = kInvalidNode;
        NodeId dest = kInvalidNode;
        int length = 0;
        Cycle created = kInvalidCycle;
        int flitsSeen = 0;
        bool sample = false;
        MessageClass cls = MessageClass::kRequest;
        std::vector<bool> seen;  ///< per-seq delivery bitmap
    };

    std::unordered_map<PacketId, Record> inflight_;
    /** Per-source next sequence number (id minting). */
    std::unordered_map<NodeId, std::int64_t> next_seq_;
    std::int64_t created_ = 0;
    std::int64_t delivered_ = 0;
    std::int64_t flits_delivered_ = 0;

    bool sampling_ = false;
    std::int64_t sample_target_ = 0;
    std::int64_t sample_created_ = 0;
    std::int64_t sample_delivered_ = 0;
    Accumulator sample_latency_;
    Histogram sample_hist_{0.0, 8192.0, 2048};

    std::array<std::int64_t, kNumMessageClasses> class_created_{};
    std::array<std::int64_t, kNumMessageClasses> class_delivered_{};
    std::array<Accumulator, kNumMessageClasses> class_latency_;
    std::array<Histogram, kNumMessageClasses> class_hist_{
        Histogram{0.0, 8192.0, 2048}, Histogram{0.0, 8192.0, 2048}};
};

/**
 * Shard-local event log. Mints ids exactly as the registry would (the
 * per-source counters advance identically because every creation of a
 * given source flows through one ledger) and buffers cycle-stamped
 * events until replayDeferredLedgers() applies them globally.
 */
class DeferredPacketLedger : public PacketLedger
{
  public:
    struct CreateEvent
    {
        Cycle cycle;
        NodeId src;
        NodeId dest;
        PacketId id;
        int length;
        MessageClass cls;
    };
    struct DeliverEvent
    {
        Cycle cycle;
        Flit flit;
    };

    using PacketLedger::create;

    PacketId create(NodeId src, NodeId dest, int length, Cycle now,
                    MessageClass cls) override;
    void deliverFlit(Cycle now, const Flit& flit) override;

    const std::vector<CreateEvent>& creates() const { return creates_; }
    const std::vector<DeliverEvent>& delivers() const
    {
        return delivers_;
    }
    void
    clearEvents()
    {
        creates_.clear();
        delivers_.clear();
    }

  private:
    std::unordered_map<NodeId, std::int64_t> next_seq_;
    std::vector<CreateEvent> creates_;
    std::vector<DeliverEvent> delivers_;
};

/** Caller-owned merge buffers for replayDeferredLedgers (reused every
 *  window so steady-state replay allocates nothing). */
struct LedgerReplayScratch
{
    std::vector<DeferredPacketLedger::CreateEvent> creates;
    std::vector<DeferredPacketLedger::DeliverEvent> delivers;
};

/**
 * Apply every event buffered in @p ledgers to @p registry in serial
 * order — by cycle, creations (packet id ascending) before deliveries
 * (destination ascending) — then clear the buffers. A closed-loop node
 * can create two packets in one cycle (the reply its completion inbox
 * triggers, then its own birth), but it mints them in that order, so
 * per-source ids ascend with serial creation order and (cycle, id) is
 * a total order identical to the serial kernels' registration-order
 * execution. A destination still ejects at most one flit per cycle.
 */
void replayDeferredLedgers(PacketRegistry& registry,
                           std::vector<DeferredPacketLedger*>& ledgers,
                           LedgerReplayScratch& scratch);

}  // namespace frfc

#endif  // FRFC_PROTO_PACKET_REGISTRY_HPP
