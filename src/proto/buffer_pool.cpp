#include "proto/buffer_pool.hpp"

#include <bit>

#include "common/log.hpp"

namespace frfc {

BufferPool::BufferPool(int capacity)
    : allocated_((static_cast<std::size_t>(capacity) + 63) / 64, 0),
      valid_(allocated_.size(), 0),
      flits_(static_cast<std::size_t>(capacity)), free_count_(capacity)
{
    FRFC_ASSERT(capacity > 0, "buffer pool needs at least one slot");
}

BufferId
BufferPool::allocate()
{
    if (free_count_ == 0)
        return kInvalidBuffer;
    for (std::size_t w = 0; w < allocated_.size(); ++w) {
        const std::uint64_t free_bits = ~allocated_[w];
        if (free_bits == 0)
            continue;
        const auto bit =
            static_cast<std::size_t>(std::countr_zero(free_bits));
        const std::size_t slot = (w << 6) + bit;
        if (slot >= flits_.size())
            break;  // tail bits past capacity are always "free"
        allocated_[w] |= std::uint64_t{1} << bit;
        valid_[w] &= ~(std::uint64_t{1} << bit);
        --free_count_;
        return static_cast<BufferId>(slot);
    }
    panic("free_count_ disagrees with occupancy bits");
}

void
BufferPool::write(BufferId id, const Flit& flit)
{
    FRFC_ASSERT(id >= 0 && id < capacity(), "bad buffer id ", id);
    FRFC_ASSERT(bitAt(allocated_, id), "write to unallocated buffer ",
                id);
    FRFC_ASSERT(!bitAt(valid_, id), "overwrite of occupied buffer ", id);
    flits_[static_cast<std::size_t>(id)] = flit;
    assignBit(valid_, id, true);
}

const Flit&
BufferPool::read(BufferId id) const
{
    FRFC_ASSERT(id >= 0 && id < capacity(), "bad buffer id ", id);
    FRFC_ASSERT(bitAt(valid_, id), "read of empty buffer ", id);
    return flits_[static_cast<std::size_t>(id)];
}

Flit
BufferPool::consume(BufferId id)
{
    Flit flit = read(id);
    release(id);
    return flit;
}

void
BufferPool::release(BufferId id)
{
    FRFC_ASSERT(id >= 0 && id < capacity(), "bad buffer id ", id);
    FRFC_ASSERT(bitAt(allocated_, id), "double release of buffer ", id);
    assignBit(allocated_, id, false);
    assignBit(valid_, id, false);
    ++free_count_;
}

bool
BufferPool::occupied(BufferId id) const
{
    FRFC_ASSERT(id >= 0 && id < capacity(), "bad buffer id ", id);
    return bitAt(allocated_, id);
}

}  // namespace frfc
