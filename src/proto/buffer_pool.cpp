#include "proto/buffer_pool.hpp"

#include "common/log.hpp"

namespace frfc {

BufferPool::BufferPool(int capacity)
    : slots_(static_cast<std::size_t>(capacity)), free_count_(capacity)
{
    FRFC_ASSERT(capacity > 0, "buffer pool needs at least one slot");
}

BufferId
BufferPool::allocate()
{
    if (free_count_ == 0)
        return kInvalidBuffer;
    for (std::size_t i = 0; i < slots_.size(); ++i) {
        if (!slots_[i].allocated) {
            slots_[i].allocated = true;
            slots_[i].valid = false;
            --free_count_;
            return static_cast<BufferId>(i);
        }
    }
    panic("free_count_ disagrees with occupancy bits");
}

void
BufferPool::write(BufferId id, const Flit& flit)
{
    FRFC_ASSERT(id >= 0 && id < capacity(), "bad buffer id ", id);
    Slot& slot = slots_[static_cast<std::size_t>(id)];
    FRFC_ASSERT(slot.allocated, "write to unallocated buffer ", id);
    FRFC_ASSERT(!slot.valid, "overwrite of occupied buffer ", id);
    slot.flit = flit;
    slot.valid = true;
}

const Flit&
BufferPool::read(BufferId id) const
{
    FRFC_ASSERT(id >= 0 && id < capacity(), "bad buffer id ", id);
    const Slot& slot = slots_[static_cast<std::size_t>(id)];
    FRFC_ASSERT(slot.valid, "read of empty buffer ", id);
    return slot.flit;
}

Flit
BufferPool::consume(BufferId id)
{
    Flit flit = read(id);
    release(id);
    return flit;
}

void
BufferPool::release(BufferId id)
{
    FRFC_ASSERT(id >= 0 && id < capacity(), "bad buffer id ", id);
    Slot& slot = slots_[static_cast<std::size_t>(id)];
    FRFC_ASSERT(slot.allocated, "double release of buffer ", id);
    slot.allocated = false;
    slot.valid = false;
    ++free_count_;
}

bool
BufferPool::occupied(BufferId id) const
{
    FRFC_ASSERT(id >= 0 && id < capacity(), "bad buffer id ", id);
    return slots_[static_cast<std::size_t>(id)].allocated;
}

}  // namespace frfc
