/**
 * @file
 * Shared flit buffer pool with explicit occupancy, as used by the data
 * plane of flit-reservation flow control (Section 5, "Buffer pool versus
 * distinct buffer queues") and by the shared-pool VC variant [TamFra92].
 */

#ifndef FRFC_PROTO_BUFFER_POOL_HPP
#define FRFC_PROTO_BUFFER_POOL_HPP

#include <vector>

#include "common/types.hpp"
#include "proto/flit.hpp"

namespace frfc {

/**
 * Fixed-size pool of flit buffers. Allocation returns the lowest free
 * slot; occupancy bits are exposed for statistics.
 */
class BufferPool
{
  public:
    explicit BufferPool(int capacity);

    /** Claim a free buffer; kInvalidBuffer if the pool is full. */
    BufferId allocate();

    /** Store @p flit into buffer @p id (must be allocated). */
    void write(BufferId id, const Flit& flit);

    /** Read the flit held by @p id (must be occupied). */
    const Flit& read(BufferId id) const;

    /** Read and free in one step. */
    Flit consume(BufferId id);

    /** Free buffer @p id without reading. */
    void release(BufferId id);

    bool occupied(BufferId id) const;
    int capacity() const { return static_cast<int>(slots_.size()); }
    int freeCount() const { return free_count_; }
    int usedCount() const { return capacity() - free_count_; }
    bool full() const { return free_count_ == 0; }

  private:
    struct Slot
    {
        bool allocated = false;
        bool valid = false;  ///< flit contents written
        Flit flit;
    };

    std::vector<Slot> slots_;
    int free_count_;
};

}  // namespace frfc

#endif  // FRFC_PROTO_BUFFER_POOL_HPP
