/**
 * @file
 * Shared flit buffer pool with explicit occupancy, as used by the data
 * plane of flit-reservation flow control (Section 5, "Buffer pool versus
 * distinct buffer queues") and by the shared-pool VC variant [TamFra92].
 *
 * Storage is struct-of-arrays (DESIGN.md §12): the allocated/valid
 * occupancy state lives in packed uint64_t bitmaps scanned every
 * allocation, while the flit payloads — touched only on write/read of
 * one buffer — sit in a separate contiguous array. allocate() finds
 * the lowest free slot with one countr_zero per word instead of
 * walking Slot structs that drag payload cache lines in.
 */

#ifndef FRFC_PROTO_BUFFER_POOL_HPP
#define FRFC_PROTO_BUFFER_POOL_HPP

#include <cstdint>
#include <vector>

#include "common/types.hpp"
#include "proto/flit.hpp"

namespace frfc {

/**
 * Fixed-size pool of flit buffers. Allocation returns the lowest free
 * slot; occupancy bits are exposed for statistics.
 */
class BufferPool
{
  public:
    explicit BufferPool(int capacity);

    /** Claim a free buffer; kInvalidBuffer if the pool is full. */
    BufferId allocate();

    /** Store @p flit into buffer @p id (must be allocated). */
    void write(BufferId id, const Flit& flit);

    /** Read the flit held by @p id (must be occupied). */
    const Flit& read(BufferId id) const;

    /** Read and free in one step. */
    Flit consume(BufferId id);

    /** Free buffer @p id without reading. */
    void release(BufferId id);

    bool occupied(BufferId id) const;
    int capacity() const { return static_cast<int>(flits_.size()); }
    int freeCount() const { return free_count_; }
    int usedCount() const { return capacity() - free_count_; }
    bool full() const { return free_count_ == 0; }

  private:
    bool
    bitAt(const std::vector<std::uint64_t>& words, BufferId id) const
    {
        const auto pos = static_cast<std::size_t>(id);
        return (words[pos >> 6] >> (pos & 63)) & 1u;
    }
    static void
    assignBit(std::vector<std::uint64_t>& words, BufferId id, bool on)
    {
        const auto pos = static_cast<std::size_t>(id);
        const std::uint64_t bit = std::uint64_t{1} << (pos & 63);
        if (on)
            words[pos >> 6] |= bit;
        else
            words[pos >> 6] &= ~bit;
    }

    /** Occupancy bitmaps, bit i = buffer i (scanned on allocate). */
    std::vector<std::uint64_t> allocated_;
    std::vector<std::uint64_t> valid_;  ///< flit contents written
    /** Payloads, separated so occupancy scans never touch them. */
    std::vector<Flit> flits_;
    int free_count_;
};

}  // namespace frfc

#endif  // FRFC_PROTO_BUFFER_POOL_HPP
