/**
 * @file
 * End-to-end loss recovery: the per-source retransmission buffer.
 *
 * With `fault.recovery=1` every source keeps each packet it creates
 * until the destination's ejection sink acknowledges complete
 * delivery. A packet's retransmit deadline is armed when its last
 * data flit leaves the source (ack timeout, doubling per attempt up
 * to a backoff cap); an expired deadline — or an explicit nack from
 * the speculative-FR first hop — requeues the packet for injection
 * under its original packet id and creation time, so the registry
 * measures true end-to-end latency including recovery. The sink
 * suppresses duplicate flits, so retransmitting a partially-delivered
 * packet is safe.
 *
 * The buffer is a flat insertion-ordered vector (packet ids of one
 * source ascend with creation), scanned linearly: the unacked
 * population per source is small, and a flat scan keeps iteration
 * order deterministic — a hash map's history-dependent order must
 * never drive simulation decisions (DESIGN.md section 12).
 */

#ifndef FRFC_PROTO_RECOVERY_HPP
#define FRFC_PROTO_RECOVERY_HPP

#include <cstdint>
#include <vector>

#include "common/types.hpp"
#include "proto/flit.hpp"

namespace frfc {

/** One unacknowledged packet held for possible retransmission. */
struct RetransmitRecord
{
    PacketId id = kInvalidPacket;
    NodeId dest = kInvalidNode;
    int length = 0;
    Cycle created = kInvalidCycle;  ///< original creation cycle
    MessageClass cls = MessageClass::kRequest;
    int attempts = 0;  ///< retransmissions performed so far
    /** Next retransmit cycle; kInvalidCycle while unarmed (queued or
     *  streaming — armed when the last flit leaves the source). */
    Cycle deadline = kInvalidCycle;
    bool acked = false;
    bool sending = false;  ///< queued for or mid injection
};

/** Per-source retransmission buffer (see file comment). */
class RetransmitBuffer
{
  public:
    void
    configure(Cycle ack_timeout, int backoff_cap, int max_attempts)
    {
        ack_timeout_ = ack_timeout;
        backoff_cap_ = backoff_cap;
        max_attempts_ = max_attempts;
    }

    /** Track a newly created packet (it is queued for injection). */
    void add(PacketId id, NodeId dest, int length, Cycle created,
             MessageClass cls);

    /** Destination acknowledged complete delivery. */
    void ack(PacketId id);

    /** Speculative first hop lost this packet's data: expire its
     *  deadline now. Ignored if already acked or unknown (the nack
     *  can race a delivery by an earlier attempt). */
    void nack(PacketId id, Cycle now);

    /** The packet's last flit left the source: arm the retransmit
     *  deadline (timeout << min(attempts, backoffCap)). */
    void armDeadline(PacketId id, Cycle now);

    /**
     * Collect packets whose deadline expired: marks each as sending,
     * bumps its attempt count, and appends its record to @p out. The
     * caller requeues them for injection (same id, same creation).
     */
    void takeExpired(Cycle now, std::vector<RetransmitRecord>& out);

    /** True when @p id needs no (re)transmission — acked, or never
     *  tracked (recovery bookkeeping disabled for it). Sources check
     *  this when dequeuing so a packet acked while waiting in the
     *  injection queue is not sent again. */
    bool ackedOrUntracked(PacketId id) const;

    /** The source skipped an acked packet at dequeue: clear its
     *  sending mark so the record can compact away. */
    void dropQueued(PacketId id);

    /** Earliest armed deadline over unacked packets (for nextWake);
     *  kInvalidCycle when none is armed. */
    Cycle nextDeadline() const;

    /** Retransmissions performed for @p id so far (0 when untracked —
     *  speculative-FR sources gamble only on a packet's first try). */
    int
    attemptsOf(PacketId id) const
    {
        const RetransmitRecord* rec = find(id);
        return rec != nullptr ? rec->attempts : 0;
    }

    /** Packets held and not yet acknowledged. */
    int
    unackedCount() const
    {
        return unacked_;
    }

    /** Highest attempt count over currently-unacked packets. */
    int maxAttemptsInFlight() const;

    int maxAttemptsAllowed() const { return max_attempts_; }

    std::int64_t retransmitsTotal() const { return retransmits_; }

    /** Externally visible state digest for activity fingerprints. */
    std::uint64_t
    fingerprint() const
    {
        std::uint64_t h = static_cast<std::uint64_t>(unacked_);
        h = h * 0x9e3779b97f4a7c15ULL
            + static_cast<std::uint64_t>(retransmits_);
        h = h * 0x9e3779b97f4a7c15ULL
            + static_cast<std::uint64_t>(recs_.size());
        return h;
    }

  private:
    RetransmitRecord* find(PacketId id);
    const RetransmitRecord* find(PacketId id) const;

    /** Drop leading acked records; keeps the scan window tight. */
    void compactFront();

    std::vector<RetransmitRecord> recs_;
    Cycle ack_timeout_ = 512;
    int backoff_cap_ = 4;
    int max_attempts_ = 16;
    int unacked_ = 0;
    std::int64_t retransmits_ = 0;
};

}  // namespace frfc

#endif  // FRFC_PROTO_RECOVERY_HPP
