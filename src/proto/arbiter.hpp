/**
 * @file
 * Single-winner arbiters.
 *
 * The paper's simulated network "uses random arbitration"; a
 * round-robin arbiter is provided as an alternative for experiments.
 */

#ifndef FRFC_PROTO_ARBITER_HPP
#define FRFC_PROTO_ARBITER_HPP

#include <memory>
#include <string>
#include <vector>

#include "common/rng.hpp"

namespace frfc {

/** Picks one winner among simultaneous requestors. */
class Arbiter
{
  public:
    virtual ~Arbiter() = default;

    /**
     * Pick a winner among indices with requests[i] == true.
     * @return winning index, or -1 if nobody requested.
     */
    virtual int pick(const std::vector<bool>& requests) = 0;

    virtual std::string describe() const = 0;
};

/** Uniform random choice among requestors. */
class RandomArbiter : public Arbiter
{
  public:
    explicit RandomArbiter(Rng rng) : rng_(rng) {}
    int pick(const std::vector<bool>& requests) override;
    std::string describe() const override { return "random"; }

  private:
    Rng rng_;
};

/** Rotating-priority choice; the winner gets lowest priority next time. */
class RoundRobinArbiter : public Arbiter
{
  public:
    RoundRobinArbiter() = default;
    int pick(const std::vector<bool>& requests) override;
    std::string describe() const override { return "round-robin"; }

  private:
    std::size_t next_ = 0;
};

/** Build an arbiter: kind = "random" or "roundrobin". */
std::unique_ptr<Arbiter> makeArbiter(const std::string& kind, Rng rng);

}  // namespace frfc

#endif  // FRFC_PROTO_ARBITER_HPP
