#include "proto/arbiter.hpp"

#include "common/log.hpp"

namespace frfc {

int
RandomArbiter::pick(const std::vector<bool>& requests)
{
    int live = 0;
    for (bool r : requests)
        live += r ? 1 : 0;
    if (live == 0)
        return -1;
    auto target = static_cast<int>(
        rng_.nextBounded(static_cast<std::uint64_t>(live)));
    for (std::size_t i = 0; i < requests.size(); ++i) {
        if (!requests[i])
            continue;
        if (target == 0)
            return static_cast<int>(i);
        --target;
    }
    panic("random arbiter fell off the end");
}

int
RoundRobinArbiter::pick(const std::vector<bool>& requests)
{
    const std::size_t n = requests.size();
    if (n == 0)
        return -1;
    for (std::size_t off = 0; off < n; ++off) {
        const std::size_t idx = (next_ + off) % n;
        if (requests[idx]) {
            next_ = (idx + 1) % n;
            return static_cast<int>(idx);
        }
    }
    return -1;
}

std::unique_ptr<Arbiter>
makeArbiter(const std::string& kind, Rng rng)
{
    if (kind == "random")
        return std::make_unique<RandomArbiter>(rng);
    if (kind == "roundrobin")
        return std::make_unique<RoundRobinArbiter>();
    fatal("unknown arbiter kind '", kind, "'");
}

}  // namespace frfc
