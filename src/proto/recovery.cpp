#include "proto/recovery.hpp"

#include <algorithm>

#include "common/log.hpp"

namespace frfc {

RetransmitRecord*
RetransmitBuffer::find(PacketId id)
{
    for (RetransmitRecord& rec : recs_) {
        if (rec.id == id)
            return &rec;
    }
    return nullptr;
}

const RetransmitRecord*
RetransmitBuffer::find(PacketId id) const
{
    for (const RetransmitRecord& rec : recs_) {
        if (rec.id == id)
            return &rec;
    }
    return nullptr;
}

void
RetransmitBuffer::add(PacketId id, NodeId dest, int length,
                      Cycle created, MessageClass cls)
{
    FRFC_ASSERT(find(id) == nullptr,
                "retransmit buffer already tracks packet ", id);
    RetransmitRecord rec;
    rec.id = id;
    rec.dest = dest;
    rec.length = length;
    rec.created = created;
    rec.cls = cls;
    rec.sending = true;  // it sits in the injection queue
    recs_.push_back(rec);
    ++unacked_;
}

void
RetransmitBuffer::ack(PacketId id)
{
    RetransmitRecord* rec = find(id);
    FRFC_ASSERT(rec != nullptr && !rec->acked,
                "ack for a packet the retransmit buffer does not "
                "hold: ", id);
    rec->acked = true;
    rec->deadline = kInvalidCycle;
    --unacked_;
    compactFront();
}

void
RetransmitBuffer::nack(PacketId id, Cycle now)
{
    RetransmitRecord* rec = find(id);
    if (rec == nullptr || rec->acked || rec->sending)
        return;  // superseded by an ack or an in-progress attempt
    rec->deadline = now;
}

void
RetransmitBuffer::armDeadline(PacketId id, Cycle now)
{
    RetransmitRecord* rec = find(id);
    FRFC_ASSERT(rec != nullptr,
                "arming a deadline for untracked packet ", id);
    rec->sending = false;
    if (rec->acked)
        return;  // delivered while still streaming
    const int shift = std::min(rec->attempts, backoff_cap_);
    rec->deadline = now + (ack_timeout_ << shift);
}

void
RetransmitBuffer::takeExpired(Cycle now,
                              std::vector<RetransmitRecord>& out)
{
    for (RetransmitRecord& rec : recs_) {
        if (rec.acked || rec.sending || rec.deadline == kInvalidCycle
            || rec.deadline > now) {
            continue;
        }
        rec.deadline = kInvalidCycle;
        rec.sending = true;
        ++rec.attempts;
        ++retransmits_;
        out.push_back(rec);
    }
}

void
RetransmitBuffer::dropQueued(PacketId id)
{
    RetransmitRecord* rec = find(id);
    FRFC_ASSERT(rec != nullptr && rec->acked,
                "dropQueued on a packet that is not acked: ", id);
    rec->sending = false;
    compactFront();
}

bool
RetransmitBuffer::ackedOrUntracked(PacketId id) const
{
    const RetransmitRecord* rec = find(id);
    return rec == nullptr || rec->acked;
}

Cycle
RetransmitBuffer::nextDeadline() const
{
    Cycle next = kInvalidCycle;
    for (const RetransmitRecord& rec : recs_) {
        if (rec.acked || rec.deadline == kInvalidCycle)
            continue;
        if (next == kInvalidCycle || rec.deadline < next)
            next = rec.deadline;
    }
    return next;
}

int
RetransmitBuffer::maxAttemptsInFlight() const
{
    int most = 0;
    for (const RetransmitRecord& rec : recs_) {
        if (!rec.acked)
            most = std::max(most, rec.attempts);
    }
    return most;
}

void
RetransmitBuffer::compactFront()
{
    // A record acked mid-attempt (sending) must survive until the
    // source finishes streaming and calls armDeadline on it.
    std::size_t keep = 0;
    while (keep < recs_.size() && recs_[keep].acked
           && !recs_[keep].sending)
        ++keep;
    if (keep > 0)
        recs_.erase(recs_.begin(),
                    recs_.begin() + static_cast<std::ptrdiff_t>(keep));
}

}  // namespace frfc
