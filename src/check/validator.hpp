/**
 * @file
 * Reservation-protocol sanitizer.
 *
 * Flit-reservation flow control steers headerless data flits purely by
 * pre-computed reservation tables, so a double-booked output cycle, a
 * leaked credit, or a misrouted data flit silently corrupts results
 * instead of crashing. The Validator checks the protocol's conservation
 * invariants mechanically: components report their state transitions
 * through cheap hooks, networks run conservation sweeps, and any
 * violation produces a structured diagnostic (invariant id, cycle,
 * component, port) that fails fast by default.
 *
 * The subsystem is compiled in always and enabled per run through the
 * `sim.validate` config key:
 *   0  off (default) — hooks stay unwired, zero overhead
 *   1  invariants    — per-event bookkeeping plus an end-of-run sweep
 *   2  paranoid      — per-cycle sweeps plus kernel wake-contract
 *                      shadow checks (unbounded cost, bit-identical
 *                      results)
 *
 * See DESIGN.md section 9 for every invariant and its paper rationale.
 */

#ifndef FRFC_CHECK_VALIDATOR_HPP
#define FRFC_CHECK_VALIDATOR_HPP

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "common/types.hpp"

namespace frfc {

class Config;

/** How much checking a run pays for (`sim.validate`). */
enum class ValidateLevel
{
    kOff = 0,         ///< no checks, no overhead
    kInvariants = 1,  ///< event hooks + end-of-run sweep
    kParanoid = 2,    ///< per-cycle sweeps + wake-contract shadowing
};

/** Parse `sim.validate` (0 | 1 | 2, default 0). */
ValidateLevel validateLevelFromConfig(const Config& cfg);

/** Short name for reports ("off" / "invariants" / "paranoid"). */
const char* validateLevelName(ValidateLevel level);

/** A single invariant violation, locatable in time and space. */
struct Diagnostic
{
    std::string invariant;  ///< stable id, e.g. "res.double-book"
    Cycle cycle = kInvalidCycle;
    std::string component;  ///< instance name ("router3", "sink", ...)
    PortId port = kInvalidPort;  ///< kInvalidPort when not port-local
    std::string detail;     ///< human-readable specifics

    std::string toString() const;
};

/**
 * Collects invariant diagnostics and keeps per-link credit ledgers.
 *
 * Owned by the network assembly (one per NetworkModel); components
 * receive a borrowed pointer only when the run level is at least
 * kInvariants, so a disabled run never pays even the null checks on
 * hot paths that are skipped entirely at wiring time.
 */
class Validator
{
  public:
    explicit Validator(ValidateLevel level = ValidateLevel::kOff)
        : level_(level)
    {
    }

    /** Movable for test fixtures. The mutex itself is not moved — a
     *  fresh one is equivalent, since moves only happen during setup,
     *  before any concurrent reporting. */
    Validator(Validator&& other) noexcept
        : level_(other.level_), fail_fast_(other.fail_fast_),
          diagnostics_(std::move(other.diagnostics_)),
          links_(std::move(other.links_)),
          class_nodes_(std::move(other.class_nodes_))
    {
    }

    void setLevel(ValidateLevel level) { level_ = level; }
    ValidateLevel level() const { return level_; }
    bool enabled() const { return level_ != ValidateLevel::kOff; }
    bool paranoid() const { return level_ == ValidateLevel::kParanoid; }

    /**
     * Fail fast (default): the first report() panics with the full
     * diagnostic. Tests turn this off to assert that a specific
     * invariant fires with the right diagnostic.
     */
    void setFailFast(bool on) { fail_fast_ = on; }
    bool failFast() const { return fail_fast_; }

    /** Record a violation; panics when failFast() is set. Serialized
     *  internally: parallel-kernel shards may report concurrently. */
    void report(Diagnostic diag);

    /** Convenience wrapper building the Diagnostic in place. */
    void fail(const char* invariant, Cycle cycle, std::string component,
              PortId port, std::string detail);

    bool clean() const { return diagnostics_.empty(); }
    const std::vector<Diagnostic>& diagnostics() const
    {
        return diagnostics_;
    }

    /** True if any recorded diagnostic carries @p invariant. */
    bool sawInvariant(const std::string& invariant) const;

    /**
     * @{ Credit-link ledger. The network registers one ledger per
     * advance-credit wire; the downstream router counts every credit it
     * sends (FrRouter::commitEntry), the upstream table owner counts
     * every credit it applies, and checkCreditLink() asserts
     *   sent - applied == credits still in flight on the wire,
     * which catches credits lost, duplicated, or misrouted in transit.
     */
    int addCreditLink(std::string label);
    void onCreditSent(int link)
    {
        ++links_[static_cast<std::size_t>(link)].sent;
    }
    void onCreditApplied(int link)
    {
        ++links_[static_cast<std::size_t>(link)].applied;
    }
    void checkCreditLink(int link, std::int64_t in_flight, Cycle now);
    /** @} */

    /**
     * @{ Message-class causality ledger (closed-loop workloads). One
     * slot per node; the node's sink slice counts packets completed
     * there, its source counts feedback-minted replies, and since a
     * reply can only be minted by the completion that triggered it,
     *   replies <= completed
     * must hold at the minting node at all times. Both writers of a
     * slot live on the node's shard, so no locking is needed; the
     * invariant is checked inline at each mint. Replies replayed from
     * a trace flow through generate(), not the feedback path, and are
     * deliberately exempt — a trace may legally fan several replies
     * out of one request.
     */
    void initClassAccounting(int num_nodes);
    void onPacketCompleted(NodeId node)
    {
        if (!class_nodes_.empty())
            ++class_nodes_[static_cast<std::size_t>(node)].completed;
    }
    void onReplyCreated(NodeId node, Cycle now,
                        const std::string& component);
    /** @} */

  private:
    struct LinkLedger
    {
        std::string label;
        std::int64_t sent = 0;
        std::int64_t applied = 0;
    };

    ValidateLevel level_;
    bool fail_fast_ = true;
    /** Guards diagnostics_ only. The link ledgers need no lock: each
     *  field has exactly one writing component (the sender increments
     *  sent, the receiver applied), and checkCreditLink reads them at
     *  window boundaries when every shard worker is parked. */
    struct ClassLedger
    {
        std::int64_t completed = 0;  ///< packets fully ejected here
        std::int64_t replies = 0;    ///< feedback-minted replies here
    };

    std::mutex report_mutex_;
    std::vector<Diagnostic> diagnostics_;
    std::vector<LinkLedger> links_;
    /** Empty unless initClassAccounting was called (closed-loop run). */
    std::vector<ClassLedger> class_nodes_;
};

}  // namespace frfc

#endif  // FRFC_CHECK_VALIDATOR_HPP
