#include "check/validator.hpp"

#include "common/config.hpp"
#include "common/log.hpp"

namespace frfc {

ValidateLevel
validateLevelFromConfig(const Config& cfg)
{
    const auto raw = cfg.getInt("sim.validate", 0);
    switch (raw) {
      case 0:
        return ValidateLevel::kOff;
      case 1:
        return ValidateLevel::kInvariants;
      case 2:
        return ValidateLevel::kParanoid;
      default:
        fatal("sim.validate must be 0, 1, or 2, got ", raw);
    }
}

const char*
validateLevelName(ValidateLevel level)
{
    switch (level) {
      case ValidateLevel::kOff:
        return "off";
      case ValidateLevel::kInvariants:
        return "invariants";
      case ValidateLevel::kParanoid:
        return "paranoid";
    }
    return "?";
}

std::string
Diagnostic::toString() const
{
    std::string out = "[" + invariant + "] cycle "
        + std::to_string(cycle) + " at " + component;
    if (port != kInvalidPort)
        out += " port " + std::to_string(port);
    out += ": " + detail;
    return out;
}

void
Validator::report(Diagnostic diag)
{
    const std::lock_guard<std::mutex> lock(report_mutex_);
    diagnostics_.push_back(std::move(diag));
    const Diagnostic& d = diagnostics_.back();
    if (fail_fast_)
        panic("invariant violation ", d.toString());
    warn("invariant violation ", d.toString());
}

void
Validator::fail(const char* invariant, Cycle cycle, std::string component,
                PortId port, std::string detail)
{
    Diagnostic d;
    d.invariant = invariant;
    d.cycle = cycle;
    d.component = std::move(component);
    d.port = port;
    d.detail = std::move(detail);
    report(std::move(d));
}

bool
Validator::sawInvariant(const std::string& invariant) const
{
    for (const Diagnostic& d : diagnostics_) {
        if (d.invariant == invariant)
            return true;
    }
    return false;
}

int
Validator::addCreditLink(std::string label)
{
    links_.push_back(LinkLedger{std::move(label), 0, 0});
    return static_cast<int>(links_.size()) - 1;
}

void
Validator::initClassAccounting(int num_nodes)
{
    class_nodes_.assign(static_cast<std::size_t>(num_nodes),
                        ClassLedger{});
}

void
Validator::onReplyCreated(NodeId node, Cycle now,
                          const std::string& component)
{
    if (class_nodes_.empty())
        return;
    ClassLedger& ledger = class_nodes_[static_cast<std::size_t>(node)];
    ++ledger.replies;
    if (ledger.replies > ledger.completed) {
        fail("class.reply-without-request", now, component,
             static_cast<PortId>(node),
             "node " + std::to_string(node) + " minted reply #"
                 + std::to_string(ledger.replies) + " with only "
                 + std::to_string(ledger.completed)
                 + " packets completed there");
    }
}

void
Validator::checkCreditLink(int link, std::int64_t in_flight, Cycle now)
{
    const LinkLedger& ledger = links_[static_cast<std::size_t>(link)];
    if (ledger.sent - ledger.applied == in_flight)
        return;
    fail("credit.conservation", now, ledger.label, kInvalidPort,
         "sent " + std::to_string(ledger.sent) + " - applied "
             + std::to_string(ledger.applied) + " != in flight "
             + std::to_string(in_flight));
}

}  // namespace frfc
