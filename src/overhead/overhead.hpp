/**
 * @file
 * Analytical storage and bandwidth overhead models — the formulas of
 * Tables 1 and 2 of the paper. These justify the experimental pairings
 * (FR6 vs VC8, FR13 vs VC16): configurations are chosen so both flow
 * control methods spend approximately the same storage per node.
 *
 * Fractional logarithms are rounded up to whole bits (a 6-entry pool
 * needs 3-bit indices), matching the paper's arithmetic.
 */

#ifndef FRFC_OVERHEAD_OVERHEAD_HPP
#define FRFC_OVERHEAD_OVERHEAD_HPP

namespace frfc {

/** ceil(log2(n)) for n >= 1. */
int ceilLog2(int n);

/** Inputs of the virtual-channel storage model. */
struct VcStorageParams
{
    int flitBits = 256;   ///< f: data flit payload width
    int typeBits = 2;     ///< t: head/body/tail tag
    int numVcs = 2;       ///< v_d
    int dataBuffers = 8;  ///< b_d (total per input)
    int ports = 5;        ///< router radix
};

/** Per-node storage of virtual-channel flow control (Table 1). */
struct VcStorage
{
    long dataBufferBits = 0;
    long queuePointerBits = 0;
    long statusBits = 0;  ///< channel status + next-hop buffer counts
    long totalBits = 0;
    double flitsPerInput = 0.0;  ///< overhead expressed in flit units
};

VcStorage computeVcStorage(const VcStorageParams& p);

/** Inputs of the flit-reservation storage model. */
struct FrStorageParams
{
    int flitBits = 256;    ///< f
    int typeBits = 2;      ///< t
    int flitsPerCtrl = 1;  ///< d
    int horizon = 32;      ///< s
    int ctrlVcs = 2;       ///< v_c
    int ctrlBuffers = 6;   ///< b_c (total per input)
    int dataBuffers = 6;   ///< b_d (per input pool)
    int ports = 5;         ///< router radix
};

/** Per-node storage of flit-reservation flow control (Table 1). */
struct FrStorage
{
    long dataBufferBits = 0;
    long ctrlBufferBits = 0;
    long queuePointerBits = 0;
    long outputTableBits = 0;
    long inputTableBits = 0;
    long totalBits = 0;
    double flitsPerInput = 0.0;
};

FrStorage computeFrStorage(const FrStorageParams& p);

/**
 * Bandwidth overhead per data flit in bits (Table 2).
 * @param dest_bits   n, destination field width
 * @param length      L, packet length in flits
 */
double vcBandwidthOverhead(int dest_bits, int length, int num_vcs);
double frBandwidthOverhead(int dest_bits, int length, int ctrl_vcs,
                           int flits_per_ctrl, int horizon);

}  // namespace frfc

#endif  // FRFC_OVERHEAD_OVERHEAD_HPP
