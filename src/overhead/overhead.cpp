#include "overhead/overhead.hpp"

#include "common/log.hpp"

namespace frfc {

int
ceilLog2(int n)
{
    FRFC_ASSERT(n >= 1, "ceilLog2 requires n >= 1");
    int bits = 0;
    int v = 1;
    while (v < n) {
        v *= 2;
        ++bits;
    }
    return bits;
}

VcStorage
computeVcStorage(const VcStorageParams& p)
{
    VcStorage s;
    // Each data flit is padded with a VC identifier and a type field.
    s.dataBufferBits = static_cast<long>(p.flitBits + ceilLog2(p.numVcs)
                                         + p.typeBits)
        * p.dataBuffers * p.ports;
    // Head/tail pointer per VC queue.
    s.queuePointerBits =
        static_cast<long>(2 * ceilLog2(p.dataBuffers) * p.numVcs)
        * p.ports;
    // Channel status bit + next-hop free-buffer count, per output VC
    // (4 network outputs).
    s.statusBits =
        static_cast<long>((1 + ceilLog2(p.dataBuffers)) * 4 * p.numVcs);
    s.totalBits = s.dataBufferBits + s.queuePointerBits + s.statusBits;
    s.flitsPerInput = static_cast<double>(s.totalBits)
        / (static_cast<double>(p.ports) * p.flitBits);
    return s;
}

FrStorage
computeFrStorage(const FrStorageParams& p)
{
    FrStorage s;
    // Data buffers hold pure payload: type bits and VC identifiers live
    // on control flits instead.
    s.dataBufferBits =
        static_cast<long>(p.flitBits) * p.dataBuffers * p.ports;
    // A control flit: control VCID + type + d arrival timestamps.
    s.ctrlBufferBits = static_cast<long>(ceilLog2(p.ctrlVcs) + p.typeBits
                                         + p.flitsPerCtrl
                                             * ceilLog2(p.horizon))
        * p.ctrlBuffers * p.ports;
    s.queuePointerBits =
        static_cast<long>(2 * ceilLog2(p.ctrlBuffers) * p.ctrlVcs)
        * p.ports;
    // Output reservation table: busy bit + buffer count per slot, per
    // network output, archived over the horizon.
    s.outputTableBits =
        static_cast<long>((1 + ceilLog2(p.dataBuffers)) * p.horizon * 4);
    // Input reservation table per port: per slot a flit-arriving bit,
    // a departure time, an output selector (2 bits for 4 candidates),
    // and buffer-in/buffer-out indices; plus the pool occupancy bits.
    s.inputTableBits = static_cast<long>(
        (1 + ceilLog2(p.horizon) + 2 + 2 * ceilLog2(p.dataBuffers))
            * p.horizon
        + p.ctrlBuffers) * p.ports;
    s.totalBits = s.dataBufferBits + s.ctrlBufferBits
        + s.queuePointerBits + s.outputTableBits + s.inputTableBits;
    s.flitsPerInput = static_cast<double>(s.totalBits)
        / (static_cast<double>(p.ports) * p.flitBits);
    return s;
}

double
vcBandwidthOverhead(int dest_bits, int length, int num_vcs)
{
    return static_cast<double>(dest_bits) / length + ceilLog2(num_vcs);
}

double
frBandwidthOverhead(int dest_bits, int length, int ctrl_vcs,
                    int flits_per_ctrl, int horizon)
{
    // Control flits carry the VCID; there are 1 + (L-1)/d of them per
    // L-data-flit packet. Every data flit costs one arrival timestamp.
    const double ctrl_flits =
        1.0 + static_cast<double>(length - 1) / flits_per_ctrl;
    return static_cast<double>(dest_bits) / length
        + ceilLog2(ctrl_vcs) * ctrl_flits / length + ceilLog2(horizon);
}

}  // namespace frfc
