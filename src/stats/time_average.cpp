#include "stats/time_average.hpp"

namespace frfc {

void
TimeAverage::sample(Cycle /* now */, double level)
{
    weighted_sum_ += level;
    ++cycles_;
    if (level >= threshold_)
        ++at_or_above_;
}

void
TimeAverage::reset(Cycle now)
{
    weighted_sum_ = 0.0;
    cycles_ = 0;
    at_or_above_ = 0;
    track_last_ = now;
    track_level_ = 0.0;
}

double
TimeAverage::average() const
{
    return cycles_ > 0 ? weighted_sum_ / static_cast<double>(cycles_) : 0.0;
}

double
TimeAverage::atOrAboveFraction() const
{
    return cycles_ > 0
        ? static_cast<double>(at_or_above_) / static_cast<double>(cycles_)
        : 0.0;
}

}  // namespace frfc
