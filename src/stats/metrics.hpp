/**
 * @file
 * Hierarchical metric registry.
 *
 * Every simulated component (router, source, sink, reservation table)
 * registers its instruments under a stable dotted path at construction
 * time — e.g. `router.3.out.2.reservations_denied`. Hot components own
 * their instruments as plain members and attach*() them, so the hot
 * path bumps a member on the component's own cache lines: no string
 * lookup, no map traversal, no pointer chase into registry-owned heap
 * objects. Registration is the only operation that touches the path
 * map; the registry reads the attached instruments only at snapshot
 * time.
 *
 * Four instrument kinds:
 *   - Counter:     monotonically increasing event count
 *   - Gauge:       last-written level (instantaneous value)
 *   - TimeAverage: time-weighted level average (stats/time_average.hpp)
 *   - Histogram:   fixed-bucket distribution (stats/histogram.hpp)
 *
 * snapshot() flattens the registry into a sorted list of (path, value)
 * samples. Counters and gauges emit one sample each; time-averages emit
 * their average; histograms expand into `.count`, `.p50`, `.p95`, and
 * `.p99` sub-keys. Snapshots are plain data — comparable, mergeable
 * into reports, and independent of the registry they came from.
 *
 * Path naming scheme (see README.md):
 *   router.<node>.<name>            per-router event counters
 *   router.<node>.out.<port>.<name> per-output-table instruments
 *   router.<node>.in.<port>.<name>  per-input-table instruments
 *   source.<node>.<name>           injection-side counters
 *   sink.<node>.<name>             ejection-side counters
 */

#ifndef FRFC_STATS_METRICS_HPP
#define FRFC_STATS_METRICS_HPP

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "stats/histogram.hpp"
#include "stats/time_average.hpp"

namespace frfc {

/** Monotonic event counter; the cheapest instrument (one add). */
class Counter
{
  public:
    void inc() { ++value_; }
    void add(std::int64_t n) { value_ += n; }
    std::int64_t value() const { return value_; }
    void reset() { value_ = 0; }

  private:
    std::int64_t value_ = 0;
};

/** Last-written level, for values that are set rather than counted. */
class Gauge
{
  public:
    void set(double value) { value_ = value; }
    double value() const { return value_; }

  private:
    double value_ = 0.0;
};

/** One flattened (path, value) pair of a snapshot. */
struct MetricSample
{
    std::string path;
    double value = 0.0;

    bool
    operator==(const MetricSample& other) const
    {
        return path == other.path && value == other.value;
    }
};

/**
 * Immutable flattened view of a registry at one instant. Samples are
 * sorted by path, so equal registries produce equal snapshots and
 * lookups are a binary search.
 */
class MetricsSnapshot
{
  public:
    MetricsSnapshot() = default;
    explicit MetricsSnapshot(std::vector<MetricSample> samples);

    const std::vector<MetricSample>& samples() const { return samples_; }
    bool empty() const { return samples_.empty(); }
    std::size_t size() const { return samples_.size(); }

    /** True if a sample with exactly @p path exists. */
    bool has(const std::string& path) const;

    /** Value at @p path; fatal() if absent. */
    double value(const std::string& path) const;

    /** Sum of all samples whose path ends with `.<suffix>`. */
    double sumMatching(const std::string& suffix) const;

    bool
    operator==(const MetricsSnapshot& other) const
    {
        return samples_ == other.samples_;
    }

  private:
    std::vector<MetricSample> samples_;  ///< sorted by path
};

/**
 * Create-or-get registry of named instruments. References returned by
 * the accessors are stable for the registry's lifetime (instruments
 * are heap-allocated and never move), so components cache them at
 * construction and bump them without further lookups.
 *
 * Components that bump an instrument every few simulated cycles should
 * instead keep it as a plain member and attach*() its address: the hot
 * path then touches the component's own cache lines rather than a
 * registry-owned heap object, and the registry merely observes the
 * member at snapshot() time. Attached instruments must outlive the
 * registry's reads — in NetworkModel both die together.
 *
 * Re-registering an existing path returns the existing instrument —
 * but requesting it as a different kind, or attaching over any
 * existing path, is a fatal config error.
 */
class MetricRegistry
{
  public:
    MetricRegistry() = default;
    MetricRegistry(const MetricRegistry&) = delete;
    MetricRegistry& operator=(const MetricRegistry&) = delete;

    /** @{ Create-or-get an instrument under @p path. */
    Counter& counter(const std::string& path);
    Gauge& gauge(const std::string& path);
    TimeAverage& timeAverage(const std::string& path);
    Histogram& histogram(const std::string& path, double lo, double hi,
                         int buckets);
    /** @} */

    /** @{ Register a component-owned instrument under @p path. The
     *  registry keeps only the pointer; @p path must be new. */
    void attachCounter(const std::string& path, Counter& c);
    void attachGauge(const std::string& path, Gauge& g);
    void attachTimeAverage(const std::string& path, TimeAverage& t);
    /** @} */

    /** True if any instrument is registered under @p path. */
    bool has(const std::string& path) const;

    /** Number of registered instruments (not snapshot samples). */
    std::size_t size() const { return entries_.size(); }

    /** All registered paths, sorted. */
    std::vector<std::string> paths() const;

    /**
     * Close out every change-driven time-average through cycle @p now
     * (TimeAverage::finish). Call once at the end of a run, before
     * snapshot(), so the level held since each instrument's last
     * update() is counted.
     */
    void finishTimeAverages(Cycle now);

    /** Flatten every instrument into a sorted sample list. */
    MetricsSnapshot snapshot() const;

  private:
    enum class Kind { kCounter, kGauge, kTimeAverage, kHistogram };

    /** Observation pointers; the owned_* slot is set only when the
     *  registry itself allocated the instrument (create-or-get path). */
    struct Entry
    {
        Kind kind;
        Counter* counter = nullptr;
        Gauge* gauge = nullptr;
        TimeAverage* time_average = nullptr;
        Histogram* histogram = nullptr;
        std::unique_ptr<Counter> owned_counter;
        std::unique_ptr<Gauge> owned_gauge;
        std::unique_ptr<TimeAverage> owned_time_average;
        std::unique_ptr<Histogram> owned_histogram;
    };

    Entry& entry(const std::string& path, Kind kind);

    static const char* kindName(Kind kind);

    std::map<std::string, Entry> entries_;
};

}  // namespace frfc

#endif  // FRFC_STATS_METRICS_HPP
