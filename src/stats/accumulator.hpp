/**
 * @file
 * Streaming sample statistics with confidence intervals.
 */

#ifndef FRFC_STATS_ACCUMULATOR_HPP
#define FRFC_STATS_ACCUMULATOR_HPP

#include <cstdint>
#include <limits>

namespace frfc {

/**
 * Welford streaming accumulator: mean, variance, min, max, and a normal
 * approximation 95% confidence half-interval (valid for large n — the
 * paper's measurements use 100k packets).
 */
class Accumulator
{
  public:
    /** Add one sample. */
    void add(double sample);

    /** Merge another accumulator's samples into this one. */
    void merge(const Accumulator& other);

    /** Discard all samples. */
    void reset();

    std::int64_t count() const { return count_; }
    double mean() const;
    double variance() const;  ///< unbiased sample variance
    double stddev() const;
    double min() const { return min_; }
    double max() const { return max_; }
    double sum() const { return sum_; }

    /** Half-width of the 95% confidence interval on the mean. */
    double ci95HalfWidth() const;

    /** ci95HalfWidth() / mean(), or 0 when mean is 0. */
    double ci95Relative() const;

  private:
    std::int64_t count_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double sum_ = 0.0;
    double min_ = std::numeric_limits<double>::infinity();
    double max_ = -std::numeric_limits<double>::infinity();
};

}  // namespace frfc

#endif  // FRFC_STATS_ACCUMULATOR_HPP
