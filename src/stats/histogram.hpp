/**
 * @file
 * Fixed-bucket histogram for latency / occupancy distributions.
 */

#ifndef FRFC_STATS_HISTOGRAM_HPP
#define FRFC_STATS_HISTOGRAM_HPP

#include <cstdint>
#include <string>
#include <vector>

namespace frfc {

/**
 * Linear-bucket histogram over [lo, hi); out-of-range samples land in
 * underflow/overflow buckets so totals are conserved.
 */
class Histogram
{
  public:
    /**
     * @param lo       inclusive lower bound of the bucketed range
     * @param hi       exclusive upper bound
     * @param buckets  number of equal-width buckets (>= 1)
     */
    Histogram(double lo, double hi, int buckets);

    /** Add one sample. */
    void add(double sample);

    /** Discard all samples. */
    void reset();

    std::int64_t total() const { return total_; }
    std::int64_t underflow() const { return underflow_; }
    std::int64_t overflow() const { return overflow_; }
    int bucketCount() const { return static_cast<int>(counts_.size()); }
    std::int64_t bucket(int i) const { return counts_.at(i); }

    /** Lower edge of bucket @p i. */
    double bucketLo(int i) const;

    /** Sample value below which @p q of all samples fall (q in [0,1]). */
    double quantile(double q) const;

    /** Multi-line "lo..hi: count" rendering. */
    std::string toString() const;

  private:
    double lo_;
    double hi_;
    double width_;
    double inv_width_;  ///< cached 1/width: add() multiplies, never divides
    std::vector<std::int64_t> counts_;
    std::int64_t underflow_ = 0;
    std::int64_t overflow_ = 0;
    std::int64_t total_ = 0;
};

}  // namespace frfc

#endif  // FRFC_STATS_HISTOGRAM_HPP
