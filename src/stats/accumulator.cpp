#include "stats/accumulator.hpp"

#include <algorithm>
#include <cmath>

namespace frfc {

void
Accumulator::add(double sample)
{
    ++count_;
    sum_ += sample;
    const double delta = sample - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (sample - mean_);
    min_ = std::min(min_, sample);
    max_ = std::max(max_, sample);
}

void
Accumulator::merge(const Accumulator& other)
{
    if (other.count_ == 0)
        return;
    if (count_ == 0) {
        *this = other;
        return;
    }
    const double na = static_cast<double>(count_);
    const double nb = static_cast<double>(other.count_);
    const double delta = other.mean_ - mean_;
    const double total = na + nb;
    mean_ += delta * nb / total;
    m2_ += other.m2_ + delta * delta * na * nb / total;
    count_ += other.count_;
    sum_ += other.sum_;
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
}

void
Accumulator::reset()
{
    *this = Accumulator();
}

double
Accumulator::mean() const
{
    return count_ > 0 ? mean_ : 0.0;
}

double
Accumulator::variance() const
{
    return count_ > 1 ? m2_ / static_cast<double>(count_ - 1) : 0.0;
}

double
Accumulator::stddev() const
{
    return std::sqrt(variance());
}

double
Accumulator::ci95HalfWidth() const
{
    if (count_ < 2)
        return 0.0;
    return 1.96 * stddev() / std::sqrt(static_cast<double>(count_));
}

double
Accumulator::ci95Relative() const
{
    const double m = mean();
    return m != 0.0 ? ci95HalfWidth() / m : 0.0;
}

}  // namespace frfc
