/**
 * @file
 * Time-weighted averaging for level-style signals (queue lengths, buffer
 * occupancy). Used for the paper's "buffer pool full 40% of the time"
 * style measurements.
 */

#ifndef FRFC_STATS_TIME_AVERAGE_HPP
#define FRFC_STATS_TIME_AVERAGE_HPP

#include "common/types.hpp"

namespace frfc {

/**
 * Tracks a piecewise-constant level over time and reports its average
 * and the fraction of time spent at or above a threshold.
 */
class TimeAverage
{
  public:
    /** Record that the level is @p level during cycle @p now. */
    void sample(Cycle now, double level);

    /** Begin measuring (discard history before @p now). */
    void reset(Cycle now);

    /** Set the threshold for atOrAboveFraction(). */
    void setThreshold(double threshold) { threshold_ = threshold; }

    /** Time-average of the level since reset. */
    double average() const;

    /** Fraction of sampled cycles with level >= threshold. */
    double atOrAboveFraction() const;

    Cycle cyclesObserved() const { return cycles_; }

  private:
    double threshold_ = 0.0;
    double weighted_sum_ = 0.0;
    Cycle cycles_ = 0;
    Cycle at_or_above_ = 0;
};

}  // namespace frfc

#endif  // FRFC_STATS_TIME_AVERAGE_HPP
