/**
 * @file
 * Time-weighted averaging for level-style signals (queue lengths, buffer
 * occupancy). Used for the paper's "buffer pool full 40% of the time"
 * style measurements.
 */

#ifndef FRFC_STATS_TIME_AVERAGE_HPP
#define FRFC_STATS_TIME_AVERAGE_HPP

#include "common/types.hpp"

namespace frfc {

/**
 * Tracks a piecewise-constant level over time and reports its average
 * and the fraction of time spent at or above a threshold.
 */
class TimeAverage
{
  public:
    /** Record that the level is @p level during cycle @p now. */
    void sample(Cycle now, double level);

    /**
     * Change-driven alternative to per-cycle sample(): record that the
     * level becomes @p level at cycle @p now, extending the previous
     * level across every cycle since the last update. Call only when
     * the level changes — cycles in between cost nothing — and call
     * finish() before reading averages so the final level is counted
     * through the end of the run. Do not mix with sample() on the same
     * instance. Inline: this is on the per-flit simulation path.
     */
    void
    update(Cycle now, double level)
    {
        finish(now);
        track_level_ = level;
    }

    /** Extend the tracked level through (excluding) @p now. */
    void
    finish(Cycle now)
    {
        if (track_last_ != kInvalidCycle && now > track_last_) {
            const Cycle span = now - track_last_;
            weighted_sum_ += track_level_ * static_cast<double>(span);
            cycles_ += span;
            if (track_level_ >= threshold_)
                at_or_above_ += span;
        }
        track_last_ = now;
    }

    /** Begin measuring (discard history before @p now). */
    void reset(Cycle now);

    /** Set the threshold for atOrAboveFraction(). */
    void setThreshold(double threshold) { threshold_ = threshold; }

    /** Time-average of the level since reset. */
    double average() const;

    /** Fraction of sampled cycles with level >= threshold. */
    double atOrAboveFraction() const;

    Cycle cyclesObserved() const { return cycles_; }

  private:
    double threshold_ = 0.0;
    double weighted_sum_ = 0.0;
    Cycle cycles_ = 0;
    Cycle at_or_above_ = 0;
    /** @{ update()/finish() tracking state. */
    Cycle track_last_ = kInvalidCycle;
    double track_level_ = 0.0;
    /** @} */
};

}  // namespace frfc

#endif  // FRFC_STATS_TIME_AVERAGE_HPP
