#include "stats/warmup.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/log.hpp"

namespace frfc {

WarmupDetector::WarmupDetector(Cycle min_cycles, int window,
                               double tolerance)
    : min_cycles_(min_cycles), window_(static_cast<std::size_t>(window)),
      tolerance_(tolerance)
{
    FRFC_ASSERT(window > 0, "warmup window must be positive");
    FRFC_ASSERT(tolerance > 0.0, "warmup tolerance must be positive");
}

void
WarmupDetector::sample(Cycle now, double value)
{
    if (stable_)
        return;
    current_.push_back(value);
    if (current_.size() < window_)
        return;

    const double mean =
        std::accumulate(current_.begin(), current_.end(), 0.0)
        / static_cast<double>(current_.size());
    current_.clear();

    if (have_prev_ && now >= min_cycles_) {
        // Relative difference with an absolute floor so an all-zero
        // signal (an idle network) also counts as stable.
        const double scale = std::max({std::fabs(prev_mean_),
                                       std::fabs(mean), 1.0});
        if (std::fabs(mean - prev_mean_) / scale <= tolerance_) {
            stable_ = true;
            stable_at_ = now;
        }
    }
    prev_mean_ = mean;
    have_prev_ = true;
}

}  // namespace frfc
