#include "stats/metrics.hpp"

#include <algorithm>

#include "common/log.hpp"

namespace frfc {

MetricsSnapshot::MetricsSnapshot(std::vector<MetricSample> samples)
    : samples_(std::move(samples))
{
    std::sort(samples_.begin(), samples_.end(),
              [](const MetricSample& a, const MetricSample& b) {
                  return a.path < b.path;
              });
}

namespace {

std::vector<MetricSample>::const_iterator
find(const std::vector<MetricSample>& samples, const std::string& path)
{
    const auto it = std::lower_bound(
        samples.begin(), samples.end(), path,
        [](const MetricSample& s, const std::string& p) {
            return s.path < p;
        });
    if (it == samples.end() || it->path != path)
        return samples.end();
    return it;
}

}  // namespace

bool
MetricsSnapshot::has(const std::string& path) const
{
    return find(samples_, path) != samples_.end();
}

double
MetricsSnapshot::value(const std::string& path) const
{
    const auto it = find(samples_, path);
    if (it == samples_.end())
        fatal("metrics snapshot has no sample '", path, "'");
    return it->value;
}

double
MetricsSnapshot::sumMatching(const std::string& suffix) const
{
    const std::string tail = "." + suffix;
    double sum = 0.0;
    for (const MetricSample& s : samples_) {
        if (s.path.size() >= tail.size() &&
            s.path.compare(s.path.size() - tail.size(), tail.size(),
                           tail) == 0) {
            sum += s.value;
        }
    }
    return sum;
}

const char*
MetricRegistry::kindName(Kind kind)
{
    switch (kind) {
    case Kind::kCounter: return "counter";
    case Kind::kGauge: return "gauge";
    case Kind::kTimeAverage: return "time-average";
    case Kind::kHistogram: return "histogram";
    }
    return "?";
}

MetricRegistry::Entry&
MetricRegistry::entry(const std::string& path, Kind kind)
{
    if (path.empty())
        fatal("metric path must be nonempty");
    auto [it, inserted] = entries_.try_emplace(path);
    if (!inserted && it->second.kind != kind) {
        fatal("metric '", path, "' already registered as ",
              kindName(it->second.kind), ", requested as ",
              kindName(kind));
    }
    if (inserted)
        it->second.kind = kind;
    return it->second;
}

Counter&
MetricRegistry::counter(const std::string& path)
{
    Entry& e = entry(path, Kind::kCounter);
    if (e.counter == nullptr) {
        e.owned_counter = std::make_unique<Counter>();
        e.counter = e.owned_counter.get();
    }
    return *e.counter;
}

Gauge&
MetricRegistry::gauge(const std::string& path)
{
    Entry& e = entry(path, Kind::kGauge);
    if (e.gauge == nullptr) {
        e.owned_gauge = std::make_unique<Gauge>();
        e.gauge = e.owned_gauge.get();
    }
    return *e.gauge;
}

TimeAverage&
MetricRegistry::timeAverage(const std::string& path)
{
    Entry& e = entry(path, Kind::kTimeAverage);
    if (e.time_average == nullptr) {
        e.owned_time_average = std::make_unique<TimeAverage>();
        e.time_average = e.owned_time_average.get();
    }
    return *e.time_average;
}

Histogram&
MetricRegistry::histogram(const std::string& path, double lo, double hi,
                          int buckets)
{
    Entry& e = entry(path, Kind::kHistogram);
    if (e.histogram == nullptr) {
        e.owned_histogram = std::make_unique<Histogram>(lo, hi, buckets);
        e.histogram = e.owned_histogram.get();
    }
    return *e.histogram;
}

void
MetricRegistry::attachCounter(const std::string& path, Counter& c)
{
    if (entries_.count(path) > 0)
        fatal("metric '", path, "' already registered; cannot attach");
    entry(path, Kind::kCounter).counter = &c;
}

void
MetricRegistry::attachGauge(const std::string& path, Gauge& g)
{
    if (entries_.count(path) > 0)
        fatal("metric '", path, "' already registered; cannot attach");
    entry(path, Kind::kGauge).gauge = &g;
}

void
MetricRegistry::attachTimeAverage(const std::string& path, TimeAverage& t)
{
    if (entries_.count(path) > 0)
        fatal("metric '", path, "' already registered; cannot attach");
    entry(path, Kind::kTimeAverage).time_average = &t;
}

bool
MetricRegistry::has(const std::string& path) const
{
    return entries_.count(path) > 0;
}

std::vector<std::string>
MetricRegistry::paths() const
{
    std::vector<std::string> out;
    out.reserve(entries_.size());
    for (const auto& [path, entry] : entries_)
        out.push_back(path);
    return out;
}

void
MetricRegistry::finishTimeAverages(Cycle now)
{
    for (auto& [path, e] : entries_) {
        if (e.kind == Kind::kTimeAverage)
            e.time_average->finish(now);
    }
}

MetricsSnapshot
MetricRegistry::snapshot() const
{
    std::vector<MetricSample> samples;
    samples.reserve(entries_.size());
    // entries_ iterates in sorted key order; histogram sub-keys append
    // '.count'/'.p50'/... which sort after the bare path but could
    // interleave with a sibling path, so sort once at the end via the
    // MetricsSnapshot constructor.
    for (const auto& [path, e] : entries_) {
        switch (e.kind) {
        case Kind::kCounter:
            samples.push_back(
                {path, static_cast<double>(e.counter->value())});
            break;
        case Kind::kGauge:
            samples.push_back({path, e.gauge->value()});
            break;
        case Kind::kTimeAverage:
            samples.push_back({path, e.time_average->average()});
            break;
        case Kind::kHistogram:
            samples.push_back(
                {path + ".count",
                 static_cast<double>(e.histogram->total())});
            samples.push_back({path + ".p50", e.histogram->quantile(0.50)});
            samples.push_back({path + ".p95", e.histogram->quantile(0.95)});
            samples.push_back({path + ".p99", e.histogram->quantile(0.99)});
            break;
        }
    }
    return MetricsSnapshot(std::move(samples));
}

}  // namespace frfc
