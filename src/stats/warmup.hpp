/**
 * @file
 * Warm-up (steady-state) detection.
 *
 * The paper runs "a warm-up phase of a minimum of 10,000 cycles till
 * average queue lengths have stabilized". WarmupDetector reproduces
 * that: it watches a periodically-sampled signal (average source-queue
 * length) and declares stability when consecutive window means agree to
 * within a relative tolerance, subject to a minimum number of cycles.
 */

#ifndef FRFC_STATS_WARMUP_HPP
#define FRFC_STATS_WARMUP_HPP

#include <vector>

#include "common/types.hpp"

namespace frfc {

/** Detects stabilization of a sampled signal. */
class WarmupDetector
{
  public:
    /**
     * @param min_cycles  never declare stable before this many cycles
     * @param window      samples per comparison window
     * @param tolerance   relative difference between window means that
     *                    counts as "stable"
     */
    WarmupDetector(Cycle min_cycles, int window, double tolerance);

    /** Feed one sample taken during cycle @p now. */
    void sample(Cycle now, double value);

    /** True once the signal has stabilized (and min_cycles elapsed). */
    bool stable() const { return stable_; }

    /** Cycle at which stability was declared (kInvalidCycle if not). */
    Cycle stableAt() const { return stable_at_; }

  private:
    Cycle min_cycles_;
    std::size_t window_;
    double tolerance_;
    std::vector<double> current_;
    double prev_mean_ = -1.0;
    bool have_prev_ = false;
    bool stable_ = false;
    Cycle stable_at_ = kInvalidCycle;
};

}  // namespace frfc

#endif  // FRFC_STATS_WARMUP_HPP
