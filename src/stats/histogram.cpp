#include "stats/histogram.hpp"

#include <algorithm>
#include <sstream>

#include "common/log.hpp"

namespace frfc {

Histogram::Histogram(double lo, double hi, int buckets)
    : lo_(lo), hi_(hi), width_((hi - lo) / buckets),
      inv_width_(1.0 / width_),
      counts_(static_cast<std::size_t>(buckets), 0)
{
    FRFC_ASSERT(hi > lo, "histogram range must be nonempty");
    FRFC_ASSERT(buckets >= 1, "histogram needs at least one bucket");
}

void
Histogram::add(double sample)
{
    ++total_;
    // Common case is one multiply, one range test, one increment. The
    // production histograms use power-of-two bucket widths, so the
    // multiply reproduces the division's bucket index exactly.
    const double offset = (sample - lo_) * inv_width_;
    if (offset >= 0.0 && offset < static_cast<double>(counts_.size())) {
        ++counts_[static_cast<std::size_t>(offset)];
        return;
    }
    if (sample < lo_)
        ++underflow_;
    else
        ++overflow_;
}

void
Histogram::reset()
{
    std::fill(counts_.begin(), counts_.end(), 0);
    underflow_ = overflow_ = total_ = 0;
}

double
Histogram::bucketLo(int i) const
{
    return lo_ + width_ * i;
}

double
Histogram::quantile(double q) const
{
    FRFC_ASSERT(q >= 0.0 && q <= 1.0, "quantile requires q in [0,1]");
    if (total_ == 0)
        return lo_;
    // Rank of the requested quantile among the samples. Samples are
    // assumed uniform within their bucket, so once the rank's bucket is
    // known the answer interpolates linearly across that bucket's width.
    const double target = q * static_cast<double>(total_);
    double seen = static_cast<double>(underflow_);
    if (target <= seen)
        return lo_;  // the quantile lies below the bucketed range
    for (std::size_t i = 0; i < counts_.size(); ++i) {
        const auto count = static_cast<double>(counts_[i]);
        if (count > 0.0 && target <= seen + count) {
            const double frac = (target - seen) / count;
            return bucketLo(static_cast<int>(i)) + frac * width_;
        }
        seen += count;
    }
    return hi_;  // the quantile lies in the overflow bucket
}

std::string
Histogram::toString() const
{
    std::ostringstream os;
    if (underflow_ > 0)
        os << "<" << lo_ << ": " << underflow_ << "\n";
    for (std::size_t i = 0; i < counts_.size(); ++i) {
        if (counts_[i] == 0)
            continue;
        os << bucketLo(static_cast<int>(i)) << ".."
           << bucketLo(static_cast<int>(i)) + width_ << ": " << counts_[i]
           << "\n";
    }
    if (overflow_ > 0)
        os << ">=" << hi_ << ": " << overflow_ << "\n";
    return os.str();
}

}  // namespace frfc
