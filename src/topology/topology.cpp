#include "topology/topology.hpp"

#include "common/config.hpp"
#include "common/log.hpp"
#include "topology/mesh.hpp"
#include "topology/torus.hpp"

namespace frfc {

const char*
directionName(PortId port)
{
    switch (port) {
      case kEast:
        return "east";
      case kWest:
        return "west";
      case kNorth:
        return "north";
      case kSouth:
        return "south";
      case kLocal:
        return "local";
      default:
        return "invalid";
    }
}

double
Topology::averageUniformHops() const
{
    const int n = numNodes();
    std::int64_t total = 0;
    std::int64_t pairs = 0;
    for (NodeId a = 0; a < n; ++a) {
        for (NodeId b = 0; b < n; ++b) {
            if (a == b)
                continue;
            total += hopDistance(a, b);
            ++pairs;
        }
    }
    return pairs > 0
        ? static_cast<double>(total) / static_cast<double>(pairs)
        : 0.0;
}

std::unique_ptr<Topology>
makeTopology(const Config& cfg)
{
    const std::string kind = cfg.getString("topology", "mesh");
    const int size_x = static_cast<int>(cfg.getInt("size_x", 8));
    const int size_y = static_cast<int>(cfg.getInt("size_y", 8));
    if (kind == "mesh")
        return std::make_unique<Mesh2D>(size_x, size_y);
    if (kind == "torus")
        return std::make_unique<Torus2D>(size_x, size_y);
    fatal("unknown topology '", kind, "' (expected mesh or torus)");
}

}  // namespace frfc
