#include "topology/mesh.hpp"

#include <cstdlib>
#include <sstream>

#include "common/log.hpp"

namespace frfc {

Mesh2D::Mesh2D(int size_x, int size_y) : size_x_(size_x), size_y_(size_y)
{
    if (size_x < 2 || size_y < 2)
        fatal("mesh dimensions must be >= 2, got ", size_x, "x", size_y);
}

NodeId
Mesh2D::nodeAt(int x, int y) const
{
    FRFC_ASSERT(x >= 0 && x < size_x_ && y >= 0 && y < size_y_,
                "coordinates out of range");
    return static_cast<NodeId>(y * size_x_ + x);
}

int
Mesh2D::xOf(NodeId node) const
{
    return static_cast<int>(node) % size_x_;
}

int
Mesh2D::yOf(NodeId node) const
{
    return static_cast<int>(node) / size_x_;
}

NodeId
Mesh2D::neighbor(NodeId node, PortId port) const
{
    const int x = xOf(node);
    const int y = yOf(node);
    switch (port) {
      case kEast:
        return x + 1 < size_x_ ? nodeAt(x + 1, y) : kInvalidNode;
      case kWest:
        return x - 1 >= 0 ? nodeAt(x - 1, y) : kInvalidNode;
      case kNorth:
        return y - 1 >= 0 ? nodeAt(x, y - 1) : kInvalidNode;
      case kSouth:
        return y + 1 < size_y_ ? nodeAt(x, y + 1) : kInvalidNode;
      case kLocal:
        return node;
      default:
        panic("bad port ", port);
    }
}

int
Mesh2D::hopDistance(NodeId a, NodeId b) const
{
    return std::abs(xOf(a) - xOf(b)) + std::abs(yOf(a) - yOf(b));
}

double
Mesh2D::uniformCapacity() const
{
    // Under uniform traffic the bisection of a k-ary 2-mesh is the
    // bottleneck: half of all traffic crosses k channels per direction,
    // giving 4/k flits/node/cycle (0.5 for the paper's 8x8 mesh).
    // For rectangular meshes the larger dimension dominates.
    const int k = std::max(size_x_, size_y_);
    return 4.0 / static_cast<double>(k);
}

std::string
Mesh2D::describe() const
{
    std::ostringstream os;
    os << size_x_ << "x" << size_y_ << " mesh";
    return os.str();
}

}  // namespace frfc
