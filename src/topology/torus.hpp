/**
 * @file
 * k-ary 2-torus topology (extension beyond the paper's mesh).
 */

#ifndef FRFC_TOPOLOGY_TORUS_HPP
#define FRFC_TOPOLOGY_TORUS_HPP

#include "topology/topology.hpp"

namespace frfc {

/** 2-D torus: every directional port is wired (wraparound links). */
class Torus2D : public Topology
{
  public:
    Torus2D(int size_x, int size_y);

    int numNodes() const override { return size_x_ * size_y_; }
    int sizeX() const override { return size_x_; }
    int sizeY() const override { return size_y_; }

    NodeId nodeAt(int x, int y) const override;
    int xOf(NodeId node) const override;
    int yOf(NodeId node) const override;
    NodeId neighbor(NodeId node, PortId port) const override;
    int hopDistance(NodeId a, NodeId b) const override;
    double uniformCapacity() const override;
    std::string describe() const override;

  private:
    int size_x_;
    int size_y_;
};

}  // namespace frfc

#endif  // FRFC_TOPOLOGY_TORUS_HPP
