#include "topology/torus.hpp"

#include <algorithm>
#include <cstdlib>
#include <sstream>

#include "common/log.hpp"

namespace frfc {

Torus2D::Torus2D(int size_x, int size_y) : size_x_(size_x), size_y_(size_y)
{
    if (size_x < 2 || size_y < 2)
        fatal("torus dimensions must be >= 2, got ", size_x, "x", size_y);
}

NodeId
Torus2D::nodeAt(int x, int y) const
{
    FRFC_ASSERT(x >= 0 && x < size_x_ && y >= 0 && y < size_y_,
                "coordinates out of range");
    return static_cast<NodeId>(y * size_x_ + x);
}

int
Torus2D::xOf(NodeId node) const
{
    return static_cast<int>(node) % size_x_;
}

int
Torus2D::yOf(NodeId node) const
{
    return static_cast<int>(node) / size_x_;
}

NodeId
Torus2D::neighbor(NodeId node, PortId port) const
{
    const int x = xOf(node);
    const int y = yOf(node);
    switch (port) {
      case kEast:
        return nodeAt((x + 1) % size_x_, y);
      case kWest:
        return nodeAt((x + size_x_ - 1) % size_x_, y);
      case kNorth:
        return nodeAt(x, (y + size_y_ - 1) % size_y_);
      case kSouth:
        return nodeAt(x, (y + 1) % size_y_);
      case kLocal:
        return node;
      default:
        panic("bad port ", port);
    }
}

int
Torus2D::hopDistance(NodeId a, NodeId b) const
{
    const int dx = std::abs(xOf(a) - xOf(b));
    const int dy = std::abs(yOf(a) - yOf(b));
    return std::min(dx, size_x_ - dx) + std::min(dy, size_y_ - dy);
}

double
Torus2D::uniformCapacity() const
{
    // Wraparound doubles bisection bandwidth relative to the mesh.
    const int k = std::max(size_x_, size_y_);
    return 8.0 / static_cast<double>(k);
}

std::string
Torus2D::describe() const
{
    std::ostringstream os;
    os << size_x_ << "x" << size_y_ << " torus";
    return os.str();
}

}  // namespace frfc
