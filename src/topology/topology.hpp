/**
 * @file
 * Topology abstraction: node naming, port wiring, and capacity.
 */

#ifndef FRFC_TOPOLOGY_TOPOLOGY_HPP
#define FRFC_TOPOLOGY_TOPOLOGY_HPP

#include <memory>
#include <string>

#include "common/types.hpp"

namespace frfc {

class Config;

/** Router port directions for 2-D topologies. */
enum Direction : PortId {
    kEast = 0,
    kWest = 1,
    kNorth = 2,
    kSouth = 3,
    kLocal = 4,  ///< injection/ejection port
};

/** Number of ports on a 2-D router (4 directions + local). */
inline constexpr int kNumPorts = 5;

/** Name of a direction for diagnostics. */
const char* directionName(PortId port);

/**
 * Abstract 2-D topology: a set of nodes with x/y coordinates and
 * direction-wired neighbor links.
 */
class Topology
{
  public:
    virtual ~Topology() = default;

    virtual int numNodes() const = 0;
    virtual int sizeX() const = 0;
    virtual int sizeY() const = 0;

    /** Flat id from coordinates. */
    virtual NodeId nodeAt(int x, int y) const = 0;
    virtual int xOf(NodeId node) const = 0;
    virtual int yOf(NodeId node) const = 0;

    /**
     * Neighbor reached by leaving @p node through @p port, or
     * kInvalidNode if that port has no link (mesh edges).
     */
    virtual NodeId neighbor(NodeId node, PortId port) const = 0;

    /** Minimal hop count between two nodes. */
    virtual int hopDistance(NodeId a, NodeId b) const = 0;

    /**
     * Saturation injection bandwidth under uniform traffic, in
     * flits/node/cycle — the paper's "100% capacity" normalization.
     */
    virtual double uniformCapacity() const = 0;

    /** Mean minimal hop count under uniform traffic (excluding self). */
    double averageUniformHops() const;

    /** Human-readable description. */
    virtual std::string describe() const = 0;
};

/**
 * Build a topology from config keys:
 *   topology = mesh | torus   (default mesh)
 *   size_x, size_y            (default 8 x 8)
 */
std::unique_ptr<Topology> makeTopology(const Config& cfg);

}  // namespace frfc

#endif  // FRFC_TOPOLOGY_TOPOLOGY_HPP
