/**
 * @file
 * k-ary 2-mesh topology (the paper's 8x8 mesh).
 */

#ifndef FRFC_TOPOLOGY_MESH_HPP
#define FRFC_TOPOLOGY_MESH_HPP

#include "topology/topology.hpp"

namespace frfc {

/** 2-D mesh: no wraparound links; edge ports are unwired. */
class Mesh2D : public Topology
{
  public:
    Mesh2D(int size_x, int size_y);

    int numNodes() const override { return size_x_ * size_y_; }
    int sizeX() const override { return size_x_; }
    int sizeY() const override { return size_y_; }

    NodeId nodeAt(int x, int y) const override;
    int xOf(NodeId node) const override;
    int yOf(NodeId node) const override;
    NodeId neighbor(NodeId node, PortId port) const override;
    int hopDistance(NodeId a, NodeId b) const override;
    double uniformCapacity() const override;
    std::string describe() const override;

  private:
    int size_x_;
    int size_y_;
};

}  // namespace frfc

#endif  // FRFC_TOPOLOGY_MESH_HPP
