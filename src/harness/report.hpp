/**
 * @file
 * Structured experiment reports.
 *
 * Every bench and example builds a Report while it runs: the configs it
 * swept, the offered loads, the RunResults (including per-component
 * metric snapshots), derived scalars, and free-form notes. The report
 * then serializes to JSON or CSV per RunOptions::outFormat /
 * RunOptions::outFile (`out.format=json out.file=fig5.json` on any
 * bench command line), so figures become machine-readable artifacts
 * instead of terminal scrape targets.
 *
 * JSON schema (schema_version 1):
 *   {
 *     "name": "fig5_latency_5flit", "title": "...",
 *     "schema_version": 1, "mode": "quick" | "full",
 *     "build": {"git": "...", "compiler": "...", "build_type": "..."},
 *     "wall_seconds": 1.23,
 *     "scalars": {"vc.saturation": 0.55, ...},
 *     "notes": ["..."],
 *     "curves": [{
 *       "name": "fr", "config": {"scheme": "fr", ...},
 *       "runs": [{"offered_fraction": 0.1, "avg_latency": ...,
 *                 "p50_latency": ..., "p95_latency": ...,
 *                 "p99_latency": ..., ...,
 *                 "metrics": {"router.0.ctrl.forwarded": 123, ...}}]
 *     }]
 *   }
 * Key order is fixed, so equal experiments produce byte-equal payloads
 * apart from wall_seconds and build info.
 *
 * CSV emits one row per (curve, run) with the scalar RunResult columns
 * (metrics stay JSON-only — thousands of columns help nobody).
 */

#ifndef FRFC_HARNESS_REPORT_HPP
#define FRFC_HARNESS_REPORT_HPP

#include <string>
#include <vector>

#include "common/config.hpp"
#include "harness/json.hpp"
#include "network/runner.hpp"

namespace frfc {

inline constexpr int kReportSchemaVersion = 1;

/** One swept configuration and its measured points. */
struct ReportCurve
{
    std::string name;             ///< e.g. "fr" or "vc b=16"
    Config config;                ///< the exact config swept
    std::vector<RunResult> runs;  ///< one per measured load

    void add(const RunResult& result) { runs.push_back(result); }
};

/** A bench's structured output: curves + scalars + notes. */
class Report
{
  public:
    Report(std::string name, std::string title);

    /** "quick" (default) or "full" (--full benches). */
    void setMode(std::string mode) { mode_ = std::move(mode); }
    void setWallSeconds(double s) { wall_seconds_ = s; }

    /** Append a curve; the reference stays valid until the next add. */
    ReportCurve& addCurve(const std::string& name, const Config& cfg);

    /** Named derived quantity (saturation point, overhead ratio...). */
    void addScalar(const std::string& key, double value);

    /** Free-form annotation carried into the serialized report. */
    void addNote(const std::string& note);

    const std::string& name() const { return name_; }
    const std::string& mode() const { return mode_; }
    const std::vector<ReportCurve>& curves() const { return curves_; }

    /** Report as a JSON tree (the serialization ground truth). */
    JsonValue toJsonValue() const;

    /** Pretty-printed JSON text. */
    std::string toJson() const;

    /** One row per (curve, run); scalar columns only. */
    std::string toCsv() const;

    /**
     * Emit per @p opt: "json"/"csv" go to opt.outFile (stdout when
     * empty); "table" is a no-op — the bench already printed its
     * human-readable tables.
     */
    void write(const RunOptions& opt) const;

  private:
    std::string name_;
    std::string title_;
    std::string mode_ = "quick";
    double wall_seconds_ = 0.0;
    std::vector<ReportCurve> curves_;
    std::vector<std::pair<std::string, double>> scalars_;
    std::vector<std::string> notes_;
};

/** The git description baked in at configure time ("unknown" outside
 *  a git checkout). */
std::string buildGitDescription();

}  // namespace frfc

#endif  // FRFC_HARNESS_REPORT_HPP
