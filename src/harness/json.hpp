/**
 * @file
 * Minimal JSON tree, writer, and parser.
 *
 * Just enough JSON for structured experiment reports (harness/report):
 * build a JsonValue tree, serialize it with dump(), and parse it back
 * with jsonParse(). Numbers are doubles printed with enough digits to
 * round-trip bit-exactly, so parse(dump(v)) == v holds for every tree
 * the harness produces. No dependencies beyond the standard library.
 */

#ifndef FRFC_HARNESS_JSON_HPP
#define FRFC_HARNESS_JSON_HPP

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

namespace frfc {

/** One JSON value: null, bool, number, string, array, or object. */
class JsonValue
{
  public:
    enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

    JsonValue() = default;                        ///< null
    JsonValue(bool b) : kind_(Kind::kBool), bool_(b) {}
    JsonValue(double n) : kind_(Kind::kNumber), num_(n) {}
    JsonValue(std::int64_t n)
        : kind_(Kind::kNumber), num_(static_cast<double>(n)) {}
    JsonValue(int n) : kind_(Kind::kNumber), num_(n) {}
    JsonValue(std::string s) : kind_(Kind::kString), str_(std::move(s)) {}
    JsonValue(const char* s) : kind_(Kind::kString), str_(s) {}

    /** @{ Empty aggregate constructors. */
    static JsonValue array() { JsonValue v; v.kind_ = Kind::kArray; return v; }
    static JsonValue object() { JsonValue v; v.kind_ = Kind::kObject; return v; }
    /** @} */

    Kind kind() const { return kind_; }
    bool isNull() const { return kind_ == Kind::kNull; }
    bool isObject() const { return kind_ == Kind::kObject; }
    bool isArray() const { return kind_ == Kind::kArray; }

    /** @{ Typed reads; fatal() on kind mismatch. */
    bool asBool() const;
    double asNumber() const;
    const std::string& asString() const;
    /** @} */

    /** Array access. */
    void push(JsonValue v);
    std::size_t size() const;
    const JsonValue& at(std::size_t i) const;

    /** Object access; set() keeps first-insertion key order. */
    void set(const std::string& key, JsonValue v);
    bool contains(const std::string& key) const;
    /** Member lookup; fatal() if absent. */
    const JsonValue& at(const std::string& key) const;
    const std::vector<std::pair<std::string, JsonValue>>& members() const
    {
        return object_;
    }

    /** Serialize; indent > 0 pretty-prints with that many spaces. */
    std::string dump(int indent = 0) const;

    bool operator==(const JsonValue& other) const;
    bool operator!=(const JsonValue& other) const
    {
        return !(*this == other);
    }

  private:
    void dumpTo(std::string& out, int indent, int depth) const;

    Kind kind_ = Kind::kNull;
    bool bool_ = false;
    double num_ = 0.0;
    std::string str_;
    std::vector<JsonValue> array_;
    std::vector<std::pair<std::string, JsonValue>> object_;
};

/**
 * Parse JSON text into a tree. On malformed input, returns null and
 * fills @p error with a message carrying the byte offset; @p error may
 * be nullptr if the caller fatal()s on failure anyway.
 */
JsonValue jsonParse(const std::string& text, std::string* error);

}  // namespace frfc

#endif  // FRFC_HARNESS_JSON_HPP
