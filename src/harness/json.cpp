#include "harness/json.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "common/log.hpp"

namespace frfc {

bool
JsonValue::asBool() const
{
    FRFC_ASSERT(kind_ == Kind::kBool, "JSON value is not a bool");
    return bool_;
}

double
JsonValue::asNumber() const
{
    FRFC_ASSERT(kind_ == Kind::kNumber, "JSON value is not a number");
    return num_;
}

const std::string&
JsonValue::asString() const
{
    FRFC_ASSERT(kind_ == Kind::kString, "JSON value is not a string");
    return str_;
}

void
JsonValue::push(JsonValue v)
{
    FRFC_ASSERT(kind_ == Kind::kArray, "push on a non-array JSON value");
    array_.push_back(std::move(v));
}

std::size_t
JsonValue::size() const
{
    if (kind_ == Kind::kArray)
        return array_.size();
    if (kind_ == Kind::kObject)
        return object_.size();
    panic("size() on a scalar JSON value");
}

const JsonValue&
JsonValue::at(std::size_t i) const
{
    FRFC_ASSERT(kind_ == Kind::kArray, "index into a non-array");
    FRFC_ASSERT(i < array_.size(), "JSON array index out of range");
    return array_[i];
}

void
JsonValue::set(const std::string& key, JsonValue v)
{
    FRFC_ASSERT(kind_ == Kind::kObject, "set on a non-object JSON value");
    for (auto& member : object_) {
        if (member.first == key) {
            member.second = std::move(v);
            return;
        }
    }
    object_.emplace_back(key, std::move(v));
}

bool
JsonValue::contains(const std::string& key) const
{
    if (kind_ != Kind::kObject)
        return false;
    for (const auto& member : object_) {
        if (member.first == key)
            return true;
    }
    return false;
}

const JsonValue&
JsonValue::at(const std::string& key) const
{
    FRFC_ASSERT(kind_ == Kind::kObject, "member lookup on a non-object");
    for (const auto& member : object_) {
        if (member.first == key)
            return member.second;
    }
    panic("JSON object has no member '", key, "'");
}

bool
JsonValue::operator==(const JsonValue& other) const
{
    if (kind_ != other.kind_)
        return false;
    switch (kind_) {
      case Kind::kNull:
        return true;
      case Kind::kBool:
        return bool_ == other.bool_;
      case Kind::kNumber:
        return num_ == other.num_;
      case Kind::kString:
        return str_ == other.str_;
      case Kind::kArray:
        return array_ == other.array_;
      case Kind::kObject:
        return object_ == other.object_;
    }
    return false;
}

namespace {

void
escapeString(std::string& out, const std::string& s)
{
    out += '"';
    for (const char c : s) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\t':
            out += "\\t";
            break;
          case '\r':
            out += "\\r";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    out += '"';
}

void
formatNumber(std::string& out, double num)
{
    if (!std::isfinite(num)) {
        // JSON has no inf/nan; null is the conventional stand-in.
        out += "null";
        return;
    }
    if (num == static_cast<double>(static_cast<std::int64_t>(num))
        && std::abs(num) < 1e15) {
        out += std::to_string(static_cast<std::int64_t>(num));
        return;
    }
    // Shortest representation that parses back to the same double.
    char buf[32];
    for (int prec = 15; prec <= 17; ++prec) {
        std::snprintf(buf, sizeof buf, "%.*g", prec, num);
        if (std::strtod(buf, nullptr) == num)
            break;
    }
    out += buf;
}

void
newlineIndent(std::string& out, int indent, int depth)
{
    if (indent <= 0)
        return;
    out += '\n';
    out.append(static_cast<std::size_t>(indent * depth), ' ');
}

}  // namespace

void
JsonValue::dumpTo(std::string& out, int indent, int depth) const
{
    switch (kind_) {
      case Kind::kNull:
        out += "null";
        break;
      case Kind::kBool:
        out += bool_ ? "true" : "false";
        break;
      case Kind::kNumber:
        formatNumber(out, num_);
        break;
      case Kind::kString:
        escapeString(out, str_);
        break;
      case Kind::kArray: {
        if (array_.empty()) {
            out += "[]";
            break;
        }
        out += '[';
        bool first = true;
        for (const JsonValue& v : array_) {
            if (!first)
                out += ',';
            first = false;
            newlineIndent(out, indent, depth + 1);
            v.dumpTo(out, indent, depth + 1);
        }
        newlineIndent(out, indent, depth);
        out += ']';
        break;
      }
      case Kind::kObject: {
        if (object_.empty()) {
            out += "{}";
            break;
        }
        out += '{';
        bool first = true;
        for (const auto& member : object_) {
            if (!first)
                out += ',';
            first = false;
            newlineIndent(out, indent, depth + 1);
            escapeString(out, member.first);
            out += indent > 0 ? ": " : ":";
            member.second.dumpTo(out, indent, depth + 1);
        }
        newlineIndent(out, indent, depth);
        out += '}';
        break;
      }
    }
}

std::string
JsonValue::dump(int indent) const
{
    std::string out;
    dumpTo(out, indent, 0);
    return out;
}

namespace {

/** Recursive-descent JSON parser over a borrowed string. */
class Parser
{
  public:
    Parser(const std::string& text, std::string* error)
        : text_(text), error_(error)
    {
    }

    JsonValue
    parse()
    {
        JsonValue v = parseValue();
        if (failed_)
            return JsonValue();
        skipSpace();
        if (pos_ != text_.size()) {
            fail("trailing garbage");
            return JsonValue();
        }
        return v;
    }

    bool failed() const { return failed_; }

  private:
    void
    fail(const std::string& what)
    {
        if (!failed_ && error_ != nullptr)
            *error_ = what + " at byte " + std::to_string(pos_);
        failed_ = true;
    }

    void
    skipSpace()
    {
        while (pos_ < text_.size()
               && std::isspace(static_cast<unsigned char>(text_[pos_])))
            ++pos_;
    }

    bool
    consume(const char* literal)
    {
        const std::size_t len = std::char_traits<char>::length(literal);
        if (text_.compare(pos_, len, literal) == 0) {
            pos_ += len;
            return true;
        }
        return false;
    }

    JsonValue
    parseValue()
    {
        skipSpace();
        if (pos_ >= text_.size()) {
            fail("unexpected end of input");
            return JsonValue();
        }
        const char c = text_[pos_];
        if (c == '{')
            return parseObject();
        if (c == '[')
            return parseArray();
        if (c == '"')
            return JsonValue(parseString());
        if (consume("null"))
            return JsonValue();
        if (consume("true"))
            return JsonValue(true);
        if (consume("false"))
            return JsonValue(false);
        return parseNumber();
    }

    JsonValue
    parseNumber()
    {
        const char* start = text_.c_str() + pos_;
        char* end = nullptr;
        const double num = std::strtod(start, &end);
        if (end == start) {
            fail("expected a value");
            return JsonValue();
        }
        pos_ += static_cast<std::size_t>(end - start);
        return JsonValue(num);
    }

    std::string
    parseString()
    {
        std::string out;
        ++pos_;  // opening quote
        while (pos_ < text_.size() && text_[pos_] != '"') {
            char c = text_[pos_++];
            if (c != '\\') {
                out += c;
                continue;
            }
            if (pos_ >= text_.size())
                break;
            c = text_[pos_++];
            switch (c) {
              case 'n':
                out += '\n';
                break;
              case 't':
                out += '\t';
                break;
              case 'r':
                out += '\r';
                break;
              case 'b':
                out += '\b';
                break;
              case 'f':
                out += '\f';
                break;
              case 'u': {
                if (pos_ + 4 > text_.size()) {
                    fail("truncated \\u escape");
                    return out;
                }
                const long code =
                    std::strtol(text_.substr(pos_, 4).c_str(), nullptr, 16);
                pos_ += 4;
                // Reports only emit \u for control characters; encode
                // the BMP code point as UTF-8.
                if (code < 0x80) {
                    out += static_cast<char>(code);
                } else if (code < 0x800) {
                    out += static_cast<char>(0xC0 | (code >> 6));
                    out += static_cast<char>(0x80 | (code & 0x3F));
                } else {
                    out += static_cast<char>(0xE0 | (code >> 12));
                    out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
                    out += static_cast<char>(0x80 | (code & 0x3F));
                }
                break;
              }
              default:
                out += c;  // covers \" \\ \/
            }
        }
        if (pos_ >= text_.size()) {
            fail("unterminated string");
            return out;
        }
        ++pos_;  // closing quote
        return out;
    }

    JsonValue
    parseArray()
    {
        JsonValue arr = JsonValue::array();
        ++pos_;  // '['
        skipSpace();
        if (pos_ < text_.size() && text_[pos_] == ']') {
            ++pos_;
            return arr;
        }
        while (!failed_) {
            arr.push(parseValue());
            skipSpace();
            if (pos_ >= text_.size()) {
                fail("unterminated array");
                break;
            }
            if (text_[pos_] == ',') {
                ++pos_;
                continue;
            }
            if (text_[pos_] == ']') {
                ++pos_;
                break;
            }
            fail("expected ',' or ']'");
        }
        return arr;
    }

    JsonValue
    parseObject()
    {
        JsonValue obj = JsonValue::object();
        ++pos_;  // '{'
        skipSpace();
        if (pos_ < text_.size() && text_[pos_] == '}') {
            ++pos_;
            return obj;
        }
        while (!failed_) {
            skipSpace();
            if (pos_ >= text_.size() || text_[pos_] != '"') {
                fail("expected an object key");
                break;
            }
            const std::string key = parseString();
            skipSpace();
            if (pos_ >= text_.size() || text_[pos_] != ':') {
                fail("expected ':'");
                break;
            }
            ++pos_;
            obj.set(key, parseValue());
            skipSpace();
            if (pos_ >= text_.size()) {
                fail("unterminated object");
                break;
            }
            if (text_[pos_] == ',') {
                ++pos_;
                continue;
            }
            if (text_[pos_] == '}') {
                ++pos_;
                break;
            }
            fail("expected ',' or '}'");
        }
        return obj;
    }

    const std::string& text_;
    std::string* error_;
    std::size_t pos_ = 0;
    bool failed_ = false;
};

}  // namespace

JsonValue
jsonParse(const std::string& text, std::string* error)
{
    Parser parser(text, error);
    JsonValue v = parser.parse();
    if (parser.failed())
        return JsonValue();
    return v;
}

}  // namespace frfc
