/**
 * @file
 * Parallel experiment executor.
 *
 * Every figure in the paper is a sweep of independent simulation runs
 * (load points, presets, bisection probes). Each run owns its network,
 * kernel, and xoshiro256** streams, so runs are embarrassingly
 * parallel and bit-deterministic regardless of which thread executes
 * them. The executor is a fixed-size thread pool with a FIFO work
 * queue; results are returned in submission order, so a parallel sweep
 * yields exactly the vector a serial loop would.
 *
 * Thread-count resolution: a request of 0 means "one per hardware
 * thread"; 1 executes jobs inline on the calling thread (no pool, no
 * overhead — the serial path benches compare against); n > 1 spawns n
 * workers.
 */

#ifndef FRFC_HARNESS_PARALLEL_HPP
#define FRFC_HARNESS_PARALLEL_HPP

#include <condition_variable>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

#include "common/config.hpp"
#include "network/runner.hpp"

namespace frfc {

/**
 * Resolve a `run.threads` request into a concrete worker count:
 * 0 => std::thread::hardware_concurrency(), clamped to >= 1;
 * n > 0 => n. Negative requests are user errors (fatal()).
 */
int resolveThreads(int requested);

/** Fixed-size thread pool running whole simulation points. */
class ParallelExecutor
{
  public:
    /** @param threads worker count request (see resolveThreads()). */
    explicit ParallelExecutor(int threads = 0);
    ~ParallelExecutor();

    ParallelExecutor(const ParallelExecutor&) = delete;
    ParallelExecutor& operator=(const ParallelExecutor&) = delete;

    /** Resolved worker count (1 = inline execution). */
    int threadCount() const { return threads_; }

    /**
     * Queue one simulation point; the future resolves with its result.
     * With threadCount() == 1 the job runs inline before returning.
     */
    std::future<RunResult> submit(const Config& cfg,
                                  const RunOptions& opt);

    /** Queue an arbitrary job producing a RunResult. */
    std::future<RunResult> submit(std::function<RunResult()> job);

    /** Block until every queued job has finished. */
    void drain();

  private:
    void workerLoop();

    int threads_;
    std::vector<std::thread> workers_;
    std::deque<std::packaged_task<RunResult()>> queue_;
    std::mutex mutex_;
    std::condition_variable work_ready_;
    std::condition_variable queue_idle_;
    int in_flight_ = 0;
    bool stopping_ = false;
};

/**
 * Run every config as an independent simulation point, using
 * resolveThreads(opt.threads) workers, and return the results in the
 * order of @p points. Bit-identical to a serial runExperiment() loop
 * for every thread count (wall-clock fields excepted).
 */
std::vector<RunResult>
runExperiments(const std::vector<Config>& points, const RunOptions& opt);

}  // namespace frfc

#endif  // FRFC_HARNESS_PARALLEL_HPP
