/**
 * @file
 * Experiment sweeps: latency-versus-load curves and saturation
 * throughput search, the primitives behind every figure in the paper.
 */

#ifndef FRFC_HARNESS_SWEEP_HPP
#define FRFC_HARNESS_SWEEP_HPP

#include <vector>

#include "common/config.hpp"
#include "network/runner.hpp"

namespace frfc {

/**
 * Run @p cfg at each offered load (fraction of capacity) and collect
 * the results. Incomplete (saturated) runs report complete = false.
 */
std::vector<RunResult>
latencyCurve(const Config& cfg, const std::vector<double>& loads,
             const RunOptions& opt);

/** Zero-load (base) latency: a run at 2% of capacity. */
RunResult measureBaseLatency(const Config& cfg, const RunOptions& opt);

/** Latency at one offered load (fraction of capacity). */
RunResult measureAtLoad(const Config& cfg, double load,
                        const RunOptions& opt);

/** Knobs of the saturation search. */
struct SaturationOptions
{
    double lo = 0.30;          ///< known-unsaturated lower bound
    double hi = 1.00;          ///< known-saturated upper bound
    double tolerance = 0.02;   ///< bisection stop width
    double acceptRatio = 0.90; ///< accepted/offered below this => saturated
};

/**
 * Saturation throughput as a fraction of capacity: the largest offered
 * load the network still accepts (bisection on accepted/offered and on
 * sample completion within the cycle budget).
 */
double findSaturation(const Config& cfg, const RunOptions& run_opt,
                      const SaturationOptions& sat_opt = {});

/** Standard load points used by the figure benches. */
std::vector<double> standardLoads();

}  // namespace frfc

#endif  // FRFC_HARNESS_SWEEP_HPP
