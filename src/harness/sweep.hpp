/**
 * @file
 * Experiment sweeps: latency-versus-load curves and saturation
 * throughput search, the primitives behind every figure in the paper.
 */

#ifndef FRFC_HARNESS_SWEEP_HPP
#define FRFC_HARNESS_SWEEP_HPP

#include <vector>

#include "common/config.hpp"
#include "network/runner.hpp"

namespace frfc {

/**
 * Run @p cfg at each offered load (fraction of capacity) and collect
 * the results. Incomplete (saturated) runs report complete = false.
 *
 * Points run concurrently on resolveThreads(opt.threads) workers
 * (harness/parallel); results come back in load order and are
 * bit-identical to a serial loop for every thread count.
 */
std::vector<RunResult>
latencyCurve(const Config& cfg, const std::vector<double>& loads,
             const RunOptions& opt);

/**
 * One latency curve per config, pooling every (config, load) point
 * into a single parallel batch so a whole figure keeps all workers
 * busy across curve boundaries. curves[i][j] is configs[i] at
 * loads[j], bit-identical to calling latencyCurve per config.
 */
std::vector<std::vector<RunResult>>
latencyCurves(const std::vector<Config>& configs,
              const std::vector<double>& loads, const RunOptions& opt);

/** Zero-load (base) latency: a run at 2% of capacity. */
RunResult measureBaseLatency(const Config& cfg, const RunOptions& opt);

/** Latency at one offered load (fraction of capacity). */
RunResult measureAtLoad(const Config& cfg, double load,
                        const RunOptions& opt);

/** Knobs of the saturation search. */
struct SaturationOptions
{
    double lo = 0.30;          ///< known-unsaturated lower bound
    double hi = 1.00;          ///< known-saturated upper bound
    double tolerance = 0.02;   ///< bisection stop width
    double acceptRatio = 0.90; ///< accepted/offered below this => saturated
    /**
     * Probe the standardLoads() grid inside [lo, hi] concurrently
     * first, then bisect only the bracketing interval. One parallel
     * round replaces the serial head of the bisection; disable to get
     * the classic pure-bisection probe sequence.
     */
    bool gridProbe = true;
};

/**
 * Saturation throughput as a fraction of capacity: the largest offered
 * load the network still accepts (saturation = accepted/offered below
 * acceptRatio, or sample incomplete within the cycle budget).
 *
 * Grid-then-refine search: the standardLoads() grid inside [lo, hi]
 * is probed in parallel (run_opt.threads workers), then bisection
 * narrows the bracketing interval. Every probed load is memoized, so
 * no load is ever simulated twice. Deterministic for every thread
 * count: the probe set and all decisions depend only on (memoized)
 * per-load results, which are themselves bit-deterministic.
 */
double findSaturation(const Config& cfg, const RunOptions& run_opt,
                      const SaturationOptions& sat_opt = {});

/** Standard load points used by the figure benches. */
std::vector<double> standardLoads();

}  // namespace frfc

#endif  // FRFC_HARNESS_SWEEP_HPP
