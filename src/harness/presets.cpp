#include "harness/presets.hpp"

#include "common/log.hpp"
#include "traffic/workload.hpp"

namespace frfc {

Config
baseConfig()
{
    Config cfg;
    cfg.set("topology", "mesh");
    cfg.set("size_x", 8);
    cfg.set("size_y", 8);
    cfg.set("routing", "xy");
    cfg.set("traffic", "uniform");
    cfg.set(kWorkloadInjectionKey, "bernoulli");
    cfg.set(kWorkloadPacketLengthKey, 5);
    cfg.set("seed", 1);
    cfg.set(kWorkloadOfferedKey, 0.5);
    applyFastControl(cfg);
    return cfg;
}

void
applyVc8(Config& cfg)
{
    cfg.set("scheme", "vc");
    cfg.set("num_vcs", 2);
    cfg.set("vc_depth", 4);
}

void
applyVc16(Config& cfg)
{
    cfg.set("scheme", "vc");
    cfg.set("num_vcs", 4);
    cfg.set("vc_depth", 4);
}

void
applyVc32(Config& cfg)
{
    cfg.set("scheme", "vc");
    cfg.set("num_vcs", 8);
    cfg.set("vc_depth", 4);
}

void
applyWormhole(Config& cfg, int buffers)
{
    cfg.set("scheme", "vc");
    cfg.set("num_vcs", 1);
    cfg.set("vc_depth", buffers);
}

void
applyFr6(Config& cfg)
{
    cfg.set("scheme", "fr");
    cfg.set("data_buffers", 6);
    cfg.set("ctrl_vcs", 2);
    cfg.set("ctrl_vc_depth", 3);
    cfg.set("horizon", 32);
    cfg.set("ctrl_width", 2);
    cfg.set("flits_per_ctrl", 1);
}

void
applyFr13(Config& cfg)
{
    cfg.set("scheme", "fr");
    cfg.set("data_buffers", 13);
    cfg.set("ctrl_vcs", 4);
    cfg.set("ctrl_vc_depth", 3);
    cfg.set("horizon", 32);
    cfg.set("ctrl_width", 2);
    cfg.set("flits_per_ctrl", 1);
}

void
applyFastControl(Config& cfg)
{
    cfg.set("data_link_latency", 4);
    cfg.set("credit_link_latency", 1);
    cfg.set("ctrl_link_latency", 1);
    cfg.set("lead_time", 0);
}

void
applyLeadingControl(Config& cfg, int lead)
{
    cfg.set("data_link_latency", 1);
    cfg.set("credit_link_latency", 1);
    cfg.set("ctrl_link_latency", 1);
    cfg.set("lead_time", lead);
}

void
applyMesh32(Config& cfg)
{
    cfg.set("topology", "mesh");
    cfg.set("size_x", 32);
    cfg.set("size_y", 32);
}

void
applyMesh64(Config& cfg)
{
    cfg.set("topology", "mesh");
    cfg.set("size_x", 64);
    cfg.set("size_y", 64);
}

void
applyTorus32(Config& cfg)
{
    cfg.set("topology", "torus");
    cfg.set("size_x", 32);
    cfg.set("size_y", 32);
}

void
applyPreset(Config& cfg, const std::string& name)
{
    if (name == "vc8")
        applyVc8(cfg);
    else if (name == "vc16")
        applyVc16(cfg);
    else if (name == "vc32")
        applyVc32(cfg);
    else if (name == "wormhole8")
        applyWormhole(cfg, 8);
    else if (name == "fr6")
        applyFr6(cfg);
    else if (name == "fr13")
        applyFr13(cfg);
    else if (name == "mesh32")
        applyMesh32(cfg);
    else if (name == "mesh64")
        applyMesh64(cfg);
    else if (name == "torus32")
        applyTorus32(cfg);
    else
        fatal("unknown preset '", name, "'");
}

std::vector<std::string>
presetNames()
{
    return {"vc8",  "vc16",   "vc32",   "wormhole8", "fr6",
            "fr13", "mesh32", "mesh64", "torus32"};
}

}  // namespace frfc
