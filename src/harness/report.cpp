#include "harness/report.hpp"

#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>

#include "common/log.hpp"

#ifndef FRFC_GIT_DESCRIBE
#define FRFC_GIT_DESCRIBE "unknown"
#endif
#ifndef FRFC_BUILD_TYPE
#define FRFC_BUILD_TYPE "unknown"
#endif

namespace frfc {

std::string
buildGitDescription()
{
    return FRFC_GIT_DESCRIBE;
}

namespace {

std::string
compilerDescription()
{
#if defined(__clang__)
    return std::string("clang ") + __clang_version__;
#elif defined(__GNUC__)
    return std::string("gcc ") + __VERSION__;
#else
    return "unknown";
#endif
}

JsonValue
configToJson(const Config& cfg)
{
    JsonValue obj = JsonValue::object();
    for (const std::string& key : cfg.keys())
        obj.set(key, cfg.get<std::string>(key));
    return obj;
}

JsonValue
classToJson(const ClassStats& stats)
{
    JsonValue obj = JsonValue::object();
    obj.set("created", static_cast<double>(stats.created));
    obj.set("delivered", static_cast<double>(stats.delivered));
    obj.set("avg_latency", stats.avgLatency);
    obj.set("p50_latency", stats.p50Latency);
    obj.set("p95_latency", stats.p95Latency);
    obj.set("p99_latency", stats.p99Latency);
    return obj;
}

JsonValue
runToJson(const RunResult& r)
{
    JsonValue obj = JsonValue::object();
    // JSON output field, not a config key.
    obj.set("offered", r.offered);  // frfc-lint: allow(workload-keys)
    obj.set("offered_fraction", r.offeredFraction);
    obj.set("accepted", r.accepted);
    obj.set("accepted_fraction", r.acceptedFraction);
    obj.set("avg_latency", r.avgLatency);
    obj.set("ci95", r.ci95);
    obj.set("min_latency", r.minLatency);
    obj.set("max_latency", r.maxLatency);
    obj.set("p50_latency", r.p50Latency);
    obj.set("p95_latency", r.p95Latency);
    obj.set("p99_latency", r.p99Latency);
    obj.set("complete", r.complete);
    obj.set("warmup_cycles", static_cast<double>(r.warmupCycles));
    obj.set("total_cycles", static_cast<double>(r.totalCycles));
    obj.set("packets_delivered",
            static_cast<double>(r.packetsDelivered));
    obj.set("pool_full_fraction", r.poolFullFraction);
    obj.set("pool_avg_occupancy", r.poolAvgOccupancy);
    if (r.hasClasses) {
        // Emitted only for closed-loop runs so open-loop reports keep
        // their schema byte-for-byte.
        JsonValue classes = JsonValue::object();
        classes.set("request", classToJson(r.requestStats));
        classes.set("reply", classToJson(r.replyStats));
        obj.set("classes", classes);
    }
    obj.set("wall_seconds", r.wallSeconds);
    JsonValue metrics = JsonValue::object();
    for (const MetricSample& sample : r.metrics.samples())
        metrics.set(sample.path, sample.value);
    obj.set("metrics", metrics);
    return obj;
}

}  // namespace

Report::Report(std::string name, std::string title)
    : name_(std::move(name)), title_(std::move(title))
{
}

ReportCurve&
Report::addCurve(const std::string& name, const Config& cfg)
{
    ReportCurve curve;
    curve.name = name;
    curve.config = cfg;
    curves_.push_back(std::move(curve));
    return curves_.back();
}

void
Report::addScalar(const std::string& key, double value)
{
    for (auto& scalar : scalars_) {
        if (scalar.first == key) {
            scalar.second = value;
            return;
        }
    }
    scalars_.emplace_back(key, value);
}

void
Report::addNote(const std::string& note)
{
    notes_.push_back(note);
}

JsonValue
Report::toJsonValue() const
{
    JsonValue root = JsonValue::object();
    root.set("name", name_);
    root.set("title", title_);
    root.set("schema_version", kReportSchemaVersion);
    root.set("mode", mode_);

    JsonValue build = JsonValue::object();
    build.set("git", buildGitDescription());
    build.set("compiler", compilerDescription());
    build.set("build_type", FRFC_BUILD_TYPE);
    root.set("build", build);

    root.set("wall_seconds", wall_seconds_);

    JsonValue scalars = JsonValue::object();
    for (const auto& scalar : scalars_)
        scalars.set(scalar.first, scalar.second);
    root.set("scalars", scalars);

    JsonValue notes = JsonValue::array();
    for (const std::string& note : notes_)
        notes.push(note);
    root.set("notes", notes);

    JsonValue curves = JsonValue::array();
    for (const ReportCurve& curve : curves_) {
        JsonValue c = JsonValue::object();
        c.set("name", curve.name);
        c.set("config", configToJson(curve.config));
        JsonValue runs = JsonValue::array();
        for (const RunResult& run : curve.runs)
            runs.push(runToJson(run));
        c.set("runs", runs);
        curves.push(c);
    }
    root.set("curves", curves);
    return root;
}

std::string
Report::toJson() const
{
    return toJsonValue().dump(2) + "\n";
}

std::string
Report::toCsv() const
{
    std::ostringstream out;
    out << "report,curve,offered_fraction,offered,accepted,"
           "accepted_fraction,avg_latency,ci95,min_latency,max_latency,"
           "p50_latency,p95_latency,p99_latency,complete,warmup_cycles,"
           "total_cycles,packets_delivered,pool_full_fraction,"
           "pool_avg_occupancy,wall_seconds\n";
    auto cell = [&out](double v) {
        char buf[32];
        std::snprintf(buf, sizeof buf, "%.10g", v);
        out << ',' << buf;
    };
    for (const ReportCurve& curve : curves_) {
        for (const RunResult& r : curve.runs) {
            // Curve names may hold spaces but the benches use no
            // commas or quotes; keep the writer trivial.
            out << name_ << ',' << curve.name;
            cell(r.offeredFraction);
            cell(r.offered);
            cell(r.accepted);
            cell(r.acceptedFraction);
            cell(r.avgLatency);
            cell(r.ci95);
            cell(r.minLatency);
            cell(r.maxLatency);
            cell(r.p50Latency);
            cell(r.p95Latency);
            cell(r.p99Latency);
            out << ',' << (r.complete ? 1 : 0);
            cell(static_cast<double>(r.warmupCycles));
            cell(static_cast<double>(r.totalCycles));
            cell(static_cast<double>(r.packetsDelivered));
            cell(r.poolFullFraction);
            cell(r.poolAvgOccupancy);
            cell(r.wallSeconds);
            out << '\n';
        }
    }
    return out.str();
}

void
Report::write(const RunOptions& opt) const
{
    if (opt.outFormat == "table")
        return;
    const std::string payload =
        opt.outFormat == "json" ? toJson() : toCsv();
    if (opt.outFile.empty()) {
        std::cout << payload;
        return;
    }
    std::ofstream file(opt.outFile);
    if (!file)
        fatal("cannot open out.file '", opt.outFile, "' for writing");
    file << payload;
    if (!file.good())
        fatal("short write to out.file '", opt.outFile, "'");
    std::cerr << "report written to " << opt.outFile << " ("
              << opt.outFormat << ")\n";
}

}  // namespace frfc
