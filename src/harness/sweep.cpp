#include "harness/sweep.hpp"

#include "network/network.hpp"

namespace frfc {

std::vector<RunResult>
latencyCurve(const Config& cfg, const std::vector<double>& loads,
             const RunOptions& opt)
{
    std::vector<RunResult> results;
    results.reserve(loads.size());
    for (double load : loads) {
        Config point = cfg;
        point.set("offered", load);
        results.push_back(runExperiment(point, opt));
    }
    return results;
}

RunResult
measureBaseLatency(const Config& cfg, const RunOptions& opt)
{
    return measureAtLoad(cfg, 0.02, opt);
}

RunResult
measureAtLoad(const Config& cfg, double load, const RunOptions& opt)
{
    Config point = cfg;
    point.set("offered", load);
    return runExperiment(point, opt);
}

double
findSaturation(const Config& cfg, const RunOptions& run_opt,
               const SaturationOptions& sat_opt)
{
    auto saturated_at = [&](double load) {
        const RunResult r = measureAtLoad(cfg, load, run_opt);
        if (!r.complete)
            return true;
        return r.acceptedFraction
            < sat_opt.acceptRatio * r.offeredFraction;
    };

    double lo = sat_opt.lo;
    double hi = sat_opt.hi;
    if (saturated_at(lo))
        return lo;  // already saturated at the lower bound
    if (!saturated_at(hi))
        return hi;  // never saturates inside the probe range
    while (hi - lo > sat_opt.tolerance) {
        const double mid = (lo + hi) / 2.0;
        if (saturated_at(mid))
            hi = mid;
        else
            lo = mid;
    }
    return lo;
}

std::vector<double>
standardLoads()
{
    return {0.10, 0.20, 0.30, 0.40, 0.50, 0.55, 0.60, 0.65,
            0.70, 0.75, 0.80, 0.85, 0.90};
}

}  // namespace frfc
