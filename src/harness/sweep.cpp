#include "harness/sweep.hpp"

#include <algorithm>
#include <map>

#include "harness/parallel.hpp"
#include "network/network.hpp"
#include "traffic/workload.hpp"

namespace frfc {

std::vector<RunResult>
latencyCurve(const Config& cfg, const std::vector<double>& loads,
             const RunOptions& opt)
{
    std::vector<Config> points;
    points.reserve(loads.size());
    for (double load : loads) {
        Config point = cfg;
        setWorkloadOffered(point, load);
        points.push_back(std::move(point));
    }
    return runExperiments(points, opt);
}

std::vector<std::vector<RunResult>>
latencyCurves(const std::vector<Config>& configs,
              const std::vector<double>& loads, const RunOptions& opt)
{
    std::vector<Config> points;
    points.reserve(configs.size() * loads.size());
    for (const Config& cfg : configs) {
        for (double load : loads) {
            Config point = cfg;
            setWorkloadOffered(point, load);
            points.push_back(std::move(point));
        }
    }
    const std::vector<RunResult> flat = runExperiments(points, opt);
    std::vector<std::vector<RunResult>> curves;
    curves.reserve(configs.size());
    for (std::size_t i = 0; i < configs.size(); ++i) {
        curves.emplace_back(flat.begin() + static_cast<std::ptrdiff_t>(
                                               i * loads.size()),
                            flat.begin() + static_cast<std::ptrdiff_t>(
                                               (i + 1) * loads.size()));
    }
    return curves;
}

RunResult
measureBaseLatency(const Config& cfg, const RunOptions& opt)
{
    return measureAtLoad(cfg, 0.02, opt);
}

RunResult
measureAtLoad(const Config& cfg, double load, const RunOptions& opt)
{
    Config point = cfg;
    setWorkloadOffered(point, load);
    return runExperiment(point, opt);
}

namespace {

/** Saturation verdict of one measured point. */
bool
saturatedResult(const RunResult& r, const SaturationOptions& sat_opt)
{
    if (!r.complete)
        return true;
    return r.acceptedFraction < sat_opt.acceptRatio * r.offeredFraction;
}

}  // namespace

double
findSaturation(const Config& cfg, const RunOptions& run_opt,
               const SaturationOptions& sat_opt)
{
    // Memoized probe: bisection midpoints and grid loads can coincide
    // (and lo/hi are probed exactly once); a load that has been
    // simulated is never simulated again.
    std::map<double, bool> memo;
    auto saturated_at = [&](double load) {
        const auto it = memo.find(load);
        if (it != memo.end())
            return it->second;
        const bool sat =
            saturatedResult(measureAtLoad(cfg, load, run_opt), sat_opt);
        memo.emplace(load, sat);
        return sat;
    };

    double lo = sat_opt.lo;
    double hi = sat_opt.hi;

    if (sat_opt.gridProbe) {
        // Phase 1 — grid: probe lo, hi, and every standard load
        // strictly between them in one parallel round.
        std::vector<double> grid{lo};
        for (double load : standardLoads()) {
            if (load > lo && load < hi)
                grid.push_back(load);
        }
        grid.push_back(hi);

        std::vector<Config> points;
        points.reserve(grid.size());
        for (double load : grid) {
            Config point = cfg;
            setWorkloadOffered(point, load);
            points.push_back(std::move(point));
        }
        const std::vector<RunResult> probes =
            runExperiments(points, run_opt);
        for (std::size_t i = 0; i < grid.size(); ++i)
            memo.emplace(grid[i], saturatedResult(probes[i], sat_opt));

        // Phase 2 — bracket: the interval between the last unsaturated
        // grid load before the first saturated one and that first
        // saturated load contains the threshold.
        if (saturated_at(lo))
            return lo;  // already saturated at the lower bound
        if (!saturated_at(hi))
            return hi;  // never saturates inside the probe range
        for (std::size_t i = 1; i < grid.size(); ++i) {
            if (saturated_at(grid[i])) {
                lo = grid[i - 1];
                hi = grid[i];
                break;
            }
        }
    } else {
        if (saturated_at(lo))
            return lo;
        if (!saturated_at(hi))
            return hi;
    }

    // Phase 3 — refine: bisect the bracketing interval (serial; each
    // midpoint depends on the previous verdict).
    while (hi - lo > sat_opt.tolerance) {
        const double mid = (lo + hi) / 2.0;
        if (saturated_at(mid))
            hi = mid;
        else
            lo = mid;
    }
    return lo;
}

std::vector<double>
standardLoads()
{
    return {0.10, 0.20, 0.30, 0.40, 0.50, 0.55, 0.60, 0.65,
            0.70, 0.75, 0.80, 0.85, 0.90};
}

}  // namespace frfc
