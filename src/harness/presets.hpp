/**
 * @file
 * Named experimental configurations from Section 4 of the paper.
 *
 * Storage-matched pairs (Table 1): FR6 ~ VC8 and FR13 ~ VC16. All VC
 * configurations use 4 buffers per virtual channel; both FR
 * configurations use 3 control buffers per control VC, one data flit
 * per control flit, 2 control flit injections per cycle, and a 32-cycle
 * scheduling horizon.
 */

#ifndef FRFC_HARNESS_PRESETS_HPP
#define FRFC_HARNESS_PRESETS_HPP

#include <string>
#include <vector>

#include "common/config.hpp"

namespace frfc {

/** 8x8 mesh, uniform traffic, XY routing, 5-flit packets, seed 1. */
Config baseConfig();

/** @{ Buffer-organization presets. */
void applyVc8(Config& cfg);    ///< 2 VCs x 4 flits
void applyVc16(Config& cfg);   ///< 4 VCs x 4 flits
void applyVc32(Config& cfg);   ///< 8 VCs x 4 flits
void applyWormhole(Config& cfg, int buffers);  ///< 1 VC x buffers
void applyFr6(Config& cfg);    ///< 6-buffer pools, v_c = 2
void applyFr13(Config& cfg);   ///< 13-buffer pools, v_c = 4
/** @} */

/** @{ Wire-speed presets. */

/** Fast control wires: data 4 cycles/hop, control and credit 1. */
void applyFastControl(Config& cfg);

/** Equal wires (1 cycle) with control injected @p lead cycles early. */
void applyLeadingControl(Config& cfg, int lead);
/** @} */

/** @{ Topology-size presets (parallel-kernel scaling studies).
 *  Orthogonal to the buffer presets: they set only the topology
 *  dimensions, so `preset=fr6` + `applyMesh32` compose. */
void applyMesh32(Config& cfg);   ///< 32x32 mesh (1024 nodes)
void applyMesh64(Config& cfg);   ///< 64x64 mesh (4096 nodes)
void applyTorus32(Config& cfg);  ///< 32x32 torus (1024 nodes)
/** @} */

/** Resolve a preset by name ("vc8", "fr6", ...); fatal() if unknown. */
void applyPreset(Config& cfg, const std::string& name);

/** All preset names, for CLI help. */
std::vector<std::string> presetNames();

}  // namespace frfc

#endif  // FRFC_HARNESS_PRESETS_HPP
