#include "harness/parallel.hpp"

#include <utility>

#include "common/log.hpp"
#include "network/network.hpp"

namespace frfc {

int
resolveThreads(int requested)
{
    if (requested < 0)
        fatal("run.threads must be >= 0 (0 = one per hardware thread), "
              "got ", requested);
    if (requested > 0)
        return requested;
    const unsigned hw = std::thread::hardware_concurrency();
    return hw > 0 ? static_cast<int>(hw) : 1;
}

ParallelExecutor::ParallelExecutor(int threads)
    : threads_(resolveThreads(threads))
{
    if (threads_ == 1)
        return;  // inline mode: no workers, submit() executes directly
    workers_.reserve(static_cast<std::size_t>(threads_));
    for (int i = 0; i < threads_; ++i)
        workers_.emplace_back([this] { workerLoop(); });
}

ParallelExecutor::~ParallelExecutor()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stopping_ = true;
    }
    work_ready_.notify_all();
    for (std::thread& w : workers_)
        w.join();
}

std::future<RunResult>
ParallelExecutor::submit(const Config& cfg, const RunOptions& opt)
{
    return submit([cfg, opt] { return runExperiment(cfg, opt); });
}

std::future<RunResult>
ParallelExecutor::submit(std::function<RunResult()> job)
{
    std::packaged_task<RunResult()> task(std::move(job));
    std::future<RunResult> result = task.get_future();
    if (threads_ == 1) {
        task();  // inline: the calling thread is the worker
        return result;
    }
    {
        std::lock_guard<std::mutex> lock(mutex_);
        queue_.push_back(std::move(task));
    }
    work_ready_.notify_one();
    return result;
}

void
ParallelExecutor::drain()
{
    if (threads_ == 1)
        return;
    std::unique_lock<std::mutex> lock(mutex_);
    queue_idle_.wait(lock,
                     [this] { return queue_.empty() && in_flight_ == 0; });
}

void
ParallelExecutor::workerLoop()
{
    for (;;) {
        std::packaged_task<RunResult()> task;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            work_ready_.wait(lock, [this] {
                return stopping_ || !queue_.empty();
            });
            if (queue_.empty())
                return;  // stopping, nothing left to run
            task = std::move(queue_.front());
            queue_.pop_front();
            ++in_flight_;
        }
        task();
        {
            std::lock_guard<std::mutex> lock(mutex_);
            --in_flight_;
            if (queue_.empty() && in_flight_ == 0)
                queue_idle_.notify_all();
        }
    }
}

std::vector<RunResult>
runExperiments(const std::vector<Config>& points, const RunOptions& opt)
{
    ParallelExecutor pool(opt.threads);
    std::vector<std::future<RunResult>> futures;
    futures.reserve(points.size());
    for (const Config& point : points)
        futures.push_back(pool.submit(point, opt));
    std::vector<RunResult> results;
    results.reserve(points.size());
    for (auto& f : futures)
        results.push_back(f.get());  // submission order preserved
    return results;
}

}  // namespace frfc
