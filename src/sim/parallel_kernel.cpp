#include "sim/parallel_kernel.hpp"

#include <algorithm>

#include "common/log.hpp"

namespace frfc {

ParallelKernel::ParallelKernel(int shards)
    : shard_count_(shards),
      inbound_(static_cast<std::size_t>(shards))
{
    FRFC_ASSERT(shards >= 1, "need at least one shard");
    kernels_.reserve(static_cast<std::size_t>(shards));
    for (int s = 0; s < shards; ++s) {
        kernels_.push_back(std::make_unique<Kernel>());
        kernels_.back()->setMode(KernelMode::kEvent);
    }
}

ParallelKernel::~ParallelKernel()
{
    if (!started_)
        return;
    stop_.store(true, std::memory_order_relaxed);
    epoch_.fetch_add(1, std::memory_order_release);
    for (std::thread& worker : workers_)
        worker.join();
}

void
ParallelKernel::spinPause(int& spins)
{
    // Brief busy-wait, then yield: on a loaded or single-core host the
    // yield keeps the worker team making round-robin progress instead
    // of livelocking in spin loops.
    if (++spins > 256)
        std::this_thread::yield();
}

void
ParallelKernel::tickBarrierWait()
{
    const std::uint64_t generation =
        tick_generation_.load(std::memory_order_acquire);
    if (tick_arrived_.fetch_add(1, std::memory_order_acq_rel) + 1
        == shard_count_) {
        tick_arrived_.store(0, std::memory_order_relaxed);
        tick_generation_.fetch_add(1, std::memory_order_release);
        return;
    }
    int spins = 0;
    while (tick_generation_.load(std::memory_order_acquire)
           == generation)
        spinPause(spins);
}

void
ParallelKernel::workerLoop(int s)
{
    std::uint64_t seen = 0;
    for (;;) {
        int spins = 0;
        while (epoch_.load(std::memory_order_acquire) == seen)
            spinPause(spins);
        ++seen;
        if (stop_.load(std::memory_order_relaxed))
            return;
        // Phase 1 — tick: this shard's components, W cycles.
        kernels_[static_cast<std::size_t>(s)]->run(window_);
        // Phase 2 — transfer: after every shard finished ticking,
        // drain the stubs feeding this shard, in registration order.
        tickBarrierWait();
        for (const auto& transfer :
             inbound_[static_cast<std::size_t>(s)])
            transfer();
        done_count_.fetch_add(1, std::memory_order_release);
    }
}

void
ParallelKernel::ensureStarted()
{
    if (started_)
        return;
    started_ = true;
    workers_.reserve(static_cast<std::size_t>(shard_count_));
    for (int s = 0; s < shard_count_; ++s)
        workers_.emplace_back([this, s] { workerLoop(s); });
}

void
ParallelKernel::executeWindow(Cycle window)
{
    FRFC_ASSERT(window >= 1 && window <= lookahead_,
                "window ", window, " outside lookahead ", lookahead_);
    window_ = window;
    done_count_.store(0, std::memory_order_relaxed);
    epoch_.fetch_add(1, std::memory_order_release);
    int spins = 0;
    while (done_count_.load(std::memory_order_acquire) != shard_count_)
        spinPause(spins);
    now_ += window;
    ++windows_executed_;
    // Phase 3 — boundary: single-threaded deferred bookkeeping. Every
    // worker is parked again, so the hook may read any shard's state.
    if (boundary_hook_)
        boundary_hook_(now_);
}

void
ParallelKernel::run(Cycle cycles)
{
    ensureStarted();
    Cycle remaining = cycles;
    while (remaining > 0) {
        const Cycle window = std::min(lookahead_, remaining);
        executeWindow(window);
        remaining -= window;
    }
}

bool
ParallelKernel::runUntil(const std::function<bool()>& done,
                         Cycle max_cycles)
{
    ensureStarted();
    // Single-cycle windows: done() must be evaluated between every
    // simulated cycle — exactly like the serial kernels — or the run
    // would overshoot the serial stopping cycle and diverge.
    const Cycle limit = now_ + max_cycles;
    while (now_ < limit) {
        if (done())
            return true;
        executeWindow(1);
    }
    return done();
}

std::vector<std::int64_t>
ParallelKernel::shardTicks() const
{
    std::vector<std::int64_t> ticks;
    ticks.reserve(kernels_.size());
    for (const auto& kernel : kernels_)
        ticks.push_back(kernel->ticksExecuted());
    return ticks;
}

std::vector<std::size_t>
ParallelKernel::shardComponents() const
{
    std::vector<std::size_t> counts;
    counts.reserve(kernels_.size());
    for (const auto& kernel : kernels_)
        counts.push_back(kernel->componentCount());
    return counts;
}

std::int64_t
ParallelKernel::ticksExecuted() const
{
    std::int64_t total = 0;
    for (const auto& kernel : kernels_)
        total += kernel->ticksExecuted();
    return total;
}

Cycle
ParallelKernel::idleCyclesSkipped() const
{
    Cycle total = 0;
    for (const auto& kernel : kernels_)
        total += kernel->idleCyclesSkipped();
    return total;
}

}  // namespace frfc
