/**
 * @file
 * Fault-injection framework: the single place the `fault.*` config
 * namespace is resolved, plus the per-router injector that decides
 * which arriving items a faulty link corrupts.
 *
 * Fault model (DESIGN.md section 13):
 *  - Faults strike inter-router links only: injection, ejection,
 *    ack/nack, and completion-feedback wires are assumed short and
 *    protected. Random faults are Bernoulli draws per arriving item;
 *    scheduled outages (`fault.schedule`) are deterministic windows
 *    during which a directed link delivers nothing.
 *  - FR data flits in a faulty window are dropped at the receiving
 *    input (the paper's "corrupted in flight, discarded on arrival").
 *  - FR control worms are killed at worm granularity: the drop draw
 *    happens once, when the head arrives; the whole worm dies so a
 *    control VC never sticks half-active. The receiving router reads
 *    the dead worm's reservation entries to reconcile bookkeeping
 *    (credits for the upstream table, doomed-arrival marks for the
 *    data) — an oracle shortcut standing in for the reservation-table
 *    timeout a real implementation would run.
 *  - FR advance credits are corrupted, not lost: the receiver applies
 *    a conservative timestamp instead, so buffers are never leaked by
 *    a credit fault, merely returned late.
 *  - VC flits are poisoned, not dropped: the flit flows through the
 *    wormhole machinery normally (credits, VC state, and conservation
 *    untouched) and is discarded at the ejection sink.
 *
 * Determinism: every injector owns a private Rng stream seeded from
 * the run seed with salt 0x3000 + node (routers use 0x1000 + node,
 * sources 0x2000 + node), and draws exactly once per arriving item on
 * a faulty link, in the port-ascending drain order the routers already
 * guarantee. Stepped, event, and parallel kernels therefore consume
 * identical draw sequences at every shard count, and a run with all
 * fault rates zero and no schedule performs no draws at all — it is
 * bit-identical to a run without the fault machinery.
 */

#ifndef FRFC_SIM_FAULT_HPP
#define FRFC_SIM_FAULT_HPP

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "common/types.hpp"

namespace frfc {

class Config;

/** One scheduled outage of the directed link from -> to. */
struct OutageWindow
{
    NodeId from = kInvalidNode;
    NodeId to = kInvalidNode;
    Cycle start = 0;
    Cycle end = 0;       ///< exclusive
    bool wired = false;  ///< consumed by network wiring (adjacency check)
};

/**
 * Resolved `fault.*` configuration. Built once per network by
 * fromConfig(), which owns the full key vocabulary and dies with a
 * clear message on anything it does not understand — a misspelled
 * fault key must never be silently ignored.
 */
struct FaultPlan
{
    /** Per-flit drop probability on inter-router data links. */
    double dataDropRate = 0.0;
    /** Per-worm drop probability on inter-router control links (FR). */
    double ctrlDropRate = 0.0;
    /** Per-credit corruption probability on FR advance-credit wires. */
    double creditDropRate = 0.0;
    /** Deterministic link outages parsed from fault.schedule. */
    std::vector<OutageWindow> outages;

    /** End-to-end recovery: retransmit buffers, acks, sink dedup. */
    bool recovery = false;
    /** Cycles from last data flit sent to the first retransmission. */
    Cycle ackTimeout = 512;
    /** Timeout doubles per attempt up to timeout << backoffCap. */
    int backoffCap = 4;
    /** Latency of the destination -> source ack wires. */
    Cycle ackDelay = 1;
    /** Attempts after which the validator flags a stuck packet. */
    int maxAttempts = 16;

    /** Any random-rate or scheduled link fault enabled. */
    bool
    anyLinkFaults() const
    {
        return dataDropRate > 0.0 || ctrlDropRate > 0.0
               || creditDropRate > 0.0 || !outages.empty();
    }

    /** Control-plane faults possible (FR worm kills). */
    bool
    ctrlFaultsPossible() const
    {
        return ctrlDropRate > 0.0 || !outages.empty();
    }

    /**
     * Resolve the fault.* keys of @p cfg for a network of @p scheme
     * ("fr" or "vc"). fatal()s on unknown fault.* keys, malformed
     * values, rates outside [0,1], and fault kinds the scheme cannot
     * honor (VC has no reservation control flits or advance credits,
     * so nonzero fault.ctrl_drop_rate / fault.credit_drop_rate die
     * instead of being ignored).
     */
    static FaultPlan fromConfig(const Config& cfg,
                                const std::string& scheme);

    /**
     * Outage windows for the directed link @p from -> @p to, marking
     * them consumed. Networks call this while wiring each link, then
     * checkAllOutagesWired() once wiring is done.
     */
    std::vector<OutageWindow> takeOutages(NodeId from, NodeId to);

    /** fatal() naming any schedule entry no wired link consumed —
     *  catching non-adjacent node pairs and out-of-range ids. */
    void checkAllOutagesWired() const;
};

/**
 * Per-router fault decisions. Owns the router's fault Rng stream and
 * the per-input-port outage windows; draws only when the matching
 * rate is nonzero, once per arriving item, so streams stay aligned
 * across kernels. Stateless outside its Rng: probing an outage window
 * mutates nothing, keeping paranoid shadow ticks safe.
 */
class FaultInjector
{
  public:
    FaultInjector(Rng rng, const FaultPlan& plan)
        : rng_(rng), data_rate_(plan.dataDropRate),
          ctrl_rate_(plan.ctrlDropRate), credit_rate_(plan.creditDropRate)
    {
    }

    /** Register an outage window on input port @p port. */
    void
    addOutage(PortId port, Cycle start, Cycle end)
    {
        outages_.push_back(PortWindow{port, start, end});
    }

    /** Should the data flit arriving now on @p port be lost? */
    bool
    faultData(Cycle now, PortId port)
    {
        if (inOutage(now, port))
            return true;
        return data_rate_ > 0.0 && rng_.nextBool(data_rate_);
    }

    /** Should the control worm whose head arrives now on @p port be
     *  killed? (One decision per worm; bodies follow the head.) */
    bool
    faultCtrlHead(Cycle now, PortId port)
    {
        if (inOutage(now, port))
            return true;
        return ctrl_rate_ > 0.0 && rng_.nextBool(ctrl_rate_);
    }

    /** Should the advance credit arriving now on @p port be corrupted?
     *  Credits ride dedicated wires that outages do not sever. */
    bool
    faultCredit(Cycle /* now */, PortId /* port */)
    {
        return credit_rate_ > 0.0 && rng_.nextBool(credit_rate_);
    }

  private:
    struct PortWindow
    {
        PortId port;
        Cycle start;
        Cycle end;
    };

    bool
    inOutage(Cycle now, PortId port) const
    {
        for (const PortWindow& w : outages_) {
            if (w.port == port && now >= w.start && now < w.end)
                return true;
        }
        return false;
    }

    Rng rng_;
    double data_rate_;
    double ctrl_rate_;
    double credit_rate_;
    std::vector<PortWindow> outages_;
};

/** Salt for per-node fault-injector Rng streams (routers use
 *  0x1000 + node, sources 0x2000 + node). */
inline constexpr std::uint64_t kFaultRngSalt = 0x3000;

}  // namespace frfc

#endif  // FRFC_SIM_FAULT_HPP
