/**
 * @file
 * Pipelined point-to-point channels.
 *
 * A Channel<T> models a wire with a fixed propagation latency L (cycles)
 * and a per-cycle width W (items accepted per cycle). A value pushed
 * during cycle t becomes visible to the receiver when it drains the
 * channel during cycle t + L. Links are fully pipelined: width W is
 * available every cycle regardless of L.
 *
 * This is the only legal communication path between Clocked components;
 * because L >= 1, component tick order within a cycle cannot matter.
 *
 * When a channel is bound to its receiving component via bindSink, every
 * push also schedules a kernel wake for the receiver at the arrival
 * cycle, making arrivals a wake source for the event-driven kernel.
 *
 * A receiver whose nextWake() consults nextArrivalAfter() on all of its
 * input channels can bind with lazy wakes instead: the channel then
 * wakes it only when a push finds no other arrival pending, and the
 * receiver keeps itself scheduled through the remaining arrivals. This
 * trades one wheel insertion per push for one O(1) check, which is what
 * keeps the event kernel from regressing at saturation, where every
 * push would otherwise be a redundant wake.
 */

#ifndef FRFC_SIM_CHANNEL_HPP
#define FRFC_SIM_CHANNEL_HPP

#include <string>
#include <utility>
#include <vector>

#include "common/log.hpp"
#include "common/types.hpp"
#include "sim/kernel.hpp"

namespace frfc {

/** Fixed-latency, fixed-width pipelined channel. */
template <typename T>
class Channel
{
  public:
    /**
     * @param name     diagnostic name
     * @param latency  propagation delay in cycles (>= 1)
     * @param width    max items accepted per cycle (>= 1)
     */
    Channel(std::string name, Cycle latency, int width = 1)
        : name_(std::move(name)), latency_(latency), width_(width),
          slots_(slotCountFor(latency)),
          index_mask_(static_cast<Cycle>(slots_.size()) - 1)
    {
        FRFC_ASSERT(latency >= 1, "channel latency must be >= 1");
        FRFC_ASSERT(width >= 1, "channel width must be >= 1");
    }

    /**
     * Bind the receiving component: from now on every push schedules a
     * wake for @p sink at the arrival cycle. The kernel ignores wakes
     * in stepped mode, so binding is unconditional in assemblies.
     *
     * With @p lazy_wake, only a push onto an otherwise-empty channel
     * wakes the sink; the sink promises its nextWake() never exceeds
     * this channel's nextArrivalAfter(now) (see file comment).
     */
    void
    bindSink(Kernel* kernel, Clocked* sink, bool lazy_wake = false)
    {
        FRFC_ASSERT(kernel != nullptr && sink != nullptr,
                    "channel ", name_, ": null sink binding");
        kernel_ = kernel;
        sink_ = sink;
        lazy_wake_ = lazy_wake;
    }

    /** Push a value during cycle @p now; arrives at @p now + latency. */
    void
    push(Cycle now, T value)
    {
        Slot& slot = slotAt(now + latency_);
        FRFC_ASSERT(slot.cycle == now + latency_ || slot.items.empty(),
                    "channel ", name_, ": slot reused before drain");
        if (slot.cycle != now + latency_) {
            slot.cycle = now + latency_;
            slot.items.clear();
            ++live_slots_;
        }
        FRFC_ASSERT(static_cast<int>(slot.items.size()) < width_,
                    "channel ", name_, ": width ", width_,
                    " exceeded at cycle ", now);
        slot.items.push_back(std::move(value));
        if (kernel_ != nullptr && (!lazy_wake_ || live_slots_ == 1))
            kernel_->wake(sink_, now + latency_);
    }

    /** True if another push during cycle @p now would fit. */
    bool
    canPush(Cycle now) const
    {
        const Slot& slot = slots_[index(now + latency_)];
        if (slot.cycle != now + latency_)
            return true;
        return static_cast<int>(slot.items.size()) < width_;
    }

    /** Remove and return everything arriving during cycle @p now. */
    std::vector<T>
    drain(Cycle now)
    {
        Slot& slot = slotAt(now);
        if (slot.cycle != now)
            return {};
        slot.cycle = kInvalidCycle;
        --live_slots_;
        return std::move(slot.items);
    }

    /**
     * Drain everything arriving during cycle @p now into @p out
     * (cleared first). Reuses both the caller's buffer and the slot's,
     * so steady-state drains allocate nothing.
     */
    void
    drainInto(Cycle now, std::vector<T>& out)
    {
        out.clear();
        Slot& slot = slotAt(now);
        if (slot.cycle != now)
            return;
        slot.cycle = kInvalidCycle;
        --live_slots_;
        std::swap(out, slot.items);
    }

    /**
     * Move every pending (arrival cycle, items) group into @p dst and
     * leave this channel empty. This is the parallel kernel's mailbox
     * transfer: cross-shard links are modelled as an unbound sender-side
     * stub (pushes accumulate here with their exact arrival cycles) plus
     * a receiver-side twin bound to the receiver's shard kernel; at each
     * window boundary the stub's contents move over verbatim. Because
     * the lookahead window never exceeds this link's latency, every
     * transferred arrival still lies at or beyond the receiver's current
     * cycle, so timing is identical to a directly wired channel.
     *
     * Wakes on @p dst: a lazily bound receiver is woken once at the
     * earliest transferred arrival (its nextWake() contract walks it
     * through the rest); an eagerly bound one is woken per arrival
     * cycle, matching the per-push wakes it would have seen.
     */
    void
    transferAllInto(Channel<T>& dst)
    {
        if (live_slots_ == 0)
            return;
        FRFC_ASSERT(latency_ == dst.latency_ && width_ == dst.width_,
                    "channel ", name_, ": mailbox twin mismatch");
        Cycle earliest = kInvalidCycle;
        for (Slot& slot : slots_) {
            if (slot.cycle == kInvalidCycle)
                continue;
            dst.deposit(slot.cycle, slot.items);
            if (dst.kernel_ != nullptr && !dst.lazy_wake_)
                dst.kernel_->wake(dst.sink_, slot.cycle);
            if (earliest == kInvalidCycle || slot.cycle < earliest)
                earliest = slot.cycle;
            slot.cycle = kInvalidCycle;
            slot.items.clear();
            --live_slots_;
        }
        if (dst.kernel_ != nullptr && dst.lazy_wake_
            && earliest != kInvalidCycle)
            dst.kernel_->wake(dst.sink_, earliest);
    }

    /**
     * Earliest undelivered arrival strictly after @p after, or
     * kInvalidCycle if none. O(1) when the channel is idle; a lazily
     * bound receiver calls this from nextWake() on each input channel.
     */
    Cycle
    nextArrivalAfter(Cycle after) const
    {
        if (live_slots_ == 0)
            return kInvalidCycle;
        Cycle best = kInvalidCycle;
        for (const Slot& slot : slots_) {
            if (slot.cycle != kInvalidCycle && slot.cycle > after
                && (best == kInvalidCycle || slot.cycle < best))
                best = slot.cycle;
        }
        return best;
    }

    /** True if anything will arrive during cycle @p now. */
    bool
    hasArrival(Cycle now) const
    {
        const Slot& slot = slots_[index(now)];
        return slot.cycle == now && !slot.items.empty();
    }

    /**
     * Items pushed but not yet drained, regardless of arrival cycle.
     * O(1) when idle; conservation sweeps (check/validator.hpp) call
     * this to count flits and credits in flight on every wire.
     */
    std::int64_t
    pendingCount() const
    {
        if (live_slots_ == 0)
            return 0;
        std::int64_t total = 0;
        for (const Slot& slot : slots_) {
            if (slot.cycle != kInvalidCycle)
                total += static_cast<std::int64_t>(slot.items.size());
        }
        return total;
    }

    /** Visit every undelivered item (validation sweeps only). */
    template <typename Fn>
    void
    forEachPending(Fn&& fn) const
    {
        if (live_slots_ == 0)
            return;
        for (const Slot& slot : slots_) {
            if (slot.cycle == kInvalidCycle)
                continue;
            for (const T& item : slot.items)
                fn(item);
        }
    }

    Cycle latency() const { return latency_; }
    int width() const { return width_; }
    const std::string& name() const { return name_; }

  private:
    struct Slot
    {
        Cycle cycle = kInvalidCycle;
        std::vector<T> items;
    };

    /** Smallest power of two holding latency + 2 in-flight cycles. */
    static std::size_t
    slotCountFor(Cycle latency)
    {
        const auto need = static_cast<std::size_t>(latency) + 2;
        std::size_t count = 1;
        while (count < need)
            count <<= 1;
        return count;
    }

    std::size_t
    index(Cycle cycle) const
    {
        FRFC_ASSERT(cycle >= 0, "channel ", name_, ": negative cycle ",
                    cycle);
        return static_cast<std::size_t>(cycle & index_mask_);
    }

    /** Splice @p items in, arriving exactly at @p arrival (mailbox
     *  transfer path; no wakes — transferAllInto() handles those). */
    void
    deposit(Cycle arrival, std::vector<T>& items)
    {
        Slot& slot = slotAt(arrival);
        FRFC_ASSERT(slot.cycle == arrival || slot.items.empty(),
                    "channel ", name_,
                    ": mailbox deposit into a live slot");
        if (slot.cycle != arrival) {
            slot.cycle = arrival;
            ++live_slots_;
        }
        FRFC_ASSERT(static_cast<int>(slot.items.size() + items.size())
                        <= width_,
                    "channel ", name_, ": width ", width_,
                    " exceeded by mailbox deposit at cycle ", arrival);
        if (slot.items.empty()) {
            std::swap(slot.items, items);
        } else {
            for (T& item : items)
                slot.items.push_back(std::move(item));
        }
    }

    Slot&
    slotAt(Cycle cycle)
    {
        Slot& slot = slots_[index(cycle)];
        // Lazily invalidate a stale slot from a previous wrap.
        if (slot.cycle != cycle && slot.cycle != kInvalidCycle
            && slot.cycle < cycle) {
            FRFC_ASSERT(slot.items.empty(), "channel ", name_,
                        ": undrained items from cycle ", slot.cycle);
            slot.cycle = kInvalidCycle;
            --live_slots_;
        }
        return slot;
    }

    std::string name_;
    Cycle latency_;
    int width_;
    std::vector<Slot> slots_;
    Cycle index_mask_;
    /** Slots currently tagged with an undelivered arrival cycle. */
    int live_slots_ = 0;
    Kernel* kernel_ = nullptr;
    Clocked* sink_ = nullptr;
    bool lazy_wake_ = false;
};

}  // namespace frfc

#endif  // FRFC_SIM_CHANNEL_HPP
