/**
 * @file
 * Pipelined point-to-point channels.
 *
 * A Channel<T> models a wire with a fixed propagation latency L (cycles)
 * and a per-cycle width W (items accepted per cycle). A value pushed
 * during cycle t becomes visible to the receiver when it drains the
 * channel during cycle t + L. Links are fully pipelined: width W is
 * available every cycle regardless of L.
 *
 * This is the only legal communication path between Clocked components;
 * because L >= 1, component tick order within a cycle cannot matter.
 */

#ifndef FRFC_SIM_CHANNEL_HPP
#define FRFC_SIM_CHANNEL_HPP

#include <string>
#include <vector>

#include "common/log.hpp"
#include "common/types.hpp"

namespace frfc {

/** Fixed-latency, fixed-width pipelined channel. */
template <typename T>
class Channel
{
  public:
    /**
     * @param name     diagnostic name
     * @param latency  propagation delay in cycles (>= 1)
     * @param width    max items accepted per cycle (>= 1)
     */
    Channel(std::string name, Cycle latency, int width = 1)
        : name_(std::move(name)), latency_(latency), width_(width),
          slots_(static_cast<std::size_t>(latency) + 2)
    {
        FRFC_ASSERT(latency >= 1, "channel latency must be >= 1");
        FRFC_ASSERT(width >= 1, "channel width must be >= 1");
    }

    /** Push a value during cycle @p now; arrives at @p now + latency. */
    void
    push(Cycle now, T value)
    {
        Slot& slot = slotAt(now + latency_);
        FRFC_ASSERT(slot.cycle == now + latency_ || slot.items.empty(),
                    "channel ", name_, ": slot reused before drain");
        if (slot.cycle != now + latency_) {
            slot.cycle = now + latency_;
            slot.items.clear();
        }
        FRFC_ASSERT(static_cast<int>(slot.items.size()) < width_,
                    "channel ", name_, ": width ", width_,
                    " exceeded at cycle ", now);
        slot.items.push_back(std::move(value));
    }

    /** True if another push during cycle @p now would fit. */
    bool
    canPush(Cycle now) const
    {
        const Slot& slot = slots_[index(now + latency_)];
        if (slot.cycle != now + latency_)
            return true;
        return static_cast<int>(slot.items.size()) < width_;
    }

    /** Remove and return everything arriving during cycle @p now. */
    std::vector<T>
    drain(Cycle now)
    {
        Slot& slot = slotAt(now);
        if (slot.cycle != now)
            return {};
        slot.cycle = kInvalidCycle;
        return std::move(slot.items);
    }

    /** True if anything will arrive during cycle @p now. */
    bool
    hasArrival(Cycle now) const
    {
        const Slot& slot = slots_[index(now)];
        return slot.cycle == now && !slot.items.empty();
    }

    Cycle latency() const { return latency_; }
    int width() const { return width_; }
    const std::string& name() const { return name_; }

  private:
    struct Slot
    {
        Cycle cycle = kInvalidCycle;
        std::vector<T> items;
    };

    std::size_t
    index(Cycle cycle) const
    {
        const auto size = static_cast<Cycle>(slots_.size());
        Cycle m = cycle % size;
        if (m < 0)
            m += size;
        return static_cast<std::size_t>(m);
    }

    Slot&
    slotAt(Cycle cycle)
    {
        Slot& slot = slots_[index(cycle)];
        // Lazily invalidate a stale slot from a previous wrap.
        if (slot.cycle != cycle && slot.cycle != kInvalidCycle
            && slot.cycle < cycle) {
            FRFC_ASSERT(slot.items.empty(), "channel ", name_,
                        ": undrained items from cycle ", slot.cycle);
            slot.cycle = kInvalidCycle;
        }
        return slot;
    }

    std::string name_;
    Cycle latency_;
    int width_;
    std::vector<Slot> slots_;
};

}  // namespace frfc

#endif  // FRFC_SIM_CHANNEL_HPP
