#include "sim/fault.hpp"

#include <cstdlib>

#include "common/config.hpp"
#include "common/log.hpp"

namespace frfc {

namespace {

double
rateKey(const Config& cfg, const std::string& key)
{
    const double rate = cfg.get<double>(key);
    if (rate < 0.0 || rate > 1.0)
        fatal(key, " = ", rate, " is not a probability in [0, 1]");
    return rate;
}

std::int64_t
parseInt(const std::string& text, const std::string& what)
{
    char* end = nullptr;
    const long long value = std::strtoll(text.c_str(), &end, 10);
    if (end == text.c_str() || *end != '\0')
        fatal("fault.schedule: ", what, " '", text,
              "' is not an integer");
    return value;
}

/**
 * Parse one schedule term "A->B@S:E" — the directed link from node A
 * to node B delivers nothing during cycles [S, E).
 */
OutageWindow
parseOutage(const std::string& term)
{
    const std::size_t arrow = term.find("->");
    const std::size_t at = term.find('@');
    const std::size_t colon = term.find(':', at == std::string::npos
                                                ? 0
                                                : at);
    if (arrow == std::string::npos || at == std::string::npos
        || colon == std::string::npos || arrow > at || at > colon) {
        fatal("fault.schedule term '", term,
              "' is not of the form FROM->TO@START:END");
    }
    OutageWindow w;
    w.from = static_cast<NodeId>(
        parseInt(term.substr(0, arrow), "source node"));
    w.to = static_cast<NodeId>(
        parseInt(term.substr(arrow + 2, at - arrow - 2),
                 "destination node"));
    w.start = parseInt(term.substr(at + 1, colon - at - 1),
                       "window start");
    w.end = parseInt(term.substr(colon + 1), "window end");
    if (w.start < 0 || w.end <= w.start)
        fatal("fault.schedule term '", term,
              "' needs 0 <= START < END");
    return w;
}

std::vector<OutageWindow>
parseSchedule(const std::string& schedule)
{
    std::vector<OutageWindow> windows;
    std::size_t pos = 0;
    while (pos < schedule.size()) {
        std::size_t next = schedule.find(';', pos);
        if (next == std::string::npos)
            next = schedule.size();
        if (next > pos)
            windows.push_back(
                parseOutage(schedule.substr(pos, next - pos)));
        pos = next + 1;
    }
    if (windows.empty())
        fatal("fault.schedule is set but contains no outage terms");
    return windows;
}

}  // namespace

FaultPlan
FaultPlan::fromConfig(const Config& cfg, const std::string& scheme)
{
    FaultPlan plan;
    for (const std::string& key : cfg.keys()) {
        if (key.rfind("fault.", 0) != 0)
            continue;
        if (key == "fault.data_drop_rate") {
            plan.dataDropRate = rateKey(cfg, key);
        } else if (key == "fault.ctrl_drop_rate") {
            plan.ctrlDropRate = rateKey(cfg, key);
        } else if (key == "fault.credit_drop_rate") {
            plan.creditDropRate = rateKey(cfg, key);
        } else if (key == "fault.schedule") {
            plan.outages = parseSchedule(cfg.get<std::string>(key));
        } else if (key == "fault.recovery") {
            plan.recovery = cfg.get<bool>(key);
        } else if (key == "fault.ack_timeout") {
            plan.ackTimeout = cfg.get<std::int64_t>(key);
            if (plan.ackTimeout < 1)
                fatal("fault.ack_timeout must be >= 1 cycle");
        } else if (key == "fault.backoff_cap") {
            plan.backoffCap = cfg.get<int>(key);
            if (plan.backoffCap < 0 || plan.backoffCap > 16)
                fatal("fault.backoff_cap must be in [0, 16]");
        } else if (key == "fault.ack_delay") {
            plan.ackDelay = cfg.get<std::int64_t>(key);
            if (plan.ackDelay < 1)
                fatal("fault.ack_delay must be >= 1 cycle");
        } else if (key == "fault.max_attempts") {
            plan.maxAttempts = cfg.get<int>(key);
            if (plan.maxAttempts < 1)
                fatal("fault.max_attempts must be >= 1");
        } else {
            fatal("unknown fault key '", key,
                  "'; known keys: fault.data_drop_rate, "
                  "fault.ctrl_drop_rate, fault.credit_drop_rate, "
                  "fault.schedule, fault.recovery, fault.ack_timeout, "
                  "fault.backoff_cap, fault.ack_delay, "
                  "fault.max_attempts");
        }
    }
    if (scheme == "vc") {
        if (plan.ctrlDropRate > 0.0)
            fatal("fault.ctrl_drop_rate applies to FR reservation "
                  "control flits; the vc scheme has none (use "
                  "fault.data_drop_rate or fault.schedule)");
        if (plan.creditDropRate > 0.0)
            fatal("fault.credit_drop_rate applies to FR advance "
                  "credits; the vc scheme has none (use "
                  "fault.data_drop_rate or fault.schedule)");
    }
    return plan;
}

std::vector<OutageWindow>
FaultPlan::takeOutages(NodeId from, NodeId to)
{
    std::vector<OutageWindow> taken;
    for (OutageWindow& w : outages) {
        if (w.from == from && w.to == to) {
            w.wired = true;
            taken.push_back(w);
        }
    }
    return taken;
}

void
FaultPlan::checkAllOutagesWired() const
{
    for (const OutageWindow& w : outages) {
        if (!w.wired)
            fatal("fault.schedule names link ", w.from, "->", w.to,
                  " but the topology has no such adjacent link");
    }
}

}  // namespace frfc
