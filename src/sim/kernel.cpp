#include "sim/kernel.hpp"

#include <algorithm>

#include "check/validator.hpp"
#include "common/config.hpp"
#include "common/log.hpp"

namespace frfc {

KernelMode
kernelModeFromConfig(const Config& cfg)
{
    const std::string mode =
        cfg.get<std::string>("sim.kernel", std::string("event"));
    if (mode == "stepped")
        return KernelMode::kStepped;
    if (mode == "event")
        return KernelMode::kEvent;
    fatal("sim.kernel must be 'stepped' or 'event', got '", mode, "'");
}

const char*
kernelModeName(KernelMode mode)
{
    return mode == KernelMode::kStepped ? "stepped" : "event";
}

SimKernelKind
simKernelFromConfig(const Config& cfg)
{
    const std::string kind =
        cfg.get<std::string>("sim.kernel", std::string("event"));
    if (kind == "stepped")
        return SimKernelKind::kStepped;
    if (kind == "event")
        return SimKernelKind::kEvent;
    if (kind == "parallel")
        return SimKernelKind::kParallel;
    fatal("sim.kernel must be 'stepped', 'event', or 'parallel', got '",
          kind, "'");
}

const char*
simKernelName(SimKernelKind kind)
{
    switch (kind) {
      case SimKernelKind::kStepped:
        return "stepped";
      case SimKernelKind::kEvent:
        return "event";
      case SimKernelKind::kParallel:
        return "parallel";
    }
    panic("unknown SimKernelKind");
}

const std::vector<std::string>&
simKernelNames()
{
    static const std::vector<std::string> names{
        simKernelName(SimKernelKind::kStepped),
        simKernelName(SimKernelKind::kEvent),
        simKernelName(SimKernelKind::kParallel)};
    return names;
}

void
Kernel::add(Clocked* component)
{
    FRFC_ASSERT(component != nullptr, "null component");
    FRFC_ASSERT(component->kernel_slot_ == Clocked::kNoKernelSlot,
                "component ", component->name(), " already registered");
    component->kernel_slot_ = components_.size();
    components_.push_back(component);
    due_stamp_.push_back(kInvalidCycle);
    hot_.push_back(0);
    earliest_allowed_.push_back(0);
    pending_wakes_.emplace_back();
    ticked_stamp_.push_back(kInvalidCycle);
    if (mode_ == KernelMode::kEvent)
        wake(component, now_);
}

void
Kernel::setValidator(Validator* validator)
{
    validator_ = validator;
    audit_ = validator != nullptr && validator->paranoid();
    if (audit_) {
        std::fill(earliest_allowed_.begin(), earliest_allowed_.end(),
                  Cycle{0});
        for (auto& pending : pending_wakes_)
            pending.clear();
    }
}

void
Kernel::setMode(KernelMode mode)
{
    FRFC_ASSERT(!executing_, "cannot switch kernel mode mid-cycle");
    mode_ = mode;
    for (auto& bucket : wheel_) {
        bucket.cycle = kInvalidCycle;
        bucket.slots.clear();
    }
    for (const auto& [cycle, pool_idx] : overflow_)
        recycleOverflow(pool_idx);
    overflow_.clear();
    std::fill(hot_.begin(), hot_.end(), 0);
    hot_count_ = 0;
    for (Clocked* component : components_) {
        component->last_wake_cycle_ = kInvalidCycle;
        component->prev_wake_cycle_ = kInvalidCycle;
    }
    if (mode_ == KernelMode::kEvent) {
        // Re-arm everything at the current cycle; components go back to
        // sleep via nextWake once they report quiescence.
        for (Clocked* component : components_)
            wake(component, now_);
    }
}

void
Kernel::stepAll()
{
    if (audit_) {
        stepAllAudited();
        return;
    }
    for (Clocked* component : components_)
        component->tick(now_);
    ticks_executed_ += static_cast<std::int64_t>(components_.size());
    ++now_;
}

void
Kernel::stepAllAudited()
{
    // The stepped kernel ticks everything, so a lying nextWake() can
    // never miss work here — but the same lie silently corrupts event
    // runs. Auditing the promise in stepped mode catches it where the
    // simulation is still correct: a component whose fingerprint moved
    // at a cycle earlier than both its last promise and every wake
    // request since its last tick has broken the quiescence contract.
    const std::size_t count = components_.size();
    for (std::size_t i = 0; i < count; ++i) {
        Clocked* component = components_[i];
        const std::uint64_t before = component->activityFingerprint();
        component->tick(now_);
        const std::uint64_t after = component->activityFingerprint();
        // Activity is legal at the promised cycle or at any cycle an
        // external wake requested (a channel push the event kernel
        // would have queued a wheel entry for).
        Cycle allowed = earliest_allowed_[i];
        for (const Cycle wake : pending_wakes_[i])
            allowed = std::min(allowed, wake);
        if (after != before && allowed > now_) {
            validator_->fail(
                "kernel.wake-contract", now_, component->name(),
                kInvalidPort,
                "state changed at a cycle nextWake promised was idle "
                "(earliest allowed " + std::to_string(allowed) + ")");
        }
        // This tick consumes every wake request at or before now (the
        // event kernel would have discharged those wheel entries);
        // requests for future cycles stand. Then re-arm the promise.
        auto& pending = pending_wakes_[i];
        pending.erase(
            std::remove_if(pending.begin(), pending.end(),
                           [this](Cycle c) { return c <= now_; }),
            pending.end());
        const Cycle promised = component->nextWake(now_);
        earliest_allowed_[i] =
            promised == kInvalidCycle ? kNeverCycle : promised;
    }
    ticks_executed_ += static_cast<std::int64_t>(count);
    ++now_;
}

void
Kernel::shadowAudit()
{
    // Tick every component the schedule says is quiescent. Under the
    // contract such a tick is a no-op, so this cannot perturb results;
    // a fingerprint change means the component had real work at a
    // cycle its nextWake() never announced — the bug class that makes
    // event runs diverge from stepped ones.
    const auto count = static_cast<std::uint32_t>(components_.size());
    for (std::uint32_t slot = 0; slot < count; ++slot) {
        if (ticked_stamp_[slot] == now_)
            continue;
        Clocked* component = components_[slot];
        const std::uint64_t before = component->activityFingerprint();
        component->tick(now_);
        const std::uint64_t after = component->activityFingerprint();
        if (after != before) {
            validator_->fail(
                "kernel.wake-contract", now_, component->name(),
                kInvalidPort,
                "shadow tick of a scheduled-idle component changed "
                "externally visible state");
        }
    }
}

Cycle
Kernel::nextEventCycle(Cycle limit) const
{
    // A hot component is due every cycle, starting now.
    if (hot_count_ > 0)
        return now_;
    // Every wheel entry lies in [now_, now_ + kWheelSize), and within
    // that window cycles map to distinct buckets, so a forward scan
    // finds the earliest one.
    Cycle best = kInvalidCycle;
    const Cycle span = std::min<Cycle>(limit - now_,
                                       static_cast<Cycle>(kWheelSize));
    for (Cycle i = 0; i < span; ++i) {
        const Bucket& bucket =
            wheel_[static_cast<std::size_t>((now_ + i) & kWheelMask)];
        if (bucket.cycle != kInvalidCycle) {
            FRFC_ASSERT(bucket.cycle == now_ + i,
                        "stale timing wheel bucket");
            best = bucket.cycle;
            break;
        }
    }
    if (!overflow_.empty()) {
        const Cycle front = overflow_.begin()->first;
        if (front < limit && (best == kInvalidCycle || front < best))
            best = front;
    }
    return best;
}

void
Kernel::executeCycle()
{
    // Mark everything due at now_ in the per-slot stamp array: the
    // wheel bucket, then any overflow entries that matured. Stamping
    // absorbs duplicate wakes, and replaying slots in index order below
    // reproduces the stepped kernel's deterministic registration-order
    // tick without sorting the due list.
    Bucket& bucket = wheel_[static_cast<std::size_t>(now_ & kWheelMask)];
    if (bucket.cycle == now_) {
        for (const std::uint32_t slot : bucket.slots)
            due_stamp_[slot] = now_;
        bucket.cycle = kInvalidCycle;
        bucket.slots.clear();
    }
    if (!overflow_.empty() && overflow_.begin()->first == now_) {
        const std::uint32_t pool_idx = overflow_.begin()->second;
        for (const std::uint32_t slot : overflow_pool_[pool_idx])
            due_stamp_[slot] = now_;
        recycleOverflow(pool_idx);
        overflow_.erase(overflow_.begin());
    }

    // Tick and re-arm in one pass. Re-arming immediately after a
    // component's tick — before later slots tick — is sound: components
    // interact only through channels, and a push from a later slot
    // either wakes this component itself (first arrival on an idle
    // channel) or arrives no earlier than arrivals its nextWake()
    // already saw (per-channel arrival cycles are monotone in push
    // order), so the computed wake is never too late.
    executing_ = true;
    const auto count = static_cast<std::uint32_t>(components_.size());
    std::int64_t ticked = 0;
    for (std::uint32_t slot = 0; slot < count; ++slot) {
        if (hot_[slot] == 0 && due_stamp_[slot] != now_)
            continue;
        Clocked* component = components_[slot];
        component->tick(now_);
        ++ticked;
        if (audit_)
            ticked_stamp_[slot] = now_;
        const Cycle next = component->nextWake(now_);
        if (next == now_ + 1) {
            // Steady state: skip the wheel entirely (see hot_ in the
            // header). Priming the dedup cache at now_ + 1 keeps
            // latency-1 channel pushes from re-inserting wheel entries
            // the hot tick already covers.
            if (hot_[slot] == 0) {
                hot_[slot] = 1;
                ++hot_count_;
            }
            if (component->last_wake_cycle_ != next) {
                component->prev_wake_cycle_ =
                    component->last_wake_cycle_;
                component->last_wake_cycle_ = next;
            }
            continue;
        }
        if (hot_[slot] != 0) {
            hot_[slot] = 0;
            --hot_count_;
        }
        if (next != kInvalidCycle) {
            FRFC_ASSERT(next > now_, "component ", component->name(),
                        " asked for a non-future wake");
            wake(component, next);
        }
    }
    ticks_executed_ += ticked;
    if (audit_)
        shadowAudit();
    executing_ = false;
}

void
Kernel::runEvent(Cycle limit, const std::function<bool()>* done)
{
    // done() can only change as a result of ticks, so checking it once
    // per executed cycle is equivalent to the stepped kernel's
    // per-cycle check.
    while (now_ < limit) {
        if (done != nullptr && (*done)())
            return;
        const Cycle next = nextEventCycle(limit);
        if (next == kInvalidCycle) {
            idle_cycles_skipped_ += limit - now_;
            now_ = limit;
            return;
        }
        idle_cycles_skipped_ += next - now_;
        now_ = next;
        executeCycle();
        ++now_;
    }
}

void
Kernel::run(Cycle cycles)
{
    if (mode_ == KernelMode::kStepped) {
        for (Cycle i = 0; i < cycles; ++i)
            stepAll();
        return;
    }
    runEvent(now_ + cycles, nullptr);
}

bool
Kernel::runUntil(const std::function<bool()>& done, Cycle max_cycles)
{
    const Cycle limit = now_ + max_cycles;
    if (mode_ == KernelMode::kStepped) {
        while (now_ < limit) {
            if (done())
                return true;
            stepAll();
        }
        return done();
    }
    runEvent(limit, &done);
    return done();
}

}  // namespace frfc
