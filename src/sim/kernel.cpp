#include "sim/kernel.hpp"

#include "common/log.hpp"

namespace frfc {

void
Kernel::add(Clocked* component)
{
    FRFC_ASSERT(component != nullptr, "null component");
    components_.push_back(component);
}

void
Kernel::step()
{
    for (Clocked* component : components_)
        component->tick(now_);
    ++now_;
}

void
Kernel::run(Cycle cycles)
{
    for (Cycle i = 0; i < cycles; ++i)
        step();
}

bool
Kernel::runUntil(const std::function<bool()>& done, Cycle max_cycles)
{
    const Cycle limit = now_ + max_cycles;
    while (now_ < limit) {
        if (done())
            return true;
        step();
    }
    return done();
}

}  // namespace frfc
