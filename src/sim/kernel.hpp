/**
 * @file
 * Simulation kernel: cycle-stepped or activity-driven.
 *
 * The stepped mode ticks every registered component every cycle. The
 * event mode keeps a timing wheel of wake times, ticks only components
 * that are due, and fast-forwards now() across globally idle gaps. The
 * two modes are bit-identical for components honouring the Clocked
 * quiescence contract (see sim/clocked.hpp).
 */

#ifndef FRFC_SIM_KERNEL_HPP
#define FRFC_SIM_KERNEL_HPP

#include <cstdint>
#include <functional>
#include <limits>
#include <map>
#include <string>
#include <vector>

#include "common/log.hpp"
#include "common/types.hpp"
#include "sim/clocked.hpp"

namespace frfc {

class Config;
class Validator;

/** Scheduling strategy for a Kernel. */
enum class KernelMode
{
    kStepped,  ///< tick every component every cycle
    kEvent,    ///< tick only awake components; skip idle cycles
};

/** Parse `sim.kernel` (`stepped` | `event`, default `event`). */
KernelMode kernelModeFromConfig(const Config& cfg);

/** Short name for reports ("stepped" / "event"). */
const char* kernelModeName(KernelMode mode);

/**
 * Every way a network can be driven through simulated time. The serial
 * kernel modes share one Kernel instance; `kParallel` shards the
 * network across per-thread Kernels behind a ParallelKernel. All three
 * produce bit-identical results for conforming components.
 */
enum class SimKernelKind
{
    kStepped,
    kEvent,
    kParallel,
};

/** Parse `sim.kernel` (`stepped` | `event` | `parallel`; default
 *  `event`). `parallel` honours `sim.shards` / `sim.partition` (see
 *  sim/shard.hpp). */
SimKernelKind simKernelFromConfig(const Config& cfg);

/** Short name for reports ("stepped" / "event" / "parallel"). */
const char* simKernelName(SimKernelKind kind);

/**
 * The single registry of driveable kernels, in canonical order. Every
 * harness that enumerates kernels (equivalence ctests, idle sweeps,
 * `--list-kernels`) derives its list from here so a new kernel is
 * picked up everywhere automatically.
 */
const std::vector<std::string>& simKernelNames();

/**
 * What the measurement harness needs from a simulation engine: a
 * clock, bounded execution, and scheduling-efficiency counters. The
 * serial Kernel and the sharded ParallelKernel both implement it, so
 * runners never care how cycles are executed.
 */
class SimDriver
{
  public:
    virtual ~SimDriver() = default;

    /** Current cycle (the cycle about to execute or executing). */
    virtual Cycle now() const = 0;

    /** Execute exactly @p cycles cycles. */
    virtual void run(Cycle cycles) = 0;

    /**
     * Execute until @p done returns true (checked between cycles) or
     * @p max_cycles elapse. Returns true if @p done fired.
     */
    virtual bool runUntil(const std::function<bool()>& done,
                          Cycle max_cycles) = 0;

    /** Total component ticks executed. */
    virtual std::int64_t ticksExecuted() const = 0;

    /** Cycles fast-forwarded without ticking anything. */
    virtual Cycle idleCyclesSkipped() const = 0;
};

/**
 * Drives a set of Clocked components.
 *
 * The kernel owns only the schedule, not the components; network
 * assemblies register borrowed pointers whose lifetime they guarantee.
 * Defaults to stepped mode so bare kernels behave exactly as before;
 * networks select the mode from config (`sim.kernel`).
 */
class Kernel : public SimDriver
{
  public:
    Kernel() = default;

    /** Register a component; scheduled from the current cycle on. */
    void add(Clocked* component);

    /**
     * Select the scheduling mode. Switching to event mode (re-)arms
     * every registered component at the current cycle so no pending
     * work is lost.
     */
    void setMode(KernelMode mode);

    KernelMode mode() const { return mode_; }

    /** Current cycle (the cycle about to execute or executing). */
    Cycle now() const override { return now_; }

    /** Execute exactly @p cycles cycles. */
    void run(Cycle cycles) override;

    /**
     * Execute until @p done returns true (checked between cycles) or
     * @p max_cycles elapse. Returns true if @p done fired.
     */
    bool runUntil(const std::function<bool()>& done,
                  Cycle max_cycles) override;

    /**
     * Schedule @p component to be ticked at @p cycle (>= now()). No-op
     * in stepped mode. Channels call this on push; assemblies call it
     * when they mutate a sleeping component from outside (e.g. enabling
     * generation or sampling mid-run). Inline: this sits on the
     * channel-push hot path of every active tick.
     */
    /**
     * Attach the run's validator. At ValidateLevel::kParanoid the
     * kernel audits the Clocked wake contract: in stepped mode it
     * compares each component's activity fingerprint across ticks
     * against the earliest cycle its nextWake() promise (or a wake
     * request) allowed activity at; in event mode it shadow-ticks
     * every component the schedule left sleeping and flags any
     * fingerprint change. Violations report `kernel.wake-contract`.
     */
    void setValidator(Validator* validator);

    void
    wake(Clocked* component, Cycle cycle)
    {
        // Wake-contract audit: remember every externally requested
        // activity cycle, in both kernel modes (stepped mode otherwise
        // ignores wakes). A full list — not just a running minimum — is
        // needed: a wake above the current minimum must survive the
        // tick that consumes the earlier one.
        if (audit_ && component != nullptr
            && component->kernel_slot_ != Clocked::kNoKernelSlot) {
            auto& pending =
                pending_wakes_[component->kernel_slot_];
            bool seen = false;
            for (const Cycle c : pending)
                seen = seen || c == cycle;
            if (!seen)
                pending.push_back(cycle);
        }
        if (mode_ == KernelMode::kStepped)
            return;
        FRFC_ASSERT(component != nullptr
                        && component->kernel_slot_
                            != Clocked::kNoKernelSlot,
                    "wake on unregistered component");
        FRFC_ASSERT(cycle >= now_ && (!executing_ || cycle > now_),
                    "wake for ", component->name(), " at past cycle ",
                    cycle, " (now ", now_, ")");
        // Several pushes commonly land on one receiver in one cycle —
        // alternating between two arrival cycles when both credits and
        // data flow in — so remember the two most recent distinct
        // requests and queue each slot/cycle pair once. (A component
        // can still sit in more buckets than the cache remembers; the
        // due-stamp pass in executeCycle() absorbs those duplicates.)
        if (component->last_wake_cycle_ == cycle
            || component->prev_wake_cycle_ == cycle)
            return;
        component->prev_wake_cycle_ = component->last_wake_cycle_;
        component->last_wake_cycle_ = cycle;
        const auto slot =
            static_cast<std::uint32_t>(component->kernel_slot_);
        if (cycle < now_ + static_cast<Cycle>(kWheelSize)) {
            Bucket& bucket =
                wheel_[static_cast<std::size_t>(cycle & kWheelMask)];
            FRFC_ASSERT(bucket.cycle == kInvalidCycle
                            || bucket.cycle == cycle,
                        "timing wheel bucket collision at cycle ", cycle);
            bucket.cycle = cycle;
            bucket.slots.push_back(slot);
        } else {
            const auto [it, inserted] = overflow_.try_emplace(cycle, 0);
            if (inserted) {
                if (overflow_free_.empty()) {
                    overflow_free_.push_back(static_cast<std::uint32_t>(
                        overflow_pool_.size()));
                    overflow_pool_.emplace_back();
                }
                it->second = overflow_free_.back();
                overflow_free_.pop_back();
            }
            overflow_pool_[it->second].push_back(slot);
        }
    }

    /** Total component ticks executed (both modes). */
    std::int64_t ticksExecuted() const override { return ticks_executed_; }

    /** Cycles fast-forwarded without ticking anything (event mode). */
    Cycle idleCyclesSkipped() const override
    {
        return idle_cycles_skipped_;
    }

    /** Registered components (shard balance reporting). */
    std::size_t componentCount() const { return components_.size(); }

  private:
    /** Wheel span; power of two, must exceed any channel latency. */
    static constexpr std::size_t kWheelSize = 1024;
    static constexpr Cycle kWheelMask = static_cast<Cycle>(kWheelSize) - 1;

    struct Bucket
    {
        Cycle cycle = kInvalidCycle;
        std::vector<std::uint32_t> slots;
    };

    /** "No promised activity" sentinel for the wake-contract audit. */
    static constexpr Cycle kNeverCycle =
        std::numeric_limits<Cycle>::max();

    void stepAll();
    /** stepAll() with per-component wake-contract fingerprinting. */
    void stepAllAudited();
    /** Shadow-tick components the event schedule left sleeping. */
    void shadowAudit();
    void runEvent(Cycle limit, const std::function<bool()>* done);
    /** Earliest scheduled cycle in [now_, limit), or kInvalidCycle. */
    Cycle nextEventCycle(Cycle limit) const;
    /** Tick everything due at now_ and re-arm self-scheduled wakes. */
    void executeCycle();

    Cycle now_ = 0;
    KernelMode mode_ = KernelMode::kStepped;
    std::vector<Clocked*> components_;

    std::vector<Bucket> wheel_{kWheelSize};
    /** Wakes at or beyond now_ + kWheelSize: cycle -> slot list held
     *  in overflow_pool_. Emptied lists return to overflow_free_ with
     *  their capacity intact, so steady-state far-future wakes reuse
     *  warm vectors instead of allocating one per map entry. */
    std::map<Cycle, std::uint32_t> overflow_;
    std::vector<std::vector<std::uint32_t>> overflow_pool_;
    std::vector<std::uint32_t> overflow_free_;

    /** Return @p pool_idx's list (cleared, capacity kept) to the pool. */
    void
    recycleOverflow(std::uint32_t pool_idx)
    {
        overflow_pool_[pool_idx].clear();
        overflow_free_.push_back(pool_idx);
    }
    /** Per-slot stamp of the cycle the slot is due (epoch dedup). */
    std::vector<Cycle> due_stamp_;
    /**
     * Hot set: slots whose last nextWake() was now + 1. A hot slot is
     * ticked every cycle with no wheel traffic at all until it asks for
     * anything else — at saturation nearly every component is hot every
     * cycle, and this is what keeps the event kernel within noise of
     * the stepped one there. A hot slot's dedup cache is kept primed at
     * now + 1 so channel pushes stay deduplicated (safe: hot implies a
     * tick at now + 1, which is what the cache promises).
     */
    std::vector<std::uint8_t> hot_;
    std::size_t hot_count_ = 0;
    bool executing_ = false;

    /** Wake-contract audit state (active only at kParanoid). */
    Validator* validator_ = nullptr;
    bool audit_ = false;
    /** Per slot: earliest activity cycle the last promise allows. */
    std::vector<Cycle> earliest_allowed_;
    /** Per slot: wake requests not yet consumed by a tick. */
    std::vector<std::vector<Cycle>> pending_wakes_;
    /** Per slot: last cycle the slot was really ticked (event mode). */
    std::vector<Cycle> ticked_stamp_;

    std::int64_t ticks_executed_ = 0;
    Cycle idle_cycles_skipped_ = 0;
};

}  // namespace frfc

#endif  // FRFC_SIM_KERNEL_HPP
