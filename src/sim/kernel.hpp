/**
 * @file
 * Cycle-stepped simulation kernel.
 */

#ifndef FRFC_SIM_KERNEL_HPP
#define FRFC_SIM_KERNEL_HPP

#include <functional>
#include <vector>

#include "common/types.hpp"
#include "sim/clocked.hpp"

namespace frfc {

/**
 * Drives a set of Clocked components, one tick per component per cycle.
 *
 * The kernel owns only the schedule, not the components; network
 * assemblies register borrowed pointers whose lifetime they guarantee.
 */
class Kernel
{
  public:
    Kernel() = default;

    /** Register a component; ticked every cycle from now on. */
    void add(Clocked* component);

    /** Current cycle (the cycle about to execute or executing). */
    Cycle now() const { return now_; }

    /** Execute exactly @p cycles cycles. */
    void run(Cycle cycles);

    /**
     * Execute until @p done returns true (checked between cycles) or
     * @p max_cycles elapse. Returns true if @p done fired.
     */
    bool runUntil(const std::function<bool()>& done, Cycle max_cycles);

  private:
    void step();

    Cycle now_ = 0;
    std::vector<Clocked*> components_;
};

}  // namespace frfc

#endif  // FRFC_SIM_KERNEL_HPP
