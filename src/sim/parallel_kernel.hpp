/**
 * @file
 * Conservative parallel simulation kernel.
 *
 * One network is partitioned into shards (sim/shard.hpp); each shard's
 * components run on a dedicated worker thread inside an ordinary
 * event-mode Kernel. Because components interact only through channels
 * with latency >= 1, every shard can execute a window of W cycles
 * independently as long as W never exceeds the minimum latency of any
 * cross-shard channel (the lookahead): nothing a remote shard pushes
 * during the window can arrive before the window ends.
 *
 * Cross-shard channels are split into a sender-side stub (unbound;
 * pushes accumulate with exact arrival cycles) and a receiver-side twin
 * bound to the receiver's shard kernel. Each window runs in three
 * phases, separated by barriers:
 *
 *   1. tick      every shard runs its kernel W cycles (parallel)
 *   2. transfer  every shard drains its inbound mailbox stubs into the
 *                real channels, in registration order (parallel across
 *                shards, deterministic within one)
 *   3. boundary  a single-threaded hook replays deferred global
 *                bookkeeping (packet ledgers) in exact serial order and
 *                optionally runs validation sweeps
 *
 * Determinism: arrival cycles are computed from push cycle + latency
 * exactly as in the serial kernels, per-shard execution is the proven
 * bit-identical event kernel, and all global mutable state is either
 * sharded or deferred to phase 3 where it is replayed in the serial
 * order. Results are therefore bit-identical to `stepped` and `event`
 * for every shard count and any thread interleaving (DESIGN.md §10).
 */

#ifndef FRFC_SIM_PARALLEL_KERNEL_HPP
#define FRFC_SIM_PARALLEL_KERNEL_HPP

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "common/types.hpp"
#include "sim/channel.hpp"
#include "sim/kernel.hpp"

namespace frfc {

/** Drives per-shard Kernels in lockstep lookahead windows. */
class ParallelKernel : public SimDriver
{
  public:
    explicit ParallelKernel(int shards);
    ~ParallelKernel() override;

    ParallelKernel(const ParallelKernel&) = delete;
    ParallelKernel& operator=(const ParallelKernel&) = delete;

    int shardCount() const { return shard_count_; }

    /** Shard @p s's kernel; components register here as usual. */
    Kernel&
    shard(int s)
    {
        return *kernels_[static_cast<std::size_t>(s)];
    }

    /**
     * Register one cross-shard channel pair: @p stub is the sender-side
     * accumulator (must stay unbound), @p real the receiver-side twin
     * whose sink lives in shard @p dest_shard. Transfers run in
     * registration order within each receiving shard, so wiring order
     * (node id, port order) fixes the drain order deterministically.
     * Also narrows the lookahead window to the channel's latency.
     */
    template <typename T>
    void
    addCrossChannel(int dest_shard, Channel<T>* stub, Channel<T>* real)
    {
        FRFC_ASSERT(!started_, "cross-channel added after start");
        noteCrossLatency(stub->latency());
        inbound_[static_cast<std::size_t>(dest_shard)].push_back(
            [stub, real] { stub->transferAllInto(*real); });
    }

    /**
     * Single-threaded per-window hook, called with the new now() after
     * the transfer phase. Network assemblies replay their deferred
     * packet ledgers here and, in paranoid runs, validate state.
     */
    void
    setBoundaryHook(std::function<void(Cycle)> hook)
    {
        boundary_hook_ = std::move(hook);
    }

    /** Current lookahead window bound (min cross-shard latency). */
    Cycle lookahead() const { return lookahead_; }

    /** Windows (barrier episodes) executed so far. */
    std::int64_t windowsExecuted() const { return windows_executed_; }

    /** @{ Per-shard balance statistics for harness reports. */
    std::vector<std::int64_t> shardTicks() const;
    std::vector<std::size_t> shardComponents() const;
    /** @} */

    Cycle now() const override { return now_; }
    void run(Cycle cycles) override;
    bool runUntil(const std::function<bool()>& done,
                  Cycle max_cycles) override;
    std::int64_t ticksExecuted() const override;
    Cycle idleCyclesSkipped() const override;

  private:
    /** Window cap when no cross-shard channel narrows it (bounds how
     *  much deferred bookkeeping a window can accumulate). */
    static constexpr Cycle kMaxWindow = 1024;

    void ensureStarted();
    void executeWindow(Cycle window);
    void workerLoop(int s);
    void tickBarrierWait();
    static void spinPause(int& spins);

    void
    noteCrossLatency(Cycle latency)
    {
        FRFC_ASSERT(latency >= 1, "cross-shard latency must be >= 1");
        if (latency < lookahead_)
            lookahead_ = latency;
    }

    const int shard_count_;
    std::vector<std::unique_ptr<Kernel>> kernels_;
    /** Per receiving shard: mailbox transfers in registration order. */
    std::vector<std::vector<std::function<void()>>> inbound_;
    std::function<void(Cycle)> boundary_hook_;

    Cycle now_ = 0;
    Cycle lookahead_ = kMaxWindow;
    std::int64_t windows_executed_ = 0;

    /** @{ Worker-team state. Caller publishes window_ with a release
     *  bump of epoch_; workers tick, meet at the tick barrier, drain
     *  their mailboxes, then report through done_count_. */
    bool started_ = false;
    std::vector<std::thread> workers_;
    Cycle window_ = 0;
    std::atomic<std::uint64_t> epoch_{0};
    std::atomic<bool> stop_{false};
    std::atomic<int> tick_arrived_{0};
    std::atomic<std::uint64_t> tick_generation_{0};
    std::atomic<int> done_count_{0};
    /** @} */
};

}  // namespace frfc

#endif  // FRFC_SIM_PARALLEL_KERNEL_HPP
