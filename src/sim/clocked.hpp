/**
 * @file
 * Interface for cycle-stepped components.
 */

#ifndef FRFC_SIM_CLOCKED_HPP
#define FRFC_SIM_CLOCKED_HPP

#include <string>

#include "common/types.hpp"

namespace frfc {

/**
 * A component advanced once per simulated clock cycle.
 *
 * All inter-component communication flows through Channel objects with a
 * propagation latency of at least one cycle, so the order in which the
 * kernel ticks components within a cycle is immaterial.
 */
class Clocked
{
  public:
    explicit Clocked(std::string name) : name_(std::move(name)) {}
    virtual ~Clocked() = default;

    Clocked(const Clocked&) = delete;
    Clocked& operator=(const Clocked&) = delete;

    /** Advance one cycle: consume channel arrivals, compute, emit. */
    virtual void tick(Cycle now) = 0;

    /** Hierarchical instance name (for diagnostics). */
    const std::string& name() const { return name_; }

  private:
    std::string name_;
};

}  // namespace frfc

#endif  // FRFC_SIM_CLOCKED_HPP
