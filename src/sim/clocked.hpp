/**
 * @file
 * Interface for cycle-stepped components.
 */

#ifndef FRFC_SIM_CLOCKED_HPP
#define FRFC_SIM_CLOCKED_HPP

#include <cstddef>
#include <cstdint>
#include <string>

#include "common/types.hpp"

namespace frfc {

/**
 * Mix one value into an activity fingerprint (splitmix64 finalizer).
 * Components fold their externally visible state into a single word
 * with this; see Clocked::activityFingerprint.
 */
inline std::uint64_t
fingerprintMix(std::uint64_t h, std::uint64_t v)
{
    std::uint64_t z = h + 0x9e3779b97f4a7c15ULL + v;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

/**
 * A component advanced once per simulated clock cycle.
 *
 * All inter-component communication flows through Channel objects with a
 * propagation latency of at least one cycle, so the order in which the
 * kernel ticks components within a cycle is immaterial.
 *
 * Quiescence contract (event-driven kernel). After tick(now) returns,
 * the kernel asks nextWake(now) for the next cycle at which the
 * component must be ticked again:
 *
 *  - Returning now + 1 keeps the component clocked every cycle (the
 *    default, always safe).
 *  - Returning a later cycle, or kInvalidCycle ("sleep until woken"),
 *    promises that every skipped tick would have been a no-op: no state
 *    change, no RNG draw, no metric update, and no channel push. The
 *    component is re-ticked early if something is pushed to one of its
 *    bound input channels (Channel wake hook) or if Kernel::wake is
 *    called on it explicitly.
 *  - A component that self-schedules future work (reservation tables,
 *    pending injections) must report a wake no later than the earliest
 *    such event. Arrivals on eagerly bound channels are the kernel's
 *    responsibility; a channel bound with lazy wakes (see
 *    Channel::bindSink) only announces its first pending arrival, and
 *    the receiver's nextWake must then stay at or before
 *    Channel::nextArrivalAfter(now) on every such input.
 */
class Clocked
{
  public:
    explicit Clocked(std::string name) : name_(std::move(name)) {}
    virtual ~Clocked() = default;

    Clocked(const Clocked&) = delete;
    Clocked& operator=(const Clocked&) = delete;

    /** Advance one cycle: consume channel arrivals, compute, emit. */
    virtual void tick(Cycle now) = 0;

    /**
     * Next cycle at which this component must be ticked, given that
     * tick(now) just ran; kInvalidCycle = sleep until explicitly woken.
     * Only consulted by the event-driven kernel; see the quiescence
     * contract above.
     */
    virtual Cycle nextWake(Cycle now) const { return now + 1; }

    /**
     * Hash of the externally visible state a skipped tick must leave
     * untouched: event counters, queue sizes, pool occupancies — never
     * caches, lookahead, or window positions, which conforming no-op
     * ticks may legally move. The paranoid validator shadow-ticks
     * components the schedule says are quiescent and flags any
     * fingerprint change as a nextWake() lie (kernel.wake-contract).
     * The default opts a component out of the check.
     */
    virtual std::uint64_t activityFingerprint() const { return 0; }

    /** Hierarchical instance name (for diagnostics). */
    const std::string& name() const { return name_; }

  private:
    friend class Kernel;

    static constexpr std::size_t kNoKernelSlot = ~std::size_t{0};

    std::string name_;
    /** Registration index inside the owning kernel (wake bookkeeping). */
    std::size_t kernel_slot_ = kNoKernelSlot;
    /** The two most recent distinct wake-request cycles (duplicate
     *  suppression). Two entries because a component's wakes typically
     *  alternate between two arrival cycles within one tick — credits
     *  at now + 1 and data at now + link latency — which a single-entry
     *  cache would miss on every push. */
    Cycle last_wake_cycle_ = kInvalidCycle;
    Cycle prev_wake_cycle_ = kInvalidCycle;
};

}  // namespace frfc

#endif  // FRFC_SIM_CLOCKED_HPP
