#include "sim/shard.hpp"

#include <algorithm>
#include <thread>

#include "common/config.hpp"
#include "common/log.hpp"
#include "topology/topology.hpp"

namespace frfc {

namespace {

/**
 * Assign shards [first_shard, first_shard + count) to the grid box
 * [x0, x0 + w) x [y0, y0 + h): halve the longer side, then split the
 * shard count in proportion to the two sub-areas (clamped so each side
 * can hold its shards — feasible whenever count <= w * h).
 */
void
bisect(const Topology& topo, std::vector<int>& owner, int first_shard,
       int count, int x0, int y0, int w, int h)
{
    FRFC_ASSERT(count >= 1 && count <= w * h,
                "bisect: ", count, " shards for a ", w, "x", h, " box");
    if (count == 1) {
        for (int dy = 0; dy < h; ++dy)
            for (int dx = 0; dx < w; ++dx)
                owner[static_cast<std::size_t>(
                    topo.nodeAt(x0 + dx, y0 + dy))] = first_shard;
        return;
    }
    const bool split_x = w >= h;
    const int side = split_x ? w : h;
    const int other = split_x ? h : w;
    const int cut = side / 2;
    int left = (count * cut + side / 2) / side;
    left = std::clamp(left, std::max(1, count - (side - cut) * other),
                      std::min(count - 1, cut * other));
    const int right = count - left;
    if (split_x) {
        bisect(topo, owner, first_shard, left, x0, y0, cut, h);
        bisect(topo, owner, first_shard + left, right, x0 + cut, y0,
               w - cut, h);
    } else {
        bisect(topo, owner, first_shard, left, x0, y0, w, cut);
        bisect(topo, owner, first_shard + left, right, x0, y0 + cut, w,
               h - cut);
    }
}

}  // namespace

std::vector<int>
ShardPlan::counts() const
{
    std::vector<int> result(static_cast<std::size_t>(shards), 0);
    for (const int s : owner)
        ++result[static_cast<std::size_t>(s)];
    return result;
}

ShardPlan
makeStripedPlan(const Topology& topo, int shards)
{
    const int n = topo.numNodes();
    FRFC_ASSERT(shards >= 1 && shards <= n, "bad shard count ", shards);
    ShardPlan plan;
    plan.shards = shards;
    plan.owner.resize(static_cast<std::size_t>(n));
    for (NodeId node = 0; node < n; ++node) {
        plan.owner[static_cast<std::size_t>(node)] = static_cast<int>(
            (static_cast<std::int64_t>(node) * shards) / n);
    }
    return plan;
}

ShardPlan
makeBisectPlan(const Topology& topo, int shards)
{
    const int n = topo.numNodes();
    FRFC_ASSERT(shards >= 1 && shards <= n, "bad shard count ", shards);
    ShardPlan plan;
    plan.shards = shards;
    plan.owner.assign(static_cast<std::size_t>(n), -1);
    bisect(topo, plan.owner, 0, shards, 0, 0, topo.sizeX(),
           topo.sizeY());
    return plan;
}

ShardPlan
makeShardPlan(const Config& cfg, const Topology& topo)
{
    const std::string raw =
        cfg.get<std::string>("sim.shards", std::string("auto"));
    int shards = 0;
    if (raw != "auto") {
        shards = static_cast<int>(cfg.getInt("sim.shards", 0));
        if (shards < 1)
            fatal("sim.shards must be a positive shard count or "
                  "'auto', got '", raw, "'");
    }
    if (shards <= 0) {
        const unsigned hw = std::thread::hardware_concurrency();
        shards = hw > 0 ? static_cast<int>(hw) : 1;
    }
    shards = std::clamp(shards, 1, topo.numNodes());

    const std::string policy =
        cfg.get<std::string>("sim.partition", std::string("bisect"));
    if (policy == "striped")
        return makeStripedPlan(topo, shards);
    if (policy == "bisect")
        return makeBisectPlan(topo, shards);
    fatal("sim.partition must be 'striped' or 'bisect', got '", policy,
          "'");
}

}  // namespace frfc
