/**
 * @file
 * Wired-port list: the router-side view of its connected channels.
 *
 * Mesh-edge ports stay unwired, so the routers historically looped
 * over all kNumPorts slots and null-checked each one on every tick and
 * every nextWake probe. This list is built once at wiring time and
 * holds only the connected ports, sorted port-ascending — the drain
 * loops then touch exactly the live channels, in the same
 * deterministic order as the old full scan (drain order into shared
 * downstream state is semantic; see DESIGN.md §12).
 */

#ifndef FRFC_SIM_WIRED_HPP
#define FRFC_SIM_WIRED_HPP

#include <vector>

#include "common/log.hpp"
#include "common/types.hpp"

namespace frfc {

/** Connected (port, channel) pairs, kept sorted by port. */
template <typename ChannelT>
class WiredPorts
{
  public:
    struct Entry
    {
        PortId port;
        ChannelT* channel;
    };

    /** Register @p channel as @p port's endpoint (insert or replace;
     *  insertion keeps the list port-ascending). */
    void
    bind(PortId port, ChannelT* channel)
    {
        FRFC_ASSERT(channel != nullptr, "binding a null channel");
        auto it = entries_.begin();
        while (it != entries_.end() && it->port < port)
            ++it;
        if (it != entries_.end() && it->port == port)
            it->channel = channel;
        else
            entries_.insert(it, Entry{port, channel});
    }

    auto begin() const { return entries_.begin(); }
    auto end() const { return entries_.end(); }
    bool empty() const { return entries_.empty(); }
    std::size_t size() const { return entries_.size(); }

  private:
    std::vector<Entry> entries_;
};

}  // namespace frfc

#endif  // FRFC_SIM_WIRED_HPP
