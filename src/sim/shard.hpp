/**
 * @file
 * Topology partitioning for the conservative parallel kernel.
 *
 * A ShardPlan maps every node to one shard; all components of a node
 * (router, source, its slice of the ejection sink) live in that shard
 * and tick on the shard's thread. Two policies (`sim.partition`):
 *
 *   striped  contiguous node-id ranges, sizes differing by at most
 *            one — trivially balanced, but a range's boundary cuts a
 *            whole row of mesh links.
 *   bisect   recursive coordinate bisection of the 2D grid, splitting
 *            the longer dimension each time (default) — near-square
 *            blocks minimize cut links, i.e. mailbox traffic.
 *
 * `sim.shards` selects the shard count: a positive integer, or 0 /
 * "auto" for one shard per hardware thread. The count is clamped to
 * the node count. The plan affects wall-clock only — results are
 * bit-identical for every shard count and policy by construction (see
 * DESIGN.md section 10).
 */

#ifndef FRFC_SIM_SHARD_HPP
#define FRFC_SIM_SHARD_HPP

#include <string>
#include <vector>

#include "common/types.hpp"

namespace frfc {

class Config;
class Topology;

/** Node-to-shard assignment for one network. */
struct ShardPlan
{
    int shards = 1;
    std::vector<int> owner;  ///< node id -> shard index

    int
    ownerOf(NodeId node) const
    {
        return owner[static_cast<std::size_t>(node)];
    }

    /** Nodes per shard (balance reporting). */
    std::vector<int> counts() const;
};

/**
 * Build the plan for @p topo from `sim.shards` / `sim.partition`.
 * Every shard is guaranteed at least one node.
 */
ShardPlan makeShardPlan(const Config& cfg, const Topology& topo);

/** Partition @p topo into @p shards stripes of contiguous node ids. */
ShardPlan makeStripedPlan(const Topology& topo, int shards);

/** Recursive coordinate bisection of @p topo into @p shards blocks. */
ShardPlan makeBisectPlan(const Topology& topo, int shards);

}  // namespace frfc

#endif  // FRFC_SIM_SHARD_HPP
