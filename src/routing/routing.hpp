/**
 * @file
 * Deterministic routing functions.
 *
 * The paper uses deterministic dimension-ordered routing (XY). We also
 * provide YX ordering as a drop-in alternative for experiments.
 */

#ifndef FRFC_ROUTING_ROUTING_HPP
#define FRFC_ROUTING_ROUTING_HPP

#include <memory>
#include <string>

#include "common/types.hpp"

namespace frfc {

class Config;
class Topology;

/** Maps (current node, destination) to an output port. */
class RoutingFunction
{
  public:
    virtual ~RoutingFunction() = default;

    /**
     * Output port a packet at @p current bound for @p dest should take;
     * kLocal when current == dest.
     */
    virtual PortId route(NodeId current, NodeId dest) const = 0;

    virtual std::string describe() const = 0;
};

/** Dimension-ordered routing; resolves X first, then Y (or Y first). */
class DimensionOrderRouting : public RoutingFunction
{
  public:
    /**
     * @param topo     topology (borrowed; must outlive this object)
     * @param x_first  true for XY routing, false for YX
     */
    DimensionOrderRouting(const Topology& topo, bool x_first = true);

    PortId route(NodeId current, NodeId dest) const override;
    std::string describe() const override;

  private:
    PortId routeX(int cur, int dst, int size, bool wrap) const;
    PortId routeY(int cur, int dst, int size, bool wrap) const;

    const Topology& topo_;
    bool x_first_;
    bool wraparound_;
};

/**
 * Build a routing function from config keys:
 *   routing = xy | yx   (default xy)
 */
std::unique_ptr<RoutingFunction>
makeRouting(const Config& cfg, const Topology& topo);

}  // namespace frfc

#endif  // FRFC_ROUTING_ROUTING_HPP
