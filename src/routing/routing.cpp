#include "routing/routing.hpp"

#include "common/config.hpp"
#include "common/log.hpp"
#include "topology/topology.hpp"
#include "topology/torus.hpp"

namespace frfc {

DimensionOrderRouting::DimensionOrderRouting(const Topology& topo,
                                             bool x_first)
    : topo_(topo), x_first_(x_first),
      wraparound_(dynamic_cast<const Torus2D*>(&topo) != nullptr)
{
}

PortId
DimensionOrderRouting::routeX(int cur, int dst, int size, bool wrap) const
{
    if (!wrap)
        return dst > cur ? kEast : kWest;
    // Torus: go around the shorter way; ties resolve east.
    const int forward = (dst - cur + size) % size;
    return forward <= size - forward ? kEast : kWest;
}

PortId
DimensionOrderRouting::routeY(int cur, int dst, int size, bool wrap) const
{
    if (!wrap)
        return dst > cur ? kSouth : kNorth;
    const int forward = (dst - cur + size) % size;
    return forward <= size - forward ? kSouth : kNorth;
}

PortId
DimensionOrderRouting::route(NodeId current, NodeId dest) const
{
    FRFC_ASSERT(current >= 0 && current < topo_.numNodes(), "bad node");
    FRFC_ASSERT(dest >= 0 && dest < topo_.numNodes(), "bad destination");
    if (current == dest)
        return kLocal;
    const int cx = topo_.xOf(current);
    const int cy = topo_.yOf(current);
    const int dx = topo_.xOf(dest);
    const int dy = topo_.yOf(dest);
    if (x_first_) {
        if (cx != dx)
            return routeX(cx, dx, topo_.sizeX(), wraparound_);
        return routeY(cy, dy, topo_.sizeY(), wraparound_);
    }
    if (cy != dy)
        return routeY(cy, dy, topo_.sizeY(), wraparound_);
    return routeX(cx, dx, topo_.sizeX(), wraparound_);
}

std::string
DimensionOrderRouting::describe() const
{
    return x_first_ ? "dimension-ordered XY" : "dimension-ordered YX";
}

std::unique_ptr<RoutingFunction>
makeRouting(const Config& cfg, const Topology& topo)
{
    const std::string kind = cfg.getString("routing", "xy");
    if (kind == "xy")
        return std::make_unique<DimensionOrderRouting>(topo, true);
    if (kind == "yx")
        return std::make_unique<DimensionOrderRouting>(topo, false);
    fatal("unknown routing '", kind, "' (expected xy or yx)");
}

}  // namespace frfc
