#include "vc/vc_router.hpp"

#include <algorithm>

#include "common/log.hpp"
#include "routing/routing.hpp"
#include "sim/fault.hpp"
#include "topology/topology.hpp"

namespace frfc {

VcRouter::VcRouter(std::string name, NodeId node,
                   const RoutingFunction& routing,
                   const VcRouterParams& params, Rng rng,
                   MetricRegistry* metrics)
    : Clocked(std::move(name)), node_(node), routing_(routing),
      params_(params), rng_(rng),
      data_out_(kNumPorts, nullptr), credit_out_(kNumPorts, nullptr),
      input_vcs_(static_cast<std::size_t>(kNumPorts) * params.numVcs),
      output_vcs_(static_cast<std::size_t>(kNumPorts) * params.numVcs),
      pool_credits_(kNumPorts, params.numVcs * params.vcDepth),
      buffered_(kNumPorts, 0)
{
    FRFC_ASSERT(params.numVcs >= 1 && params.vcDepth >= 1,
                "need at least one VC with one buffer");
    for (auto& ovc : output_vcs_)
        ovc.credits = params.vcDepth;
    if (metrics != nullptr) {
        const std::string prefix = "router." + std::to_string(node);
        metrics->attachCounter(prefix + ".vc_alloc_failures",
                               vc_alloc_failures_);
        metrics->attachCounter(prefix + ".credit_stalls", credit_stalls_);
        metrics->attachCounter(prefix + ".data.poisoned", data_poisoned_);
        for (PortId port = 0; port < kNumPorts; ++port) {
            const auto p = static_cast<std::size_t>(port);
            metrics->attachCounter(
                prefix + ".out." + std::to_string(port) + ".data_flits",
                flits_out_[p]);
            metrics->attachTimeAverage(
                prefix + ".in." + std::to_string(port) + ".occupancy",
                in_occ_[p]);
        }
    }
}

void
VcRouter::connectDataIn(PortId port, Channel<Flit>* ch)
{
    data_in_.bind(port, ch);
}

void
VcRouter::connectDataOut(PortId port, Channel<Flit>* ch)
{
    data_out_.at(static_cast<std::size_t>(port)) = ch;
}

void
VcRouter::connectCreditIn(PortId port, Channel<Credit>* ch)
{
    credit_in_.bind(port, ch);
}

void
VcRouter::connectCreditOut(PortId port, Channel<Credit>* ch)
{
    credit_out_.at(static_cast<std::size_t>(port)) = ch;
}

VcRouter::InputVc&
VcRouter::inVc(PortId port, VcId vc)
{
    return input_vcs_[static_cast<std::size_t>(port) * params_.numVcs + vc];
}

VcRouter::OutputVc&
VcRouter::outVc(PortId port, VcId vc)
{
    return output_vcs_[static_cast<std::size_t>(port) * params_.numVcs + vc];
}

int
VcRouter::totalBufferedFlits() const
{
    int total = 0;
    for (PortId p = 0; p < kNumPorts; ++p)
        total += bufferedFlits(p);
    return total;
}

void
VcRouter::tick(Cycle now)
{
    drainCredits(now);
    allocateVcs(now);
    allocateSwitch(now);
    acceptArrivals(now);
}

void
VcRouter::drainCredits(Cycle now)
{
    for (const auto& wired : credit_in_) {
        const PortId port = wired.port;
        wired.channel->drainInto(now, credit_scratch_);
        for (const Credit& credit : credit_scratch_) {
            if (params_.sharedPool) {
                ++pool_credits_[static_cast<std::size_t>(port)];
                FRFC_ASSERT(pool_credits_[static_cast<std::size_t>(port)]
                                <= params_.numVcs * params_.vcDepth,
                            "pool credit overflow on port ", port);
            } else {
                OutputVc& ovc = outVc(port, credit.vc);
                ++ovc.credits;
                FRFC_ASSERT(ovc.credits <= params_.vcDepth,
                            "credit overflow on port ", port, " vc ",
                            credit.vc);
            }
        }
    }
}

void
VcRouter::allocateVcs(Cycle now)
{
    // Gather requests: each waiting head picks one free output VC at
    // random; each contested output VC then grants one requester at
    // random. Random arbitration throughout, per the paper.
    std::vector<VcaRequest>& requests = vca_requests_;
    requests.clear();

    for (PortId port = 0; port < kNumPorts; ++port) {
        if (buffered_[static_cast<std::size_t>(port)] == 0)
            continue;  // every VC queue on this input is empty
        for (VcId vc = 0; vc < params_.numVcs; ++vc) {
            InputVc& ivc = inVc(port, vc);
            if (ivc.active || ivc.queue.empty())
                continue;
            const Flit& head = ivc.queue.front();
            FRFC_ASSERT(head.head,
                        "inactive VC with a non-head flit at its head");
            if (!ivc.routed) {
                ivc.outPort = routing_.route(node_, head.dest);
                ivc.routed = true;
            }
            // Collect free VCs on the routed output port.
            std::vector<VcId>& free_vcs = free_vc_scratch_;
            free_vcs.clear();
            for (VcId ovc_id = 0; ovc_id < params_.numVcs; ++ovc_id) {
                if (!outVc(ivc.outPort, ovc_id).busy)
                    free_vcs.push_back(ovc_id);
            }
            if (free_vcs.empty()) {
                // Head packet blocked: every VC on its output is held
                // by some other in-flight packet.
                vc_alloc_failures_.inc();
                continue;
            }
            const VcId pick = free_vcs[rng_.nextBounded(free_vcs.size())];
            requests.push_back(VcaRequest{port, vc, ivc.outPort, pick});
        }
    }

    // Group by contested output VC and grant randomly.
    // (Small vectors; an n^2 scan is clearer than sorting.)
    std::vector<std::uint8_t>& granted = vca_granted_;
    granted.assign(requests.size(), 0);
    for (std::size_t i = 0; i < requests.size(); ++i) {
        if (granted[i])
            continue;
        std::vector<std::size_t>& group = vca_group_;
        group.clear();
        for (std::size_t j = i; j < requests.size(); ++j) {
            if (!granted[j] && requests[j].outPort == requests[i].outPort
                && requests[j].outVc == requests[i].outVc) {
                group.push_back(j);
            }
        }
        const std::size_t win = group[rng_.nextBounded(group.size())];
        for (std::size_t j : group)
            granted[j] = 1;  // losers simply retry next cycle
        const VcaRequest& req = requests[win];
        InputVc& ivc = inVc(req.inPort, req.inVc);
        ivc.active = true;
        ivc.activeSince = now;
        ivc.outVc = req.outVc;
        outVc(req.outPort, req.outVc).busy = true;
    }
}

void
VcRouter::allocateSwitch(Cycle now)
{
    // Collect ready (input VC -> output port) requests, then perform a
    // single-pass random matching honoring one-per-input-port and
    // one-per-output-port crossbar constraints.
    std::vector<SwRequest>& requests = sw_requests_;
    requests.clear();
    for (PortId port = 0; port < kNumPorts; ++port) {
        if (buffered_[static_cast<std::size_t>(port)] == 0)
            continue;  // every VC queue on this input is empty
        for (VcId vc = 0; vc < params_.numVcs; ++vc) {
            InputVc& ivc = inVc(port, vc);
            if (!ivc.active || ivc.queue.empty())
                continue;
            // A head flit spends the routing/VC-allocation cycle in the
            // router before it may compete for the switch — this is the
            // per-hop routing and arbitration latency that
            // flit-reservation flow control hides.
            const Flit& front = ivc.queue.front();
            if (front.head && ivc.activeSince == now)
                continue;
            // Store-and-forward: the entire packet must have been
            // received before any of it leaves this node.
            if (params_.forwarding == Forwarding::kStoreAndForward
                && front.head
                && static_cast<int>(ivc.queue.size())
                    < front.packetLength) {
                continue;
            }
            if (ivc.outPort != kLocal) {
                // Cut-through and store-and-forward allocate downstream
                // storage in packet-sized units: a head advances only
                // when the whole packet fits at the next hop.
                const int needed =
                    params_.forwarding != Forwarding::kFlit && front.head
                        ? front.packetLength
                        : 1;
                const bool has_credit = params_.sharedPool
                    ? pool_credits_[static_cast<std::size_t>(ivc.outPort)]
                        >= needed
                    : outVc(ivc.outPort, ivc.outVc).credits >= needed;
                if (!has_credit) {
                    // A granted VC is stalled on downstream buffers —
                    // the buffer-turnaround cost FR flow control hides.
                    credit_stalls_.inc();
                    continue;
                }
            }
            requests.push_back(SwRequest{port, vc});
        }
    }

    // Random permutation = random matching priority.
    for (std::size_t i = requests.size(); i > 1; --i) {
        const std::size_t j = rng_.nextBounded(i);
        std::swap(requests[i - 1], requests[j]);
    }

    std::array<bool, kNumPorts> in_used{};
    std::array<bool, kNumPorts> out_used{};
    for (const SwRequest& req : requests) {
        InputVc& ivc = inVc(req.inPort, req.inVc);
        if (in_used[static_cast<std::size_t>(req.inPort)]
            || out_used[static_cast<std::size_t>(ivc.outPort)]) {
            continue;
        }
        in_used[static_cast<std::size_t>(req.inPort)] = true;
        out_used[static_cast<std::size_t>(ivc.outPort)] = true;

        Flit flit = ivc.queue.front();
        ivc.queue.pop_front();
        --buffered_[static_cast<std::size_t>(req.inPort)];
        noteOccupancy(now, req.inPort);
        flit.vc = ivc.outVc;

        Channel<Flit>* out =
            data_out_[static_cast<std::size_t>(ivc.outPort)];
        FRFC_ASSERT(out != nullptr, "routed to unwired port ",
                    directionName(ivc.outPort), " at node ", node_);
        out->push(now, flit);
        flits_out_[static_cast<std::size_t>(ivc.outPort)].inc();

        if (ivc.outPort != kLocal) {
            if (params_.sharedPool)
                --pool_credits_[static_cast<std::size_t>(ivc.outPort)];
            else
                --outVc(ivc.outPort, ivc.outVc).credits;
        }

        // Return a credit upstream for the freed input slot.
        Channel<Credit>* cr =
            credit_out_[static_cast<std::size_t>(req.inPort)];
        FRFC_ASSERT(cr != nullptr, "no credit channel on input port ",
                    req.inPort, " at node ", node_);
        cr->push(now, Credit{req.inVc});

        if (flit.tail) {
            outVc(ivc.outPort, ivc.outVc).busy = false;
            ivc.active = false;
            ivc.routed = false;
            ivc.outPort = kInvalidPort;
            ivc.outVc = kInvalidVc;
        }
    }
}

void
VcRouter::acceptArrivals(Cycle now)
{
    // Arrivals are enqueued after allocation so a flit first competes
    // the cycle after it arrives (1-cycle router latency).
    for (const auto& wired : data_in_) {
        const PortId port = wired.port;
        wired.channel->drainInto(now, flit_scratch_);
        for (Flit& flit : flit_scratch_) {
            FRFC_ASSERT(flit.vc >= 0 && flit.vc < params_.numVcs,
                        "arriving flit with bad vc: ", flit.toString());
            // Link fault: poison rather than delete (see
            // setFaultInjector) — the worm stays intact and every
            // buffer/credit transaction proceeds normally.
            if (fault_ != nullptr && port != kLocal && !flit.poisoned
                && fault_->faultData(now, port)) {
                flit.poisoned = true;
                data_poisoned_.inc();
            }
            InputVc& ivc = inVc(port, flit.vc);
            ivc.queue.push_back(flit);
            ++buffered_[static_cast<std::size_t>(port)];
            noteOccupancy(now, port);
            if (params_.sharedPool) {
                FRFC_ASSERT(bufferedFlits(port)
                                <= params_.numVcs * params_.vcDepth,
                            "shared pool overflow at node ", node_,
                            " port ", port);
            } else {
                FRFC_ASSERT(static_cast<int>(ivc.queue.size())
                                <= params_.vcDepth,
                            "VC queue overflow at node ", node_, " port ",
                            port, " vc ", flit.vc);
            }
        }
    }
}

}  // namespace frfc
