/**
 * @file
 * Virtual-channel flow control router [Dally92] — the paper's baseline.
 *
 * A single-cycle input-queued router: a flit that arrives during cycle t
 * can be routed, win virtual-channel and switch allocation, and depart
 * during cycle t+1 (the paper's "routing and scheduling latency is 1
 * cycle"). Arbitration is random, matching the simulated network of the
 * paper. Credits are returned per flit on dedicated credit wires.
 *
 * Wormhole flow control is the special case num_vcs = 1.
 *
 * The shared_pool option models the dynamically-allocated multi-queue
 * buffer of [TamFra92]: the input VC queues share one pool of vc_depth *
 * num_vcs slots and credits count pool slots rather than per-VC slots.
 * Section 5 of the paper reports this yields no throughput gain — the
 * ablation_vc_sharedpool bench reproduces that claim.
 */

#ifndef FRFC_VC_VC_ROUTER_HPP
#define FRFC_VC_VC_ROUTER_HPP

#include <array>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/ring_queue.hpp"
#include "common/rng.hpp"
#include "common/types.hpp"
#include "proto/flit.hpp"
#include "sim/channel.hpp"
#include "sim/clocked.hpp"
#include "sim/wired.hpp"
#include "stats/metrics.hpp"
#include "topology/topology.hpp"

namespace frfc {

class FaultInjector;
class RoutingFunction;

/**
 * Forwarding discipline (the Section 2 lineage of the paper):
 *  - kFlit: wormhole/virtual-channel — storage and bandwidth allocated
 *    per flit; a head may advance as soon as one buffer is free.
 *  - kCutThrough: virtual cut-through [KerKle79] — transmission starts
 *    immediately, but a head advances only when the next hop can hold
 *    the entire packet.
 *  - kStoreAndForward: each node receives the whole packet before any
 *    of it is forwarded, and the next hop must fit it all.
 */
enum class Forwarding {
    kFlit,
    kCutThrough,
    kStoreAndForward,
};

/** Compile-time parameters of a VcRouter. */
struct VcRouterParams
{
    int numVcs = 2;          ///< virtual channels per port
    int vcDepth = 4;         ///< flit buffers per virtual channel
    bool sharedPool = false; ///< [TamFra92] shared input buffer pool
    Forwarding forwarding = Forwarding::kFlit;
};

/** Credit-based virtual-channel router. */
class VcRouter : public Clocked
{
  public:
    /**
     * @param name     instance name
     * @param node     node this router serves
     * @param routing  routing function (borrowed)
     * @param params   buffer organization
     * @param rng      private random stream (arbitration)
     * @param metrics  registry to publish instruments into under
     *        `router.<node>.*`; null = instruments stay unpublished
     *        (tests); accessors still work either way
     */
    VcRouter(std::string name, NodeId node, const RoutingFunction& routing,
             const VcRouterParams& params, Rng rng,
             MetricRegistry* metrics = nullptr);

    /** @{ Wiring; unwired (mesh edge) ports stay null. */
    void connectDataIn(PortId port, Channel<Flit>* ch);
    void connectDataOut(PortId port, Channel<Flit>* ch);
    void connectCreditIn(PortId port, Channel<Credit>* ch);
    void connectCreditOut(PortId port, Channel<Credit>* ch);
    /** @} */

    /**
     * Arm link-fault injection on this router's non-local inputs
     * (borrowed; its RNG stream is salted per node, see FaultInjector).
     * A faulted arrival is poisoned, not deleted: it keeps flowing so
     * every buffer and credit stays exactly accounted — wormhole worms
     * must not tear — and the ejection sink discards it undelivered.
     */
    void setFaultInjector(FaultInjector* fault) { fault_ = fault; }

    /** Arrivals poisoned at this router's inputs. */
    std::int64_t dataPoisoned() const { return data_poisoned_.value(); }

    void tick(Cycle now) override;

    /**
     * Quiescence: any buffered flit keeps the router clocked every
     * cycle (allocation retries draw from rng_). With empty input
     * queues every future action begins with a channel arrival (flit
     * or credit); the input channels are bound with lazy wakes, so the
     * router tracks their earliest undelivered arrival itself.
     */
    Cycle
    nextWake(Cycle now) const override
    {
        if (totalBufferedFlits() > 0)
            return now + 1;
        Cycle next = kInvalidCycle;
        const auto consider = [&next](Cycle arrival) {
            if (arrival != kInvalidCycle
                && (next == kInvalidCycle || arrival < next))
                next = arrival;
        };
        for (const auto& wired : data_in_)
            consider(wired.channel->nextArrivalAfter(now));
        for (const auto& wired : credit_in_)
            consider(wired.channel->nextArrivalAfter(now));
        return next;
    }

    /** Total data flits currently buffered at one input port (O(1):
     *  maintained incrementally by arrivals and departures). */
    int
    bufferedFlits(PortId port) const
    {
        return buffered_[static_cast<std::size_t>(port)];
    }

    /** Total data flits buffered across all inputs. */
    int totalBufferedFlits() const;

    /** Input buffer capacity per port. */
    int bufferCapacity() const { return params_.numVcs * params_.vcDepth; }

    /** Flits sent through output @p port since construction. */
    std::int64_t flitsForwarded(PortId port) const
    {
        return flits_out_[static_cast<std::size_t>(port)].value();
    }

    /** @{ Contention statistics (also in the metric registry). */
    std::int64_t vcAllocFailures() const
    {
        return vc_alloc_failures_.value();
    }
    std::int64_t creditStalls() const
    {
        return credit_stalls_.value();
    }
    /** @} */

    const VcRouterParams& params() const { return params_; }
    NodeId node() const { return node_; }

    /** @{ Sanitizer inspection (see VcNetwork::validateState). */
    int
    outVcCredits(PortId port, VcId vc) const
    {
        return output_vcs_[static_cast<std::size_t>(port)
                               * params_.numVcs
                           + static_cast<std::size_t>(vc)]
            .credits;
    }
    int
    inVcQueueLen(PortId port, VcId vc) const
    {
        return static_cast<int>(
            input_vcs_[static_cast<std::size_t>(port) * params_.numVcs
                       + static_cast<std::size_t>(vc)]
                .queue.size());
    }
    int
    poolCredits(PortId port) const
    {
        return pool_credits_[static_cast<std::size_t>(port)];
    }
    /** @} */

    /**
     * Externally visible effects only — buffered flits, forwarded
     * counts, contention counters, credit state. Allocation scratch and
     * head-packet routing marks are excluded: they only change in ticks
     * with buffered flits, which are never scheduled idle.
     */
    std::uint64_t
    activityFingerprint() const override
    {
        std::uint64_t h = 0;
        h = fingerprintMix(
            h, static_cast<std::uint64_t>(vc_alloc_failures_.value()));
        h = fingerprintMix(
            h, static_cast<std::uint64_t>(credit_stalls_.value()));
        h = fingerprintMix(
            h, static_cast<std::uint64_t>(data_poisoned_.value()));
        for (PortId port = 0; port < kNumPorts; ++port) {
            const auto p = static_cast<std::size_t>(port);
            h = fingerprintMix(
                h, static_cast<std::uint64_t>(buffered_[p]));
            h = fingerprintMix(
                h, static_cast<std::uint64_t>(flits_out_[p].value()));
            h = fingerprintMix(
                h, static_cast<std::uint64_t>(pool_credits_[p]));
        }
        for (const OutputVc& ovc : output_vcs_)
            h = fingerprintMix(h,
                               static_cast<std::uint64_t>(ovc.credits));
        return h;
    }

  private:
    /** Per-input-VC FIFO and packet state. */
    struct InputVc
    {
        RingQueue<Flit> queue;
        bool routed = false;   ///< route computed for head packet
        bool active = false;   ///< output VC granted
        Cycle activeSince = kInvalidCycle;  ///< cycle the grant landed
        PortId outPort = kInvalidPort;
        VcId outVc = kInvalidVc;
    };

    /** Per-output-VC allocation and credit state. */
    struct OutputVc
    {
        bool busy = false;  ///< held by some in-flight packet
        int credits = 0;    ///< free downstream slots (per-VC mode)
    };

    /** VC allocation candidate (input VC -> output VC). */
    struct VcaRequest
    {
        PortId inPort;
        VcId inVc;
        PortId outPort;
        VcId outVc;
    };

    /** Switch allocation candidate (a ready input VC head). */
    struct SwRequest
    {
        PortId inPort;
        VcId inVc;
    };

    void drainCredits(Cycle now);
    void allocateVcs(Cycle now);
    void allocateSwitch(Cycle now);
    void acceptArrivals(Cycle now);

    InputVc& inVc(PortId port, VcId vc);
    OutputVc& outVc(PortId port, VcId vc);

    NodeId node_;
    const RoutingFunction& routing_;
    VcRouterParams params_;
    Rng rng_;
    FaultInjector* fault_ = nullptr;

    /** Inputs as dense wired lists (port-ascending — drain order is
     *  semantic); outputs stay port-indexed for O(1) routed pushes. */
    WiredPorts<Channel<Flit>> data_in_;
    std::vector<Channel<Flit>*> data_out_;
    WiredPorts<Channel<Credit>> credit_in_;
    std::vector<Channel<Credit>*> credit_out_;

    /** Scratch buffers for channel drains (see Channel::drainInto). */
    std::vector<Flit> flit_scratch_;
    std::vector<Credit> credit_scratch_;

    /** Scratch state for the per-tick allocation phases — reused so the
     *  hot path never touches the allocator. */
    std::vector<VcaRequest> vca_requests_;
    std::vector<VcId> free_vc_scratch_;
    std::vector<std::uint8_t> vca_granted_;
    std::vector<std::size_t> vca_group_;
    std::vector<SwRequest> sw_requests_;

    /** Track an input-buffer occupancy change (per-flit hot path). */
    void
    noteOccupancy(Cycle now, PortId port)
    {
        const auto p = static_cast<std::size_t>(port);
        in_occ_[p].update(now, static_cast<double>(buffered_[p]));
    }

    std::vector<InputVc> input_vcs_;    ///< [port * numVcs + vc]
    std::vector<OutputVc> output_vcs_;  ///< [port * numVcs + vc]
    std::vector<int> pool_credits_;     ///< per output port (sharedPool)
    std::vector<int> buffered_;         ///< flits queued per input port

    /** Instruments live here (cache-resident with the router state) and
     *  are attach*()ed to the registry, which only reads them at
     *  snapshot time. See stats/metrics.hpp. */
    Counter vc_alloc_failures_;
    Counter credit_stalls_;
    Counter data_poisoned_;
    std::array<Counter, kNumPorts> flits_out_{};  ///< per output port
    std::array<TimeAverage, kNumPorts> in_occ_{};
};

}  // namespace frfc

#endif  // FRFC_VC_VC_ROUTER_HPP
