/**
 * @file
 * Virtual-channel flow control router [Dally92] — the paper's baseline.
 *
 * A single-cycle input-queued router: a flit that arrives during cycle t
 * can be routed, win virtual-channel and switch allocation, and depart
 * during cycle t+1 (the paper's "routing and scheduling latency is 1
 * cycle"). Arbitration is random, matching the simulated network of the
 * paper. Credits are returned per flit on dedicated credit wires.
 *
 * Wormhole flow control is the special case num_vcs = 1.
 *
 * The shared_pool option models the dynamically-allocated multi-queue
 * buffer of [TamFra92]: the input VC queues share one pool of vc_depth *
 * num_vcs slots and credits count pool slots rather than per-VC slots.
 * Section 5 of the paper reports this yields no throughput gain — the
 * ablation_vc_sharedpool bench reproduces that claim.
 */

#ifndef FRFC_VC_VC_ROUTER_HPP
#define FRFC_VC_VC_ROUTER_HPP

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "common/types.hpp"
#include "proto/flit.hpp"
#include "sim/channel.hpp"
#include "sim/clocked.hpp"

namespace frfc {

class RoutingFunction;

/**
 * Forwarding discipline (the Section 2 lineage of the paper):
 *  - kFlit: wormhole/virtual-channel — storage and bandwidth allocated
 *    per flit; a head may advance as soon as one buffer is free.
 *  - kCutThrough: virtual cut-through [KerKle79] — transmission starts
 *    immediately, but a head advances only when the next hop can hold
 *    the entire packet.
 *  - kStoreAndForward: each node receives the whole packet before any
 *    of it is forwarded, and the next hop must fit it all.
 */
enum class Forwarding {
    kFlit,
    kCutThrough,
    kStoreAndForward,
};

/** Compile-time parameters of a VcRouter. */
struct VcRouterParams
{
    int numVcs = 2;          ///< virtual channels per port
    int vcDepth = 4;         ///< flit buffers per virtual channel
    bool sharedPool = false; ///< [TamFra92] shared input buffer pool
    Forwarding forwarding = Forwarding::kFlit;
};

/** Credit-based virtual-channel router. */
class VcRouter : public Clocked
{
  public:
    /**
     * @param name     instance name
     * @param node     node this router serves
     * @param routing  routing function (borrowed)
     * @param params   buffer organization
     * @param rng      private random stream (arbitration)
     */
    VcRouter(std::string name, NodeId node, const RoutingFunction& routing,
             const VcRouterParams& params, Rng rng);

    /** @{ Wiring; unwired (mesh edge) ports stay null. */
    void connectDataIn(PortId port, Channel<Flit>* ch);
    void connectDataOut(PortId port, Channel<Flit>* ch);
    void connectCreditIn(PortId port, Channel<Credit>* ch);
    void connectCreditOut(PortId port, Channel<Credit>* ch);
    /** @} */

    void tick(Cycle now) override;

    /** Total data flits currently buffered at one input port. */
    int bufferedFlits(PortId port) const;

    /** Total data flits buffered across all inputs. */
    int totalBufferedFlits() const;

    /** Input buffer capacity per port. */
    int bufferCapacity() const { return params_.numVcs * params_.vcDepth; }

    /** Flits sent through output @p port since construction. */
    std::int64_t flitsForwarded(PortId port) const
    {
        return flits_out_[static_cast<std::size_t>(port)];
    }

    const VcRouterParams& params() const { return params_; }
    NodeId node() const { return node_; }

  private:
    /** Per-input-VC FIFO and packet state. */
    struct InputVc
    {
        std::deque<Flit> queue;
        bool routed = false;   ///< route computed for head packet
        bool active = false;   ///< output VC granted
        Cycle activeSince = kInvalidCycle;  ///< cycle the grant landed
        PortId outPort = kInvalidPort;
        VcId outVc = kInvalidVc;
    };

    /** Per-output-VC allocation and credit state. */
    struct OutputVc
    {
        bool busy = false;  ///< held by some in-flight packet
        int credits = 0;    ///< free downstream slots (per-VC mode)
    };

    void drainCredits(Cycle now);
    void allocateVcs(Cycle now);
    void allocateSwitch(Cycle now);
    void acceptArrivals(Cycle now);

    InputVc& inVc(PortId port, VcId vc);
    OutputVc& outVc(PortId port, VcId vc);

    NodeId node_;
    const RoutingFunction& routing_;
    VcRouterParams params_;
    Rng rng_;

    std::vector<Channel<Flit>*> data_in_;
    std::vector<Channel<Flit>*> data_out_;
    std::vector<Channel<Credit>*> credit_in_;
    std::vector<Channel<Credit>*> credit_out_;

    std::vector<InputVc> input_vcs_;    ///< [port * numVcs + vc]
    std::vector<OutputVc> output_vcs_;  ///< [port * numVcs + vc]
    std::vector<int> pool_credits_;     ///< per output port (sharedPool)
    std::vector<std::int64_t> flits_out_;  ///< per output port
};

}  // namespace frfc

#endif  // FRFC_VC_VC_ROUTER_HPP
