/**
 * @file
 * Packet source endpoint for VC flow control.
 *
 * VcSource serves one PacketGenerator, queues its packets (source
 * queueing time counts toward latency, as in the paper), and streams
 * flits into the router's local input port under credit flow control,
 * one flit per cycle. Open-loop generators are pre-scanned so the
 * event kernel can sleep between births; closed-loop generators are
 * ticked live and fed packet completions from the node's ejection
 * sink, which may mint reply packets ahead of the same-cycle birth.
 */

#ifndef FRFC_VC_VC_SOURCE_HPP
#define FRFC_VC_VC_SOURCE_HPP

#include <vector>

#include "common/ring_queue.hpp"
#include "common/rng.hpp"
#include "common/types.hpp"
#include "proto/flit.hpp"
#include "proto/recovery.hpp"
#include "traffic/generator.hpp"
#include "sim/channel.hpp"
#include "sim/clocked.hpp"
#include "stats/metrics.hpp"

namespace frfc {

class PacketGenerator;
class PacketLedger;
class Validator;

/** Per-node packet source for virtual-channel networks. */
class VcSource : public Clocked
{
  public:
    /**
     * @param name      instance name
     * @param node      source node id
     * @param generator packet birth process (borrowed, node-private)
     * @param registry  packet bookkeeping (borrowed)
     * @param num_vcs   VCs on the injection port
     * @param vc_depth  credits per injection VC
     * @param shared_pool single credit pool instead of per-VC credits
     * @param rng       private random stream
     * @param metrics   registry to publish `source.<node>.*` counters
     *        into; null = keep private counters only
     */
    VcSource(std::string name, NodeId node, PacketGenerator* generator,
             PacketLedger* registry, int num_vcs, int vc_depth,
             bool shared_pool, Rng rng, MetricRegistry* metrics = nullptr);

    /** Wire the flit channel into the router's local input. */
    void connectDataOut(Channel<Flit>* ch) { data_out_ = ch; }

    /** Wire the credit return channel from the router. */
    void connectCreditIn(Channel<Credit>* ch) { credit_in_ = ch; }

    /** Per-node completion feedback (closed-loop workloads only). */
    void connectCompletionIn(Channel<PacketCompletion>* ch)
    {
        completion_in_ = ch;
    }

    /** Attach the run's validator (reply-causality accounting). */
    void setValidator(Validator* validator) { validator_ = validator; }

    /**
     * End-to-end recovery (fault.recovery=1): see FrSource — identical
     * retransmission buffer, ack deadlines armed when the tail flit
     * injects (VC streams flits in order, so the tail really is last).
     */
    void
    enableRecovery(Cycle ack_timeout, int backoff_cap, int max_attempts)
    {
        recovery_ = true;
        rtx_.configure(ack_timeout, backoff_cap, max_attempts);
    }

    /** One per destination, ascending: acks from that node's sink. */
    void connectAckIn(Channel<PacketCompletion>* ch)
    {
        ack_in_.push_back(ch);
    }

    /** Retransmission state (recovery sweeps and tests). */
    const RetransmitBuffer& retransmits() const { return rtx_; }

    void tick(Cycle now) override;

    /**
     * Quiescence: awake every cycle while packets wait to be injected.
     * Otherwise the generator has been pre-scanned (one draw per cycle,
     * stopping at the first birth), so the source sleeps until the
     * birth cycle or until the scan window needs refilling. Closed-loop
     * sources instead stay awake every cycle while generating. Credits
     * and completions arriving mid-sleep re-wake the source through the
     * channel hook.
     */
    Cycle nextWake(Cycle now) const override;

    /** Packets generated but not yet fully injected. */
    int queueLength() const;

    /** Stop/start generating new packets (used by the drain phase). */
    void setGenerating(bool on) { generating_ = on; }

    /** @{ Injection statistics (also in the metric registry). */
    std::int64_t packetsGenerated() const
    {
        return packets_generated_.value();
    }
    std::int64_t flitsInjected() const { return flits_injected_.value(); }
    /** @} */

    /** @{ Sanitizer inspection (see VcNetwork::validateState). */
    int
    injectionCredits(VcId vc) const
    {
        return credits_[static_cast<std::size_t>(vc)];
    }
    int injectionPoolCredits() const { return pool_credits_; }
    /** @} */

    /**
     * Externally visible effects only: injection counters, queue and
     * streaming state, credits. Generator lookahead (next_gen_cycle_,
     * birth_*) is excluded — it legally advances during conforming
     * no-op ticks (see Clocked::activityFingerprint).
     */
    std::uint64_t
    activityFingerprint() const override
    {
        std::uint64_t h = 0;
        h = fingerprintMix(
            h, static_cast<std::uint64_t>(packets_generated_.value()));
        h = fingerprintMix(
            h, static_cast<std::uint64_t>(flits_injected_.value()));
        h = fingerprintMix(h,
                           static_cast<std::uint64_t>(queue_.size()));
        h = fingerprintMix(h, sending_ ? 1 : 0);
        h = fingerprintMix(h, static_cast<std::uint64_t>(next_seq_));
        h = fingerprintMix(h,
                           static_cast<std::uint64_t>(pool_credits_));
        for (const int credits : credits_)
            h = fingerprintMix(h, static_cast<std::uint64_t>(credits));
        if (recovery_)
            h = fingerprintMix(h, rtx_.fingerprint());
        return h;
    }

  private:
    struct PendingPacket
    {
        PacketId id;
        NodeId dest;
        int length;
        Cycle created;
        MessageClass cls;
    };

    void generate(Cycle now);
    void scanBirths(Cycle limit);
    void admitPacket(NodeId dest, int length, MessageClass cls,
                     Cycle now);
    void processCompletions(Cycle now);
    void drainRecovery(Cycle now);
    void inject(Cycle now);

    /** Cycles of generator lookahead scanned per idle wake. */
    static constexpr Cycle kGenLookahead = 256;

    NodeId node_;
    PacketGenerator* generator_;
    PacketLedger* registry_;
    int num_vcs_;
    int vc_depth_;
    bool shared_pool_;
    Rng rng_;
    bool generating_ = true;
    /** Generator consumes ejection feedback: tick it live every cycle
     *  (never pre-scan — feedback would invalidate scanned draws). */
    bool closed_loop_ = false;

    Channel<Flit>* data_out_ = nullptr;
    Channel<Credit>* credit_in_ = nullptr;
    Channel<PacketCompletion>* completion_in_ = nullptr;
    Validator* validator_ = nullptr;

    /** @{ End-to-end recovery (enableRecovery); see FrSource. */
    bool recovery_ = false;
    RetransmitBuffer rtx_;
    std::vector<Channel<PacketCompletion>*> ack_in_;
    std::vector<PacketCompletion> ack_scratch_;
    std::vector<RetransmitRecord> expired_scratch_;
    /** @} */

    RingQueue<PendingPacket> queue_;
    std::vector<Credit> credit_scratch_;
    std::vector<PacketCompletion> completion_scratch_;
    std::vector<int> credits_;  ///< per VC, or [0] = pool when shared

    /** Generator lookahead; see FrSource for the draw-order argument. */
    Cycle next_gen_cycle_ = 0;   ///< first cycle not yet drawn
    bool birth_pending_ = false;
    Cycle birth_cycle_ = 0;
    NodeId birth_dest_ = 0;
    int birth_length_ = 0;
    MessageClass birth_cls_ = MessageClass::kRequest;
    int pool_credits_ = 0;
    bool sending_ = false;      ///< head packet partially injected
    VcId current_vc_ = kInvalidVc;
    int next_seq_ = 0;

    /** Instruments live here; the registry observes them when given. */
    Counter packets_generated_;
    Counter flits_injected_;
};

}  // namespace frfc

#endif  // FRFC_VC_VC_SOURCE_HPP
