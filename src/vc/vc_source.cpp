#include "vc/vc_source.hpp"

#include <algorithm>

#include "check/validator.hpp"
#include "common/log.hpp"
#include "proto/packet_registry.hpp"
#include "traffic/generator.hpp"

namespace frfc {

VcSource::VcSource(std::string name, NodeId node,
                   PacketGenerator* generator, PacketLedger* registry,
                   int num_vcs, int vc_depth, bool shared_pool, Rng rng,
                   MetricRegistry* metrics)
    : Clocked(std::move(name)), node_(node), generator_(generator),
      registry_(registry), num_vcs_(num_vcs), vc_depth_(vc_depth),
      shared_pool_(shared_pool), rng_(rng),
      credits_(static_cast<std::size_t>(num_vcs), vc_depth),
      pool_credits_(num_vcs * vc_depth)
{
    FRFC_ASSERT(generator != nullptr && num_vcs > 0 && vc_depth > 0,
                "bad source parameters");
    closed_loop_ = generator->closedLoop();
    if (metrics != nullptr) {
        const std::string prefix = "source." + std::to_string(node);
        metrics->attachCounter(prefix + ".packets_generated",
                               packets_generated_);
        metrics->attachCounter(prefix + ".flits_injected",
                               flits_injected_);
    }
}

int
VcSource::queueLength() const
{
    return static_cast<int>(queue_.size());
}

void
VcSource::tick(Cycle now)
{
    // Credits freed by the router become usable this cycle.
    if (credit_in_ != nullptr) {
        credit_in_->drainInto(now, credit_scratch_);
        for (const Credit& credit : credit_scratch_) {
            if (shared_pool_) {
                ++pool_credits_;
                FRFC_ASSERT(pool_credits_ <= num_vcs_ * vc_depth_,
                            "source pool credit overflow");
            } else {
                ++credits_[static_cast<std::size_t>(credit.vc)];
                FRFC_ASSERT(credits_[static_cast<std::size_t>(credit.vc)]
                                <= vc_depth_,
                            "source credit overflow");
            }
        }
    }
    drainRecovery(now);
    processCompletions(now);
    generate(now);
    inject(now);
    // Idle from here on (empty queue means no VC-pick draws until the
    // next birth): pre-scan the generator so nextWake can name the
    // birth cycle and the source can sleep until it. Closed-loop
    // generators are never scanned ahead — a completion arriving
    // mid-window would invalidate the scanned draws.
    if (!closed_loop_ && generating_ && !birth_pending_ && queue_.empty())
        scanBirths(now + kGenLookahead);
}

Cycle
VcSource::nextWake(Cycle now) const
{
    Cycle wake = kInvalidCycle;
    if (!queue_.empty()) {
        wake = now + 1;
    } else if (closed_loop_) {
        // Tick every cycle while generating: the generator must see
        // each cycle once, in order, for its draw stream (and any
        // feedback-driven state) to be kernel-independent.
        wake = generating_ ? now + 1 : kInvalidCycle;
    } else if (generating_) {
        wake = birth_pending_ ? birth_cycle_ : next_gen_cycle_;
    }
    if (recovery_ && wake != now + 1) {
        // Lazily bound ack channels and armed retransmit deadlines are
        // wake sources of their own (see FrSource::nextWake).
        const auto fold = [&wake, now](Cycle at) {
            if (at == kInvalidCycle)
                return;
            at = std::max(at, now + 1);
            if (wake == kInvalidCycle || at < wake)
                wake = at;
        };
        fold(rtx_.nextDeadline());
        for (const Channel<PacketCompletion>* ch : ack_in_)
            fold(ch->nextArrivalAfter(now));
    }
    return wake;
}

void
VcSource::scanBirths(Cycle limit)
{
    while (!birth_pending_ && next_gen_cycle_ <= limit) {
        const WorkloadContext ctx{next_gen_cycle_, node_, &rng_};
        const auto pkt = generator_->generate(ctx);
        if (pkt) {
            birth_pending_ = true;
            birth_cycle_ = next_gen_cycle_;
            birth_dest_ = pkt->dest;
            birth_length_ = pkt->length;
            birth_cls_ = pkt->cls;
        }
        ++next_gen_cycle_;
    }
}

void
VcSource::admitPacket(NodeId dest, int length, MessageClass cls,
                      Cycle now)
{
    const PacketId id = registry_->create(node_, dest, length, now, cls);
    queue_.push_back(PendingPacket{id, dest, length, now, cls});
    if (recovery_)
        rtx_.add(id, dest, length, now, cls);
    packets_generated_.inc();
}

void
VcSource::drainRecovery(Cycle now)
{
    if (!recovery_)
        return;
    for (Channel<PacketCompletion>* ch : ack_in_) {
        ch->drainInto(now, ack_scratch_);
        for (const PacketCompletion& done : ack_scratch_)
            rtx_.ack(done.packet);
    }
    // Expired deadlines requeue under the original packet id and
    // creation cycle — the registry record stays open, so latency
    // spans every attempt.
    expired_scratch_.clear();
    rtx_.takeExpired(now, expired_scratch_);
    for (const RetransmitRecord& rec : expired_scratch_) {
        queue_.push_back(PendingPacket{rec.id, rec.dest, rec.length,
                                       rec.created, rec.cls});
        if (validator_ != nullptr
            && rec.attempts > rtx_.maxAttemptsAllowed()) {
            validator_->fail(
                "recovery.stuck", now, name(), kInvalidPort,
                "packet " + std::to_string(rec.id) + " on attempt "
                    + std::to_string(rec.attempts) + " (max "
                    + std::to_string(rtx_.maxAttemptsAllowed()) + ")");
        }
    }
}

void
VcSource::processCompletions(Cycle now)
{
    if (completion_in_ == nullptr)
        return;
    completion_in_->drainInto(now, completion_scratch_);
    for (const PacketCompletion& done : completion_scratch_) {
        const WorkloadContext ctx{now, node_, &rng_};
        const auto reply = generator_->onPacketEjected(done, ctx);
        if (!reply)
            continue;
        // Feedback-minted replies bypass setGenerating: the exchange a
        // request opened must close even while the run drains.
        if (validator_ != nullptr && reply->cls == MessageClass::kReply)
            validator_->onReplyCreated(node_, now, name());
        admitPacket(reply->dest, reply->length, reply->cls, now);
    }
}

void
VcSource::generate(Cycle now)
{
    if (!generating_)
        return;
    if (closed_loop_) {
        // Live path: one generator call per cycle, no lookahead.
        const WorkloadContext ctx{now, node_, &rng_};
        if (const auto pkt = generator_->generate(ctx))
            admitPacket(pkt->dest, pkt->length, pkt->cls, now);
        return;
    }
    scanBirths(now);
    if (!birth_pending_ || birth_cycle_ > now)
        return;
    FRFC_ASSERT(birth_cycle_ == now, "source ", name(),
                " slept through a packet birth at cycle ", birth_cycle_);
    admitPacket(birth_dest_, birth_length_, birth_cls_, now);
    birth_pending_ = false;
}

void
VcSource::inject(Cycle now)
{
    // A queued packet acked while waiting (an earlier attempt's flits
    // completed delivery) has nothing left to send. Never mid-packet:
    // a started worm must finish or downstream VCs wedge.
    while (!sending_ && recovery_ && !queue_.empty()
           && rtx_.ackedOrUntracked(queue_.front().id)) {
        rtx_.dropQueued(queue_.front().id);
        queue_.pop_front();
    }
    if (queue_.empty())
        return;

    if (!sending_) {
        // Assign the head packet to the injection VC with the most
        // credits (ties broken randomly) so packets do not serialize
        // behind one busy VC. Retransmissions pick the lowest such VC
        // with no draw: a timeout requeue fires while the source is
        // otherwise idle and the generator pre-scan may have run
        // ahead, so a draw here would split the shared rng_ stream at
        // kernel-dependent positions.
        const bool retransmission =
            recovery_ && rtx_.attemptsOf(queue_.front().id) > 0;
        int best = -1;
        std::vector<VcId> best_vcs;
        for (VcId vc = 0; vc < num_vcs_; ++vc) {
            const int c = shared_pool_
                ? pool_credits_
                : credits_[static_cast<std::size_t>(vc)];
            if (c > best) {
                best = c;
                best_vcs.assign(1, vc);
            } else if (c == best) {
                best_vcs.push_back(vc);
            }
        }
        if (best <= 0)
            return;  // no room anywhere this cycle
        current_vc_ = retransmission
            ? best_vcs.front()
            : best_vcs[rng_.nextBounded(best_vcs.size())];
        sending_ = true;
        next_seq_ = 0;
    }

    const int available = shared_pool_
        ? pool_credits_
        : credits_[static_cast<std::size_t>(current_vc_)];
    if (available <= 0)
        return;

    const PendingPacket& pkt = queue_.front();
    Flit flit;
    flit.packet = pkt.id;
    flit.seq = next_seq_;
    flit.packetLength = pkt.length;
    flit.head = next_seq_ == 0;
    flit.tail = next_seq_ == pkt.length - 1;
    flit.src = node_;
    flit.dest = pkt.dest;
    flit.vc = current_vc_;
    flit.created = pkt.created;
    flit.injected = now;
    flit.payload = Flit::expectedPayload(pkt.id, next_seq_);
    flit.cls = pkt.cls;

    FRFC_ASSERT(data_out_ != nullptr, "source not wired");
    data_out_->push(now, flit);
    flits_injected_.inc();
    if (shared_pool_)
        --pool_credits_;
    else
        --credits_[static_cast<std::size_t>(current_vc_)];

    ++next_seq_;
    if (next_seq_ == pkt.length) {
        // Flits stream strictly in order, so the tail leaving is the
        // attempt's last send: start the ack-timeout clock here.
        if (recovery_)
            rtx_.armDeadline(pkt.id, now);
        queue_.pop_front();
        sending_ = false;
        current_vc_ = kInvalidVc;
    }
}

}  // namespace frfc
