#include "vc/vc_source.hpp"

#include "common/log.hpp"
#include "proto/packet_registry.hpp"
#include "traffic/generator.hpp"

namespace frfc {

VcSource::VcSource(std::string name, NodeId node,
                   PacketGenerator* generator, PacketLedger* registry,
                   int num_vcs, int vc_depth, bool shared_pool, Rng rng,
                   MetricRegistry* metrics)
    : Clocked(std::move(name)), node_(node), generator_(generator),
      registry_(registry), num_vcs_(num_vcs), vc_depth_(vc_depth),
      shared_pool_(shared_pool), rng_(rng),
      credits_(static_cast<std::size_t>(num_vcs), vc_depth),
      pool_credits_(num_vcs * vc_depth)
{
    FRFC_ASSERT(generator != nullptr && num_vcs > 0 && vc_depth > 0,
                "bad source parameters");
    if (metrics != nullptr) {
        const std::string prefix = "source." + std::to_string(node);
        metrics->attachCounter(prefix + ".packets_generated",
                               packets_generated_);
        metrics->attachCounter(prefix + ".flits_injected",
                               flits_injected_);
    }
}

int
VcSource::queueLength() const
{
    return static_cast<int>(queue_.size());
}

void
VcSource::tick(Cycle now)
{
    // Credits freed by the router become usable this cycle.
    if (credit_in_ != nullptr) {
        credit_in_->drainInto(now, credit_scratch_);
        for (const Credit& credit : credit_scratch_) {
            if (shared_pool_) {
                ++pool_credits_;
                FRFC_ASSERT(pool_credits_ <= num_vcs_ * vc_depth_,
                            "source pool credit overflow");
            } else {
                ++credits_[static_cast<std::size_t>(credit.vc)];
                FRFC_ASSERT(credits_[static_cast<std::size_t>(credit.vc)]
                                <= vc_depth_,
                            "source credit overflow");
            }
        }
    }
    generate(now);
    inject(now);
    // Idle from here on (empty queue means no VC-pick draws until the
    // next birth): pre-scan the generator so nextWake can name the
    // birth cycle and the source can sleep until it.
    if (generating_ && !birth_pending_ && queue_.empty())
        scanBirths(now + kGenLookahead);
}

Cycle
VcSource::nextWake(Cycle now) const
{
    if (!queue_.empty())
        return now + 1;
    if (!generating_)
        return kInvalidCycle;
    return birth_pending_ ? birth_cycle_ : next_gen_cycle_;
}

void
VcSource::scanBirths(Cycle limit)
{
    while (!birth_pending_ && next_gen_cycle_ <= limit) {
        const auto pkt =
            generator_->generate(next_gen_cycle_, node_, rng_);
        if (pkt) {
            birth_pending_ = true;
            birth_cycle_ = next_gen_cycle_;
            birth_dest_ = pkt->dest;
            birth_length_ = pkt->length;
        }
        ++next_gen_cycle_;
    }
}

void
VcSource::generate(Cycle now)
{
    if (!generating_)
        return;
    scanBirths(now);
    if (!birth_pending_ || birth_cycle_ > now)
        return;
    FRFC_ASSERT(birth_cycle_ == now, "source ", name(),
                " slept through a packet birth at cycle ", birth_cycle_);
    const PacketId id =
        registry_->create(node_, birth_dest_, birth_length_, now);
    queue_.push_back(PendingPacket{id, birth_dest_, birth_length_, now});
    packets_generated_.inc();
    birth_pending_ = false;
}

void
VcSource::inject(Cycle now)
{
    if (queue_.empty())
        return;

    if (!sending_) {
        // Assign the head packet to the injection VC with the most
        // credits (ties broken randomly) so packets do not serialize
        // behind one busy VC.
        int best = -1;
        std::vector<VcId> best_vcs;
        for (VcId vc = 0; vc < num_vcs_; ++vc) {
            const int c = shared_pool_
                ? pool_credits_
                : credits_[static_cast<std::size_t>(vc)];
            if (c > best) {
                best = c;
                best_vcs.assign(1, vc);
            } else if (c == best) {
                best_vcs.push_back(vc);
            }
        }
        if (best <= 0)
            return;  // no room anywhere this cycle
        current_vc_ = best_vcs[rng_.nextBounded(best_vcs.size())];
        sending_ = true;
        next_seq_ = 0;
    }

    const int available = shared_pool_
        ? pool_credits_
        : credits_[static_cast<std::size_t>(current_vc_)];
    if (available <= 0)
        return;

    const PendingPacket& pkt = queue_.front();
    Flit flit;
    flit.packet = pkt.id;
    flit.seq = next_seq_;
    flit.packetLength = pkt.length;
    flit.head = next_seq_ == 0;
    flit.tail = next_seq_ == pkt.length - 1;
    flit.src = node_;
    flit.dest = pkt.dest;
    flit.vc = current_vc_;
    flit.created = pkt.created;
    flit.injected = now;
    flit.payload = Flit::expectedPayload(pkt.id, next_seq_);

    FRFC_ASSERT(data_out_ != nullptr, "source not wired");
    data_out_->push(now, flit);
    flits_injected_.inc();
    if (shared_pool_)
        --pool_credits_;
    else
        --credits_[static_cast<std::size_t>(current_vc_)];

    ++next_seq_;
    if (next_seq_ == pkt.length) {
        queue_.pop_front();
        sending_ = false;
        current_vc_ = kInvalidVc;
    }
}

}  // namespace frfc
