/**
 * @file
 * Input reservation table and buffer pool (paper Figure 4c).
 *
 * The input scheduler tracks, per input port, the scheduled movements of
 * every data flit: which cycle it arrives, which cycle it departs, and
 * through which output. Buffers come from a per-input shared pool and —
 * following Section 5 ("Buffer allocation at scheduling time versus
 * just before arrival") — a concrete buffer is bound only when the flit
 * arrives, which provably avoids the buffer-interchange problem.
 *
 * Data flits that arrive before their control flit has been processed
 * (possible when one control flit leads several data flits, or under
 * control-network contention) are parked in the pool on a schedule
 * list keyed by arrival time, exactly as Section 3 prescribes.
 */

#ifndef FRFC_FRFC_INPUT_TABLE_HPP
#define FRFC_FRFC_INPUT_TABLE_HPP

#include <array>
#include <bit>
#include <cstdint>
#include <string>
#include <vector>

#include "check/validator.hpp"
#include "common/types.hpp"
#include "proto/buffer_pool.hpp"
#include "proto/flit.hpp"
#include "stats/metrics.hpp"

namespace frfc {

/** Time-indexed per-input schedule of data flit movements. */
class InputReservationTable
{
  public:
    /** Max simultaneous departures per cycle (footnote 7 extension). */
    static constexpr int kMaxSpeedup = 4;

    /**
     * @param horizon  scheduling horizon s in cycles
     * @param buffers  flit buffers in this input's pool (b_d)
     * @param speedup  departures allowed per cycle (1 = paper baseline;
     *                 more models the multi-ported buffer of footnote 7)
     */
    InputReservationTable(int horizon, int buffers, int speedup = 1);

    /** The registry may hold pointers to this table's instrument
     *  members (registerMetrics); copying or moving would dangle them. */
    InputReservationTable(const InputReservationTable&) = delete;
    InputReservationTable& operator=(const InputReservationTable&) =
        delete;

    /**
     * Publish this table's instruments under `<prefix>.`: the bypasses /
     * parked / lost_arrivals counters and the pool-occupancy
     * time-average are attached to @p reg, which observes them at
     * snapshot time (the storage stays in this table). Call at most
     * once, right after construction.
     */
    void registerMetrics(MetricRegistry& reg, const std::string& prefix);

    /** Slide the window so it starts at @p now. */
    void advance(Cycle now);

    /** True if another departure can be scheduled during cycle @p t. */
    bool departSlotFree(Cycle t) const;

    /**
     * Record a committed reservation: the data flit arriving at
     * @p arrival leaves via @p out at @p depart. If the flit is already
     * parked (arrival < now, or == now with the flit already accepted),
     * it is bound immediately; otherwise the arrival row is annotated
     * and binding happens when the flit shows up.
     */
    void recordReservation(Cycle now, Cycle arrival, Cycle depart,
                           PortId out);

    /** Accept a data flit arriving from the link during cycle @p now. */
    void acceptFlit(Cycle now, const Flit& flit);

    /** A data flit leaving the router this cycle. */
    struct Departure
    {
        PortId out = kInvalidPort;
        Flit flit;
        bool bypass = false;  ///< spent the minimum one cycle here
    };

    /** Pop all departures scheduled for cycle @p now. */
    std::vector<Departure> takeDepartures(Cycle now);

    /** takeDepartures() into a reusable scratch buffer (cleared first)
     *  — the router's per-tick path, free of allocation churn. */
    void takeDeparturesInto(Cycle now, std::vector<Departure>& out);

    /**
     * Tolerate lost data flits (Section 5 error recovery): a scheduled
     * arrival that never materializes voids its departure entry — the
     * reserved channel cycle passes idle and, because the advance
     * credit already restored the buffer count from the departure
     * cycle, no buffers leak and no links stall. Without this, a
     * missed arrival is an invariant violation and panics.
     */
    void setFaultTolerant(bool on) { fault_tolerant_ = on; }

    /** Scheduled arrivals that never materialized (fault mode). */
    std::int64_t lostArrivals() const { return lost_arrivals_.value(); }

    /**
     * Doom the data arrival scheduled for cycle @p arrival: its control
     * worm was killed by fault injection before this router ever
     * processed it, so no reservation row exists — but the upstream
     * scheduler will still fire the flit onto the wire. The router
     * discards a doomed arrival before acceptFlit() (the buffer credit
     * was already returned when the worm died). Marks are tag-checked
     * ring slots; one that never materializes (the data flit was dropped
     * in flight as well) expires silently as the window slides past.
     */
    void markDoomed(Cycle arrival);

    /** Consume a doomed mark for an arrival at @p now, if present. */
    bool consumeDoomed(Cycle now);

    /**
     * Free the parked flit that arrived at @p t (its killed control
     * worm carried the only reservation that could ever claim it).
     * Returns false when no such flit is parked.
     */
    bool discardParked(Cycle now, Cycle t);

    /** @{ Speculative occupancy (fr.speculative; kLocal input only). */
    bool hasSpecHeld() const { return spec_held_ != 0; }

    /**
     * Reclaim the lowest-id buffer held by a speculative flit for an
     * arriving reserved flit: a parked speculative flit is simply
     * freed; a bound one also voids its departure entry (the reserved
     * output cycle passes idle and the next hop's lost-arrival
     * machinery reconciles, exactly as for an in-flight drop). Returns
     * the evicted packet's id, or kInvalidPacket when nothing
     * speculative is held — the caller treats that as a broken
     * admission invariant.
     */
    PacketId evictOneSpec(Cycle now);

    /** Paranoid check: every spec-held buffer is pool-allocated.
     *  Reports `spec.held-not-allocated`. */
    void auditSpecHeld(Cycle now) const;
    /** @} */

    /** True if an unscheduled flit that arrived at @p t is parked. */
    bool
    parkedAt(Cycle t) const
    {
        for (const ParkedFlit& p : parked_)
            if (p.arrival == t)
                return true;
        return false;
    }

    /**
     * Attach the run's validator: protocol violations (over-subscribed
     * departure slots, double-booked arrival rows, pool exhaustion on
     * arrival) then produce structured diagnostics — and, when the
     * validator is not failing fast, leave the table uncorrupted —
     * instead of panicking outright.
     */
    void
    setValidator(Validator* validator, std::string owner, PortId port)
    {
        validator_ = validator;
        owner_ = std::move(owner);
        port_ = port;
    }

    /**
     * Paranoid orphan scan: a headerless data flit parked more than
     * 4 x horizon cycles can no longer be claimed by any in-flight
     * control flit (reservations reach at most one horizon ahead) — it
     * is steering state that leaked. Reports `data.orphan` per stuck
     * flit.
     */
    void auditOrphans(Cycle now) const;

    /** @{ Statistics. */
    const BufferPool& pool() const { return pool_; }
    int parkedCount() const { return static_cast<int>(parked_.size()); }
    std::int64_t bypasses() const { return bypasses_.value(); }
    std::int64_t parkedTotal() const { return parked_total_.value(); }
    /** @} */

  private:
    struct ArrivalSlot
    {
        Cycle cycle = kInvalidCycle;  ///< tag; valid when == slot time
        Cycle depart = kInvalidCycle;
        PortId out = kInvalidPort;
    };

    struct DepartEntry
    {
        PortId out = kInvalidPort;
        Cycle arrival = kInvalidCycle;  ///< links back to the flit
        BufferId buffer = kInvalidBuffer;
        bool voided = false;  ///< flit lost; slot passes idle
    };

    struct DepartSlot
    {
        Cycle cycle = kInvalidCycle;
        int count = 0;
        std::array<DepartEntry, kMaxSpeedup> entries;
    };

    /** Schedule-list entry: a data flit that beat its control flit. */
    struct ParkedFlit
    {
        Cycle arrival = kInvalidCycle;
        BufferId buffer = kInvalidBuffer;
    };

    /** Rows are tag-checked (slot.cycle == t), so a power-of-two ring
     *  wider than the horizon is safe: stale slots fail the tag. The
     *  mask replaces a signed modulo on every row lookup. */
    std::size_t
    index(Cycle t) const
    {
        return static_cast<std::size_t>(t) & mask_;
    }

    int horizon_;
    int speedup_;
    std::size_t mask_;
    Cycle window_start_ = 0;
    /** Live (tagged) arrival rows plus live departure slots. While
     *  zero, every expiry check in advance() is vacuous, so the window
     *  can jump in O(1) — the catch-up path for a woken router. */
    int live_rows_ = 0;
    BufferPool pool_;
    std::vector<ArrivalSlot> arrivals_;
    std::vector<DepartSlot> departs_;
    /** Tag-checked ring of doomed arrivals (see markDoomed()). */
    std::vector<Cycle> doomed_;
    /** Live doomed marks; nonzero disables the O(1) advance jump so
     *  expired marks are cleared slot by slot. */
    int doomed_count_ = 0;
    /** Bit i set = buffer i holds a speculative flit (evictable). */
    std::uint64_t spec_held_ = 0;
    /** Schedule list, insertion-ordered. Every parked flit holds a
     *  pool buffer, so the list never outgrows the pool — a flat
     *  reserve()d vector with linear scans beats hashing here. */
    std::vector<ParkedFlit> parked_;

    /** Mark the departure linked to a lost arrival as void. */
    void voidDeparture(Cycle depart, Cycle arrival);

    /** Track a pool occupancy change (per-flit hot path). */
    void
    noteOccupancy(Cycle now)
    {
        occupancy_.update(now, static_cast<double>(pool_.usedCount()));
    }

    bool fault_tolerant_ = false;
    /** Sanitizer context; checks are skipped while null. */
    Validator* validator_ = nullptr;
    std::string owner_;
    PortId port_ = kInvalidPort;
    /** Instruments live here (cache-resident with the table state);
     *  registerMetrics() attaches them to a registry for snapshots. */
    Counter bypasses_;
    Counter parked_total_;
    Counter lost_arrivals_;
    TimeAverage occupancy_;
};

}  // namespace frfc

#endif  // FRFC_FRFC_INPUT_TABLE_HPP
