#include "frfc/fr_router.hpp"

#include <algorithm>

#include "common/log.hpp"
#include "routing/routing.hpp"
#include "sim/fault.hpp"
#include "topology/topology.hpp"

namespace frfc {

FrRouter::FrRouter(std::string name, NodeId node,
                   const RoutingFunction& routing, const FrParams& params,
                   Rng rng, MetricRegistry* metrics)
    : Clocked(std::move(name)), node_(node), routing_(routing),
      params_(params), rng_(rng),
      ctrl_kill_(static_cast<std::size_t>(kNumPorts) * params.ctrlVcs, 0),
      ctrl_out_(kNumPorts, nullptr), data_out_(kNumPorts, nullptr),
      fr_credit_out_(kNumPorts, nullptr),
      ctrl_credit_out_(kNumPorts, nullptr),
      ctrl_vcs_(static_cast<std::size_t>(kNumPorts) * params.ctrlVcs),
      ctrl_out_vcs_(static_cast<std::size_t>(kNumPorts) * params.ctrlVcs)
{
    credit_send_link_.fill(-1);
    credit_apply_link_.fill(-1);
    for (auto& ovc : ctrl_out_vcs_)
        ovc.credits = params.ctrlVcDepth;
    const std::string prefix = "router." + std::to_string(node);
    if (metrics != nullptr) {
        metrics->attachCounter(prefix + ".data.forwarded",
                               data_forwarded_);
        metrics->attachCounter(prefix + ".ctrl.forwarded",
                               ctrl_forwarded_);
        metrics->attachCounter(prefix + ".ctrl.consumed", ctrl_consumed_);
        metrics->attachCounter(prefix + ".sched.retries", sched_retries_);
        metrics->attachCounter(prefix + ".data.dropped", data_dropped_);
        metrics->attachCounter(prefix + ".ctrl.dropped", ctrl_dropped_);
        metrics->attachCounter(prefix + ".ctrl.orphan_drops",
                               ctrl_orphan_drops_);
        metrics->attachCounter(prefix + ".credit.corrupted",
                               credit_corrupted_);
        metrics->attachCounter(prefix + ".spec.dropped", spec_dropped_);
        metrics->attachCounter(prefix + ".spec.evicted", spec_evicted_);
        metrics->attachCounter(prefix + ".advance_credits",
                               advance_credits_);
    }

    out_tables_.reserve(kNumPorts);
    in_tables_.reserve(kNumPorts);
    for (PortId port = 0; port < kNumPorts; ++port) {
        const bool ejection = port == kLocal;
        out_tables_.push_back(std::make_unique<OutputReservationTable>(
            params.horizon, params.dataBuffers,
            ejection ? Cycle{1} : params.dataLinkLatency, ejection));
        in_tables_.push_back(std::make_unique<InputReservationTable>(
            params.horizon, params.dataBuffers, params.speedup));
        // Speculative launches can vanish at the first hop (drop or
        // eviction), so every downstream reservation must tolerate a
        // missed arrival. Link faults arm this via setFaultInjector.
        if (params.speculative)
            in_tables_.back()->setFaultTolerant(true);

        if (metrics == nullptr)
            continue;
        const auto p = static_cast<std::size_t>(port);
        const std::string out_pfx =
            prefix + ".out." + std::to_string(port);
        metrics->attachCounter(out_pfx + ".data_flits", flits_out_[p]);
        metrics->attachCounter(out_pfx + ".reservations",
                               res_commits_[p]);
        metrics->attachCounter(out_pfx + ".reservations_denied",
                               res_denied_[p]);
        metrics->attachCounter(out_pfx + ".horizon_full",
                               res_horizon_full_[p]);
        metrics->attachTimeAverage(out_pfx + ".occupancy",
                                   out_tables_.back()->occupancy());
        in_tables_.back()->registerMetrics(
            *metrics, prefix + ".in." + std::to_string(port));
    }
}

void
FrRouter::connectCtrlIn(PortId port, Channel<ControlFlit>* ch)
{
    ctrl_in_.bind(port, ch);
}

void
FrRouter::connectCtrlOut(PortId port, Channel<ControlFlit>* ch)
{
    ctrl_out_.at(static_cast<std::size_t>(port)) = ch;
}

void
FrRouter::connectDataIn(PortId port, Channel<Flit>* ch)
{
    data_in_.bind(port, ch);
}

void
FrRouter::connectDataOut(PortId port, Channel<Flit>* ch)
{
    data_out_.at(static_cast<std::size_t>(port)) = ch;
}

void
FrRouter::connectFrCreditIn(PortId port, Channel<FrCredit>* ch)
{
    fr_credit_in_.bind(port, ch);
}

void
FrRouter::connectFrCreditOut(PortId port, Channel<FrCredit>* ch)
{
    fr_credit_out_.at(static_cast<std::size_t>(port)) = ch;
}

void
FrRouter::connectCtrlCreditIn(PortId port, Channel<Credit>* ch)
{
    ctrl_credit_in_.bind(port, ch);
}

void
FrRouter::connectCtrlCreditOut(PortId port, Channel<Credit>* ch)
{
    ctrl_credit_out_.at(static_cast<std::size_t>(port)) = ch;
}

FrRouter::CtrlVc&
FrRouter::ctrlVc(PortId port, VcId vc)
{
    return ctrl_vcs_[static_cast<std::size_t>(port) * params_.ctrlVcs + vc];
}

FrRouter::CtrlOutVc&
FrRouter::ctrlOutVc(PortId port, VcId vc)
{
    return ctrl_out_vcs_[static_cast<std::size_t>(port) * params_.ctrlVcs
                         + vc];
}

const InputReservationTable&
FrRouter::inputTable(PortId port) const
{
    return *in_tables_.at(static_cast<std::size_t>(port));
}

const OutputReservationTable&
FrRouter::outputTable(PortId port) const
{
    return *out_tables_.at(static_cast<std::size_t>(port));
}

int
FrRouter::bufferedControlFlits(PortId port) const
{
    int total = 0;
    for (VcId vc = 0; vc < params_.ctrlVcs; ++vc) {
        total += static_cast<int>(
            ctrl_vcs_[static_cast<std::size_t>(port) * params_.ctrlVcs + vc]
                .queue.size());
    }
    return total;
}

void
FrRouter::tick(Cycle now)
{
    for (auto& table : out_tables_)
        table->advance(now);
    for (auto& table : in_tables_)
        table->advance(now);
    drainCredits(now);
    if (ctrl_buffered_ > 0) {
        controlVcAllocation();
        controlSwitchAllocation(now);
    }
    dataDepartures(now);
    dataArrivals(now);
    controlArrivals(now);
}

Cycle
FrRouter::nextWake(Cycle now) const
{
    // Queued control flits demand per-cycle allocation (with its RNG
    // draws), so the router stays clocked while any control VC holds
    // one.
    if (ctrl_buffered_ > 0)
        return now + 1;
    // Otherwise the time-driven events are the committed departures —
    // visible as busy cycles in the output tables — and undelivered
    // arrivals on the lazily bound input channels. Wake at the earliest
    // of either kind; busy cycles at or before now (including the
    // departure executing this very tick) expire lazily — the tables
    // record their occupancy changes with exact timestamps the next
    // time advance() runs (next wake or syncMetrics).
    Cycle next = kInvalidCycle;
    const auto consider = [&next](Cycle cycle) {
        if (cycle != kInvalidCycle
            && (next == kInvalidCycle || cycle < next))
            next = cycle;
    };
    for (const auto& table : out_tables_)
        consider(table->nextBusyCycleAfter(now));
    for (const auto& wired : data_in_)
        consider(wired.channel->nextArrivalAfter(now));
    for (const auto& wired : ctrl_in_)
        consider(wired.channel->nextArrivalAfter(now));
    for (const auto& wired : fr_credit_in_)
        consider(wired.channel->nextArrivalAfter(now));
    for (const auto& wired : ctrl_credit_in_)
        consider(wired.channel->nextArrivalAfter(now));
    return next;
}

void
FrRouter::syncMetrics(Cycle now)
{
    for (auto& table : out_tables_)
        table->advance(now);
}

void
FrRouter::setValidator(Validator* validator)
{
    validator_ = validator;
    for (PortId port = 0; port < kNumPorts; ++port) {
        const auto p = static_cast<std::size_t>(port);
        out_tables_[p]->setValidator(validator, name(), port);
        in_tables_[p]->setValidator(validator, name(), port);
    }
}

void
FrRouter::bindCreditLedger(PortId in, int link)
{
    credit_send_link_[static_cast<std::size_t>(in)] = link;
}

void
FrRouter::bindCreditFeedback(PortId out, int link)
{
    credit_apply_link_[static_cast<std::size_t>(out)] = link;
}

void
FrRouter::setFaultInjector(FaultInjector* injector)
{
    fault_ = injector;
    for (auto& table : in_tables_)
        table->setFaultTolerant(true);
}

void
FrRouter::testDropNextAdvanceCredit(PortId in)
{
    drop_next_credit_[static_cast<std::size_t>(in)] = 1;
}

void
FrRouter::auditInvariants(Cycle now) const
{
    for (const auto& table : out_tables_)
        table->auditCreditConservation(now);
    if (validator_ != nullptr && validator_->paranoid()) {
        for (const auto& table : in_tables_) {
            table->auditOrphans(now);
            table->auditSpecHeld(now);
        }
    }
}

std::uint64_t
FrRouter::activityFingerprint() const
{
    std::uint64_t h = 0;
    const auto mix = [&h](std::int64_t v) {
        h = fingerprintMix(h, static_cast<std::uint64_t>(v));
    };
    mix(data_forwarded_.value());
    mix(ctrl_forwarded_.value());
    mix(ctrl_consumed_.value());
    mix(sched_retries_.value());
    mix(data_dropped_.value());
    mix(ctrl_dropped_.value());
    mix(ctrl_orphan_drops_.value());
    mix(credit_corrupted_.value());
    mix(spec_dropped_.value());
    mix(spec_evicted_.value());
    mix(advance_credits_.value());
    mix(ctrl_buffered_);
    for (const std::uint8_t kill : ctrl_kill_)
        mix(kill);
    for (PortId port = 0; port < kNumPorts; ++port) {
        const auto p = static_cast<std::size_t>(port);
        mix(in_tables_[p]->pool().usedCount());
        mix(in_tables_[p]->parkedCount());
        mix(out_tables_[p]->reservesTotal());
        mix(out_tables_[p]->creditsTotal());
    }
    for (const CtrlOutVc& ovc : ctrl_out_vcs_)
        mix(ovc.credits);
    return h;
}

void
FrRouter::controlArrivals(Cycle now)
{
    // Control flits are enqueued after allocation, so a flit first
    // competes the cycle after it arrives (the 1-cycle routing and
    // scheduling latency of the control plane).
    for (const auto& wired : ctrl_in_) {
        wired.channel->drainInto(now, ctrl_scratch_);
        for (ControlFlit& flit : ctrl_scratch_) {
            FRFC_ASSERT(flit.vc >= 0 && flit.vc < params_.ctrlVcs,
                        "control flit with bad vc: ", flit.toString());
            if (fault_ != nullptr && wired.port != kLocal) {
                // One fault draw per worm, at its head: control flits
                // of one packet travel contiguously on their VC, so a
                // killed head takes the body and tail with it (a
                // partial worm would be meaningless downstream).
                std::uint8_t& kill = ctrl_kill_[
                    static_cast<std::size_t>(wired.port)
                        * params_.ctrlVcs
                    + static_cast<std::size_t>(flit.vc)];
                if (flit.head)
                    kill = fault_->faultCtrlHead(now, wired.port) ? 1 : 0;
                if (kill != 0) {
                    const bool tail = flit.tail;
                    killControlFlit(now, wired.port, flit);
                    if (tail)
                        kill = 0;
                    continue;
                }
            }
            CtrlVc& cvc = ctrlVc(wired.port, flit.vc);
            cvc.queue.push_back(flit);
            ++ctrl_buffered_;
            FRFC_ASSERT(static_cast<int>(cvc.queue.size())
                            <= params_.ctrlVcDepth,
                        "control VC overflow at node ", node_, " port ",
                        wired.port, " vc ", flit.vc);
        }
    }
}

void
FrRouter::killControlFlit(Cycle now, PortId port, ControlFlit& flit)
{
    // The paper's recovery story for a lost reservation is a
    // reservation-table timeout; this implementation takes the oracle
    // shortcut of reading the dead worm's own entries at the receiver,
    // which reconciles the exact same state (upstream buffer credits,
    // vacuous data arrivals) without modeling the timeout machinery.
    ctrl_dropped_.inc();
    const auto p = static_cast<std::size_t>(port);

    // The upstream control VC buffer frees exactly as if the flit had
    // been forwarded (the sender cannot see the corruption).
    Channel<Credit>* cr = ctrl_credit_out_[p];
    FRFC_ASSERT(cr != nullptr, "killed control flit on unwired port");
    cr->push(now, Credit{flit.vc});

    InputReservationTable& irt = *in_tables_[p];
    for (int e = 0; e < flit.numEntries; ++e) {
        const ControlEntry& entry =
            flit.entries[static_cast<std::size_t>(e)];
        // The upstream scheduler reserved one of this input's buffers
        // from entry.arrival onward and is owed a timestamped credit.
        // The entry will never commit here, so the buffer is free from
        // its arrival cycle — the flit never occupies it.
        if (Channel<FrCredit>* fcr = fr_credit_out_[p]) {
            if (validator_ != nullptr && credit_send_link_[p] >= 0)
                validator_->onCreditSent(credit_send_link_[p]);
            fcr->push(now, FrCredit{entry.arrival});
            advance_credits_.inc();
        }
        if (entry.arrival > now) {
            // Upstream still fires the data flit at its reserved
            // cycle; discard it on arrival (dataArrivals).
            irt.markDoomed(entry.arrival);
        } else if (irt.discardParked(now, entry.arrival)) {
            // The data flit beat its control worm here and parked; the
            // worm carried the only reservation that could claim it.
            ctrl_orphan_drops_.inc();
        }
        // else: the data flit was itself dropped in flight — nothing
        // to reconcile beyond the credit above.
    }
}

void
FrRouter::drainCredits(Cycle now)
{
    // The two credit kinds feed disjoint state (output tables vs
    // control-VC credit counts), so draining them list-by-list rather
    // than interleaved per port changes no observable outcome.
    for (const auto& wired : fr_credit_in_) {
        wired.channel->drainInto(now, fr_credit_scratch_);
        const auto p = static_cast<std::size_t>(wired.port);
        for (const FrCredit& credit : fr_credit_scratch_) {
            if (validator_ != nullptr && credit_apply_link_[p] >= 0)
                validator_->onCreditApplied(credit_apply_link_[p]);
            Cycle free_from = credit.freeFrom;
            if (free_from == kInvalidCycle
                || (fault_ != nullptr && wired.port != kLocal
                    && fault_->faultCredit(now, wired.port))) {
                // A corrupted timestamp cannot be trusted; applying the
                // conservative worst case — free only from the horizon
                // end — keeps the table sound (the buffer is never
                // handed out early, merely late) and never leaks it.
                credit_corrupted_.inc();
                free_from = out_tables_[p]->windowEnd();
            }
            out_tables_[p]->credit(free_from);
        }
    }
    for (const auto& wired : ctrl_credit_in_) {
        wired.channel->drainInto(now, ctrl_credit_scratch_);
        for (const Credit& credit : ctrl_credit_scratch_) {
            CtrlOutVc& ovc = ctrlOutVc(wired.port, credit.vc);
            ++ovc.credits;
            FRFC_ASSERT(ovc.credits <= params_.ctrlVcDepth,
                        "control credit overflow");
        }
    }
}

void
FrRouter::controlVcAllocation()
{
    std::vector<VcaRequest>& requests = vca_requests_;
    requests.clear();

    for (PortId port = 0; port < kNumPorts; ++port) {
        for (VcId vc = 0; vc < params_.ctrlVcs; ++vc) {
            CtrlVc& cvc = ctrlVc(port, vc);
            if (cvc.active || cvc.queue.empty())
                continue;
            const ControlFlit& head = cvc.queue.front();
            FRFC_ASSERT(head.head,
                        "control body flit with no VCID route at node ",
                        node_, ": ", head.toString());
            if (!cvc.routed) {
                cvc.outPort = routing_.route(node_, head.dest);
                cvc.routed = true;
            }
            if (cvc.outPort == kLocal) {
                // Destination: consumed here, no output VC needed.
                cvc.active = true;
                cvc.outVc = 0;
                continue;
            }
            std::vector<VcId>& free_vcs = free_vc_scratch_;
            free_vcs.clear();
            for (VcId ovc_id = 0; ovc_id < params_.ctrlVcs; ++ovc_id) {
                if (!ctrlOutVc(cvc.outPort, ovc_id).busy)
                    free_vcs.push_back(ovc_id);
            }
            if (free_vcs.empty())
                continue;
            const VcId pick = free_vcs[rng_.nextBounded(free_vcs.size())];
            requests.push_back(VcaRequest{port, vc, cvc.outPort, pick});
        }
    }

    std::vector<std::uint8_t>& granted = vca_granted_;
    granted.assign(requests.size(), 0);
    for (std::size_t i = 0; i < requests.size(); ++i) {
        if (granted[i])
            continue;
        std::vector<std::size_t>& group = vca_group_;
        group.clear();
        for (std::size_t j = i; j < requests.size(); ++j) {
            if (!granted[j] && requests[j].outPort == requests[i].outPort
                && requests[j].outVc == requests[i].outVc) {
                group.push_back(j);
            }
        }
        const std::size_t win = group[rng_.nextBounded(group.size())];
        for (std::size_t j : group)
            granted[j] = 1;
        const VcaRequest& req = requests[win];
        CtrlVc& cvc = ctrlVc(req.inPort, req.inVc);
        cvc.active = true;
        cvc.outVc = req.outVc;
        ctrlOutVc(req.outPort, req.outVc).busy = true;
    }
}

void
FrRouter::controlSwitchAllocation(Cycle now)
{
    // Candidates: heads of active control VCs with a downstream control
    // buffer available. Up to ctrlWidth winners per input and per output
    // port per cycle ("two ... control flits are injected and processed
    // per cycle"), picked in random order.
    std::vector<SwRequest>& requests = sw_requests_;
    requests.clear();
    for (PortId port = 0; port < kNumPorts; ++port) {
        for (VcId vc = 0; vc < params_.ctrlVcs; ++vc) {
            CtrlVc& cvc = ctrlVc(port, vc);
            if (!cvc.active || cvc.queue.empty())
                continue;
            if (cvc.outPort != kLocal
                && ctrlOutVc(cvc.outPort, cvc.outVc).credits <= 0) {
                continue;
            }
            requests.push_back(SwRequest{port, vc});
        }
    }
    for (std::size_t i = requests.size(); i > 1; --i) {
        const std::size_t j = rng_.nextBounded(i);
        std::swap(requests[i - 1], requests[j]);
    }

    std::array<int, kNumPorts> in_used{};
    std::array<int, kNumPorts> out_used{};
    for (const SwRequest& req : requests) {
        CtrlVc& cvc = ctrlVc(req.inPort, req.inVc);
        if (in_used[static_cast<std::size_t>(req.inPort)]
                >= params_.ctrlWidth
            || out_used[static_cast<std::size_t>(cvc.outPort)]
                >= params_.ctrlWidth) {
            continue;
        }
        ++in_used[static_cast<std::size_t>(req.inPort)];
        ++out_used[static_cast<std::size_t>(cvc.outPort)];

        ControlFlit& flit = cvc.queue.front();
        // Section 4.4 statistic: how far ahead of its data a control
        // flit arrives at the destination. Capture before scheduling
        // rewrites the arrival fields.
        Cycle first_arrival = kInvalidCycle;
        for (int e = 0; e < flit.numEntries; ++e) {
            const ControlEntry& entry =
                flit.entries[static_cast<std::size_t>(e)];
            if (entry.scheduled)
                continue;
            if (first_arrival == kInvalidCycle
                || entry.arrival < first_arrival) {
                first_arrival = entry.arrival;
            }
        }
        const bool complete = params_.allOrNothing
            ? scheduleEntriesAtomically(now, req.inPort, cvc.outPort, flit)
            : scheduleEntries(now, req.inPort, cvc.outPort, flit);
        if (!complete) {
            sched_retries_.inc();
            continue;  // stalls at the VC head; retries next cycle
        }

        if (cvc.outPort == kLocal) {
            ctrl_consumed_.inc();
            if (first_arrival != kInvalidCycle)
                lead_.add(static_cast<double>(first_arrival - now));
        } else {
            ControlFlit out_flit = flit;
            out_flit.vc = cvc.outVc;
            out_flit.clearScheduledMarks();
            Channel<ControlFlit>* out =
                ctrl_out_[static_cast<std::size_t>(cvc.outPort)];
            FRFC_ASSERT(out != nullptr, "control route to unwired port");
            out->push(now, out_flit);
            --ctrlOutVc(cvc.outPort, cvc.outVc).credits;
            ctrl_forwarded_.inc();
        }

        // Free the control buffer slot upstream.
        if (Channel<Credit>* cr =
                ctrl_credit_out_[static_cast<std::size_t>(req.inPort)]) {
            cr->push(now, Credit{req.inVc});
        }

        const bool tail = flit.tail;
        cvc.queue.pop_front();
        --ctrl_buffered_;
        if (tail) {
            if (cvc.outPort != kLocal)
                ctrlOutVc(cvc.outPort, cvc.outVc).busy = false;
            cvc.active = false;
            cvc.routed = false;
            cvc.outPort = kInvalidPort;
            cvc.outVc = kInvalidVc;
        }
    }
}

bool
FrRouter::scheduleEntries(Cycle now, PortId in, PortId out,
                          ControlFlit& flit)
{
    OutputReservationTable& ort = *out_tables_[static_cast<std::size_t>(
        out)];
    InputReservationTable& irt = *in_tables_[static_cast<std::size_t>(in)];
    bool all = true;
    for (int e = 0; e < flit.numEntries; ++e) {
        ControlEntry& entry = flit.entries[static_cast<std::size_t>(e)];
        if (entry.scheduled)
            continue;
        const Cycle min_depart = std::max(entry.arrival, now) + 1;
        // Deadlock avoidance for wide control flits (flitsPerControl >
        // 1): data may then overtake its control flit and sit parked —
        // without a departure reservation — creating dependency cycles
        // between control VCs and shared data pools (the hazard noted
        // in the paper's Section 5). Rule: an entry whose flit has not
        // yet arrived here must leave one downstream buffer in reserve;
        // an entry rescuing an already-arrived (parked) flit may take
        // the last buffer. Rescues strictly drain pools, so chains
        // unwind from the ejection ports and progress is preserved.
        const bool rescue = entry.arrival <= now;
        const int min_free =
            params_.flitsPerControl > 1 && !rescue ? 2 : 1;
        const Cycle depart = ort.findDeparture(
            min_depart, [&irt](Cycle t) { return irt.departSlotFree(t); },
            min_free);
        if (depart == kInvalidCycle) {
            res_denied_[static_cast<std::size_t>(out)].inc();
            if (ort.beyondHorizon(min_depart)) {
                res_horizon_full_[static_cast<std::size_t>(out)]
                    .inc();
            }
            all = false;
            continue;
        }
        commitEntry(now, in, out, entry, depart);
    }
    return all;
}

bool
FrRouter::scheduleEntriesAtomically(Cycle now, PortId in, PortId out,
                                    ControlFlit& flit)
{
    OutputReservationTable& ort = *out_tables_[static_cast<std::size_t>(
        out)];
    InputReservationTable& irt = *in_tables_[static_cast<std::size_t>(in)];

    // Feasibility pass on a scratch copy of the output table plus a
    // local view of the input departure rows; nothing is committed
    // unless every entry can be scheduled (Section 5, all-or-nothing).
    OutputReservationTable scratch = ort;
    std::vector<Cycle> tentative;  // departures placed in this pass
    auto slot_free = [&](Cycle t) {
        if (!irt.departSlotFree(t))
            return false;
        // departSlotFree only sees committed reservations; the scratch
        // pass must also avoid colliding with its own picks. (The busy
        // bits in `scratch` already prevent same-output collisions; this
        // guards the per-input departure row.)
        return std::count(tentative.begin(), tentative.end(), t) == 0;
    };
    for (int e = 0; e < flit.numEntries; ++e) {
        ControlEntry& entry = flit.entries[static_cast<std::size_t>(e)];
        FRFC_ASSERT(!entry.scheduled,
                    "all-or-nothing flit with partial schedule");
        const Cycle min_depart = std::max(entry.arrival, now) + 1;
        // Same reserved-buffer rule as per-flit mode (see
        // scheduleEntries): parked-flit rescues may drain the pool.
        const bool rescue = entry.arrival <= now;
        const int min_free =
            params_.flitsPerControl > 1 && !rescue ? 2 : 1;
        const Cycle depart =
            scratch.findDeparture(min_depart, slot_free, min_free);
        if (depart == kInvalidCycle) {
            res_denied_[static_cast<std::size_t>(out)].inc();
            if (scratch.beyondHorizon(min_depart)) {
                res_horizon_full_[static_cast<std::size_t>(out)]
                    .inc();
            }
            return false;
        }
        scratch.reserve(depart);
        tentative.push_back(depart);
    }
    const std::vector<Cycle> departs = tentative;

    for (int e = 0; e < flit.numEntries; ++e) {
        ControlEntry& entry = flit.entries[static_cast<std::size_t>(e)];
        commitEntry(now, in, out, entry,
                    departs[static_cast<std::size_t>(e)]);
    }
    return true;
}

void
FrRouter::commitEntry(Cycle now, PortId in, PortId out,
                      ControlEntry& entry, Cycle depart)
{
    OutputReservationTable& ort = *out_tables_[static_cast<std::size_t>(
        out)];
    InputReservationTable& irt = *in_tables_[static_cast<std::size_t>(in)];

    ort.reserve(depart);
    irt.recordReservation(now, entry.arrival, depart, out);
    res_commits_[static_cast<std::size_t>(out)].inc();

    if (entry.spec) {
        // Wire-only launch: the source never debited a first-hop
        // buffer, so no advance credit is owed (pushing one would
        // mint a buffer out of thin air). Once committed here the
        // entry rides real reservations downstream.
        FRFC_ASSERT(in == kLocal,
                    "speculative entry arrived on a transit port");
        entry.spec = false;
        entry.scheduled = true;
        entry.arrival = depart
            + (out == kLocal ? Cycle{1} : params_.dataLinkLatency);
        return;
    }

    // Advance credit: the input buffer is free from the departure
    // cycle (plus one guard cycle on plesiochronous links, Section 5).
    if (Channel<FrCredit>* cr =
            fr_credit_out_[static_cast<std::size_t>(in)]) {
        const auto p = static_cast<std::size_t>(in);
        if (validator_ != nullptr && credit_send_link_[p] >= 0)
            validator_->onCreditSent(credit_send_link_[p]);
        if (drop_next_credit_[p] != 0) {
            drop_next_credit_[p] = 0;
            // Fault-tolerant mode: the hook models a mangled wire word
            // — the credit still arrives, CRC-detectably corrupt, and
            // the receiver recovers by applying the conservative
            // horizon-end timestamp (drainCredits). Strict mode keeps
            // the legacy silent loss so the validator's credit ledger
            // can be shown to catch it.
            if (fault_ != nullptr)
                cr->push(now, FrCredit{kInvalidCycle});
        } else {
            cr->push(now, FrCredit{depart + params_.creditSlack});
        }
        advance_credits_.inc();
    }

    entry.scheduled = true;
    // Rewrite the arrival time for the next hop (ejection time when the
    // flit leaves through the local port).
    entry.arrival = depart
        + (out == kLocal ? Cycle{1} : params_.dataLinkLatency);
}

void
FrRouter::dataDepartures(Cycle now)
{
    for (PortId port = 0; port < kNumPorts; ++port) {
        InputReservationTable& irt =
            *in_tables_[static_cast<std::size_t>(port)];
        irt.takeDeparturesInto(now, depart_scratch_);
        for (auto& dep : depart_scratch_) {
            Channel<Flit>* out =
                data_out_[static_cast<std::size_t>(dep.out)];
            FRFC_ASSERT(out != nullptr, "data departure to unwired port");
            out->push(now, dep.flit);
            data_forwarded_.inc();
            flits_out_[static_cast<std::size_t>(dep.out)].inc();
        }
    }
}

void
FrRouter::dataArrivals(Cycle now)
{
    // Port-ascending drain order is semantic: the fault injector's RNG
    // draws must replay in the same sequence on every kernel
    // (WiredPorts keeps ports sorted).
    for (const auto& wired : data_in_) {
        wired.channel->drainInto(now, data_scratch_);
        InputReservationTable& irt =
            *in_tables_[static_cast<std::size_t>(wired.port)];
        for (Flit& flit : data_scratch_) {
            if (fault_ != nullptr && wired.port != kLocal
                && fault_->faultData(now, wired.port)) {
                // Corrupted in flight; the receiver's error detection
                // discards it and the reservation executes vacuously.
                data_dropped_.inc();
                continue;
            }
            if (irt.consumeDoomed(now)) {
                // Its control worm was killed on the wire: no
                // reservation exists here and the buffer credit was
                // already returned at kill time, so discard silently.
                ctrl_orphan_drops_.inc();
                continue;
            }
            if (flit.spec && irt.pool().full()) {
                // Speculative gamble lost: no buffer on arrival. The
                // (also speculative) control entry voids through the
                // fault-tolerant lost-arrival path.
                spec_dropped_.inc();
                pushNack(now, flit.packet);
                continue;
            }
            if (!flit.spec && irt.pool().full() && irt.hasSpecHeld()) {
                // A reserved flit always has a buffer in the admission
                // accounting; the pool can only look full because
                // speculative flits squat on it. Reclaim one.
                const PacketId victim = irt.evictOneSpec(now);
                FRFC_ASSERT(victim != kInvalidPacket,
                            "spec eviction found no victim");
                spec_evicted_.inc();
                pushNack(now, victim);
            }
            irt.acceptFlit(now, flit);
        }
    }
}

void
FrRouter::pushNack(Cycle now, PacketId packet)
{
    FRFC_ASSERT(nack_out_ != nullptr,
                "speculative launch reached a router with no nack wire");
    nack_out_->push(now, FrNack{packet});
}

}  // namespace frfc
