/**
 * @file
 * Control flits of flit-reservation flow control (paper Figure 2).
 *
 * A control head flit carries the packet destination and identifies the
 * first data flit by its arrival time; each control body flit carries
 * the arrival times of up to d further data flits. All control flits
 * carry the control virtual-channel identifier tying a packet's control
 * flits together. Arrival times are rewritten at every hop: after the
 * output scheduler picks departure time t_d, the entry becomes
 * t_d + t_p, the arrival time at the next node.
 */

#ifndef FRFC_FRFC_CONTROL_FLIT_HPP
#define FRFC_FRFC_CONTROL_FLIT_HPP

#include <array>
#include <string>

#include "common/types.hpp"

namespace frfc {

/** Max data flits one control flit can lead (paper's N). */
inline constexpr int kMaxEntriesPerControl = 8;

/** One data-flit reservation carried by a control flit. */
struct ControlEntry
{
    int seq = -1;                    ///< data flit index in its packet
    Cycle arrival = kInvalidCycle;   ///< arrival time at receiving node
    bool scheduled = false;          ///< scheduled at the current node
    /** Speculative launch (fr.speculative): the source reserved only
     *  the injection wire, not a first-hop buffer. The first-hop
     *  router clears this after reconciling its pool accounting. */
    bool spec = false;
};

/** A control flit traversing the control network. */
struct ControlFlit
{
    PacketId packet = kInvalidPacket;
    bool head = false;  ///< first control flit (carries destination)
    bool tail = false;  ///< last control flit of the packet
    NodeId src = kInvalidNode;
    NodeId dest = kInvalidNode;
    VcId vc = kInvalidVc;            ///< control VCID
    Cycle created = kInvalidCycle;
    int numEntries = 0;
    std::array<ControlEntry, kMaxEntriesPerControl> entries;

    /** Append a data-flit entry. */
    void addEntry(int seq, Cycle arrival);

    /** True once every led data flit has been scheduled here. */
    bool fullyScheduled() const;

    /** Reset per-node scheduling marks (done when hopping). */
    void clearScheduledMarks();

    std::string toString() const;
};

}  // namespace frfc

#endif  // FRFC_FRFC_CONTROL_FLIT_HPP
