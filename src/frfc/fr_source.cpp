#include "frfc/fr_source.hpp"

#include <algorithm>
#include <bit>

#include "check/validator.hpp"
#include "common/log.hpp"
#include "proto/packet_registry.hpp"
#include "traffic/generator.hpp"

namespace frfc {

FrSource::FrSource(std::string name, NodeId node,
                   PacketGenerator* generator, PacketLedger* registry,
                   const FrParams& params, Rng rng,
                   MetricRegistry* metrics)
    : Clocked(std::move(name)), node_(node), generator_(generator),
      registry_(registry), params_(params), rng_(rng),
      ort_(params.horizon, params.dataBuffers, /*link_latency=*/1),
      ctrl_credits_(static_cast<std::size_t>(params.ctrlVcs),
                    params.ctrlVcDepth),
      pending_data_(
          std::bit_ceil(static_cast<std::size_t>(params.horizon))),
      pending_mask_(pending_data_.size() - 1)
{
    FRFC_ASSERT(generator != nullptr, "null packet generator");
    FRFC_ASSERT(params.leadTime + 2 < params.horizon,
                "lead time must leave room inside the horizon");
    closed_loop_ = generator->closedLoop();
    if (metrics != nullptr) {
        const std::string prefix = "source." + std::to_string(node);
        metrics->attachCounter(prefix + ".packets_generated",
                               packets_generated_);
        metrics->attachCounter(prefix + ".flits_injected",
                               flits_injected_);
    }
}

int
FrSource::queueLength() const
{
    return static_cast<int>(queue_.size()) + (active_ ? 1 : 0);
}

void
FrSource::setValidator(Validator* validator)
{
    validator_ = validator;
    ort_.setValidator(validator, name(), kLocal);
}

std::uint64_t
FrSource::activityFingerprint() const
{
    std::uint64_t h = 0;
    const auto mix = [&h](std::int64_t v) {
        h = fingerprintMix(h, static_cast<std::uint64_t>(v));
    };
    mix(packets_generated_.value());
    mix(flits_injected_.value());
    mix(static_cast<std::int64_t>(queue_.size()));
    mix(active_ ? 1 : 0);
    mix(static_cast<std::int64_t>(next_ctrl_));
    mix(pending_count_);
    mix(ort_.reservesTotal());
    mix(ort_.creditsTotal());
    for (const int credits : ctrl_credits_)
        mix(credits);
    if (recovery_)
        mix(static_cast<std::int64_t>(rtx_.fingerprint()));
    return h;
}

void
FrSource::tick(Cycle now)
{
    ort_.advance(now);
    if (fr_credit_in_ != nullptr) {
        fr_credit_in_->drainInto(now, fr_credit_scratch_);
        for (const FrCredit& credit : fr_credit_scratch_) {
            if (validator_ != nullptr && credit_apply_link_ >= 0)
                validator_->onCreditApplied(credit_apply_link_);
            // A corrupted (CRC-detected) timestamp frees the buffer
            // only from the horizon end — conservative, never early.
            ort_.credit(credit.freeFrom == kInvalidCycle
                            ? ort_.windowEnd()
                            : credit.freeFrom);
        }
    }
    if (ctrl_credit_in_ != nullptr) {
        ctrl_credit_in_->drainInto(now, ctrl_credit_scratch_);
        for (const Credit& credit : ctrl_credit_scratch_) {
            int& c = ctrl_credits_[static_cast<std::size_t>(credit.vc)];
            ++c;
            FRFC_ASSERT(c <= params_.ctrlVcDepth,
                        "source control credit overflow");
        }
    }
    drainRecovery(now);
    processCompletions(now);
    generate(now);
    while (!active_ && !queue_.empty()) {
        if (recovery_ && rtx_.ackedOrUntracked(queue_.front().id)) {
            // Acked while waiting in the queue (an earlier attempt's
            // flits completed delivery): nothing left to send.
            rtx_.dropQueued(queue_.front().id);
            queue_.pop_front();
            continue;
        }
        startNextPacket(now);
    }
    if (active_)
        processControl(now);
    fireData(now);
    // Idle from here on (no packet in flight, so no competing rng_
    // draws until the next birth): pre-scan the generator so nextWake
    // can name the birth cycle and the source can sleep until it.
    // Closed-loop generators are never scanned ahead — a completion
    // arriving mid-window would invalidate the scanned draws.
    if (!closed_loop_ && generating_ && !birth_pending_ && !active_
        && queue_.empty() && pending_count_ == 0) {
        scanBirths(now + kGenLookahead);
    }
}

Cycle
FrSource::nextWake(Cycle now) const
{
    Cycle wake = kInvalidCycle;
    if (active_ || !queue_.empty() || pending_count_ > 0) {
        wake = now + 1;
    } else if (closed_loop_) {
        // Tick every cycle while generating: the generator must see
        // each cycle once, in order, for its draw stream (and any
        // feedback-driven state) to be kernel-independent.
        wake = generating_ ? now + 1 : kInvalidCycle;
    } else if (generating_) {
        wake = birth_pending_ ? birth_cycle_ : next_gen_cycle_;
    }
    if (recovery_ && wake != now + 1) {
        // Ack/nack channels are lazily bound, so the source must keep
        // itself scheduled through their pending arrivals; retransmit
        // deadlines are a wake source of their own.
        const auto fold = [&wake, now](Cycle at) {
            if (at == kInvalidCycle)
                return;
            at = std::max(at, now + 1);
            if (wake == kInvalidCycle || at < wake)
                wake = at;
        };
        fold(rtx_.nextDeadline());
        for (const Channel<PacketCompletion>* ch : ack_in_)
            fold(ch->nextArrivalAfter(now));
        if (nack_in_ != nullptr)
            fold(nack_in_->nextArrivalAfter(now));
    }
    return wake;
}

void
FrSource::scanBirths(Cycle limit)
{
    while (!birth_pending_ && next_gen_cycle_ <= limit) {
        const WorkloadContext ctx{next_gen_cycle_, node_, &rng_};
        const auto pkt = generator_->generate(ctx);
        if (pkt) {
            birth_pending_ = true;
            birth_cycle_ = next_gen_cycle_;
            birth_dest_ = pkt->dest;
            birth_length_ = pkt->length;
            birth_cls_ = pkt->cls;
        }
        ++next_gen_cycle_;
    }
}

void
FrSource::admitPacket(NodeId dest, int length, MessageClass cls,
                      Cycle now)
{
    const PacketId id = registry_->create(node_, dest, length, now, cls);
    queue_.push_back(PendingPacket{id, dest, length, now, cls});
    if (recovery_)
        rtx_.add(id, dest, length, now, cls);
    packets_generated_.inc();
}

void
FrSource::drainRecovery(Cycle now)
{
    if (!recovery_)
        return;
    for (Channel<PacketCompletion>* ch : ack_in_) {
        ch->drainInto(now, ack_scratch_);
        for (const PacketCompletion& done : ack_scratch_)
            rtx_.ack(done.packet);
    }
    if (nack_in_ != nullptr) {
        nack_in_->drainInto(now, nack_scratch_);
        for (const FrNack& nack : nack_scratch_)
            rtx_.nack(nack.packet, now);
    }
    // Expired deadlines (including nack-forced ones from just above)
    // requeue under the original packet id and creation cycle — the
    // registry record stays open, so latency spans every attempt.
    expired_scratch_.clear();
    rtx_.takeExpired(now, expired_scratch_);
    for (const RetransmitRecord& rec : expired_scratch_) {
        queue_.push_back(PendingPacket{rec.id, rec.dest, rec.length,
                                       rec.created, rec.cls});
        if (validator_ != nullptr
            && rec.attempts > rtx_.maxAttemptsAllowed()) {
            validator_->fail(
                "recovery.stuck", now, name(), kLocal,
                "packet " + std::to_string(rec.id) + " on attempt "
                    + std::to_string(rec.attempts) + " (max "
                    + std::to_string(rtx_.maxAttemptsAllowed()) + ")");
        }
    }
}

void
FrSource::processCompletions(Cycle now)
{
    if (completion_in_ == nullptr)
        return;
    completion_in_->drainInto(now, completion_scratch_);
    for (const PacketCompletion& done : completion_scratch_) {
        const WorkloadContext ctx{now, node_, &rng_};
        const auto reply = generator_->onPacketEjected(done, ctx);
        if (!reply)
            continue;
        // Feedback-minted replies bypass setGenerating: the exchange a
        // request opened must close even while the run drains.
        if (validator_ != nullptr && reply->cls == MessageClass::kReply)
            validator_->onReplyCreated(node_, now, name());
        admitPacket(reply->dest, reply->length, reply->cls, now);
    }
}

void
FrSource::generate(Cycle now)
{
    if (!generating_)
        return;
    if (closed_loop_) {
        // Live path: one generator call per cycle, no lookahead.
        const WorkloadContext ctx{now, node_, &rng_};
        if (const auto pkt = generator_->generate(ctx))
            admitPacket(pkt->dest, pkt->length, pkt->cls, now);
        return;
    }
    scanBirths(now);
    if (!birth_pending_ || birth_cycle_ > now)
        return;
    FRFC_ASSERT(birth_cycle_ == now, "source ", name(),
                " slept through a packet birth at cycle ", birth_cycle_);
    admitPacket(birth_dest_, birth_length_, birth_cls_, now);
    birth_pending_ = false;
}

void
FrSource::startNextPacket(Cycle /* now */)
{
    current_ = queue_.front();
    queue_.pop_front();
    active_ = true;
    next_ctrl_ = 0;
    current_last_depart_ = kInvalidCycle;
    const bool retransmission =
        recovery_ && rtx_.attemptsOf(current_.id) > 0;
    // Speculation is a first-attempt gamble only: after a nack or a
    // timeout the packet retransmits on fully reserved slots, so one
    // overloaded first hop cannot starve a packet forever.
    spec_allowed_ = params_.speculative && !retransmission;

    // Pick the control VC with the most credits, ties broken randomly.
    // Retransmissions pick the lowest such VC with no draw: a timeout
    // requeue fires while the source is otherwise idle and the
    // generator pre-scan may have run ahead, so a draw here would
    // split the shared rng_ stream at kernel-dependent positions.
    int best = -1;
    std::vector<VcId> best_vcs;
    for (VcId vc = 0; vc < params_.ctrlVcs; ++vc) {
        const int c = ctrl_credits_[static_cast<std::size_t>(vc)];
        if (c > best) {
            best = c;
            best_vcs.assign(1, vc);
        } else if (c == best) {
            best_vcs.push_back(vc);
        }
    }
    current_vc_ = retransmission
        ? best_vcs.front()
        : best_vcs[rng_.nextBounded(best_vcs.size())];

    // Build the packet's control flits (Figure 2): the head leads the
    // first data flit; each body flit leads up to d more.
    ctrl_flits_.clear();
    ControlFlit head;
    head.packet = current_.id;
    head.head = true;
    head.src = node_;
    head.dest = current_.dest;
    head.vc = current_vc_;
    head.created = current_.created;
    head.addEntry(0, kInvalidCycle);
    ctrl_flits_.push_back(head);
    int seq = 1;
    while (seq < current_.length) {
        ControlFlit body;
        body.packet = current_.id;
        body.src = node_;
        body.dest = current_.dest;
        body.vc = current_vc_;
        body.created = current_.created;
        for (int k = 0;
             k < params_.flitsPerControl && seq < current_.length; ++k)
            body.addEntry(seq++, kInvalidCycle);
        ctrl_flits_.push_back(body);
    }
    ctrl_flits_.back().tail = true;
}

Flit
FrSource::makeDataFlit(const PendingPacket& pkt, int seq, Cycle now) const
{
    Flit flit;
    flit.packet = pkt.id;
    flit.seq = seq;
    flit.packetLength = pkt.length;
    flit.head = seq == 0;
    flit.tail = seq == pkt.length - 1;
    flit.src = node_;
    flit.dest = pkt.dest;
    flit.created = pkt.created;
    flit.injected = now;
    flit.payload = Flit::expectedPayload(pkt.id, seq);
    flit.cls = pkt.cls;
    return flit;
}

void
FrSource::processControl(Cycle now)
{
    for (int slot = 0; slot < params_.ctrlWidth; ++slot) {
        if (next_ctrl_ >= ctrl_flits_.size()) {
            finishPacket(now);
            return;
        }
        ControlFlit& cf = ctrl_flits_[next_ctrl_];

        // Reserve injection slots for every data flit this control flit
        // leads; in leading-control mode data is deferred leadTime
        // cycles behind the control flit.
        bool all = true;
        for (int e = 0; e < cf.numEntries; ++e) {
            ControlEntry& entry =
                cf.entries[static_cast<std::size_t>(e)];
            if (entry.scheduled)
                continue;
            const Cycle min_depart =
                now + std::max<Cycle>(params_.leadTime, 1);
            // Injection entries are always for future arrivals; in
            // wide-control mode leave the router's last input buffer in
            // reserve for parked-flit rescues (see FrRouter).
            const int min_free = params_.flitsPerControl > 1 ? 2 : 1;
            Cycle depart = ort_.findDeparture(
                min_depart, [](Cycle) { return true; }, min_free);
            bool spec = false;
            if (depart == kInvalidCycle && spec_allowed_) {
                // No first-hop buffer in sight: launch on a wire-only
                // reservation and gamble on one freeing by arrival.
                // The router nacks a lost gamble and the retransmit
                // buffer falls back to a reserved attempt.
                depart = ort_.findDeparture(
                    min_depart, [](Cycle) { return true; }, 0);
                spec = depart != kInvalidCycle;
            }
            if (depart == kInvalidCycle) {
                all = false;
                continue;
            }
            if (spec)
                ort_.reserveWire(depart);
            else
                ort_.reserve(depart);
            // Slots recycle once fired, so only an identical live tag
            // is a double booking; a stale tag is simply overwritten.
            PendingData& slot =
                pending_data_[static_cast<std::size_t>(depart)
                              & pending_mask_];
            FRFC_ASSERT(slot.cycle != depart,
                        "double-booked injection cycle");
            slot.cycle = depart;
            slot.flit = makeDataFlit(current_, entry.seq, now);
            slot.flit.spec = spec;
            ++pending_count_;
            if (current_last_depart_ == kInvalidCycle
                || depart > current_last_depart_)
                current_last_depart_ = depart;
            entry.scheduled = true;
            entry.spec = spec;
            entry.arrival = depart + 1;  // injection link latency
        }
        if (!all)
            return;

        if (ctrl_credits_[static_cast<std::size_t>(current_vc_)] <= 0)
            return;
        FRFC_ASSERT(ctrl_out_ != nullptr, "source control port unwired");
        if (!ctrl_out_->canPush(now))
            return;
        ControlFlit out = cf;
        out.clearScheduledMarks();
        ctrl_out_->push(now, out);
        --ctrl_credits_[static_cast<std::size_t>(current_vc_)];
        ++next_ctrl_;
    }
    if (next_ctrl_ >= ctrl_flits_.size())
        finishPacket(now);
}

void
FrSource::finishPacket(Cycle now)
{
    active_ = false;
    current_vc_ = kInvalidVc;
    if (!recovery_)
        return;
    // The ack-timeout clock starts at the latest reserved injection
    // cycle of this attempt — the tail data flit leaves then, so only
    // from there does silence mean loss. Reserved cycles can fire out
    // of packet order (a later entry may grab an earlier slot once
    // credits return), hence the running max, not the tail's slot.
    rtx_.armDeadline(current_.id, std::max(now, current_last_depart_));
}

void
FrSource::fireData(Cycle now)
{
    PendingData& slot =
        pending_data_[static_cast<std::size_t>(now) & pending_mask_];
    if (slot.cycle != now)
        return;
    FRFC_ASSERT(data_out_ != nullptr, "source data port unwired");
    slot.flit.injected = now;
    data_out_->push(now, slot.flit);
    flits_injected_.inc();
    slot.cycle = kInvalidCycle;
    --pending_count_;
}

}  // namespace frfc
