/**
 * @file
 * Flit-reservation flow control router (paper Figure 3).
 *
 * Control plane: control flits arrive on a narrow control network (v_c
 * virtual channels, credit flow control, up to ctrlWidth flits per link
 * per cycle), are routed (head flits; bodies follow their VCID), then
 * pass through the output scheduler, which reserves a departure cycle
 * for each led data flit in the output reservation table and relays the
 * reservation to the input scheduler. A timestamped credit returns
 * upstream immediately, freeing the buffer *from the scheduled departure
 * cycle* — before the data flit has even arrived.
 *
 * Data plane: data flits carry no routable header. They are written
 * into the input buffer pool on arrival, steered entirely by the input
 * reservation table, and driven onto the reserved output at the
 * reserved cycle. In the absence of contention a data flit departs the
 * cycle after it arrives (counted as a bypass).
 */

#ifndef FRFC_FRFC_FR_ROUTER_HPP
#define FRFC_FRFC_FR_ROUTER_HPP

#include <array>
#include <cstdint>
#include <memory>
#include <vector>

#include "common/ring_queue.hpp"
#include "common/rng.hpp"
#include "common/types.hpp"
#include "frfc/control_flit.hpp"
#include "frfc/input_table.hpp"
#include "frfc/output_table.hpp"
#include "proto/flit.hpp"
#include "sim/channel.hpp"
#include "sim/clocked.hpp"
#include "sim/wired.hpp"
#include "stats/accumulator.hpp"
#include "stats/metrics.hpp"
#include "topology/topology.hpp"

namespace frfc {

class FaultInjector;
class RoutingFunction;

/** Parameters shared by FR routers and sources. */
struct FrParams
{
    int dataBuffers = 6;        ///< b_d: data buffers per input pool
    int ctrlVcs = 2;            ///< v_c: control virtual channels
    int ctrlVcDepth = 3;        ///< control buffers per control VC
    int horizon = 32;           ///< s: scheduling horizon in cycles
    int ctrlWidth = 2;          ///< control flits per link per cycle
    Cycle dataLinkLatency = 4;  ///< t_p of data wires
    Cycle ctrlLinkLatency = 1;  ///< t_p of control and credit wires
    int flitsPerControl = 1;    ///< d: data flits led per control flit
    Cycle leadTime = 0;         ///< leading control: defer data N cycles
    bool allOrNothing = false;  ///< Section 5 scheduling ablation
    int speedup = 1;            ///< departures per input per cycle

    /**
     * Plesiochronous links (Section 5, synchronization): buffers are
     * held one extra cycle before release so a transmit-clock slip
     * cannot cause a buffer conflict. 0 = mesochronous operation.
     */
    Cycle creditSlack = 0;

    /**
     * Speculative flit reservation (fr.speculative): when a source
     * cannot find a departure with a free first-hop buffer it may
     * launch data on a wire-only reservation (ORT::reserveWire) and
     * gamble on a pool buffer being free on arrival. The first-hop
     * router drops the flit (pool full) or later evicts it (buffer
     * reclaimed by a reserved flit) and nacks the source, which falls
     * back to a reserved retransmission — hence fr.speculative
     * requires fault.recovery. Link faults themselves are configured
     * through the fault.* namespace and injected via FaultInjector
     * (sim/fault.hpp), not through these parameters.
     */
    bool speculative = false;

    /** Control buffers per input port (b_c). */
    int ctrlBuffers() const { return ctrlVcs * ctrlVcDepth; }
};

/** A router implementing flit-reservation flow control. */
class FrRouter : public Clocked
{
  public:
    /**
     * @param metrics registry to publish instruments into under
     *        `router.<node>.*` (see stats/metrics.hpp for the path
     *        scheme); null = instruments stay unpublished (standalone
     *        tests); accessors still work either way.
     */
    FrRouter(std::string name, NodeId node, const RoutingFunction& routing,
             const FrParams& params, Rng rng,
             MetricRegistry* metrics = nullptr);

    /** @{ Wiring (null for unwired mesh-edge ports). */
    void connectCtrlIn(PortId port, Channel<ControlFlit>* ch);
    void connectCtrlOut(PortId port, Channel<ControlFlit>* ch);
    void connectDataIn(PortId port, Channel<Flit>* ch);
    void connectDataOut(PortId port, Channel<Flit>* ch);
    void connectFrCreditIn(PortId port, Channel<FrCredit>* ch);
    void connectFrCreditOut(PortId port, Channel<FrCredit>* ch);
    void connectCtrlCreditIn(PortId port, Channel<Credit>* ch);
    void connectCtrlCreditOut(PortId port, Channel<Credit>* ch);

    /** Node-local wire carrying speculative-launch nacks back to this
     *  router's own source (wired when fr.speculative is on). */
    void connectNackOut(Channel<FrNack>* ch) { nack_out_ = ch; }
    /** @} */

    /**
     * Attach the network's per-node fault injector (sim/fault.hpp).
     * Arms link-fault handling on every non-local port — data-flit
     * drops, control-worm kills with oracle reconciliation (see
     * controlArrivals), advance-credit corruption — and switches every
     * input table fault-tolerant, since any drop turns downstream
     * reservations vacuous. The injector draws from its own RNG stream
     * (salt kFaultRngSalt + node) only for items that actually arrive,
     * so all kernels replay the identical fault sequence.
     */
    void setFaultInjector(FaultInjector* injector);

    void tick(Cycle now) override;

    /**
     * Quiescence: a router with no buffered control flits and no output
     * reservations has nothing self-scheduled — every future action
     * begins with a channel arrival (control flit, data flit, credit),
     * which re-wakes it. Queued control flits keep it clocked every
     * cycle (allocation draws the RNG each cycle they wait). With only
     * reservations outstanding it sleeps until the earliest committed
     * departure: the tables tolerate window jumps, departures fire only
     * at their reserved cycles, and the occupancy time-averages are
     * maintained inside the tables with exact event timestamps, so
     * expiring reservations never need a wake of their own.
     */
    Cycle nextWake(Cycle now) const override;

    /**
     * Slide every output table's window to @p now so pending expiries
     * land in the occupancy time-averages with their exact timestamps.
     * Called by FrNetwork::finalizeMetrics() before instruments are
     * read; a sleeping router may not have ticked for many cycles.
     */
    void syncMetrics(Cycle now);

    /**
     * Attach the run's validator. Propagates to every reservation
     * table (double-book / overflow / oversubscription checks) and
     * arms the advance-credit ledger hooks bound below.
     */
    void setValidator(Validator* validator);

    /**
     * Ledger id for the advance credits this router SENDS upstream
     * through input @p in (pushed by commitEntry). The upstream end of
     * the same link registers the matching bindCreditFeedback().
     */
    void bindCreditLedger(PortId in, int link);

    /**
     * Ledger id for the advance credits this router APPLIES from its
     * downstream neighbour on output @p out (drained from
     * fr_credit_in_ into that output's reservation table).
     */
    void bindCreditFeedback(PortId out, int link);

    /**
     * Fault injection (tests only): silently lose the next advance
     * credit that would be sent upstream through input @p in. The
     * ledger still counts it as sent — modeling a credit corrupted on
     * the wire — so the credit.conservation sweep must flag the link.
     */
    void testDropNextAdvanceCredit(PortId in);

    /**
     * Per-router invariant sweep: credit conservation on every output
     * table, plus the parked-flit orphan scan in paranoid mode.
     */
    void auditInvariants(Cycle now) const;

    /**
     * Externally visible effects only — forwarded/consumed/dropped
     * counters, buffered control flits, pool occupancy, reservation
     * and credit totals, control credits. Window positions and
     * scan caches are deliberately excluded: they move during
     * conforming no-op ticks (see Clocked::activityFingerprint).
     */
    std::uint64_t activityFingerprint() const override;

    /** @{ Statistics and inspection. */
    const InputReservationTable& inputTable(PortId port) const;
    const OutputReservationTable& outputTable(PortId port) const;
    const Accumulator& controlLeadAtDestination() const { return lead_; }
    std::int64_t dataFlitsForwarded() const
    {
        return data_forwarded_.value();
    }
    std::int64_t controlFlitsForwarded() const
    {
        return ctrl_forwarded_.value();
    }
    std::int64_t schedulingRetries() const
    {
        return sched_retries_.value();
    }
    std::int64_t dataFlitsDropped() const
    {
        return data_dropped_.value();
    }
    std::int64_t ctrlFlitsDropped() const
    {
        return ctrl_dropped_.value();
    }
    /** Data flits discarded because their control worm was killed
     *  (their buffer credit was already returned at kill time). */
    std::int64_t ctrlOrphanDrops() const
    {
        return ctrl_orphan_drops_.value();
    }
    std::int64_t creditsCorrupted() const
    {
        return credit_corrupted_.value();
    }
    std::int64_t specDropped() const { return spec_dropped_.value(); }
    std::int64_t specEvicted() const { return spec_evicted_.value(); }

    /** Data flits sent through output @p port since construction. */
    std::int64_t flitsForwarded(PortId port) const
    {
        return flits_out_[static_cast<std::size_t>(port)].value();
    }
    int bufferedControlFlits(PortId port) const;
    NodeId node() const { return node_; }
    const FrParams& params() const { return params_; }
    /** @} */

  private:
    /** Per-input control virtual channel. */
    struct CtrlVc
    {
        RingQueue<ControlFlit> queue;
        bool routed = false;
        bool active = false;  ///< output control VC granted
        PortId outPort = kInvalidPort;
        VcId outVc = kInvalidVc;
    };

    /** Per-output control virtual channel. */
    struct CtrlOutVc
    {
        bool busy = false;
        int credits = 0;
    };

    /** Control-VC allocation candidate (input VC -> output VC). */
    struct VcaRequest
    {
        PortId inPort;
        VcId inVc;
        PortId outPort;
        VcId outVc;
    };

    /** Switch allocation candidate (an active control VC head). */
    struct SwRequest
    {
        PortId inPort;
        VcId inVc;
    };

    void drainCredits(Cycle now);
    void controlVcAllocation();
    void controlSwitchAllocation(Cycle now);
    bool scheduleEntries(Cycle now, PortId in, PortId out,
                         ControlFlit& flit);
    bool scheduleEntriesAtomically(Cycle now, PortId in, PortId out,
                                   ControlFlit& flit);
    void commitEntry(Cycle now, PortId in, PortId out, ControlEntry& entry,
                     Cycle depart);
    void dataDepartures(Cycle now);
    void dataArrivals(Cycle now);
    void controlArrivals(Cycle now);

    /**
     * Oracle reconciliation for a control flit killed on the wire (see
     * controlArrivals): returns the upstream control-buffer credit and,
     * per carried entry, the upstream data-buffer credit the entry's
     * commit would have produced; already-parked data is freed, future
     * arrivals are doomed (discarded on arrival without a credit).
     */
    void killControlFlit(Cycle now, PortId port, ControlFlit& flit);

    /** Nack a speculative launch back to this router's source. */
    void pushNack(Cycle now, PacketId packet);

    CtrlVc& ctrlVc(PortId port, VcId vc);
    CtrlOutVc& ctrlOutVc(PortId port, VcId vc);

    NodeId node_;
    const RoutingFunction& routing_;
    FrParams params_;
    Rng rng_;

    /** Sanitizer context (see setValidator); null when disabled. */
    Validator* validator_ = nullptr;
    /** Link-fault source (see setFaultInjector); null = fault-free. */
    FaultInjector* fault_ = nullptr;
    /** Speculative-nack wire to this node's source (fr.speculative). */
    Channel<FrNack>* nack_out_ = nullptr;
    /** Worm-kill state per (input port, control VC): once a head is
     *  killed, body/tail flits of the same worm die with it. */
    std::vector<std::uint8_t> ctrl_kill_;
    /** Ledger ids per port; -1 = link not tracked. */
    std::array<int, kNumPorts> credit_send_link_{};
    std::array<int, kNumPorts> credit_apply_link_{};
    /** Fault-injection flags (testDropNextAdvanceCredit). */
    std::array<std::uint8_t, kNumPorts> drop_next_credit_{};

    /** Inbound channels live in wired-port lists: the per-tick drains
     *  and nextWake probes iterate only connected ports, in the same
     *  port-ascending order the old null-checked full scans used
     *  (drain order is semantic — see sim/wired.hpp). Outbound
     *  channels stay port-indexed for direct routed pushes. */
    WiredPorts<Channel<ControlFlit>> ctrl_in_;
    std::vector<Channel<ControlFlit>*> ctrl_out_;
    WiredPorts<Channel<Flit>> data_in_;
    std::vector<Channel<Flit>*> data_out_;
    WiredPorts<Channel<FrCredit>> fr_credit_in_;
    std::vector<Channel<FrCredit>*> fr_credit_out_;
    WiredPorts<Channel<Credit>> ctrl_credit_in_;
    std::vector<Channel<Credit>*> ctrl_credit_out_;

    /** Scratch buffers for channel drains (see Channel::drainInto). */
    std::vector<ControlFlit> ctrl_scratch_;
    std::vector<Flit> data_scratch_;
    std::vector<FrCredit> fr_credit_scratch_;
    std::vector<Credit> ctrl_credit_scratch_;

    /** Scratch state for the per-tick allocation phases — reused so the
     *  hot path never touches the allocator. */
    std::vector<VcaRequest> vca_requests_;
    std::vector<VcId> free_vc_scratch_;
    std::vector<std::uint8_t> vca_granted_;
    std::vector<std::size_t> vca_group_;
    std::vector<SwRequest> sw_requests_;
    std::vector<InputReservationTable::Departure> depart_scratch_;

    /** Control flits buffered across every control VC. While zero both
     *  allocation phases are no-op scans with no RNG draws, so tick()
     *  skips them (identically in both kernel modes) and nextWake()
     *  answers the stay-clocked question in O(1). */
    int ctrl_buffered_ = 0;
    std::vector<CtrlVc> ctrl_vcs_;        ///< [port * ctrlVcs + vc]
    std::vector<CtrlOutVc> ctrl_out_vcs_; ///< [port * ctrlVcs + vc]
    std::vector<std::unique_ptr<OutputReservationTable>> out_tables_;
    std::vector<std::unique_ptr<InputReservationTable>> in_tables_;

    Accumulator lead_;

    /** Instruments live here (cache-resident with the router state) and
     *  are attach*()ed to the registry, which only reads them at
     *  snapshot time. See stats/metrics.hpp. */
    Counter data_forwarded_;
    Counter ctrl_forwarded_;
    Counter ctrl_consumed_;
    Counter sched_retries_;
    Counter data_dropped_;
    Counter ctrl_dropped_;
    Counter ctrl_orphan_drops_;
    Counter credit_corrupted_;
    Counter spec_dropped_;
    Counter spec_evicted_;
    Counter advance_credits_;
    std::array<Counter, kNumPorts> flits_out_{};
    std::array<Counter, kNumPorts> res_commits_{};
    std::array<Counter, kNumPorts> res_denied_{};
    std::array<Counter, kNumPorts> res_horizon_full_{};
};

}  // namespace frfc

#endif  // FRFC_FRFC_FR_ROUTER_HPP
