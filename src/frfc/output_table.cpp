#include "frfc/output_table.hpp"

namespace frfc {

OutputReservationTable::OutputReservationTable(int horizon,
                                               int downstream_buffers,
                                               Cycle link_latency,
                                               bool infinite_buffers)
    : horizon_(horizon), buffers_(downstream_buffers),
      link_latency_(link_latency), infinite_(infinite_buffers),
      busy_(static_cast<std::size_t>(horizon), 0),
      free_(static_cast<std::size_t>(horizon), downstream_buffers)
{
    FRFC_ASSERT(horizon >= 2, "horizon must be at least 2 cycles");
    FRFC_ASSERT(infinite_buffers || downstream_buffers > 0,
                "downstream pool must hold at least one buffer");
    FRFC_ASSERT(link_latency >= 1 && link_latency < horizon,
                "link latency must fit inside the horizon");
}

void
OutputReservationTable::advance(Cycle now)
{
    FRFC_ASSERT(now >= window_start_, "window cannot move backwards");
    while (window_start_ < now) {
        // Slot window_start_ expires; it becomes the slot for
        // window_start_ + horizon, which inherits the buffer count of
        // the (previous) last slot and an idle channel.
        const std::size_t expired = index(window_start_);
        const std::size_t last = index(window_start_ - 1 + horizon_);
        busy_[expired] = 0;
        free_[expired] = free_[last];
        ++window_start_;
    }
}

void
OutputReservationTable::reserve(Cycle depart)
{
    FRFC_ASSERT(depart >= window_start_, "departure in the past");
    FRFC_ASSERT(depart <= windowEnd() - (infinite_ ? 0 : link_latency_),
                "departure too far in the future");
    std::uint8_t& busy = busy_[index(depart)];
    FRFC_ASSERT(!busy, "double reservation of cycle ", depart);
    busy = 1;
    if (infinite_)
        return;
    for (Cycle t = depart + link_latency_; t <= windowEnd(); ++t) {
        int& f = free_[index(t)];
        FRFC_ASSERT(f > 0, "reserving without a free buffer at ", t);
        --f;
    }
}

void
OutputReservationTable::credit(Cycle free_from)
{
    if (infinite_)
        return;
    const Cycle from = std::max(free_from, window_start_);
    FRFC_ASSERT(from <= windowEnd(),
                "credit for cycle ", free_from, " beyond horizon");
    for (Cycle t = from; t <= windowEnd(); ++t) {
        int& f = free_[index(t)];
        ++f;
        FRFC_ASSERT(f <= buffers_, "credit overflow at cycle ", t);
    }
}

}  // namespace frfc
