#include "frfc/output_table.hpp"

namespace frfc {

OutputReservationTable::OutputReservationTable(int horizon,
                                               int downstream_buffers,
                                               Cycle link_latency,
                                               bool infinite_buffers)
    : horizon_(horizon), buffers_(downstream_buffers),
      link_latency_(link_latency), infinite_(infinite_buffers),
      ring_size_(ringSlotsFor(horizon)), mask_(ring_size_ - 1),
      busy_words_((ring_size_ + 63) / 64, 0),
      free_(ring_size_, downstream_buffers),
      suffix_min_(ring_size_, downstream_buffers)
{
    FRFC_ASSERT(horizon >= 2, "horizon must be at least 2 cycles");
    FRFC_ASSERT(infinite_buffers || downstream_buffers > 0,
                "downstream pool must hold at least one buffer");
    FRFC_ASSERT(link_latency >= 1 && link_latency < horizon,
                "link latency must fit inside the horizon");
}

void
OutputReservationTable::advance(Cycle now)
{
    FRFC_ASSERT(now >= window_start_, "window cannot move backwards");
    // Quiescent fast path: with no reservations and every buffer count
    // at the maximum, each expiry step below is the identity — the new
    // slot inherits the same count and an idle channel — so the window
    // can jump straight to now. This is what lets a sleeping router
    // catch up in O(1) instead of replaying every skipped cycle. The
    // jump is sound even when the ring is wider than the horizon:
    // slots outside the window are parked at full capacity with clear
    // busy bits (see the expiry loop), so every slot the jump exposes
    // already holds the values the loop would have written.
    if (reserved_ == 0
        && suffix_min_[index(window_start_)] == buffers_) {
        window_start_ = now;
        return;
    }
    while (window_start_ < now) {
        // Slot window_start_ expires and the slot for
        // window_start_ + horizon enters the window, inheriting the
        // buffer count of the (previous) last slot and an idle
        // channel. Dropping the front slot leaves later suffix minima
        // untouched, and the new last slot's count equals the old last
        // slot's, so its suffix minimum is its own count and no
        // earlier minimum changes. The expired slot is parked at full
        // capacity so the quiescent jump above stays exact; with a
        // power-of-two ring the expired and entering slots are the
        // same slot only when the horizon is itself a power of two,
        // hence the park-then-write order.
        const std::size_t expired = index(window_start_);
        const std::size_t old_last = index(windowEnd());
        const std::size_t new_last = index(window_start_ + horizon_);
        if (bitAt(expired)) {
            --reserved_;
            clearBit(expired);
            // The reservation leaves the window the cycle after its
            // slot — the exact timestamp a per-cycle observer records.
            occupancy_.update(window_start_ + 1,
                              static_cast<double>(reserved_));
        }
        const int inherited = free_[old_last];
        free_[expired] = buffers_;
        suffix_min_[expired] = buffers_;
        free_[new_last] = inherited;
        suffix_min_[new_last] = inherited;
        ++window_start_;
    }
}

void
OutputReservationTable::reserve(Cycle depart)
{
    FRFC_ASSERT(depart >= window_start_, "departure in the past");
    FRFC_ASSERT(depart <= windowEnd() - (infinite_ ? 0 : link_latency_),
                "departure too far in the future");
    const std::size_t pos = index(depart);
    if (bitAt(pos)) {
        // A double-booked output cycle would send two headerless data
        // flits onto one wire in the same cycle — the silent-corruption
        // case the sanitizer exists for. Leave the table intact so a
        // non-fail-fast run stays analyzable past the report.
        if (validator_ != nullptr) {
            validator_->fail("res.double-book", window_start_, owner_,
                             port_,
                             "cycle " + std::to_string(depart)
                                 + " reserved twice");
            return;
        }
        panic("double reservation of cycle ", depart);
    }
    setBit(pos);
    ++reserved_;
    ++reserves_total_;
    if (depart < busy_hint_)
        busy_hint_ = depart;
    // The committing tick runs with window_start_ == now; a per-cycle
    // observer first sees the new count one cycle later.
    occupancy_.update(window_start_ + 1, static_cast<double>(reserved_));
    if (infinite_)
        return;
    // Every suffix [t, windowEnd()] with t >= the arrival loses exactly
    // this one buffer, so the cached minima drop by one in lockstep.
    const Cycle arrival = depart + link_latency_;
    std::size_t i = index(arrival);
    const std::size_t count =
        static_cast<std::size_t>(windowEnd() - arrival + 1);
    for (std::size_t k = 0; k < count; ++k) {
        int& f = free_[i];
        FRFC_ASSERT(f > 0, "reserving without a free buffer at ",
                    arrival + static_cast<Cycle>(k));
        --f;
        --suffix_min_[i];
        i = (i + 1) & mask_;
    }
    refreshSuffixBefore(arrival - 1);
}

void
OutputReservationTable::reserveWire(Cycle depart)
{
    FRFC_ASSERT(depart >= window_start_, "departure in the past");
    FRFC_ASSERT(depart <= windowEnd() - (infinite_ ? 0 : link_latency_),
                "departure too far in the future");
    const std::size_t pos = index(depart);
    if (bitAt(pos)) {
        if (validator_ != nullptr) {
            validator_->fail("res.double-book", window_start_, owner_,
                             port_,
                             "cycle " + std::to_string(depart)
                                 + " reserved twice (speculative)");
            return;
        }
        panic("double reservation of cycle ", depart);
    }
    setBit(pos);
    ++reserved_;
    if (depart < busy_hint_)
        busy_hint_ = depart;
    occupancy_.update(window_start_ + 1, static_cast<double>(reserved_));
    // No buffer-count or reserves_total_ updates: the speculative flit
    // holds no reserved buffer downstream and earns no advance credit.
}

void
OutputReservationTable::credit(Cycle free_from)
{
    if (infinite_)
        return;
    const Cycle from = std::max(free_from, window_start_);
    FRFC_ASSERT(from <= windowEnd(),
                "credit for cycle ", free_from, " beyond horizon");
    // A credit that would raise any slot above the pool capacity is a
    // duplicated or misrouted credit: report it (once) and refuse the
    // whole application so the table stays consistent.
    if (validator_ != nullptr) {
        std::size_t probe = index(from);
        for (Cycle t = from; t <= windowEnd(); ++t) {
            if (free_[probe] >= buffers_) {
                validator_->fail(
                    "credit.overflow", window_start_, owner_, port_,
                    "credit from cycle " + std::to_string(free_from)
                        + " exceeds capacity "
                        + std::to_string(buffers_) + " at cycle "
                        + std::to_string(t));
                return;
            }
            probe = (probe + 1) & mask_;
        }
    }
    ++credits_total_;
    std::size_t i = index(from);
    const std::size_t count =
        static_cast<std::size_t>(windowEnd() - from + 1);
    for (std::size_t k = 0; k < count; ++k) {
        int& f = free_[i];
        ++f;
        FRFC_ASSERT(f <= buffers_, "credit overflow at cycle ",
                    from + static_cast<Cycle>(k));
        ++suffix_min_[i];
        i = (i + 1) & mask_;
    }
    refreshSuffixBefore(from - 1);
}

void
OutputReservationTable::auditCreditConservation(Cycle now) const
{
    if (infinite_ || validator_ == nullptr)
        return;
    // Every reserve() subtracts one buffer from the window's last slot
    // and every accepted credit() adds one back; window slides copy
    // the last slot forward, so the identity holds at every instant.
    const std::int64_t outstanding = reserves_total_ - credits_total_;
    const int at_end = free_[index(windowEnd())];
    if (static_cast<std::int64_t>(buffers_) - outstanding
        == static_cast<std::int64_t>(at_end)) {
        return;
    }
    validator_->fail(
        "credit.conservation", now, owner_, port_,
        "free at horizon end " + std::to_string(at_end)
            + " != capacity " + std::to_string(buffers_)
            + " - outstanding " + std::to_string(outstanding) + " ("
            + std::to_string(reserves_total_) + " reserved, "
            + std::to_string(credits_total_) + " credited)");
}

void
OutputReservationTable::refreshSuffixBefore(Cycle from)
{
    Cycle t = std::min(from, windowEnd() - 1);
    if (t < window_start_)
        return;
    std::size_t i = index(t);
    for (;;) {
        const std::size_t next = (i + 1) & mask_;
        const int updated = std::min(free_[i], suffix_min_[next]);
        if (updated == suffix_min_[i])
            return;  // minima further back are built on this one
        suffix_min_[i] = updated;
        if (--t < window_start_)
            return;
        i = (i - 1) & mask_;
    }
}

}  // namespace frfc
