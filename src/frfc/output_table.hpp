/**
 * @file
 * Output reservation table (paper Figure 4a/4b).
 *
 * For every output channel, the table records — for each cycle in the
 * window [now, now + horizon - 1] — whether the channel is reserved
 * (busy) and how many flit buffers are free at the far end of the link.
 * Storage is a circular wheel reused as time expires; when the window
 * slides, the newly exposed slot inherits the previous last slot's
 * buffer count (nothing beyond the horizon has been scheduled, so the
 * count is constant past the end).
 *
 * Data layout (DESIGN.md §12): the wheel holds the smallest power of
 * two >= horizon slots so cycle -> slot is a single mask (`t & mask_`,
 * no division), and channel-busy state is a packed uint64_t bitmap so
 * the window scans behind findDeparture()/nextBusyCycleAfter() run a
 * word at a time (countr_zero over masked words) instead of a byte at
 * a time. Slots outside the live window are kept at full capacity and
 * bit-idle, which is what lets advance() jump a quiescent table to
 * `now` in O(1).
 *
 * Reserving a departure at t_d marks the channel busy during t_d and
 * decrements the free-buffer count for every cycle from t_d + t_p
 * (arrival downstream) to the horizon: the flit holds a downstream
 * buffer from its arrival until the downstream scheduler fixes its own
 * departure. The downstream input scheduler then returns a timestamped
 * credit that increments the count from that departure cycle onward —
 * this advance credit return is what gives flit-reservation flow
 * control its zero buffer-turnaround time.
 */

#ifndef FRFC_FRFC_OUTPUT_TABLE_HPP
#define FRFC_FRFC_OUTPUT_TABLE_HPP

#include <algorithm>
#include <bit>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "check/validator.hpp"
#include "common/log.hpp"
#include "common/types.hpp"
#include "stats/time_average.hpp"

namespace frfc {

/** Time-indexed channel and downstream-buffer reservations. */
class OutputReservationTable
{
  public:
    /**
     * @param horizon            scheduling horizon s in cycles
     * @param downstream_buffers buffer pool size at the far end
     * @param link_latency       data propagation delay t_p of this link
     * @param infinite_buffers   far end never runs out (ejection port)
     */
    OutputReservationTable(int horizon, int downstream_buffers,
                           Cycle link_latency,
                           bool infinite_buffers = false);

    /** Slide the window so it starts at @p now. */
    void advance(Cycle now);

    /**
     * Earliest legal departure time t_d >= @p min_depart such that the
     * channel is free at t_d, at least @p min_free downstream buffers
     * are free for every cycle in [t_d + link latency, horizon end],
     * and @p extra(t_d) holds (the input scheduler's
     * one-departure-per-cycle constraint). min_free > 1 implements the
     * reserved-buffer deadlock-avoidance rule used by wide-control-flit
     * mode (see FrRouter). Returns kInvalidCycle if no cycle in the
     * window qualifies.
     *
     * Buffer availability is a suffix-minimum: once the earliest
     * feasible arrival is known, everything later is feasible too.
     * The suffix minima are cached in suffix_min_ and maintained
     * incrementally by reserve()/credit()/advance(), so locating the
     * frontier is a binary search instead of an O(horizon) rescan on
     * every call — findDeparture dominates the scheduling hot path,
     * with several candidate lookups per router per cycle. Past the
     * frontier, free channel cycles come from the busy bitmap a word
     * at a time.
     */
    template <typename Predicate>
    Cycle
    findDeparture(Cycle min_depart, Predicate&& extra,
                  int min_free = 1) const
    {
        const Cycle lo = std::max(min_depart, window_start_);
        // The downstream arrival must be verifiable inside the window.
        const Cycle hi = windowEnd() - (infinite_ ? 0 : link_latency_);
        if (lo > hi)
            return kInvalidCycle;

        Cycle first = lo;
        if (!infinite_) {
            // suffix_min_ is non-decreasing in t, so the frontier —
            // the earliest arrival from which min_free buffers stay
            // free through the horizon — is found by binary search.
            Cycle a_lo = lo + link_latency_;
            Cycle a_hi = windowEnd();
            if (suffix_min_[index(a_hi)] < min_free)
                return kInvalidCycle;  // no feasible arrival at all
            while (a_lo < a_hi) {
                const Cycle mid = a_lo + (a_hi - a_lo) / 2;
                if (suffix_min_[index(mid)] >= min_free)
                    a_hi = mid;
                else
                    a_lo = mid + 1;
            }
            first = std::max(lo, a_lo - link_latency_);
        }
        for (Cycle t = scanWindow(first, hi, /*want_busy=*/false);
             t != kInvalidCycle;
             t = scanWindow(t + 1, hi, /*want_busy=*/false)) {
            if (extra(t))
                return t;
        }
        return kInvalidCycle;
    }

    /** Commit a reservation found by findDeparture(). */
    void reserve(Cycle depart);

    /**
     * Commit a speculative wire-only reservation (fr.speculative):
     * marks the channel busy at @p depart but leaves the downstream
     * free-buffer counts — and reservesTotal() — untouched, because no
     * first-hop buffer is being claimed. The flit gambles on finding a
     * pool buffer on arrival; the first-hop router never returns an
     * advance credit for it, so the credit-conservation identity is
     * unaffected. Found with findDeparture(..., min_free = 0).
     */
    void reserveWire(Cycle depart);

    /**
     * Apply a downstream credit: one buffer becomes free from
     * @p free_from onward (clamped into the window).
     */
    void credit(Cycle free_from);

    /**
     * Attach the run's validator: protocol violations (double-booked
     * cycles, credit overflow) then produce structured diagnostics —
     * and, when the validator is not failing fast, leave the table
     * uncorrupted — instead of panicking outright. @p node / @p port
     * locate this table in the diagnostics.
     */
    void
    setValidator(Validator* validator, std::string owner, PortId port)
    {
        validator_ = validator;
        owner_ = std::move(owner);
        port_ = port;
    }

    /**
     * Credit-conservation audit: every reserve() takes one downstream
     * buffer from the window's last slot and every credit() returns
     * one, so at all times
     *   free at windowEnd() == capacity - (reserves - credits),
     * i.e. credits outstanding plus free buffers equals the pool size
     * (the Backpressure-style conservation argument). Reports
     * `credit.conservation` on mismatch; no-op on infinite tables.
     */
    void auditCreditConservation(Cycle now) const;

    /** @{ Lifetime reserve()/credit() totals (conservation audits). */
    std::int64_t reservesTotal() const { return reserves_total_; }
    std::int64_t creditsTotal() const { return credits_total_; }
    /** @} */

    /**
     * True if no departure at or after @p min_depart can fit in the
     * current window — findDeparture() is doomed regardless of channel
     * or buffer state. Distinguishes horizon exhaustion from
     * contention-based denials in the metrics.
     */
    bool
    beyondHorizon(Cycle min_depart) const
    {
        return std::max(min_depart, window_start_)
            > windowEnd() - (infinite_ ? 0 : link_latency_);
    }

    /** @{ Inspection (tests, stats). */
    bool busyAt(Cycle t) const { return bitAt(index(checked(t))); }
    int freeBuffersAt(Cycle t) const { return free_[index(checked(t))]; }
    Cycle windowStart() const { return window_start_; }
    Cycle windowEnd() const { return window_start_ + horizon_ - 1; }
    int horizon() const { return horizon_; }
    Cycle linkLatency() const { return link_latency_; }
    /** Reserved (busy) cycles currently inside the window. */
    int reservedCount() const { return reserved_; }

    /**
     * Earliest reserved (busy) cycle strictly after @p after, or
     * kInvalidCycle if none. Drives the router's quiescence: departures
     * are the only time-driven output events, so a router with no
     * queued control work can sleep until this cycle. Busy cycles at or
     * before @p after are deliberately skipped — their expiry is
     * absorbed the next time advance() runs, with exact occupancy
     * timestamps, so they never require a wake of their own.
     */
    Cycle
    nextBusyCycleAfter(Cycle after) const
    {
        if (reserved_ == 0)
            return kInvalidCycle;
        // busy_hint_ is a lower bound on every busy cycle (reserve()
        // lowers it, expiry only removes early slots), so the scan can
        // start there and cache its landing point — amortized O(1) for
        // the per-tick quiescence checks instead of O(horizon). The
        // cache only moves when the scan covered everything from the
        // bound, i.e. when nothing before `start` was skipped.
        const Cycle lo = std::max(busy_hint_, window_start_);
        const Cycle start = std::max(lo, after + 1);
        const Cycle t = scanWindow(start, windowEnd(),
                                   /*want_busy=*/true);
        if (t != kInvalidCycle) {
            if (start == lo)
                busy_hint_ = t;
            return t;
        }
        if (start == lo)
            panic("reservedCount out of sync with busy bits");
        return kInvalidCycle;  // only already-expiring cycles remain
    }

    /**
     * Time-average of reservedCount(), maintained event-driven with
     * exact timestamps by reserve() and advance() — correct under
     * kernels that tick the owner only when something happens, provided
     * advance() has been run past every expired cycle before the
     * instrument is read (see FrRouter::syncMetrics).
     */
    TimeAverage& occupancy() { return occupancy_; }
    /** @} */

  private:
    static constexpr std::uint64_t kAllOnes = ~std::uint64_t{0};

    /** Smallest power of two >= @p horizon (wheel capacity). */
    static std::size_t
    ringSlotsFor(int horizon)
    {
        return std::bit_ceil(static_cast<std::size_t>(horizon));
    }

    std::size_t
    index(Cycle t) const
    {
        return static_cast<std::size_t>(t) & mask_;
    }

    Cycle
    checked(Cycle t) const
    {
        FRFC_ASSERT(t >= window_start_ && t <= windowEnd(),
                    "cycle ", t, " outside reservation window [",
                    window_start_, ", ", windowEnd(), "]");
        return t;
    }

    /** @{ Packed busy bitmap; bit position == slot index. */
    bool
    bitAt(std::size_t pos) const
    {
        return (busy_words_[pos >> 6] >> (pos & 63)) & 1u;
    }
    void
    setBit(std::size_t pos)
    {
        busy_words_[pos >> 6] |= std::uint64_t{1} << (pos & 63);
    }
    void
    clearBit(std::size_t pos)
    {
        busy_words_[pos >> 6] &= ~(std::uint64_t{1} << (pos & 63));
    }
    /** @} */

    /**
     * First cycle in [@p from, @p to] whose busy bit equals
     * @p want_busy, or kInvalidCycle. The cycle range maps to at most
     * two contiguous bit spans (split at the ring seam); each span is
     * scanned a word at a time with countr_zero, so the common case is
     * one masked load per call rather than a per-cycle branch.
     */
    Cycle
    scanWindow(Cycle from, Cycle to, bool want_busy) const
    {
        Cycle cursor = from;
        std::size_t pos = index(from);
        while (cursor <= to) {
            const std::size_t span =
                std::min(static_cast<std::size_t>(to - cursor) + 1,
                         ring_size_ - pos);
            const Cycle hit = scanSpan(pos, span, want_busy);
            if (hit >= 0)
                return cursor + hit;
            cursor += static_cast<Cycle>(span);
            pos = 0;
        }
        return kInvalidCycle;
    }

    /** Offset of the first matching bit in [pos, pos + span), or -1. */
    Cycle
    scanSpan(std::size_t pos, std::size_t span, bool want_busy) const
    {
        const std::uint64_t flip = want_busy ? 0 : kAllOnes;
        const std::size_t end = pos + span;
        std::size_t w = pos >> 6;
        std::uint64_t word =
            (busy_words_[w] ^ flip) & (kAllOnes << (pos & 63));
        for (;;) {
            const std::size_t word_end = (w + 1) << 6;
            if (word_end > end)
                word &= kAllOnes >> (word_end - end);
            if (word != 0) {
                const std::size_t hit =
                    (w << 6)
                    + static_cast<std::size_t>(std::countr_zero(word));
                return static_cast<Cycle>(hit)
                    - static_cast<Cycle>(pos);
            }
            if (word_end >= end)
                return -1;
            ++w;
            word = busy_words_[w] ^ flip;
        }
    }

    /**
     * Recompute suffix_min_[t] backwards from @p from down to the
     * window start, stopping at the first unchanged slot (earlier
     * minima cannot change once one propagation step is a no-op).
     */
    void refreshSuffixBefore(Cycle from);

    int horizon_;
    int buffers_;
    Cycle link_latency_;
    bool infinite_;
    /** Wheel capacity (power of two >= horizon_) and its index mask. */
    std::size_t ring_size_;
    std::size_t mask_;
    /** Sanitizer context; checks are skipped while null. The pointer
     *  is shared, so the scratch copies made by all-or-nothing
     *  scheduling keep reporting against the same validator. */
    Validator* validator_ = nullptr;
    std::string owner_;
    PortId port_ = kInvalidPort;
    std::int64_t reserves_total_ = 0;
    std::int64_t credits_total_ = 0;
    Cycle window_start_ = 0;
    int reserved_ = 0;  ///< busy slots in the window (metrics)
    /** Lower bound on the earliest busy cycle (nextBusyCycleAfter). */
    mutable Cycle busy_hint_ = 0;
    /** Reserved-count time-average (see occupancy()). */
    TimeAverage occupancy_;
    /** Channel-busy bitmap, one bit per wheel slot. Bits outside the
     *  live window are always clear (advance() clears on expiry). */
    std::vector<std::uint64_t> busy_words_;
    std::vector<int> free_;
    /** suffix_min_[index(t)] = min(free_[t .. windowEnd()]); the
     *  cached feasibility frontier behind findDeparture(). Slots
     *  outside the window hold buffers_ so the quiescent-jump
     *  invariant (everything at capacity) covers the whole ring. */
    std::vector<int> suffix_min_;
};

}  // namespace frfc

#endif  // FRFC_FRFC_OUTPUT_TABLE_HPP
