#include "frfc/input_table.hpp"

#include "common/log.hpp"

namespace frfc {

InputReservationTable::InputReservationTable(int horizon, int buffers,
                                             int speedup)
    : horizon_(horizon), speedup_(speedup),
      mask_(std::bit_ceil(static_cast<std::size_t>(horizon)) - 1),
      pool_(buffers), arrivals_(mask_ + 1), departs_(mask_ + 1),
      doomed_(mask_ + 1, kInvalidCycle)
{
    FRFC_ASSERT(horizon >= 2, "horizon must be at least 2 cycles");
    FRFC_ASSERT(speedup >= 1 && speedup <= kMaxSpeedup,
                "speedup out of range");
    parked_.reserve(static_cast<std::size_t>(buffers));
}

void
InputReservationTable::registerMetrics(MetricRegistry& reg,
                                       const std::string& prefix)
{
    reg.attachCounter(prefix + ".bypasses", bypasses_);
    reg.attachCounter(prefix + ".parked", parked_total_);
    reg.attachCounter(prefix + ".lost_arrivals", lost_arrivals_);
    reg.attachTimeAverage(prefix + ".occupancy", occupancy_);
}

void
InputReservationTable::advance(Cycle now)
{
    FRFC_ASSERT(now >= window_start_, "window cannot move backwards");
    if (live_rows_ == 0 && doomed_count_ == 0) {
        // Nothing scheduled: no row can expire, no fault can surface.
        window_start_ = now;
        return;
    }
    while (window_start_ < now) {
        // A doomed arrival whose data flit never showed (dropped in
        // flight on top of the killed control worm) expires silently.
        Cycle& doom = doomed_[index(window_start_)];
        if (doom == window_start_) {
            doom = kInvalidCycle;
            --doomed_count_;
        }
        // An expiring arrival row must have been consumed: the upstream
        // scheduler guaranteed the flit arrived during that cycle —
        // unless fault injection dropped it, in which case its
        // reservation executes vacuously (Section 5 error recovery).
        ArrivalSlot& arr = arrivals_[index(window_start_)];
        if (arr.cycle == window_start_ && fault_tolerant_) {
            voidDeparture(arr.depart, window_start_);
            arr.cycle = kInvalidCycle;
            --live_rows_;
            lost_arrivals_.inc();
        }
        FRFC_ASSERT(arr.cycle != window_start_,
                    "scheduled arrival at cycle ", window_start_,
                    " never materialized");
        const DepartSlot& dep = departs_[index(window_start_)];
        FRFC_ASSERT(dep.cycle != window_start_,
                    "scheduled departure at cycle ", window_start_,
                    " never executed");
        ++window_start_;
    }
}

bool
InputReservationTable::departSlotFree(Cycle t) const
{
    const DepartSlot& slot = departs_[index(t)];
    if (slot.cycle != t)
        return true;
    return slot.count < speedup_;
}

void
InputReservationTable::recordReservation(Cycle now, Cycle arrival,
                                         Cycle depart, PortId out)
{
    FRFC_ASSERT(depart > now, "departure must be in the future");
    FRFC_ASSERT(depart > arrival, "flit cannot leave before it arrives");

    DepartSlot& dslot = departs_[index(depart)];
    if (dslot.cycle != depart) {
        dslot.cycle = depart;
        dslot.count = 0;
        ++live_rows_;
    }
    if (dslot.count >= speedup_) {
        // More departures in one cycle than the buffer has read ports:
        // the extra flit would be silently dropped or delayed. Refuse
        // the reservation so the table stays consistent when the
        // validator is collecting rather than failing fast.
        if (validator_ != nullptr) {
            validator_->fail("res.slot-oversubscribed", now, owner_,
                             port_,
                             "departure slot "
                                 + std::to_string(depart) + " exceeds "
                                 + "speedup "
                                 + std::to_string(speedup_));
            return;
        }
        panic("departure slot ", depart, " over-subscribed");
    }
    DepartEntry& entry =
        dslot.entries[static_cast<std::size_t>(dslot.count++)];
    entry.out = out;
    entry.arrival = arrival;
    entry.buffer = kInvalidBuffer;
    entry.voided = false;  // slots recycle; clear any stale loss mark

    for (auto it = parked_.begin(); it != parked_.end(); ++it) {
        if (it->arrival == arrival) {
            // The flit beat its control flit here; bind it now.
            entry.buffer = it->buffer;
            parked_.erase(it);
            return;
        }
    }
    if (arrival < now && fault_tolerant_) {
        // The flit was dropped in flight before its control flit was
        // processed here: the fresh reservation is void on arrival.
        entry.voided = true;
        lost_arrivals_.inc();
        return;
    }
    FRFC_ASSERT(arrival >= now,
                "reservation for past arrival ", arrival,
                " with no parked flit");
    ArrivalSlot& aslot = arrivals_[index(arrival)];
    if (aslot.cycle == arrival) {
        // Two control flits claiming the same arrival cycle would make
        // the headerless data flit's steering ambiguous. Undo the
        // departure entry taken above so nothing dangles.
        if (validator_ != nullptr) {
            validator_->fail("res.double-book", now, owner_, port_,
                             "arrival cycle " + std::to_string(arrival)
                                 + " already has a reservation row");
            --dslot.count;
            if (dslot.count == 0) {
                dslot.cycle = kInvalidCycle;
                --live_rows_;
            }
            return;
        }
        panic("second reservation for arrival cycle ", arrival);
    }
    aslot.cycle = arrival;
    aslot.depart = depart;
    aslot.out = out;
    ++live_rows_;
}

void
InputReservationTable::acceptFlit(Cycle now, const Flit& flit)
{
    const BufferId buffer = pool_.allocate();
    if (buffer == kInvalidBuffer) {
        // Scheduling-time admission guaranteed a buffer for every flit
        // the upstream put on the wire; running dry means a data flit
        // arrived that no live reservation accounted for. Drop it here
        // (losing the flit, which conservation will also flag) rather
        // than corrupt the pool.
        if (validator_ != nullptr) {
            validator_->fail("data.unreserved-arrival", now, owner_,
                             port_,
                             "pool exhausted accepting "
                                 + flit.toString());
            return;
        }
        panic("input pool exhausted — reservation accounting broken (",
              flit.toString(), ")");
    }
    pool_.write(buffer, flit);
    if (flit.spec) {
        // Speculative occupancy is tracked so a reserved arrival can
        // reclaim the buffer (evictOneSpec). The bitmap bounds the pool
        // at 64 buffers — far above any configuration in use.
        FRFC_ASSERT(buffer < 64, "speculative pool too large for bitmap");
        spec_held_ |= std::uint64_t{1} << buffer;
    }
    noteOccupancy(now);

    ArrivalSlot& aslot = arrivals_[index(now)];
    if (aslot.cycle != now) {
        // No reservation yet: park on the schedule list.
        FRFC_ASSERT(!parkedAt(now),
                    "two flits parked for the same arrival cycle");
        parked_.push_back(ParkedFlit{now, buffer});
        parked_total_.inc();
        return;
    }

    // Bind the buffer into the matching departure entry.
    DepartSlot& dslot = departs_[index(aslot.depart)];
    FRFC_ASSERT(dslot.cycle == aslot.depart, "dangling departure link");
    bool bound = false;
    for (int i = 0; i < dslot.count; ++i) {
        DepartEntry& entry = dslot.entries[static_cast<std::size_t>(i)];
        if (entry.arrival == now && entry.buffer == kInvalidBuffer) {
            entry.buffer = buffer;
            bound = true;
            break;
        }
    }
    FRFC_ASSERT(bound, "no departure entry for arrival at ", now);
    if (aslot.depart == now + 1)
        bypasses_.inc();
    aslot.cycle = kInvalidCycle;
    --live_rows_;
}

void
InputReservationTable::markDoomed(Cycle arrival)
{
    FRFC_ASSERT(arrival >= window_start_
                    && arrival - window_start_
                        <= static_cast<Cycle>(mask_),
                "doomed arrival ", arrival, " outside window at ",
                window_start_);
    Cycle& doom = doomed_[index(arrival)];
    // One departure per upstream wire cycle means at most one arrival
    // per cycle on this port — a second doom of the same slot would be
    // a duplicated control entry.
    FRFC_ASSERT(doom != arrival, "arrival ", arrival, " doomed twice");
    doom = arrival;
    ++doomed_count_;
}

bool
InputReservationTable::consumeDoomed(Cycle now)
{
    Cycle& doom = doomed_[index(now)];
    if (doom != now)
        return false;
    doom = kInvalidCycle;
    --doomed_count_;
    return true;
}

bool
InputReservationTable::discardParked(Cycle now, Cycle t)
{
    for (auto it = parked_.begin(); it != parked_.end(); ++it) {
        if (it->arrival != t)
            continue;
        if (it->buffer < 64)
            spec_held_ &= ~(std::uint64_t{1} << it->buffer);
        pool_.release(it->buffer);
        parked_.erase(it);
        noteOccupancy(now);
        return true;
    }
    return false;
}

PacketId
InputReservationTable::evictOneSpec(Cycle now)
{
    if (spec_held_ == 0)
        return kInvalidPacket;
    const auto victim = static_cast<BufferId>(
        std::countr_zero(spec_held_));
    spec_held_ &= ~(std::uint64_t{1} << victim);
    const PacketId evicted = pool_.read(victim).packet;

    for (auto it = parked_.begin(); it != parked_.end(); ++it) {
        if (it->buffer == victim) {
            pool_.release(victim);
            parked_.erase(it);
            noteOccupancy(now);
            return evicted;
        }
    }
    // Bound into a departure entry: void it so the reserved output
    // cycle passes idle. The next hop already holds a reservation for
    // the flit; its fault-tolerant lost-arrival machinery reconciles,
    // exactly as for a flit dropped on the wire.
    for (DepartSlot& slot : departs_) {
        if (slot.cycle == kInvalidCycle)
            continue;
        for (int i = 0; i < slot.count; ++i) {
            DepartEntry& entry =
                slot.entries[static_cast<std::size_t>(i)];
            if (entry.buffer != victim || entry.voided)
                continue;
            entry.voided = true;
            entry.buffer = kInvalidBuffer;
            pool_.release(victim);
            noteOccupancy(now);
            return evicted;
        }
    }
    panic("spec-held buffer ", victim,
          " neither parked nor bound to a departure");
}

void
InputReservationTable::auditSpecHeld(Cycle now) const
{
    if (validator_ == nullptr || spec_held_ == 0)
        return;
    for (std::uint64_t bits = spec_held_; bits != 0; bits &= bits - 1) {
        const auto buffer =
            static_cast<BufferId>(std::countr_zero(bits));
        if (pool_.occupied(buffer))
            continue;
        validator_->fail("spec.held-not-allocated", now, owner_, port_,
                         "buffer " + std::to_string(buffer)
                             + " marked speculative but free");
    }
}

void
InputReservationTable::auditOrphans(Cycle now) const
{
    if (validator_ == nullptr || parked_.empty())
        return;
    // A parked flit waits for its control flit to clear the control
    // network and win a departure slot, and near saturation both can
    // take many window lengths — only an age no plausible congestion
    // produces marks the steering as corrupted. The bound is a
    // heuristic tripwire, deliberately far above the worst legitimate
    // parking time observed in the paper's saturated sweeps.
    const Cycle limit =
        std::max<Cycle>(static_cast<Cycle>(64 * horizon_), 4096);
    for (const ParkedFlit& p : parked_) {
        if (now - p.arrival <= limit)
            continue;
        validator_->fail(
            "data.orphan", now, owner_, port_,
            "flit parked since cycle " + std::to_string(p.arrival)
                + " (buffer " + std::to_string(p.buffer)
                + ") outlived any plausible control-plane delay");
    }
}

void
InputReservationTable::voidDeparture(Cycle depart, Cycle arrival)
{
    DepartSlot& slot = departs_[index(depart)];
    FRFC_ASSERT(slot.cycle == depart, "voiding a vanished departure");
    for (int i = 0; i < slot.count; ++i) {
        DepartEntry& entry = slot.entries[static_cast<std::size_t>(i)];
        if (entry.arrival == arrival && entry.buffer == kInvalidBuffer
            && !entry.voided) {
            entry.voided = true;
            return;
        }
    }
    std::string dump;
    for (int i = 0; i < slot.count; ++i) {
        const DepartEntry& e = slot.entries[static_cast<std::size_t>(i)];
        dump += " [arr=" + std::to_string(e.arrival)
            + " buf=" + std::to_string(e.buffer)
            + (e.voided ? " void]" : "]");
    }
    panic("no departure entry to void for arrival ", arrival,
          " at depart ", depart, ":", dump);
}

void
InputReservationTable::takeDeparturesInto(Cycle now,
                                          std::vector<Departure>& out)
{
    out.clear();
    DepartSlot& slot = departs_[index(now)];
    if (slot.cycle != now)
        return;
    for (int i = 0; i < slot.count; ++i) {
        DepartEntry& entry = slot.entries[static_cast<std::size_t>(i)];
        if (entry.voided)
            continue;  // lost flit: the reserved cycle passes idle
        FRFC_ASSERT(entry.buffer != kInvalidBuffer,
                    "unbound departure at cycle ", now,
                    " (flit never arrived?)");
        Departure dep;
        dep.out = entry.out;
        dep.flit = pool_.consume(entry.buffer);
        if (entry.buffer < 64
            && ((spec_held_ >> entry.buffer) & 1u) != 0) {
            // Past the first hop the flit travels on real reservations:
            // it stops being speculative (and evictable) on departure.
            spec_held_ &= ~(std::uint64_t{1} << entry.buffer);
            dep.flit.spec = false;
        }
        dep.bypass = entry.arrival + 1 == now;
        out.push_back(dep);
    }
    slot.cycle = kInvalidCycle;
    slot.count = 0;
    --live_rows_;
    if (!out.empty())
        noteOccupancy(now);
}

std::vector<InputReservationTable::Departure>
InputReservationTable::takeDepartures(Cycle now)
{
    std::vector<Departure> result;
    takeDeparturesInto(now, result);
    return result;
}

}  // namespace frfc
