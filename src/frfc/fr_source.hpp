/**
 * @file
 * Packet source for flit-reservation flow control.
 *
 * The source serves one PacketGenerator. Open-loop generators are
 * pre-scanned so the event kernel can sleep between births; closed-loop
 * generators (request-reply, memory, dependent traces) are ticked live
 * every cycle and additionally fed packet completions from the node's
 * ejection sink, which may mint reply packets ahead of the same-cycle
 * birth.
 *
 * Packet injection works exactly like forwarding inside a router
 * (Section 3): a packet's control flits first schedule the injection
 * times of the data flits they lead against the source's own output
 * reservation table (channel-busy wheel plus the router's input pool
 * credit counts), and only then enter the control network — up to
 * ctrlWidth control flits per cycle. Data flits later launch themselves
 * at their reserved cycles. In leading-control mode data departures are
 * additionally deferred leadTime cycles behind control injection.
 */

#ifndef FRFC_FRFC_FR_SOURCE_HPP
#define FRFC_FRFC_FR_SOURCE_HPP

#include <vector>

#include "common/ring_queue.hpp"
#include "common/rng.hpp"
#include "common/types.hpp"
#include "frfc/control_flit.hpp"
#include "frfc/fr_router.hpp"
#include "frfc/output_table.hpp"
#include "proto/flit.hpp"
#include "proto/recovery.hpp"
#include "traffic/generator.hpp"
#include "sim/channel.hpp"
#include "sim/clocked.hpp"

namespace frfc {

class PacketGenerator;
class PacketLedger;

/** Per-node open-loop source for flit-reservation networks. */
class FrSource : public Clocked
{
  public:
    /**
     * @param metrics registry to publish `source.<node>.*` counters
     *        into; null = keep private counters only
     */
    FrSource(std::string name, NodeId node, PacketGenerator* generator,
             PacketLedger* registry, const FrParams& params, Rng rng,
             MetricRegistry* metrics = nullptr);

    /** @{ Wiring toward the local router. */
    void connectCtrlOut(Channel<ControlFlit>* ch) { ctrl_out_ = ch; }
    void connectDataOut(Channel<Flit>* ch) { data_out_ = ch; }
    void connectFrCreditIn(Channel<FrCredit>* ch) { fr_credit_in_ = ch; }
    void connectCtrlCreditIn(Channel<Credit>* ch) { ctrl_credit_in_ = ch; }
    /** @} */

    /** Per-node completion feedback (closed-loop workloads only). */
    void connectCompletionIn(Channel<PacketCompletion>* ch)
    {
        completion_in_ = ch;
    }

    /**
     * End-to-end recovery (fault.recovery=1): track every created
     * packet in a retransmission buffer until the destination sink
     * acks complete delivery; an expired ack deadline (doubling per
     * attempt up to the backoff cap) or a speculative nack requeues
     * the packet under its original id. Duplicates are suppressed at
     * the sink, so retransmitting a partially delivered packet is safe.
     */
    void
    enableRecovery(Cycle ack_timeout, int backoff_cap, int max_attempts)
    {
        recovery_ = true;
        rtx_.configure(ack_timeout, backoff_cap, max_attempts);
    }

    /** One per destination, ascending: acks from that node's sink. */
    void connectAckIn(Channel<PacketCompletion>* ch)
    {
        ack_in_.push_back(ch);
    }

    /** Node-local speculative nacks from this node's router. */
    void connectNackIn(Channel<FrNack>* ch) { nack_in_ = ch; }

    /** Retransmission state (recovery sweeps and tests). */
    const RetransmitBuffer& retransmits() const { return rtx_; }

    void tick(Cycle now) override;

    /**
     * Quiescence: awake every cycle while a packet is in flight
     * (queued, emitting control flits, or holding reserved injection
     * slots). Otherwise the generator has been pre-scanned — one draw
     * per cycle, in stream order, stopping at the first birth — so the
     * source can sleep until the birth cycle (or until the scan window
     * needs refilling). Closed-loop sources instead stay awake every
     * cycle while generating, so the generator sees every cycle in
     * order. Credits and completions arriving mid-sleep re-wake the
     * source through the channel hook.
     */
    Cycle nextWake(Cycle now) const override;

    /** Packets generated but whose control flits are not all injected. */
    int queueLength() const;

    /** Stop/start generating new packets. */
    void setGenerating(bool on) { generating_ = on; }

    /** @{ Injection statistics (also in the metric registry). */
    std::int64_t packetsGenerated() const
    {
        return packets_generated_.value();
    }
    std::int64_t flitsInjected() const { return flits_injected_.value(); }
    /** @} */

    /** Attach the run's validator (propagates to the injection table). */
    void setValidator(Validator* validator);

    /**
     * Ledger id for the advance credits this source APPLIES from its
     * local router (the router's kLocal input sends them).
     */
    void bindCreditFeedback(int link) { credit_apply_link_ = link; }

    /** Credit conservation on the injection reservation table. */
    void
    auditInvariants(Cycle now) const
    {
        ort_.auditCreditConservation(now);
    }

    /**
     * Externally visible effects only: injection counters, queue and
     * in-flight state, reservation/credit totals, control credits.
     * Generator lookahead (next_gen_cycle_, birth_*) is excluded — it
     * legally advances during conforming no-op ticks.
     */
    std::uint64_t activityFingerprint() const override;

  private:
    struct PendingPacket
    {
        PacketId id;
        NodeId dest;
        int length;
        Cycle created;
        MessageClass cls;
    };

    void generate(Cycle now);
    void scanBirths(Cycle limit);
    void admitPacket(NodeId dest, int length, MessageClass cls,
                     Cycle now);
    void processCompletions(Cycle now);
    void drainRecovery(Cycle now);
    void finishPacket(Cycle now);
    void startNextPacket(Cycle now);
    void processControl(Cycle now);
    void fireData(Cycle now);
    Flit makeDataFlit(const PendingPacket& pkt, int seq, Cycle now) const;

    /** Cycles of generator lookahead scanned per idle wake. */
    static constexpr Cycle kGenLookahead = 256;

    NodeId node_;
    PacketGenerator* generator_;
    PacketLedger* registry_;
    FrParams params_;
    Rng rng_;
    bool generating_ = true;
    /** Generator consumes ejection feedback: tick it live every cycle
     *  (never pre-scan — feedback would invalidate scanned draws). */
    bool closed_loop_ = false;

    Channel<ControlFlit>* ctrl_out_ = nullptr;
    Channel<Flit>* data_out_ = nullptr;
    Channel<FrCredit>* fr_credit_in_ = nullptr;
    Channel<Credit>* ctrl_credit_in_ = nullptr;
    Channel<PacketCompletion>* completion_in_ = nullptr;
    std::vector<PacketCompletion> completion_scratch_;

    /** @{ End-to-end recovery (enableRecovery). Ack channels are
     *  drained destination-ascending; ack application is set-based, so
     *  the result is independent of shard-count-driven drain timing
     *  within a cycle. */
    bool recovery_ = false;
    RetransmitBuffer rtx_;
    std::vector<Channel<PacketCompletion>*> ack_in_;
    Channel<FrNack>* nack_in_ = nullptr;
    std::vector<PacketCompletion> ack_scratch_;
    std::vector<FrNack> nack_scratch_;
    std::vector<RetransmitRecord> expired_scratch_;
    /** @} */

    OutputReservationTable ort_;  ///< injection link + router pool
    /** Sanitizer context; -1 link = advance credits not tracked. */
    Validator* validator_ = nullptr;
    int credit_apply_link_ = -1;
    std::vector<int> ctrl_credits_;
    std::vector<FrCredit> fr_credit_scratch_;
    std::vector<Credit> ctrl_credit_scratch_;

    /**
     * Generator lookahead. The generator is consumed one draw per
     * cycle in stream order; the scan runs at most one birth ahead and
     * only past `now` while the source is otherwise idle (no packet in
     * flight means no competing draws from rng_), so the draw sequence
     * is identical to calling generate() every cycle.
     */
    Cycle next_gen_cycle_ = 0;   ///< first cycle not yet drawn
    bool birth_pending_ = false;
    Cycle birth_cycle_ = 0;
    NodeId birth_dest_ = 0;
    int birth_length_ = 0;
    MessageClass birth_cls_ = MessageClass::kRequest;

    RingQueue<PendingPacket> queue_;
    bool active_ = false;
    PendingPacket current_{};
    std::vector<ControlFlit> ctrl_flits_;
    std::size_t next_ctrl_ = 0;
    VcId current_vc_ = kInvalidVc;
    /** Latest reserved injection cycle of the active packet; when its
     *  last control flit is injected this is where the ack-timeout
     *  clock starts (the tail data flit fires then). */
    Cycle current_last_depart_ = kInvalidCycle;
    /** Speculative launch permitted for the active packet (first
     *  attempt only; see startNextPacket). */
    bool spec_allowed_ = false;

    /** A data flit holding a reserved injection cycle. */
    struct PendingData
    {
        Cycle cycle = kInvalidCycle;  ///< tag; live when == slot time
        Flit flit;
    };
    /**
     * Scheduled-injection wheel, indexed `cycle & pending_mask_`
     * (DESIGN.md §12). Injection departures come from ort_, so they
     * always land within one horizon of now, and the source stays
     * clocked until every one has fired — a power-of-two ring of
     * horizon slots therefore replaces the cycle-keyed hash map
     * exactly (distinct live cycles never collide).
     */
    std::vector<PendingData> pending_data_;
    std::size_t pending_mask_ = 0;
    int pending_count_ = 0;

    /** Instruments live here; the registry observes them when given. */
    Counter packets_generated_;
    Counter flits_injected_;
};

}  // namespace frfc

#endif  // FRFC_FRFC_FR_SOURCE_HPP
