#include "frfc/control_flit.hpp"

#include <sstream>

#include "common/log.hpp"

namespace frfc {

void
ControlFlit::addEntry(int seq, Cycle arrival)
{
    FRFC_ASSERT(numEntries < kMaxEntriesPerControl,
                "too many entries in a control flit");
    entries[static_cast<std::size_t>(numEntries)] =
        ControlEntry{seq, arrival, false};
    ++numEntries;
}

bool
ControlFlit::fullyScheduled() const
{
    for (int i = 0; i < numEntries; ++i) {
        if (!entries[static_cast<std::size_t>(i)].scheduled)
            return false;
    }
    return true;
}

void
ControlFlit::clearScheduledMarks()
{
    for (int i = 0; i < numEntries; ++i)
        entries[static_cast<std::size_t>(i)].scheduled = false;
}

std::string
ControlFlit::toString() const
{
    std::ostringstream os;
    os << "ctrl(pkt=" << packet << (head ? " H" : "") << (tail ? " T" : "")
       << " " << src << "->" << dest << " vc=" << vc << " entries=[";
    for (int i = 0; i < numEntries; ++i) {
        const auto& e = entries[static_cast<std::size_t>(i)];
        os << (i > 0 ? " " : "") << e.seq << "@" << e.arrival
           << (e.scheduled ? "*" : "");
    }
    os << "])";
    return os.str();
}

}  // namespace frfc
