#!/usr/bin/env python3
"""frfc-lint: repo-specific static checks for the FRFC simulator.

Rules (suppress one occurrence with `// frfc-lint: allow(<rule>)` on
the offending line; every suppression must carry a reason in a nearby
comment so reviewers can audit it):

  determinism   No rand()/srand()/std::random_device/time(NULL) outside
                src/common/rng.cpp. All randomness must flow through
                the seeded, counter-based Rng so runs stay reproducible
                and bit-identical across kernels.
  logging       No std::cout/std::cerr/printf/<iostream> in src/
                outside the log module (src/common/log.*) and the
                structured-output writers (src/harness/report.cpp,
                src/harness/json.cpp). Diagnostics go through
                common/log.hpp so verbosity stays controllable.
  wake-contract Every `class X : public Clocked` must declare
                nextWake. The base default is hot (now + 1), which
                silently defeats the event kernel's sleep scheduling.
  metric-paths  String literals passed to MetricRegistry registration
                calls must be lowercase dotted paths ([a-z0-9_.]),
                matching the documented `router.<node>.*` namespace.
  assert        Use FRFC_ASSERT (common/log.hpp), not bare assert():
                FRFC_ASSERT reports through the log module and stays
                active in release builds.
  namespace     No `using namespace std`.
  workload-keys Workload configuration is resolved only by
                src/traffic/workload.* (PR 7). Outside src/traffic/,
                the legacy flat key literals ("offered",
                "packet_length", "injection", "trace") are forbidden
                everywhere but tests/ (which exercise the compat
                path), and src/ files must spell "workload.*" keys
                through the k*Key constants of traffic/workload.hpp
                rather than raw string literals. Benches and examples
                may write "workload.*" literals (they model user
                config files).
  hot-containers
                No std::unordered_map/std::map/std::deque declarations
                in the router hot-path headers and sources (src/frfc/,
                src/vc/): PR 8 moved those paths onto flat rings,
                bitmaps, and RingQueue (DESIGN.md section 12); a
                node-based container reintroduces per-element
                allocation and pointer chasing. Cold paths may suppress
                with an allow() carrying a justification.
  fault-rng     Fault injection draws its randomness only inside the
                fault framework (src/sim/fault.*). Elsewhere in the
                data plane (src/frfc/, src/vc/, src/network/,
                src/proto/) the probability draws nextBool()/
                nextDouble() are forbidden — a stray per-component
                draw desynchronizes the documented RNG stream layout
                and breaks kernel/shard bit-identity — and no src/
                file outside the framework may spell a "fault.*"
                config-key literal: FaultPlan::fromConfig is the
                single resolution point.
  shard-safety  No mutable static or thread_local variables in src/:
                components run concurrently on parallel-kernel shard
                threads, so hidden shared state is a data race and a
                determinism leak. Shared bookkeeping must be shard-
                owned, deferred to the window-boundary hook, or passed
                through the mailbox API (DESIGN.md section 10).

Exit status: 0 when clean, 1 when any finding is reported, 2 on usage
errors. Requires only the Python 3 standard library.
"""

import argparse
import re
import sys
from pathlib import Path

CXX_SUFFIXES = {".cpp", ".hpp", ".cc", ".hh", ".h"}

# Directories scanned relative to the repo root. Tests and benches are
# held to the same determinism/assert/namespace bar as src/.
SCAN_DIRS = ["src", "tests", "bench", "examples", "tools"]

ALLOW_RE = re.compile(r"//\s*frfc-lint:\s*allow\(([a-z-]+)\)")
LINE_COMMENT_RE = re.compile(r"//(?!\s*frfc-lint:).*$")
STRING_RE = re.compile(r'"(?:[^"\\]|\\.)*"')

RULES = {}


def rule(name):
    def wrap(fn):
        RULES[name] = fn
        return fn
    return wrap


def relpath(path, root):
    return path.relative_to(root).as_posix()


def strip_comment(line):
    """Drop a trailing // comment but keep frfc-lint directives."""
    return LINE_COMMENT_RE.sub("", line)


DETERMINISM_ALLOWED = {"src/common/rng.cpp"}
DETERMINISM_RE = re.compile(
    r"(?<![\w:])(?:s?rand\s*\(|std::random_device"
    r"|time\s*\(\s*(?:NULL|nullptr|0)\s*\))")


@rule("determinism")
def check_determinism(rel, lines, report):
    if rel in DETERMINISM_ALLOWED:
        return
    for num, line in enumerate(lines, 1):
        code = STRING_RE.sub('""', strip_comment(line))
        if DETERMINISM_RE.search(code):
            report(num, "raw randomness/time source; use the seeded "
                        "Rng from common/rng.hpp")


LOGGING_ALLOWED = {
    "src/common/log.cpp", "src/common/log.hpp",
    "src/harness/report.cpp",  # writes the table/CSV reports
    "src/harness/json.cpp",    # writes structured JSON output
}
LOGGING_RE = re.compile(
    r"std::c(?:out|err)\b|(?<![\w:])f?printf\s*\(|#\s*include\s*<iostream>")


@rule("logging")
def check_logging(rel, lines, report):
    if not rel.startswith("src/") or rel in LOGGING_ALLOWED:
        return
    for num, line in enumerate(lines, 1):
        code = STRING_RE.sub('""', strip_comment(line))
        if LOGGING_RE.search(code):
            report(num, "direct console output in src/; route it "
                        "through common/log.hpp")


CLOCKED_RE = re.compile(r"\bclass\s+(\w+)\s*(?:final\s*)?:\s*public\s+Clocked\b")


@rule("wake-contract")
def check_wake_contract(rel, lines, report):
    text = "".join(lines)
    for match in CLOCKED_RE.finditer(text):
        # The override must appear after the class head; a textual scan
        # is enough because subclasses live in a single header each.
        rest = text[match.end():]
        if "nextWake" not in rest:
            num = text.count("\n", 0, match.start()) + 1
            report(num, "Clocked subclass '" + match.group(1)
                        + "' does not declare nextWake; the base "
                        "default runs hot every cycle")


METRIC_CALL_RE = re.compile(
    r"\.\s*(?:counter|gauge|timeAverage|histogram|attachCounter"
    r"|attachGauge|attachTimeAverage)\s*\(")
METRIC_PATH_RE = re.compile(r"^[a-z0-9_.]*$")


@rule("metric-paths")
def check_metric_paths(rel, lines, report):
    if not rel.startswith("src/"):
        return
    for num, line in enumerate(lines, 1):
        if not METRIC_CALL_RE.search(strip_comment(line)):
            continue
        for lit in STRING_RE.findall(strip_comment(line)):
            body = lit[1:-1]
            if not METRIC_PATH_RE.match(body):
                report(num, "metric path literal " + lit + " must be "
                            "lowercase [a-z0-9_.]")


ASSERT_RE = re.compile(r"(?<![\w_])assert\s*\(")


@rule("assert")
def check_assert(rel, lines, report):
    for num, line in enumerate(lines, 1):
        code = STRING_RE.sub('""', strip_comment(line))
        if "static_assert" in code:
            code = code.replace("static_assert", "")
        if ASSERT_RE.search(code):
            report(num, "bare assert(); use FRFC_ASSERT from "
                        "common/log.hpp")


FAULT_FRAMEWORK = {"src/sim/fault.hpp", "src/sim/fault.cpp"}
FAULT_DRAW_DIRS = ("src/frfc/", "src/vc/", "src/network/", "src/proto/")
FAULT_DRAW_RE = re.compile(r"\.\s*next(?:Bool|Double)\s*\(")


@rule("fault-rng")
def check_fault_rng(rel, lines, report):
    if rel in FAULT_FRAMEWORK:
        return
    for num, line in enumerate(lines, 1):
        stripped = strip_comment(line)
        if (rel.startswith(FAULT_DRAW_DIRS)
                and FAULT_DRAW_RE.search(STRING_RE.sub('""', stripped))):
            report(num, "probability draw in the data plane; fault "
                        "decisions must flow through FaultInjector "
                        "(sim/fault.hpp) so the RNG stream layout stays "
                        "kernel- and shard-invariant")
        if rel.startswith("src/"):
            for lit in STRING_RE.findall(stripped):
                if lit.startswith('"fault.'):
                    report(num, "raw fault.* config key " + lit
                                + " outside the fault framework; "
                                "FaultPlan::fromConfig (sim/fault.cpp) "
                                "is the single resolution point")


SHARD_THREAD_LOCAL_RE = re.compile(r"\bthread_local\b")
# A `static` variable declaration: `static <type> name =|{|;`. Static
# member/free *functions* carry a '(' after the name and don't match;
# `static const`/`static constexpr` are immutable and exempt.
SHARD_STATIC_RE = re.compile(
    r"\bstatic\s+(?!const\b|constexpr\b|inline\s+const)"
    r"[\w:<>,*&\s]+?\s\w+\s*(?:=|\{|;)")


@rule("shard-safety")
def check_shard_safety(rel, lines, report):
    if not rel.startswith("src/"):
        return
    for num, line in enumerate(lines, 1):
        code = STRING_RE.sub('""', strip_comment(line))
        if "static_assert" in code:
            code = code.replace("static_assert", "")
        if SHARD_THREAD_LOCAL_RE.search(code):
            report(num, "thread_local in a simulation component; use "
                        "shard-owned or boundary-replayed state "
                        "(DESIGN.md section 10)")
        elif SHARD_STATIC_RE.search(code):
            report(num, "mutable static shared across shard threads; "
                        "route it through the mailbox/boundary API "
                        "(DESIGN.md section 10)")


# Exact legacy workload key literals; "workload."-prefixed literals are
# matched separately so misspellings like "workload.offred" still show
# up as raw literals in src/.
WORKLOAD_LEGACY_LITERALS = {
    '"offered"', '"packet_length"', '"injection"', '"trace"'}
@rule("workload-keys")
def check_workload_keys(rel, lines, report):
    # tests/ exercise the legacy-key compatibility path on purpose, and
    # src/traffic/ owns the workload vocabulary (resolver, generator
    # describe() labels, trace column names).
    if rel.startswith("tests/") or rel.startswith("src/traffic/"):
        return
    for num, line in enumerate(lines, 1):
        for lit in STRING_RE.findall(strip_comment(line)):
            if lit in WORKLOAD_LEGACY_LITERALS:
                report(num, "legacy workload key literal " + lit
                            + "; use the workload.* namespace (resolved "
                            "in traffic/workload.hpp)")
            elif lit.startswith('"workload.') and rel.startswith("src/"):
                report(num, "raw workload key literal " + lit
                            + " in src/; use the k*Key constants from "
                            "traffic/workload.hpp")


# Hot-path directories that must stay on flat storage (DESIGN.md §12).
HOT_CONTAINER_DIRS = ("src/frfc/", "src/vc/")
HOT_CONTAINER_RE = re.compile(r"\bstd::(unordered_map|map|deque)\b")


@rule("hot-containers")
def check_hot_containers(rel, lines, report):
    if not rel.startswith(HOT_CONTAINER_DIRS):
        return
    for num, line in enumerate(lines, 1):
        code = STRING_RE.sub('""', strip_comment(line))
        match = HOT_CONTAINER_RE.search(code)
        if match:
            report(num, "std::" + match.group(1) + " in a router "
                        "hot path; use a flat ring/bitmap/RingQueue "
                        "(DESIGN.md section 12)")


NAMESPACE_RE = re.compile(r"\busing\s+namespace\s+std\b")


@rule("namespace")
def check_namespace(rel, lines, report):
    for num, line in enumerate(lines, 1):
        if NAMESPACE_RE.search(strip_comment(line)):
            report(num, "using namespace std")


def lint_file(path, root, findings):
    rel = relpath(path, root)
    try:
        lines = path.read_text(encoding="utf-8").splitlines(keepends=True)
    except UnicodeDecodeError:
        findings.append((rel, 0, "encoding", "file is not valid UTF-8"))
        return
    for name, check in RULES.items():
        def report(num, message, name=name):
            line = lines[num - 1] if 0 < num <= len(lines) else ""
            allow = ALLOW_RE.search(line)
            if allow and allow.group(1) == name:
                return
            findings.append((rel, num, name, message))
        check(rel, lines, report)


def main(argv):
    parser = argparse.ArgumentParser(
        prog="frfc_lint", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("paths", nargs="*",
                        help="files or directories to lint "
                             "(default: the standard repo dirs)")
    parser.add_argument("--root", default=None,
                        help="repo root (default: parent of tools/)")
    parser.add_argument("--list-rules", action="store_true",
                        help="print rule names and exit")
    args = parser.parse_args(argv)

    if args.list_rules:
        for name in sorted(RULES):
            print(name)
        return 0

    root = Path(args.root).resolve() if args.root \
        else Path(__file__).resolve().parent.parent
    targets = [Path(p).resolve() for p in args.paths] \
        or [root / d for d in SCAN_DIRS]

    files = []
    for target in targets:
        if target.is_file():
            files.append(target)
        elif target.is_dir():
            files.extend(p for p in sorted(target.rglob("*"))
                         if p.suffix in CXX_SUFFIXES)

    findings = []
    for path in files:
        lint_file(path, root, findings)

    for rel, num, name, message in findings:
        print("%s:%d: [%s] %s" % (rel, num, name, message))
    if findings:
        print("frfc-lint: %d finding(s) in %d file(s) checked"
              % (len(findings), len(files)), file=sys.stderr)
        return 1
    print("frfc-lint: clean (%d files, %d rules)"
          % (len(files), len(RULES)), file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
