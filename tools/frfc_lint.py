#!/usr/bin/env python3
"""frfc-lint: textual, single-line style checks for the FRFC simulator.

This is the *textual* half of the repo's static checks: rules whose
whole truth lives on one source line. Everything that needs real
program structure — the Clocked/nextWake quiescence contract,
determinism/shard-safety, fault-RNG centralization, hot-path container
bans, config-key and metric-path schemas, module layering — lives in
the AST-grade analyzer (tools/frfc_analyzer; DESIGN.md §14) and was
deleted from this lint when it migrated there.

Rules (suppress one occurrence with `// frfc-lint: allow(<rule>)` on
the offending line; every suppression must carry a reason in a nearby
comment so reviewers can audit it):

  logging       No std::cout/std::cerr/printf/<iostream> in src/
                outside the log module (src/common/log.*) and the
                structured-output writers (src/harness/report.cpp,
                src/harness/json.cpp). Diagnostics go through
                common/log.hpp so verbosity stays controllable.
  assert        Use FRFC_ASSERT (common/log.hpp), not bare assert():
                FRFC_ASSERT reports through the log module and stays
                active in release builds.
  namespace     No `using namespace std`.
  workload-keys Workload configuration is resolved only by
                src/traffic/workload.* (PR 7). Outside src/traffic/,
                the legacy flat key literals ("offered",
                "packet_length", "injection", "trace") are forbidden
                everywhere but tests/ (which exercise the compat
                path), and src/ files must spell "workload.*" keys
                through the k*Key constants of traffic/workload.hpp
                rather than raw string literals. Benches and examples
                may write "workload.*" literals (they model user
                config files).

Exit status: 0 when clean, 1 when any finding is reported, 2 on usage
errors. Requires only the Python 3 standard library.
"""

import argparse
import re
import sys
from pathlib import Path

CXX_SUFFIXES = {".cpp", ".hpp", ".cc", ".hh", ".h"}

# Directories scanned relative to the repo root. Tests and benches are
# held to the same assert/namespace bar as src/. The analyzer's
# fixture corpus is deliberate-violation material and is excluded.
SCAN_DIRS = ["src", "tests", "bench", "examples", "tools"]
EXCLUDE_PREFIXES = ("tests/analyzer/fixtures/",)

ALLOW_RE = re.compile(r"//\s*frfc-lint:\s*allow\(([a-z-]+)\)")
LINE_COMMENT_RE = re.compile(r"//(?!\s*frfc-lint:).*$")
STRING_RE = re.compile(r'"(?:[^"\\]|\\.)*"')

RULES = {}


def rule(name):
    def wrap(fn):
        RULES[name] = fn
        return fn
    return wrap


def relpath(path, root):
    return path.relative_to(root).as_posix()


def strip_comment(line):
    """Drop a trailing // comment but keep frfc-lint directives."""
    return LINE_COMMENT_RE.sub("", line)


LOGGING_ALLOWED = {
    "src/common/log.cpp", "src/common/log.hpp",
    "src/harness/report.cpp",  # writes the table/CSV reports
    "src/harness/json.cpp",    # writes structured JSON output
}
LOGGING_RE = re.compile(
    r"std::c(?:out|err)\b|(?<![\w:])f?printf\s*\(|#\s*include\s*<iostream>")


@rule("logging")
def check_logging(rel, lines, report):
    if not rel.startswith("src/") or rel in LOGGING_ALLOWED:
        return
    for num, line in enumerate(lines, 1):
        code = STRING_RE.sub('""', strip_comment(line))
        if LOGGING_RE.search(code):
            report(num, "direct console output in src/; route it "
                        "through common/log.hpp")


ASSERT_RE = re.compile(r"(?<![\w_])assert\s*\(")


@rule("assert")
def check_assert(rel, lines, report):
    for num, line in enumerate(lines, 1):
        code = STRING_RE.sub('""', strip_comment(line))
        if "static_assert" in code:
            code = code.replace("static_assert", "")
        if ASSERT_RE.search(code):
            report(num, "bare assert(); use FRFC_ASSERT from "
                        "common/log.hpp")


# Exact legacy workload key literals; "workload."-prefixed literals are
# matched separately so misspellings like "workload.offred" still show
# up as raw literals in src/.
WORKLOAD_LEGACY_LITERALS = {
    '"offered"', '"packet_length"', '"injection"', '"trace"'}


@rule("workload-keys")
def check_workload_keys(rel, lines, report):
    # tests/ exercise the legacy-key compatibility path on purpose, and
    # src/traffic/ owns the workload vocabulary (resolver, generator
    # describe() labels, trace column names).
    if rel.startswith("tests/") or rel.startswith("src/traffic/"):
        return
    for num, line in enumerate(lines, 1):
        for lit in STRING_RE.findall(strip_comment(line)):
            if lit in WORKLOAD_LEGACY_LITERALS:
                report(num, "legacy workload key literal " + lit
                            + "; use the workload.* namespace (resolved "
                            "in traffic/workload.hpp)")
            elif lit.startswith('"workload.') and rel.startswith("src/"):
                report(num, "raw workload key literal " + lit
                            + " in src/; use the k*Key constants from "
                            "traffic/workload.hpp")


NAMESPACE_RE = re.compile(r"\busing\s+namespace\s+std\b")


@rule("namespace")
def check_namespace(rel, lines, report):
    for num, line in enumerate(lines, 1):
        if NAMESPACE_RE.search(strip_comment(line)):
            report(num, "using namespace std")


def lint_file(path, root, findings):
    rel = relpath(path, root)
    try:
        lines = path.read_text(encoding="utf-8").splitlines(keepends=True)
    except UnicodeDecodeError:
        findings.append((rel, 0, "encoding", "file is not valid UTF-8"))
        return
    for name, check in RULES.items():
        def report(num, message, name=name):
            line = lines[num - 1] if 0 < num <= len(lines) else ""
            allow = ALLOW_RE.search(line)
            if allow and allow.group(1) == name:
                return
            findings.append((rel, num, name, message))
        check(rel, lines, report)


def main(argv):
    parser = argparse.ArgumentParser(
        prog="frfc_lint", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("paths", nargs="*",
                        help="files or directories to lint "
                             "(default: the standard repo dirs)")
    parser.add_argument("--root", default=None,
                        help="repo root (default: parent of tools/)")
    parser.add_argument("--list-rules", action="store_true",
                        help="print rule names and exit")
    args = parser.parse_args(argv)

    if args.list_rules:
        for name in sorted(RULES):
            print(name)
        return 0

    root = Path(args.root).resolve() if args.root \
        else Path(__file__).resolve().parent.parent
    targets = [Path(p).resolve() for p in args.paths] \
        or [root / d for d in SCAN_DIRS]

    files = []
    for target in targets:
        if target.is_file():
            files.append(target)
        elif target.is_dir():
            files.extend(
                p for p in sorted(target.rglob("*"))
                if p.suffix in CXX_SUFFIXES
                and not relpath(p, root).startswith(EXCLUDE_PREFIXES))

    findings = []
    for path in files:
        lint_file(path, root, findings)

    for rel, num, name, message in findings:
        print("%s:%d: [%s] %s" % (rel, num, name, message))
    if findings:
        print("frfc-lint: %d finding(s) in %d file(s) checked"
              % (len(findings), len(files)), file=sys.stderr)
        return 1
    print("frfc-lint: clean (%d files, %d rules)"
          % (len(files), len(RULES)), file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
