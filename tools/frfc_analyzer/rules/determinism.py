"""determinism.*: shard-safety and reproducibility rules for src/.

Components run concurrently on parallel-kernel shard threads and every
run must be bit-identical across stepped|event|parallel kernels
(DESIGN.md §10), so simulation code may hold no hidden shared state
and draw on no ambient entropy:

  determinism.static        mutable namespace-scope variable, mutable
                            static data member, or mutable
                            function-local static
  determinism.thread-local  any thread_local variable
  determinism.random        std::random_device, rand()/srand(),
                            time(NULL)-style wall-entropy (all
                            randomness flows through common/rng.hpp;
                            rng.cpp itself is the one exemption)
  determinism.wall-clock    std::chrono::*_clock::now() — wall time
                            must never feed simulation-visible state
                            (report-only timing sites carry a baseline
                            suppression naming the justification)
  determinism.unordered-iter  range-for over an unordered container —
                            iteration order is pointer/hash dependent,
                            so any simulation-visible effect of the
                            loop body breaks bit-identity
"""

import re
from typing import List

from ..ir import Finding, Program
from . import Context, family

_DOCS = {
    "determinism.static": "mutable static state in src/ (shard-safety)",
    "determinism.thread-local": "thread_local in src/ (shard-safety)",
    "determinism.random": "ambient entropy source in src/; use the "
                          "seeded Rng (common/rng.hpp)",
    "determinism.wall-clock": "wall-clock read in src/; wall time must "
                              "not feed simulation-visible state",
    "determinism.unordered-iter": "iteration over an unordered "
                                  "container in src/ (order is not "
                                  "deterministic)",
}

_RNG_EXEMPT = {"src/common/rng.cpp", "src/common/rng.hpp"}

_CLOCKS = ("steady_clock", "system_clock", "high_resolution_clock")

_UNORDERED_RE = re.compile(r"\bstd\s*::\s*unordered_(map|set)\b")
_ID_RE = re.compile(r"[A-Za-z_]\w*")


@family("determinism", _DOCS)
def scan(program: Program, ctx: Context) -> List[Finding]:
    findings: List[Finding] = []
    for tu in program.units:
        if not tu.path.startswith("src/"):
            continue

        for v in tu.vars:
            if v.is_thread_local:
                findings.append(Finding(
                    rule="determinism.thread-local", file=tu.path,
                    line=v.line,
                    message="thread_local '%s'; components share "
                            "shard threads — use shard-owned or "
                            "boundary-replayed state (DESIGN.md §10)"
                            % v.name))
                continue
            mutable_static = (
                (v.scope == "namespace" and not v.is_const)
                or (v.scope == "class" and v.is_static
                    and not v.is_const)
                or (v.scope == "function" and v.is_static
                    and not v.is_const))
            if mutable_static:
                findings.append(Finding(
                    rule="determinism.static", file=tu.path,
                    line=v.line,
                    message="mutable %s-scope static '%s' is shared "
                            "across shard threads; route it through "
                            "the mailbox/boundary API (DESIGN.md §10)"
                            % (v.scope, v.name)))

        if tu.path not in _RNG_EXEMPT:
            for t in tu.type_uses:
                if t.name == "std::random_device":
                    findings.append(Finding(
                        rule="determinism.random", file=tu.path,
                        line=t.line,
                        message="std::random_device; all randomness "
                                "flows through the seeded Rng "
                                "(common/rng.hpp)"))
            for c in tu.calls:
                if c.callee in ("rand", "srand") and c.receiver in (
                        "", "std"):
                    findings.append(Finding(
                        rule="determinism.random", file=tu.path,
                        line=c.line,
                        message="%s(); use the seeded Rng "
                                "(common/rng.hpp)" % c.callee))
                elif c.callee == "time" and c.receiver in ("", "std") \
                        and len(c.args) == 1 \
                        and c.args[0].text in ("NULL", "nullptr", "0"):
                    findings.append(Finding(
                        rule="determinism.random", file=tu.path,
                        line=c.line,
                        message="time(%s) wall-entropy; use the "
                                "seeded Rng" % c.args[0].text))

        for c in tu.calls:
            if c.callee == "now" and any(
                    clk in c.receiver for clk in _CLOCKS):
                findings.append(Finding(
                    rule="determinism.wall-clock", file=tu.path,
                    line=c.line,
                    message="%s::now(); wall time must not feed "
                            "simulation-visible state"
                            % c.receiver.rstrip(":.->")
                               .split("::")[-1]))

        # Unordered iteration: names of variables in this TU whose
        # declared type is an unordered container, matched against
        # range-for range expressions.
        unordered_names = {
            v.name for v in tu.vars
            if _UNORDERED_RE.search(v.type_text)}
        unordered_names.update(
            t.via_alias for t in tu.type_uses
            if t.via_alias and "unordered" in t.name)
        if unordered_names:
            for rf in tu.range_fors:
                ids = set(_ID_RE.findall(rf.range_text))
                hit = ids & unordered_names
                if hit:
                    findings.append(Finding(
                        rule="determinism.unordered-iter",
                        file=tu.path, line=rf.line,
                        message="range-for over unordered container "
                                "'%s'; iteration order is not "
                                "deterministic" % sorted(hit)[0]))
    return findings
