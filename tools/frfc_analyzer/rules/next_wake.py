"""next-wake: the quiescence-contract coverage rule.

Every class that (transitively) derives from ``Clocked`` and overrides
``tick`` must override ``nextWake`` — the inherited default returns
``now + 1``, which silently defeats the event kernel's sleep
scheduling (DESIGN.md §8). Unlike the retired regex rule, this walks
the real base-specifier graph, so indirect descendants
(``class Helper : public FrRouter``) are covered, and a ``nextWake``
declared on an intermediate base satisfies the contract for the whole
subtree below it.

Applies everywhere (src, tests, bench, examples): test doubles that
run under the event kernel lie to it just as effectively as real
components.
"""

from typing import List

from ..ir import Finding, Program
from . import Context, family

_DOCS = {
    "next-wake": "Clocked subclass overriding tick() must override "
                 "nextWake() (quiescence contract, DESIGN.md §8)",
}


@family("next-wake", _DOCS)
def scan(program: Program, ctx: Context) -> List[Finding]:
    findings: List[Finding] = []
    index = program.class_index()

    def subtree_declares(cls, method: str) -> bool:
        """True when cls or an ancestor below Clocked declares it."""
        # Check the class object itself first: same-named classes in
        # other TUs (test doubles in anonymous namespaces) must not
        # shadow it through the name index.
        if cls.method(method) is not None:
            return True
        seen = {cls.name}
        work = [b.split("::")[-1] for b in cls.bases]
        while work:
            name = work.pop()
            if name in seen or name == "Clocked":
                continue
            seen.add(name)
            ci = index.get(name)
            if ci is None:
                continue
            if ci.method(method) is not None:
                return True
            work.extend(b.split("::")[-1] for b in ci.bases)
        return False

    for tu in program.units:
        for cls in tu.classes:
            if cls.name == "Clocked":
                continue
            if not program.derives_from(cls, "Clocked", index):
                continue
            tick = cls.method("tick")
            if tick is None:
                continue
            if not subtree_declares(cls, "nextWake"):
                findings.append(Finding(
                    rule="next-wake", file=cls.file, line=cls.line,
                    message="Clocked subclass '%s' overrides tick() "
                            "but not nextWake(); the inherited "
                            "default wakes it every cycle"
                            % cls.name))
    return findings
