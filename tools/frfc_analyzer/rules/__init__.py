"""Rule registry.

Each rule module registers one *family* via ``@family("name")``; the
scan function receives the whole ``Program`` plus a ``Context`` and
returns findings. Individual finding ids are either the family name
itself (``next-wake``) or dotted children (``determinism.static``),
which is what suppression entries match against (a bare family name in
a suppression covers all of its children).
"""

from typing import Callable, Dict, List

from ..ir import Finding, Program

FAMILIES: Dict[str, Callable] = {}
RULE_DOCS: Dict[str, str] = {}


class Context:
    """Carries everything rules need beyond the parsed program."""

    def __init__(self, root, write_schemas: bool = False):
        self.root = root
        self.write_schemas = write_schemas
        self._doc_cache: Dict[str, str] = {}

    DOC_FILES = ("README.md", "DESIGN.md", "EXPERIMENTS.md",
                 "docs/MODEL.md", "docs/EXTENDING.md")

    def doc_text(self, rel: str) -> str:
        if rel not in self._doc_cache:
            path = self.root / rel
            self._doc_cache[rel] = (
                path.read_text(encoding="utf-8")
                if path.is_file() else "")
        return self._doc_cache[rel]

    def all_docs(self):
        return [(rel, self.doc_text(rel)) for rel in self.DOC_FILES]


def family(name: str, docs: Dict[str, str]):
    def wrap(fn):
        FAMILIES[name] = fn
        RULE_DOCS.update(docs)
        return fn
    return wrap


def run_all(program: Program, ctx: Context,
            only: List[str] = None) -> List[Finding]:
    findings: List[Finding] = []
    for name in sorted(FAMILIES):
        if only and name not in only:
            continue
        findings.extend(FAMILIES[name](program, ctx))
    # Inline allow() directives: a finding is suppressed when its line
    # (in its own file) — or the line above it, for a comment on its
    # own line — carries a matching directive.
    for f in findings:
        tu = program.unit(f.file)
        if tu is None:
            continue
        allowed = tu.allows.get(f.line, []) \
            + tu.allows.get(f.line - 1, [])
        if any(f.rule == a or f.rule.startswith(a + ".")
               for a in allowed):
            f.suppressed = True
            f.suppression = "inline"
    return findings


# Import for registration side effects (order is irrelevant; run_all
# sorts by family name).
from . import next_wake      # noqa: E402,F401
from . import determinism    # noqa: E402,F401
from . import fault_rng      # noqa: E402,F401
from . import hot_containers  # noqa: E402,F401
from . import config_schema  # noqa: E402,F401
from . import metric_paths   # noqa: E402,F401
from . import layering       # noqa: E402,F401
