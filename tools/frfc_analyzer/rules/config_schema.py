"""config.*: config-key schema extraction and cross-checks.

Harvests every ``Config``/``ConfigScope`` access — ``get<T>("key")``,
``get("key", dflt)``, the deprecated ``getString/Int/Double/Bool``,
``has``, ``set`` — plus ``scope("prefix")`` composition (chained or
through a named ConfigScope variable) and the ``resolve<T>(cfg, kKey,
"legacy", dflt)`` helper of traffic/workload.cpp. Identifier key
arguments resolve through the program-wide ``constexpr const char*``
constant table (the ``k*Key`` idiom), which the regex lint could never
follow.

The harvest is serialized to docs/config_schema.json — key, type,
default, declaring file — deterministically, so the committed schema
is covered by a byte-identical golden regeneration test. Cross-checks:

  config.undocumented   a key read by the code never appears in
                        README/DESIGN/EXPERIMENTS/docs (a namespace
                        glob like `workload.memory.*` plus the bare
                        leaf counts as documentation)
  config.dead-doc       a doc mentions a dotted key in a namespace the
                        code owns, but nothing reads it (catches both
                        dead keys and doc typos)
  config.resolver-gap   a key in a fatal-on-unknown resolver's
                        namespace (fault.*) is read outside the
                        resolver file, bypassing its unknown-key check
  config.grammar        a key literal that is not lowercase dotted
                        [a-z0-9_.]
  config.schema-drift   committed docs/config_schema.json differs from
                        the regenerated harvest (run with
                        --write-schemas to refresh)

Resolver files (fromConfig-style, iterate cfg.keys() and fatal on
unknown) enumerate their accepted keys as string-literal comparisons;
those literals are harvested as schema keys with type "resolver".
"""

import json
import re
from typing import Dict, List, Optional

from ..ir import CallSite, Finding, Program, TranslationUnit
from . import Context, family

_DOCS = {
    "config.undocumented": "config key read by the code but absent "
                           "from README/DESIGN/EXPERIMENTS/docs",
    "config.dead-doc": "documented config key that nothing reads",
    "config.resolver-gap": "key in a fatal-on-unknown resolver's "
                           "namespace read outside the resolver",
    "config.grammar": "config key must be lowercase dotted "
                      "[a-z0-9_.]",
    "config.schema-drift": "docs/config_schema.json is stale; "
                           "regenerate with --write-schemas",
}

SCHEMA_REL = "docs/config_schema.json"

# Receiver identifiers accepted as a Config object when no scope
# information is available. Kept tight so unrelated .get() calls
# (JsonValue, std::optional) never harvest phantom keys.
_CONFIG_RECEIVERS = {"cfg", "config", "cfg_", "config_"}

_GETTERS = {
    "get": None,            # type from template args or deduced
    "getString": "string",
    "getInt": "int64",
    "getDouble": "double",
    "getBool": "bool",
}
_TYPE_SPELLINGS = {
    "std::string": "string", "string": "string",
    "std::int64_t": "int64", "int64_t": "int64",
    "std::uint64_t": "uint64", "uint64_t": "uint64",
    "int": "int", "double": "double", "bool": "bool",
}

# fromConfig-style resolvers: every key under the namespace must be
# read only inside the resolver file, which fatals on unknown keys.
RESOLVERS = {
    "fault.": "src/sim/fault.cpp",
}

_KEY_GRAMMAR = re.compile(r"\A[a-z][a-z0-9_]*(\.[a-z0-9_]+)*\Z")
_DOC_KEY_RE = re.compile(r"`([a-z][a-z0-9_]*(?:\.[a-z0-9_.*]+)+)`")
_WORD_RE = re.compile(r"[a-z0-9_.*]+")

# Harvest scope: schema keys come from the simulator and its shipped
# drivers. Tests exercise deliberately-invalid keys and the legacy
# compat path, so they are excluded.
_HARVEST_DIRS = ("src/", "bench/", "examples/")


class KeyInfo:
    def __init__(self, key: str):
        self.key = key
        self.types: List[str] = []
        self.defaults: List[str] = []
        self.read_sites: List[str] = []   # "file:line"
        self.write_sites: List[str] = []

    def note_type(self, t: Optional[str]):
        if t and t not in self.types:
            self.types.append(t)

    def note_default(self, d: Optional[str]):
        if d is not None and d not in self.defaults:
            self.defaults.append(d)


def _const_table(program: Program) -> Dict[str, str]:
    table: Dict[str, str] = {}
    for tu in program.units:
        for c in tu.consts:
            table.setdefault(c.name, c.value)
    return table


def _resolve_key_arg(call: CallSite, argi: int,
                     consts: Dict[str, str]) -> Optional[str]:
    if argi >= len(call.args):
        return None
    a = call.args[argi]
    if a.literal is not None:
        return a.literal
    if a.ident is not None and a.ident in consts:
        return consts[a.ident]
    return None


def _scope_prefix(call: CallSite, tu: TranslationUnit
                  ) -> Optional[str]:
    """Prefix contributed by the receiver, '' when a bare Config.

    Returns None when the receiver is not recognizably a Config or
    ConfigScope (the call is then ignored by the harvest).
    """
    recv = call.receiver
    if not recv:
        return None
    m = re.search(r'(?:^|[.>])scope\("([^"]*)"\)\Z', recv)
    if m:
        return m.group(1) + "."
    parts = [p for p in re.split(r"[.>()\s]+", recv) if p]
    last = parts[-1] if parts else recv
    if last in tu.scope_vars:
        return tu.scope_vars[last] + "."
    if last in _CONFIG_RECEIVERS:
        return ""
    return None


def _deduced_type(call: CallSite) -> Optional[str]:
    t = call.template_args.strip()
    if t:
        return _TYPE_SPELLINGS.get(t, t)
    fixed = _GETTERS.get(call.callee)
    if fixed:
        return fixed
    if call.callee == "get" and len(call.args) >= 2:
        d = call.args[1]
        if d.literal is not None:
            return "string"
        if d.text in ("true", "false"):
            return "bool"
        if re.fullmatch(r"-?\d+", d.text):
            return "int"
        if re.fullmatch(r"-?\d*\.\d+", d.text):
            return "double"
        return "deduced"  # from a non-literal default's type
    return None


def harvest(program: Program) -> Dict[str, KeyInfo]:
    consts = _const_table(program)
    keys: Dict[str, KeyInfo] = {}

    def info(key: str) -> KeyInfo:
        return keys.setdefault(key, KeyInfo(key))

    for tu in program.units:
        if not tu.path.startswith(_HARVEST_DIRS):
            continue
        for call in tu.calls:
            site = "%s:%d" % (tu.path, call.line)
            if call.callee in _GETTERS or call.callee in ("has",
                                                          "set"):
                prefix = _scope_prefix(call, tu)
                if prefix is None:
                    continue
                key = _resolve_key_arg(call, 0, consts)
                if key is None:
                    continue
                key = prefix + key
                ki = info(key)
                if call.callee == "set":
                    ki.write_sites.append(site)
                else:
                    ki.read_sites.append(site)
                    ki.note_type(_deduced_type(call))
                    if call.callee != "has" and len(call.args) >= 2:
                        ki.note_default(call.args[1].text)
            elif call.callee == "resolve" and len(call.args) >= 3:
                # resolve<T>(cfg, key, legacy, dflt): the workload
                # resolver helper. Key and legacy both register.
                key = _resolve_key_arg(call, 1, consts)
                if key is None:
                    continue
                ki = info(key)
                ki.read_sites.append(site)
                ki.note_type(_TYPE_SPELLINGS.get(
                    call.template_args.strip(),
                    call.template_args.strip() or None))
                if len(call.args) >= 4:
                    ki.note_default(call.args[3].text)
                legacy = _resolve_key_arg(call, 2, consts)
                if legacy:
                    lk = info(legacy)
                    lk.read_sites.append(site)
                    lk.note_type("legacy-alias")

    # Resolver files: accepted-key literals are schema entries.
    for prefix, path in RESOLVERS.items():
        tu = program.unit(path)
        if tu is None:
            continue
        pat = re.compile(r"\A%s[a-z][a-z0-9_]*\Z" % re.escape(prefix))
        for s in tu.strings:
            if pat.match(s.value):
                ki = info(s.value)
                site = "%s:%d" % (tu.path, s.line)
                if site not in ki.read_sites:
                    ki.read_sites.append(site)
                ki.note_type("resolver")
    return keys


def build_schema(keys: Dict[str, KeyInfo]) -> str:
    entries = []
    for key in sorted(keys):
        ki = keys[key]
        if not ki.read_sites and not ki.write_sites:
            continue
        declared = sorted(ki.read_sites)[0] if ki.read_sites \
            else sorted(ki.write_sites)[0]
        entries.append({
            "key": key,
            "type": ki.types[0] if ki.types else "unknown",
            "default": ki.defaults[0] if ki.defaults else None,
            "declared_in": declared,
            "reads": len(ki.read_sites),
            "writes": len(ki.write_sites),
        })
    doc = {
        "_comment": "Generated by tools/frfc_analyzer (config.* rule "
                    "family); regenerate with: python3 -m "
                    "frfc_analyzer --compdb "
                    "build/compile_commands.json --write-schemas",
        "keys": entries,
    }
    return json.dumps(doc, indent=2) + "\n"


def _documented(key: str, ctx: Context) -> bool:
    leaf_res = {}
    for rel, text in ctx.all_docs():
        if key in text:
            return True
        # Namespace glob + bare leaf: `workload.memory.*` ... `mshrs`
        for m in re.finditer(r"([a-z][a-z0-9_.]*)\.\*", text):
            glob = m.group(1) + "."
            if key.startswith(glob):
                leaf = key[len(glob):]
                pat = leaf_res.setdefault(
                    leaf, re.compile(r"(?<![\w.])%s(?![\w.])"
                                     % re.escape(leaf)))
                if pat.search(text):
                    return True
    return False


@family("config", _DOCS)
def scan(program: Program, ctx: Context) -> List[Finding]:
    findings: List[Finding] = []
    keys = harvest(program)

    def first_site(ki: KeyInfo) -> List[str]:
        sites = sorted(ki.read_sites) or sorted(ki.write_sites)
        f, _, l = sites[0].rpartition(":")
        return [f, int(l)]

    # Grammar.
    for key, ki in sorted(keys.items()):
        if not _KEY_GRAMMAR.match(key):
            f, l = first_site(ki)
            findings.append(Finding(
                rule="config.grammar", file=f, line=l,
                message="config key '%s' is not lowercase dotted "
                        "[a-z0-9_.]" % key))

    # Documented.
    for key, ki in sorted(keys.items()):
        if not ki.read_sites:
            continue
        if "legacy-alias" in ki.types:
            continue  # deprecated spellings are documented as such
        if not _documented(key, ctx):
            f, l = first_site(ki)
            findings.append(Finding(
                rule="config.undocumented", file=f, line=l,
                message="config key '%s' (read here) is not "
                        "documented in README/DESIGN/EXPERIMENTS/docs"
                        % key))

    # Dead documentation: docs mention a dotted key in a namespace the
    # code owns, but no code reads it.
    owned_roots = {k.split(".")[0] for k in keys if "." in k}
    read_keys = {k for k, ki in keys.items() if ki.read_sites}
    reported = set()
    for rel, text in ctx.all_docs():
        for num, line in enumerate(text.splitlines(), 1):
            for m in _DOC_KEY_RE.finditer(line):
                cand = m.group(1)
                if "*" in cand or cand in read_keys \
                        or cand in reported:
                    continue
                root = cand.split(".")[0]
                if root not in owned_roots:
                    continue
                # A documented prefix of real keys (e.g. `workload.trace`
                # prose) is fine when some read key extends it.
                if any(k.startswith(cand + ".") for k in read_keys):
                    continue
                reported.add(cand)
                findings.append(Finding(
                    rule="config.dead-doc", file=rel, line=num,
                    message="documented config key '%s' is never "
                            "read by the code (dead key or doc typo)"
                            % cand))

    # Resolver coverage.
    for prefix, path in RESOLVERS.items():
        for key, ki in sorted(keys.items()):
            if not key.startswith(prefix):
                continue
            outside = [s for s in ki.read_sites
                       if not s.startswith(path + ":")
                       and s.split(":")[0].startswith("src/")]
            if outside:
                f, _, l = sorted(outside)[0].rpartition(":")
                findings.append(Finding(
                    rule="config.resolver-gap", file=f, line=int(l),
                    message="key '%s' is read outside %s, bypassing "
                            "its fatal-on-unknown namespace check"
                            % (key, path)))

    # Schema drift / generation.
    generated = build_schema(keys)
    schema_path = ctx.root / SCHEMA_REL
    if ctx.write_schemas:
        schema_path.parent.mkdir(parents=True, exist_ok=True)
        schema_path.write_text(generated, encoding="utf-8")
    else:
        committed = schema_path.read_text(encoding="utf-8") \
            if schema_path.is_file() else ""
        if committed != generated:
            findings.append(Finding(
                rule="config.schema-drift", file=SCHEMA_REL, line=1,
                message="committed schema differs from the "
                        "regenerated harvest; run: python3 -m "
                        "frfc_analyzer --compdb "
                        "build/compile_commands.json "
                        "--write-schemas"))
    return findings
