"""fault-rng.*: fault randomness and key centralization (PR 9).

Fault decisions draw from dedicated per-router RNG streams owned by
the fault framework; a stray probability draw in the data plane
desynchronizes the documented stream layout and breaks kernel/shard
bit-identity. Likewise every ``fault.*`` config key resolves in
exactly one place (FaultPlan::fromConfig), which is what lets it die
on unknown keys.

  fault-rng.draw   call-expression-accurate: .nextBool()/.nextDouble()
                   receiver calls inside src/frfc, src/vc,
                   src/network, src/proto (the old regex also fired on
                   comment text and could not see through macros)
  fault-rng.key    a "fault.<word>" string literal in src/ outside
                   src/sim/fault.* — matched on the decoded literal
                   value, so adjacent-literal concatenation ("fault."
                   "x") and escapes cannot hide a key
"""

import re
from typing import List

from ..ir import Finding, Program
from . import Context, family

_DOCS = {
    "fault-rng.draw": "probability draw in the data plane; fault "
                      "decisions flow through FaultInjector "
                      "(sim/fault.hpp)",
    "fault-rng.key": "fault.* config key literal outside the fault "
                     "framework; FaultPlan::fromConfig is the single "
                     "resolution point",
}

_FRAMEWORK = {"src/sim/fault.hpp", "src/sim/fault.cpp"}
_DRAW_DIRS = ("src/frfc/", "src/vc/", "src/network/", "src/proto/")
_KEY_RE = re.compile(r"\Afault\.[a-z][a-z0-9_.]*\Z")


@family("fault-rng", _DOCS)
def scan(program: Program, ctx: Context) -> List[Finding]:
    findings: List[Finding] = []
    for tu in program.units:
        if tu.path in _FRAMEWORK or not tu.path.startswith("src/"):
            continue
        if tu.path.startswith(_DRAW_DIRS):
            for c in tu.calls:
                if c.callee in ("nextBool", "nextDouble") \
                        and c.receiver:
                    findings.append(Finding(
                        rule="fault-rng.draw", file=tu.path,
                        line=c.line,
                        message="%s.%s() in the data plane; fault "
                                "decisions must flow through "
                                "FaultInjector so the RNG stream "
                                "layout stays kernel- and "
                                "shard-invariant"
                                % (c.receiver, c.callee)))
        for s in tu.strings:
            if _KEY_RE.match(s.value):
                findings.append(Finding(
                    rule="fault-rng.key", file=tu.path, line=s.line,
                    message="raw fault key literal \"%s\" outside "
                            "the fault framework; resolve it in "
                            "FaultPlan::fromConfig (sim/fault.cpp)"
                            % s.value))
    return findings
