"""hot-container: flat-storage discipline for the router hot path.

PR 8 moved src/frfc and src/vc onto flat rings, bitmaps, and RingQueue
(DESIGN.md §12); a node-based container reintroduces per-element
allocation and pointer chasing on the per-cycle path. Type-accurate:
``using``/``typedef`` aliases of the banned containers are followed
(the regex rule only saw the literal spelling), and matches come from
declarations, never comments or strings.
"""

from typing import List

from ..ir import Finding, Program
from . import Context, family

_DOCS = {
    "hot-container": "node-based std container in a router hot path; "
                     "use a flat ring/bitmap/RingQueue (DESIGN.md §12)",
}

_HOT_DIRS = ("src/frfc/", "src/vc/")
_BANNED = {"std::unordered_map", "std::unordered_set", "std::map",
           "std::deque"}


@family("hot-container", _DOCS)
def scan(program: Program, ctx: Context) -> List[Finding]:
    findings: List[Finding] = []
    for tu in program.units:
        if not tu.path.startswith(_HOT_DIRS):
            continue
        for t in tu.type_uses:
            if t.name in _BANNED:
                via = " (through alias '%s')" % t.via_alias \
                    if t.via_alias else ""
                findings.append(Finding(
                    rule="hot-container", file=tu.path, line=t.line,
                    message="%s%s in a router hot path; use a flat "
                            "ring/bitmap/RingQueue (DESIGN.md §12)"
                            % (t.name, via)))
    return findings
