"""layering.*: module-DAG enforcement over the real include graph.

The allowed dependency edges between src/ modules are declared in
tools/frfc_analyzer/layers.conf (one line per module: the modules it
may include). The rule walks every ``#include "module/..."`` edge in
the parsed tree and fails on any edge the declaration does not allow —
a back-edge (src/common including src/frfc) can therefore never land
silently, and a brand-new src/ directory must be added to the
declaration before it can be included at all.

The declaration mirrors the CMake target link graph (DESIGN.md §14
reproduces it as a diagram); keeping it in a data file rather than in
rule code means a deliberate layering change is a reviewed one-line
diff next to its justification.
"""

import re
from typing import Dict, List, Set

from ..ir import Finding, Program
from . import Context, family

_DOCS = {
    "layering.back-edge": "include edge not allowed by the declared "
                          "module DAG (tools/frfc_analyzer/"
                          "layers.conf)",
    "layering.unknown-module": "src/ module missing from the declared "
                               "DAG",
    "layering.config": "malformed layers.conf line",
}

LAYERS_REL = "tools/frfc_analyzer/layers.conf"

_LINE_RE = re.compile(r"\A([a-z_]+)\s*:\s*(.*)\Z")


def load_layers(ctx: Context):
    allowed: Dict[str, Set[str]] = {}
    problems: List[Finding] = []
    path = ctx.root / LAYERS_REL
    if not path.is_file():
        problems.append(Finding(
            rule="layering.config", file=LAYERS_REL, line=0,
            message="declared module DAG not found"))
        return allowed, problems
    for num, raw in enumerate(
            path.read_text(encoding="utf-8").splitlines(), 1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        m = _LINE_RE.match(line)
        if not m:
            problems.append(Finding(
                rule="layering.config", file=LAYERS_REL, line=num,
                message="expected '<module>: <dep> <dep> ...', got: "
                        + line))
            continue
        allowed[m.group(1)] = set(m.group(2).split())
    # Deps must themselves be declared modules.
    for mod, deps in sorted(allowed.items()):
        for d in sorted(deps):
            if d not in allowed:
                problems.append(Finding(
                    rule="layering.config", file=LAYERS_REL, line=0,
                    message="module '%s' allows undeclared module "
                            "'%s'" % (mod, d)))
    return allowed, problems


@family("layering", _DOCS)
def scan(program: Program, ctx: Context) -> List[Finding]:
    allowed, findings = load_layers(ctx)
    if not allowed:
        return findings
    modules = set(allowed)

    for tu in program.units:
        if not tu.path.startswith("src/"):
            continue
        parts = tu.path.split("/")
        if len(parts) < 3:
            continue
        mod = parts[1]
        if mod not in modules:
            findings.append(Finding(
                rule="layering.unknown-module", file=tu.path, line=1,
                message="src/%s is not declared in %s; add it with "
                        "its allowed dependencies" % (mod,
                                                      LAYERS_REL)))
            continue
        for inc in tu.includes:
            if inc.system or "/" not in inc.target:
                continue
            dep = inc.target.split("/")[0]
            if dep == mod or dep not in modules:
                continue
            if dep not in allowed[mod]:
                findings.append(Finding(
                    rule="layering.back-edge", file=tu.path,
                    line=inc.line,
                    message="src/%s may not include \"%s\" — edge "
                            "%s -> %s is not in the declared module "
                            "DAG (%s)"
                            % (mod, inc.target, mod, dep,
                               LAYERS_REL)))
    return findings
