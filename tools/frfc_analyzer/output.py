"""Finding reporters: plain text and SARIF-shaped JSON.

The JSON output follows the SARIF 2.1.0 core shape (tool.driver.rules
+ results with ruleId/level/message/locations) so editors and CI
annotators that speak SARIF can ingest it directly; fields outside
that core are kept to a ``properties`` bag.
"""

import json
from typing import Dict, List

from .ir import Finding

SARIF_SCHEMA = ("https://raw.githubusercontent.com/oasis-tcs/"
                "sarif-spec/master/Schemata/sarif-schema-2.1.0.json")


def render_text(findings: List[Finding], verbose_suppressed: bool
                ) -> List[str]:
    lines = []
    for f in sorted(findings, key=lambda x: (x.file, x.line, x.rule)):
        if f.suppressed and not verbose_suppressed:
            continue
        mark = " (suppressed: %s)" % f.suppression if f.suppressed \
            else ""
        lines.append("%s:%d: [%s] %s%s"
                     % (f.file, f.line, f.rule, f.message, mark))
    return lines


def render_sarif(findings: List[Finding], rule_docs: Dict[str, str],
                 tool_version: str) -> str:
    rules = [{"id": rid,
              "shortDescription": {"text": doc.strip().split("\n")[0]}}
             for rid, doc in sorted(rule_docs.items())]
    results = []
    for f in sorted(findings, key=lambda x: (x.file, x.line, x.rule)):
        results.append({
            "ruleId": f.rule,
            "level": "note" if f.suppressed else "error",
            "message": {"text": f.message},
            "locations": [{
                "physicalLocation": {
                    "artifactLocation": {"uri": f.file},
                    "region": {"startLine": max(f.line, 1)},
                },
            }],
            "suppressions": (
                [{"kind": "external" if f.suppression == "baseline"
                  else "inSource"}] if f.suppressed else []),
        })
    doc = {
        "$schema": SARIF_SCHEMA,
        "version": "2.1.0",
        "runs": [{
            "tool": {"driver": {
                "name": "frfc-analyzer",
                "version": tool_version,
                "informationUri":
                    "tools/frfc_analyzer/ (this repository)",
                "rules": rules,
            }},
            "results": results,
        }],
    }
    return json.dumps(doc, indent=2, sort_keys=False) + "\n"
