import sys

from .cli import main

if __name__ == "__main__":
    try:
        sys.exit(main(sys.argv[1:]))
    except BrokenPipeError:
        # stdout went away (e.g. piped into head); not a failure mode
        # worth a traceback.
        sys.stderr.close()
        sys.exit(0)
