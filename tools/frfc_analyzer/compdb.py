"""compile_commands.json loading and staleness checks.

The analyzer is driven by the same TU list the build compiles, so it
can never silently skip a new source file: a ``.cpp`` on disk that the
database does not mention means the database is stale and is reported
as a setup error (exit 2), with the regeneration command in the
message.
"""

import json
import shlex
from pathlib import Path
from typing import List, Optional


class CompDbError(Exception):
    pass


class CompileCommand:
    def __init__(self, file: Path, args: List[str]):
        self.file = file
        self.args = args


def load(path: Path, root: Path) -> List[CompileCommand]:
    if not path.is_file():
        raise CompDbError(
            "compile database not found: %s\n"
            "generate it with: cmake -B %s -S %s "
            "-DCMAKE_EXPORT_COMPILE_COMMANDS=ON"
            % (path, path.parent, root))
    try:
        entries = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as exc:
        raise CompDbError("unreadable compile database %s: %s"
                          % (path, exc))
    commands: List[CompileCommand] = []
    for entry in entries:
        f = Path(entry.get("directory", ".")) / entry["file"] \
            if not Path(entry["file"]).is_absolute() \
            else Path(entry["file"])
        if "arguments" in entry:
            argv = list(entry["arguments"])
        else:
            argv = shlex.split(entry.get("command", ""))
        # Strip the compiler, the input file, and -o/-c for reparsing.
        args: List[str] = []
        skip = False
        for a in argv[1:]:
            if skip:
                skip = False
                continue
            if a in ("-o", "-c"):
                skip = a == "-o"
                continue
            if a == entry["file"] or a == str(f):
                continue
            args.append(a)
        commands.append(CompileCommand(file=f.resolve(), args=args))
    return commands


def check_coverage(commands: List[CompileCommand], root: Path,
                   dirs: List[str]) -> Optional[str]:
    """Return an error message when a .cpp on disk is not in the db."""
    known = {c.file for c in commands}
    missing = []
    for d in dirs:
        base = root / d
        if not base.is_dir():
            continue
        for p in sorted(base.rglob("*.cpp")):
            if p.resolve() not in known:
                missing.append(p.relative_to(root).as_posix())
    if missing:
        return ("compile database is stale: %d source file(s) on disk "
                "are not in it (%s%s); re-run cmake to regenerate"
                % (len(missing), ", ".join(missing[:5]),
                   ", ..." if len(missing) > 5 else ""))
    return None
