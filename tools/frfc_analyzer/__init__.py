"""frfc-analyzer: AST-grade static analysis for the FRFC simulator.

Semantic successor to the textual rules of tools/frfc_lint.py: rules
run over a frontend-built intermediate representation (IR) of every
translation unit named in CMake's compile_commands.json, so they see
inheritance, call expressions, declarations, and the include graph
rather than lines of text.

Two interchangeable frontends produce the same IR (see ir.py):

  clang      libclang via the ``clang.cindex`` Python bindings — the
             reference frontend, used automatically when importable.
  internal   a self-contained C++ tokenizer + scope parser (lexer.py,
             frontend_internal.py) with no dependencies beyond the
             Python 3 standard library, tuned to this codebase's
             idiom; keeps the analyzer runnable on minimal containers.

Rule families (tools/frfc_analyzer/rules/):

  next-wake        every Clocked descendant that overrides tick() must
                   override nextWake() (real inheritance walk)
  determinism.*    no mutable namespace-scope statics, thread_local,
                   std::random_device, rand()/srand()/time(), wall
                   clocks, or unordered-container iteration in src/
  fault-rng.*      probability draws and "fault.*" key literals only
                   inside the fault framework (call-expression based)
  hot-container    no std::unordered_map/std::map/std::deque types —
                   including through aliases — in src/frfc, src/vc
  config.*         Config::get<T>/scope call-site harvest into
                   docs/config_schema.json plus three cross-checks
                   (documented, actually-read, resolver coverage)
  metric.*         MetricRegistry attach-site harvest into
                   docs/metric_schema.json, dotted-path grammar,
                   duplicate paths, documented root namespaces
  layering.*       declared module DAG (layers.conf) checked against
                   the actual ``#include`` graph of src/

Findings are suppressed either inline (``// frfc-analyzer:
allow(<rule>): <reason>``) or through the audited baseline file
tools/frfc_analyzer.suppressions. Output is text or SARIF-shaped JSON
(``--json out=<file>``).

Exit status: 0 clean, 1 findings, 2 usage/setup error, 77 skip (the
requested frontend is unavailable).
"""

__version__ = "1.0.0"

from .cli import main  # noqa: E402,F401  (re-export for __main__)
