"""Internal frontend: token-stream structural parser -> IR.

A dependency-free fallback for containers without libclang. It is not
a general C++ parser; it is a scope-tracking pass over the real token
stream (lexer.py) that recovers exactly the structure the rules need:
the include list, class definitions with base-specifiers and member
function names, call expressions with decomposed arguments, namespace
/ class / function-local variable declarations with storage class,
type-name uses (through ``using``/``typedef`` aliases), range-for
statements, string literals, and string constants.

Accuracy notes versus libclang: names are matched per scope rather
than resolved through lookup, so a class shadowing another's name in a
different namespace would be conflated. The FRFC tree keeps one
``frfc`` namespace with unique type names (enforced by review), and
the fixture corpus pins the behaviors the rules rely on.
"""

from pathlib import Path
import re
from typing import List, Optional, Tuple

from .ir import (Arg, CallSite, ClassInfo, ConstDef, Include,
                 MethodInfo, RangeFor, StringLit, TranslationUnit,
                 TypeUse, VarDecl)
from .lexer import Token, lex, string_value

_INCLUDE_RE = re.compile(r'#\s*include\s*(?:"([^"]+)"|<([^>]+)>)')

_HOT_TYPES = ("std::unordered_map", "std::unordered_set",
              "std::map", "std::deque")

_SCOPE_NAMESPACE = "namespace"
_SCOPE_CLASS = "class"
_SCOPE_ENUM = "enum"
_SCOPE_BLOCK = "block"
_SCOPE_EXTERN = "extern"

_ACCESS = {"public", "private", "protected"}
_DECL_QUALIFIERS = {"inline", "static", "thread_local", "constexpr",
                    "const", "mutable", "extern", "register",
                    "volatile", "constinit"}


class _Scope:
    def __init__(self, kind: str, name: str = ""):
        self.kind = kind
        self.name = name


def _match_forward(tokens: List[Token], i: int, open_t: str,
                   close_t: str) -> int:
    """Index just past the token closing the bracket at tokens[i]."""
    depth = 0
    n = len(tokens)
    while i < n:
        t = tokens[i].text
        if t == open_t:
            depth += 1
        elif t == close_t:
            depth -= 1
            if depth == 0:
                return i + 1
        i += 1
    return n


def _angle_close(tokens: List[Token], i: int) -> Optional[int]:
    """Given tokens[i] == '<', find matching '>' conservatively.

    Returns the index just past '>', or None when this '<' cannot be a
    template-argument list (hits ;, {, }, or unbalanced closers).
    """
    depth = 0
    n = len(tokens)
    while i < n:
        t = tokens[i].text
        if t == "<":
            depth += 1
        elif t in (">", ">>"):
            depth -= 2 if t == ">>" else 1
            if depth <= 0:
                return i + 1
        elif t in (";", "{", "}"):
            return None
        elif t in ("&&", "||"):
            return None
        i += 1
    return None


def _join(tokens: List[Token]) -> str:
    """Compact spelling of a token run (diagnostics only)."""
    out: List[str] = []
    for t in tokens:
        if out and t.kind == "id" and out[-1] and (
                out[-1][-1].isalnum() or out[-1][-1] == "_"):
            out.append(" ")
        out.append(t.text)
    return "".join(out)


def _decompose_arg(tokens: List[Token]) -> Arg:
    text = _join(tokens)
    if not tokens:
        return Arg(text="")
    if all(t.kind == "str" for t in tokens):
        return Arg(text=text,
                   literal="".join(string_value(t.text) for t in tokens))
    if len(tokens) == 1 and tokens[0].kind == "id":
        return Arg(text=text, ident=tokens[0].text)
    # Trailing "+ <string literal>" run: dynamic prefix + literal tail.
    tail: List[str] = []
    i = len(tokens)
    while i >= 2 and tokens[i - 1].kind == "str" \
            and tokens[i - 2].text == "+":
        tail.insert(0, string_value(tokens[i - 1].text))
        i -= 2
    if tail:
        return Arg(text=text, concat="".join(tail))
    return Arg(text=text)


def _receiver_text(tokens: List[Token], i: int) -> str:
    """Spelling of the receiver chain ending just before tokens[i].

    Walks back over ``name``, ``(...)`` (chained call), ``::``, ``.``
    and ``->`` links. tokens[i] is the callee identifier.
    """
    j = i - 1
    parts: List[Token] = []
    expect_link = True  # next backward token must be a link to continue
    while j >= 0:
        t = tokens[j]
        if expect_link:
            if t.text in (".", "->", "::"):
                parts.insert(0, t)
                expect_link = False
                j -= 1
                continue
            break
        # operand position: id, or ')' closing a call/paren group
        if t.kind == "id":
            parts.insert(0, t)
            expect_link = True
            j -= 1
            continue
        if t.text == ")":
            depth = 0
            k = j
            while k >= 0:
                if tokens[k].text == ")":
                    depth += 1
                elif tokens[k].text == "(":
                    depth -= 1
                    if depth == 0:
                        break
                k -= 1
            if k < 0:
                break
            parts[0:0] = tokens[k:j + 1]
            j = k - 1
            # a call: include its callee name too
            if j >= 0 and tokens[j].kind == "id":
                parts.insert(0, tokens[j])
                j -= 1
            expect_link = True
            continue
        break
    # Drop a leading link ('.'/'->'), which has no operand to its left.
    while parts and parts[0].text in (".", "->", "::"):
        parts.pop(0)
    return _join(parts)


def parse_file(path: Path, root: Path) -> TranslationUnit:
    rel = path.relative_to(root).as_posix()
    text = path.read_text(encoding="utf-8")
    lexed = lex(text)
    tokens = lexed.tokens
    tu = TranslationUnit(path=rel)
    tu.allows = {line: list(rules)
                 for line, rules in lexed.allows.items()}

    # ---- pass 1: preprocessor (includes) --------------------------------
    for t in tokens:
        if t.kind != "pp":
            continue
        m = _INCLUDE_RE.match(t.text)
        if m:
            target = m.group(1) or m.group(2)
            tu.includes.append(Include(file=rel, line=t.line,
                                       target=target,
                                       system=m.group(1) is None))

    # ---- pass 2: scopes, classes, declarations --------------------------
    code = [t for t in tokens if t.kind != "pp"]
    n = len(code)
    scopes: List[_Scope] = []
    aliases = {}  # alias name -> canonical hot-container type

    def innermost_named() -> Tuple[str, str]:
        """(kind, class name) of the innermost non-block scope."""
        for s in reversed(scopes):
            if s.kind == _SCOPE_BLOCK:
                return ("function", "")
            if s.kind == _SCOPE_CLASS:
                return ("class", s.name)
            if s.kind in (_SCOPE_NAMESPACE, _SCOPE_EXTERN):
                return ("namespace", s.name)
            if s.kind == _SCOPE_ENUM:
                return ("enum", s.name)
        return ("namespace", "")

    def qualified(name: str) -> str:
        ns = [s.name for s in scopes
              if s.kind == _SCOPE_NAMESPACE and s.name]
        return "::".join(ns + [name]) if ns else name

    def current_class() -> Optional[ClassInfo]:
        for s in reversed(scopes):
            if s.kind == _SCOPE_CLASS:
                for ci in reversed(tu.classes):
                    if ci.name == s.name:
                        return ci
            if s.kind == _SCOPE_BLOCK:
                return None
        return None

    def scan_statement(start: int) -> int:
        """Handle one declaration/statement at namespace/class scope.

        Returns the index to continue from. Emits VarDecl / ConstDef /
        ClassInfo headers as encountered; pushes scopes for '{'.
        """
        i = start
        t = code[i]

        # namespace [name] {
        if t.text == "namespace":
            j = i + 1
            name = ""
            if j < n and code[j].kind == "id":
                name = code[j].text
                j += 1
            while j < n and code[j].text not in ("{", ";"):
                j += 1
            if j < n and code[j].text == "{":
                scopes.append(_Scope(_SCOPE_NAMESPACE, name))
                return j + 1
            return j + 1

        # extern "C" { ... }
        if t.text == "extern" and i + 1 < n and code[i + 1].kind == "str":
            j = i + 2
            if j < n and code[j].text == "{":
                scopes.append(_Scope(_SCOPE_EXTERN))
                return j + 1
            return j

        # using alias / typedef
        if t.text in ("using", "typedef"):
            j = i
            while j < n and code[j].text != ";":
                j += 1
            stmt = code[i:j]
            # The definition line's own literal std:: spelling is
            # reported by the pass-3 scan; here we only register the
            # alias name for use-site tracking.
            if t.text == "using" and len(stmt) >= 3 \
                    and stmt[1].kind == "id" and stmt[2].text == "=":
                alias = stmt[1].text
                spelled = _join(stmt[3:])
                for hot in _HOT_TYPES:
                    if hot in spelled:
                        aliases[alias] = hot
            elif t.text == "typedef" and len(stmt) >= 3 \
                    and stmt[-1].kind == "id":
                alias = stmt[-1].text
                spelled = _join(stmt[1:-1])
                for hot in _HOT_TYPES:
                    if hot in spelled:
                        aliases[alias] = hot
            return j + 1

        # enum [class] [name] [: base] { ... }
        if t.text == "enum":
            j = i + 1
            while j < n and code[j].text not in ("{", ";"):
                j += 1
            if j < n and code[j].text == "{":
                scopes.append(_Scope(_SCOPE_ENUM))
                return j + 1
            return j + 1

        # class/struct definition or forward declaration
        if t.text in ("class", "struct"):
            j = i + 1
            # skip attributes / alignas
            while j < n and code[j].text == "[":
                j = _match_forward(code, j, "[", "]")
            if j >= n or code[j].kind != "id":
                return i + 1
            name = code[j].text
            j += 1
            if j < n and code[j].text == "final":
                j += 1
            bases: List[str] = []
            if j < n and code[j].text == ":":
                j += 1
                run: List[Token] = []
                depth = 0
                while j < n:
                    tt = code[j].text
                    if tt == "<":
                        end = _angle_close(code, j)
                        if end is None:
                            j += 1
                            continue
                        j = end
                        continue
                    if tt == "{" and depth == 0:
                        break
                    if tt == "," and depth == 0:
                        if run:
                            bases.append(_join(
                                [x for x in run
                                 if x.text not in _ACCESS
                                 and x.text != "virtual"]))
                        run = []
                    elif tt == ";":
                        # `Type x : 3;` bitfield or similar — not a class
                        return j + 1
                    else:
                        run.append(code[j])
                    j += 1
                if run:
                    bases.append(_join(
                        [x for x in run
                         if x.text not in _ACCESS
                         and x.text != "virtual"]))
            if j < n and code[j].text == "{":
                tu.classes.append(ClassInfo(
                    name=name, qualified=qualified(name), file=rel,
                    line=t.line, bases=[b for b in bases if b]))
                scopes.append(_Scope(_SCOPE_CLASS, name))
                return j + 1
            # forward declaration / variable of elaborated type
            while j < n and code[j].text != ";":
                j += 1
            return j + 1

        # template<...> headers: skip the parameter list
        if t.text == "template" and i + 1 < n \
                and code[i + 1].text == "<":
            end = _angle_close(code, i + 1)
            return end if end is not None else i + 2

        if t.text in ("public", "private", "protected") \
                and i + 1 < n and code[i + 1].text == ":":
            return i + 2

        if t.text == "static_assert":
            j = i + 1
            if j < n and code[j].text == "(":
                j = _match_forward(code, j, "(", ")")
            return j

        if t.text == "friend":
            j = i
            while j < n and code[j].text not in (";", "{"):
                j += 1
            return j + 1

        # Generic declaration statement: gather to ';' or body '{'.
        j = i
        quals = set()
        seen: List[Token] = []
        paren_after_name = False
        name_tok: Optional[Token] = None
        while j < n:
            tt = code[j]
            if tt.text in ("{", ";", "="):
                break
            if tt.text == "(":
                # function declarator (or constructor) — the previous
                # identifier is the function name
                if seen and seen[-1].kind == "id":
                    paren_after_name = True
                    name_tok = seen[-1]
                j = _match_forward(code, j, "(", ")")
                continue
            if tt.text == "<":
                end = _angle_close(code, j)
                if end is not None:
                    seen.extend(code[j:end])
                    j = end
                    continue
            if tt.kind == "id" and tt.text in _DECL_QUALIFIERS:
                quals.add(tt.text)
            seen.append(tt)
            j += 1
        terminator = code[j].text if j < n else ";"

        if paren_after_name and name_tok is not None:
            # Function declaration/definition (or macro-style call).
            kind, cls_name = innermost_named()
            if kind == "class":
                ci = current_class()
                if ci is not None:
                    # override/virtual markers live between ')' and
                    # the terminator; 'seen' skipped the paren groups,
                    # so scan the raw slice.
                    slice_text = {x.text for x in code[i:j]}
                    ci.methods.append(MethodInfo(
                        name=name_tok.text, line=name_tok.line,
                        is_override="override" in slice_text,
                        is_virtual="virtual" in slice_text))
            if terminator == "{":
                scopes.append(_Scope(_SCOPE_BLOCK))
                return j + 1
            if terminator == "=":
                # = default / = delete / = 0
                while j < n and code[j].text != ";":
                    j += 1
            return j + 1

        # Variable declaration candidate. Statements opening with a
        # control keyword can reach here when scope tracking slips on
        # exotic code; never report them as declarations.
        ids = [x for x in seen if x.kind == "id"
               and x.text not in _DECL_QUALIFIERS]
        if seen and seen[0].text in ("return", "if", "else", "while",
                                     "do", "for", "switch", "case",
                                     "break", "continue", "goto",
                                     "throw", "delete", "new"):
            ids = []
        if ids and terminator in ("=", "{", ";"):
            name_t = ids[-1]
            kind, _cls = innermost_named()
            if kind in ("namespace", "class") and len(ids) >= 2:
                type_tokens = seen[:seen.index(name_t)]
                type_text = _join(type_tokens)
                tu.vars.append(VarDecl(
                    file=rel, line=name_t.line, name=name_t.text,
                    type_text=type_text,
                    is_static="static" in quals,
                    is_thread_local="thread_local" in quals,
                    is_const=("const" in quals
                              or "constexpr" in quals
                              or "constinit" in quals),
                    is_member=(kind == "class"),
                    scope=kind))
                # String constant?
                if "char" in type_text and "*" in type_text \
                        and terminator == "=":
                    k = j + 1
                    lits: List[Token] = []
                    while k < n and code[k].text != ";":
                        if code[k].kind == "str":
                            lits.append(code[k])
                        elif code[k].kind != "punct":
                            lits = []
                            break
                        k += 1
                    if lits:
                        tu.consts.append(ConstDef(
                            file=rel, line=name_t.line,
                            name=name_t.text,
                            value="".join(string_value(x.text)
                                          for x in lits)))
        # Advance past any initializer to the statement end.
        if terminator == "{":
            j = _match_forward(code, j, "{", "}")
            if j < n and code[j].text == ";":
                j += 1
            return j
        if terminator == "=":
            while j < n and code[j].text != ";":
                if code[j].text == "{":
                    j = _match_forward(code, j, "{", "}")
                    continue
                if code[j].text == "(":
                    j = _match_forward(code, j, "(", ")")
                    continue
                j += 1
        return j + 1

    i = 0
    while i < n:
        t = code[i]
        if t.text == "}":
            if scopes:
                scopes.pop()
            i += 1
            continue
        if t.text == "{":
            scopes.append(_Scope(_SCOPE_BLOCK))
            i += 1
            continue
        kind, _ = innermost_named()
        if kind in ("namespace", "class"):
            i = scan_statement(i)
            continue
        # Function/block scope: only local statics matter here.
        if t.text in ("static", "thread_local"):
            j = i
            quals = set()
            seen: List[Token] = []
            while j < n and code[j].text not in (";", "{", "=", "("):
                if code[j].kind == "id" \
                        and code[j].text in _DECL_QUALIFIERS:
                    quals.add(code[j].text)
                else:
                    seen.append(code[j])
                if code[j].text == "<":
                    end = _angle_close(code, j)
                    if end is not None:
                        seen.extend(code[j + 1:end])
                        j = end
                        continue
                j += 1
            terminator = code[j].text if j < n else ";"
            ids = [x for x in seen if x.kind == "id"]
            if terminator in ("=", "{", ";") and len(ids) >= 2:
                name_t = ids[-1]
                tu.vars.append(VarDecl(
                    file=rel, line=name_t.line, name=name_t.text,
                    type_text=_join(seen[:seen.index(name_t)]),
                    is_static="static" in quals,
                    is_thread_local="thread_local" in quals,
                    is_const=("const" in quals
                              or "constexpr" in quals),
                    is_member=False, scope="function"))
            # Skip the initializer so its braces/parens never reach
            # the scope loop (a brace-init would pop the function
            # scope early).
            while j < n and code[j].text != ";":
                if code[j].text == "{":
                    j = _match_forward(code, j, "{", "}")
                    continue
                if code[j].text == "(":
                    j = _match_forward(code, j, "(", ")")
                    continue
                j += 1
            i = j + 1
            continue
        i += 1

    # ---- pass 3: flat scans (calls, types, range-for, strings) ----------
    for idx, t in enumerate(code):
        if t.kind == "str":
            tu.strings.append(StringLit(file=rel, line=t.line,
                                        value=string_value(t.text)))

    for idx, t in enumerate(code):
        if t.kind != "id":
            continue
        # range-for
        if t.text == "for" and idx + 1 < n and code[idx + 1].text == "(":
            close = _match_forward(code, idx + 1, "(", ")")
            inner = code[idx + 2:close - 1]
            depth = 0
            for k, x in enumerate(inner):
                if x.text in ("(", "[", "{"):
                    depth += 1
                elif x.text in (")", "]", "}"):
                    depth -= 1
                elif x.text == ":" and depth == 0:
                    prev = inner[k - 1].text if k else ""
                    if prev == ":":
                        break  # '::', not a range-for
                    tu.range_fors.append(RangeFor(
                        file=rel, line=t.line,
                        range_text=_join(inner[k + 1:])))
                    break
            continue
        # hot / determinism-relevant type uses: std::X spelled directly
        if t.text == "std" and idx + 2 < n \
                and code[idx + 1].text == "::" \
                and code[idx + 2].kind == "id":
            name = "std::" + code[idx + 2].text
            if name in _HOT_TYPES or name == "std::random_device":
                tu.type_uses.append(TypeUse(file=rel, line=t.line,
                                            name=name))
            continue
        # alias uses
        if t.text in aliases:
            # Only count declaration-ish uses (followed by '<' or an
            # identifier), not the alias definition itself.
            if idx + 1 < n and (code[idx + 1].text == "<"
                                or code[idx + 1].kind == "id"):
                tu.type_uses.append(TypeUse(
                    file=rel, line=t.line, name=aliases[t.text],
                    via_alias=t.text))
            continue
        # call expression
        j = idx + 1
        template_args = ""
        if j < n and code[j].text == "<":
            end = _angle_close(code, j)
            if end is not None and end < n and code[end].text == "(":
                template_args = _join(code[j + 1:end - 1])
                j = end
        if j < n and code[j].text == "(" and t.text not in (
                "if", "for", "while", "switch", "return", "sizeof",
                "alignof", "catch", "new", "delete", "throw",
                "static_assert", "defined", "noexcept", "assert"):
            close = _match_forward(code, j, "(", ")")
            inner = code[j + 1:close - 1]
            args: List[Arg] = []
            if inner:
                depth = 0
                run: List[Token] = []
                for x in inner:
                    if x.text in ("(", "[", "{"):
                        depth += 1
                    elif x.text in (")", "]", "}"):
                        depth -= 1
                    elif x.text == "<":
                        pass
                    if x.text == "," and depth == 0:
                        args.append(_decompose_arg(run))
                        run = []
                    else:
                        run.append(x)
                args.append(_decompose_arg(run))
            receiver = _receiver_text(code, idx)
            tu.calls.append(CallSite(
                file=rel, line=t.line, callee=t.text,
                receiver=receiver,
                template_args=template_args, args=args))
            # ConfigScope variable: `<name> = <recv>.scope("p")...;`
            if t.text == "scope" and len(args) == 1 \
                    and args[0].literal is not None and receiver:
                k = idx - 1
                # walk back over the receiver chain to the '='
                depth = 0
                while k >= 0:
                    tt = code[k].text
                    if tt in (")", "]"):
                        depth += 1
                    elif tt in ("(", "["):
                        depth -= 1
                        if depth < 0:
                            break
                    elif depth == 0 and tt in (";", "{", "}", ","):
                        break
                    elif depth == 0 and tt == "=":
                        if k >= 1 and code[k - 1].kind == "id":
                            tu.scope_vars[code[k - 1].text] = \
                                args[0].literal
                        break
                    k -= 1
    return tu
