"""Baseline suppression file handling.

Format, one entry per line (``#`` comments, blank lines ignored)::

    <rule-id>  <path>[:<line>]  --  <justification>

``path`` is repo-relative and may use ``*`` globs. The justification
is mandatory: a suppression without one is itself reported as a
finding (``suppression.unjustified``), so the baseline stays auditable.
Entries that match nothing are reported too (``suppression.stale``),
which is how baselined findings get cleaned up when the underlying
code is fixed.

Inline suppressions (``// frfc-analyzer: allow(<rule>): <reason>`` on
the finding's line) are handled by the frontends, which record them in
TranslationUnit.allows.
"""

import fnmatch
from pathlib import Path
from typing import List, Optional, Tuple

from .ir import Finding


class Entry:
    def __init__(self, rule: str, path: str, line: Optional[int],
                 reason: str, source_line: int):
        self.rule = rule
        self.path = path
        self.line = line
        self.reason = reason
        self.source_line = source_line
        self.hits = 0

    def matches(self, f: Finding) -> bool:
        if self.rule != f.rule and not f.rule.startswith(
                self.rule + "."):
            return False
        if self.line is not None and self.line != f.line:
            return False
        return fnmatch.fnmatchcase(f.file, self.path)


class Suppressions:
    def __init__(self, entries: List[Entry], path: str,
                 problems: List[Finding]):
        self.entries = entries
        self.path = path
        self.problems = problems  # malformed/unjustified entries

    def apply(self, findings: List[Finding]) -> None:
        for f in findings:
            for e in self.entries:
                if e.matches(f):
                    e.hits += 1
                    f.suppressed = True
                    f.suppression = "baseline"
                    break

    def stale_entries(self) -> List[Finding]:
        return [Finding(rule="suppression.stale", file=self.path,
                        line=e.source_line,
                        message="suppression matches no finding: %s %s"
                                % (e.rule,
                                   e.path + (":%d" % e.line
                                             if e.line else "")))
                for e in self.entries if e.hits == 0]


def load(path: Path, repo_rel: str) -> Suppressions:
    entries: List[Entry] = []
    problems: List[Finding] = []
    if not path.is_file():
        return Suppressions(entries, repo_rel, problems)
    for num, raw in enumerate(
            path.read_text(encoding="utf-8").splitlines(), 1):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        head, sep, reason = line.partition("--")
        reason = reason.strip()
        fields = head.split()
        if len(fields) != 2:
            problems.append(Finding(
                rule="suppression.malformed", file=repo_rel, line=num,
                message="expected '<rule> <path>[:<line>] -- "
                        "<justification>', got: " + line))
            continue
        rule, target = fields
        file_part, colon, line_part = target.rpartition(":")
        lineno: Optional[int] = None
        if colon and line_part.isdigit():
            lineno = int(line_part)
        else:
            file_part = target
        if not sep or not reason:
            problems.append(Finding(
                rule="suppression.unjustified", file=repo_rel,
                line=num,
                message="suppression for %s lacks a justification "
                        "('-- <reason>')" % rule))
            continue
        entries.append(Entry(rule=rule, path=file_part, line=lineno,
                             reason=reason, source_line=num))
    return Suppressions(entries, repo_rel, problems)
