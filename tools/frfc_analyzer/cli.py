"""Command-line driver.

Typical invocations::

  python3 -m frfc_analyzer --compdb build/compile_commands.json
  python3 -m frfc_analyzer --compdb ... --json out=analysis.sarif.json
  python3 -m frfc_analyzer --compdb ... --write-schemas
  python3 -m frfc_analyzer --list-rules

Run from the repo root, or pass --root. ``tools`` is on sys.path when
invoked as ``python3 -m frfc_analyzer`` with ``tools`` as the working
directory; scripts/static_checks.sh and the ctest invoke it via
``PYTHONPATH=tools``.

Exit codes: 0 clean, 1 unsuppressed findings, 2 usage/setup error,
77 the forced frontend is unavailable (ctest skip convention).
"""

import argparse
import sys
from pathlib import Path
from typing import List

from . import __version__, compdb
from . import frontend_clang, frontend_internal
from .ir import Program
from .output import render_sarif, render_text
from .rules import FAMILIES, RULE_DOCS, Context, run_all
from . import suppress

EXIT_CLEAN = 0
EXIT_FINDINGS = 1
EXIT_USAGE = 2
EXIT_SKIP = 77

# Directories parsed (repo-relative). The compile database provides
# the TU list for src/; headers and the non-library dirs are parsed
# directly so rules like next-wake see test doubles and bench helpers.
SCAN_DIRS = ("src", "tests", "bench", "examples")
_SUFFIXES = {".cpp", ".hpp", ".cc", ".hh", ".h"}

# The analyzer's own fixture corpus contains deliberate violations.
_EXCLUDE_PREFIX = "tests/analyzer/fixtures/"

SUPPRESSIONS_REL = "tools/frfc_analyzer.suppressions"


def _collect_files(root: Path) -> List[Path]:
    files: List[Path] = []
    for d in SCAN_DIRS:
        base = root / d
        if base.is_dir():
            files.extend(
                p for p in sorted(base.rglob("*"))
                if p.suffix in _SUFFIXES and p.is_file()
                and not p.relative_to(root).as_posix().startswith(
                    _EXCLUDE_PREFIX))
    return files


def _parse_internal(root: Path) -> List:
    units = []
    for path in _collect_files(root):
        try:
            units.append(frontend_internal.parse_file(path, root))
        except (OSError, UnicodeDecodeError) as exc:
            print("frfc-analyzer: cannot parse %s: %s"
                  % (path, exc), file=sys.stderr)
    return units


def _parse_clang(root: Path, commands) -> List:
    seen = set()
    units = []
    for cmd in commands:
        try:
            rel = cmd.file.relative_to(root.resolve()).as_posix()
        except ValueError:
            continue
        if not rel.startswith(tuple(d + "/" for d in SCAN_DIRS)):
            continue
        for tu in frontend_clang.parse_tu(cmd.file, cmd.args, root,
                                          seen):
            seen.add(tu.path)
            units.append(tu)
    # Files no TU reached (e.g. unused headers) still get parsed by
    # the internal frontend so coverage matches.
    for path in _collect_files(root):
        rel = path.relative_to(root).as_posix()
        if rel not in seen:
            units.append(frontend_internal.parse_file(path, root))
    return units


def main(argv: List[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="frfc_analyzer",
        description="AST-grade static analysis for the FRFC "
                    "simulator (see tools/frfc_analyzer/__init__.py "
                    "for the rule catalog)")
    parser.add_argument("--compdb", default="build/"
                        "compile_commands.json",
                        help="compile_commands.json path (default: "
                             "build/compile_commands.json)")
    parser.add_argument("--root", default=None,
                        help="repo root (default: two levels above "
                             "this package)")
    parser.add_argument("--frontend", default="auto",
                        choices=("auto", "clang", "internal"),
                        help="AST frontend (auto: clang.cindex when "
                             "importable, else the internal parser)")
    parser.add_argument("--json", default=None, metavar="out=FILE",
                        help="also write SARIF-shaped JSON findings "
                             "to FILE")
    parser.add_argument("--rules", default=None,
                        help="comma-separated rule families to run "
                             "(default: all)")
    parser.add_argument("--list-rules", action="store_true",
                        help="print rule families and finding ids, "
                             "then exit")
    parser.add_argument("--write-schemas", action="store_true",
                        help="regenerate docs/config_schema.json and "
                             "docs/metric_schema.json from the tree")
    parser.add_argument("--suppressions", default=None,
                        help="baseline suppression file (default: %s)"
                             % SUPPRESSIONS_REL)
    parser.add_argument("--no-suppressions", action="store_true",
                        help="report baseline-suppressed findings as "
                             "errors (audit mode)")
    parser.add_argument("--show-suppressed", action="store_true",
                        help="include suppressed findings in text "
                             "output")
    args = parser.parse_args(argv)

    if args.list_rules:
        for fam in sorted(FAMILIES):
            print(fam)
            for rid in sorted(RULE_DOCS):
                if rid == fam or rid.startswith(fam + "."):
                    print("  %-28s %s" % (rid, RULE_DOCS[rid]))
        return EXIT_CLEAN

    root = Path(args.root).resolve() if args.root \
        else Path(__file__).resolve().parent.parent.parent
    if not (root / "src").is_dir():
        print("frfc-analyzer: %s does not look like the repo root "
              "(no src/)" % root, file=sys.stderr)
        return EXIT_USAGE

    # Compile database: the TU list and the staleness gate.
    compdb_path = Path(args.compdb)
    if not compdb_path.is_absolute():
        compdb_path = root / compdb_path
    try:
        commands = compdb.load(compdb_path, root)
    except compdb.CompDbError as exc:
        print("frfc-analyzer: %s" % exc, file=sys.stderr)
        return EXIT_USAGE
    stale = compdb.check_coverage(commands, root, ["src"])
    if stale:
        print("frfc-analyzer: %s" % stale, file=sys.stderr)
        return EXIT_USAGE

    # Frontend selection.
    use_clang = frontend_clang.available()
    if args.frontend == "clang" and not use_clang:
        print("frfc-analyzer: SKIP — libclang (clang.cindex) is not "
              "available in this environment", file=sys.stderr)
        return EXIT_SKIP
    if args.frontend == "internal":
        use_clang = False

    units = _parse_clang(root, commands) if use_clang \
        else _parse_internal(root)
    program = Program(units, str(root))

    only = args.rules.split(",") if args.rules else None
    if only:
        unknown = [r for r in only if r not in FAMILIES]
        if unknown:
            print("frfc-analyzer: unknown rule families: %s "
                  "(--list-rules shows them)" % ", ".join(unknown),
                  file=sys.stderr)
            return EXIT_USAGE

    ctx = Context(root, write_schemas=args.write_schemas)
    findings = run_all(program, ctx, only)

    # Baseline suppressions.
    sup_path = Path(args.suppressions) if args.suppressions \
        else root / SUPPRESSIONS_REL
    sup_rel = sup_path.relative_to(root).as_posix() \
        if sup_path.is_relative_to(root) else str(sup_path)
    sup = suppress.load(sup_path, sup_rel)
    findings.extend(sup.problems)
    if not args.no_suppressions:
        sup.apply(findings)
        if only is None:
            findings.extend(sup.stale_entries())
    else:
        for f in findings:
            if f.suppression == "baseline":
                f.suppressed = False
                f.suppression = ""

    for line in render_text(findings, args.show_suppressed):
        print(line)

    if args.json:
        target = args.json
        if target.startswith("out="):
            target = target[4:]
        if not target:
            print("frfc-analyzer: --json needs out=<file>",
                  file=sys.stderr)
            return EXIT_USAGE
        out_path = Path(target)
        if not out_path.is_absolute():
            out_path = Path.cwd() / out_path
        out_path.write_text(
            render_sarif(findings, RULE_DOCS, __version__),
            encoding="utf-8")

    active = [f for f in findings if not f.suppressed]
    suppressed = len(findings) - len(active)
    frontend_name = "clang" if use_clang else "internal"
    if active:
        print("frfc-analyzer: %d finding(s) (%d suppressed) — "
              "%d files, %s frontend"
              % (len(active), suppressed, len(units), frontend_name),
              file=sys.stderr)
        return EXIT_FINDINGS
    print("frfc-analyzer: clean (%d files, %d rule families, "
          "%d suppressed, %s frontend)"
          % (len(units), len(FAMILIES if not only else only),
             suppressed, frontend_name), file=sys.stderr)
    return EXIT_CLEAN
