"""A C++ tokenizer sufficient for structural analysis.

Produces a flat token stream with line numbers, correctly skipping
comments, string literals (including raw strings), character literals,
and line continuations — the places where the old regex lint could be
fooled. Preprocessor directives are captured as single ``pp`` tokens
so the include-graph pass can read them and every other pass can skip
them.

Inline suppression directives (``// frfc-analyzer: allow(rule): why``)
are harvested from comments during lexing, since comments do not
survive into the token stream.
"""

import re
from dataclasses import dataclass
from typing import Dict, List

# Token kinds: 'id', 'num', 'str', 'chr', 'punct', 'pp'
@dataclass
class Token:
    kind: str
    text: str
    line: int


ALLOW_RE = re.compile(
    r"frfc-analyzer:\s*allow\(([a-z0-9_.-]+)\)")

_ID_START = set("abcdefghijklmnopqrstuvwxyz"
                "ABCDEFGHIJKLMNOPQRSTUVWXYZ_$")
_ID_CONT = _ID_START | set("0123456789")
_DIGITS = set("0123456789")

# Longest-match punctuation; order within each length is irrelevant.
_PUNCT3 = {"<<=", ">>=", "...", "->*"}
_PUNCT2 = {"::", "->", "++", "--", "<<", ">>", "<=", ">=", "==", "!=",
           "&&", "||", "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^="}


class Lexed:
    """Token stream plus per-line inline allow() directives."""

    def __init__(self, tokens: List[Token], allows: Dict[int, List[str]]):
        self.tokens = tokens
        self.allows = allows


def _note_allows(comment: str, line: int, allows: Dict[int, List[str]]):
    for m in ALLOW_RE.finditer(comment):
        allows.setdefault(line, []).append(m.group(1))


def lex(text: str) -> Lexed:
    tokens: List[Token] = []
    allows: Dict[int, List[str]] = {}
    i, n, line = 0, len(text), 1
    while i < n:
        c = text[i]
        if c == "\n":
            line += 1
            i += 1
            continue
        if c in " \t\r\f\v":
            i += 1
            continue
        if c == "\\" and i + 1 < n and text[i + 1] == "\n":
            line += 1
            i += 2
            continue
        # Comments.
        if c == "/" and i + 1 < n:
            if text[i + 1] == "/":
                end = text.find("\n", i)
                if end < 0:
                    end = n
                _note_allows(text[i:end], line, allows)
                i = end
                continue
            if text[i + 1] == "*":
                end = text.find("*/", i + 2)
                if end < 0:
                    end = n
                chunk = text[i:end]
                _note_allows(chunk, line, allows)
                line += chunk.count("\n")
                i = end + 2
                continue
        # Preprocessor directive: consume through (continued) EOL.
        if c == "#" and (not tokens or tokens[-1].line != line):
            start, start_line = i, line
            while i < n:
                if text[i] == "\\" and i + 1 < n and text[i + 1] == "\n":
                    line += 1
                    i += 2
                    continue
                if text[i] == "\n":
                    break
                # A // comment ends the directive's useful text but we
                # still consume to EOL below via the find.
                i += 1
            tokens.append(Token("pp", text[start:i], start_line))
            continue
        # Raw string literal R"delim( ... )delim".
        if c == "R" and text.startswith('R"', i):
            m = re.match(r'R"([^\s()\\]{0,16})\(', text[i:])
            if m:
                delim = m.group(1)
                close = ')' + delim + '"'
                end = text.find(close, i + m.end())
                if end < 0:
                    end = n
                chunk = text[i:end + len(close)]
                tokens.append(Token("str", chunk, line))
                line += chunk.count("\n")
                i = end + len(close)
                continue
        # String / char literals (with optional encoding prefix).
        if c in "\"'" or (c in "uUL" and i + 1 < n
                          and text[i + 1] in "\"'"
                          and (c != "u" or True)):
            j = i
            if c in "uUL":
                j += 1
                if text[j] == "8":  # u8"..."
                    j += 1
            quote = text[j]
            if quote in "\"'":
                k = j + 1
                while k < n:
                    if text[k] == "\\":
                        k += 2
                        continue
                    if text[k] == quote:
                        k += 1
                        break
                    if text[k] == "\n":  # unterminated; bail at EOL
                        break
                    k += 1
                tokens.append(Token("str" if quote == '"' else "chr",
                                    text[i:k], line))
                i = k
                continue
        # Identifiers / keywords.
        if c in _ID_START:
            j = i + 1
            while j < n and text[j] in _ID_CONT:
                j += 1
            tokens.append(Token("id", text[i:j], line))
            i = j
            continue
        # Numbers (loose: enough to skip them atomically).
        if c in _DIGITS or (c == "." and i + 1 < n
                            and text[i + 1] in _DIGITS):
            j = i + 1
            while j < n and (text[j] in _ID_CONT or text[j] in ".'"
                             or (text[j] in "+-"
                                 and text[j - 1] in "eEpP")):
                j += 1
            tokens.append(Token("num", text[i:j], line))
            i = j
            continue
        # Punctuation, longest match first.
        if text[i:i + 3] in _PUNCT3:
            tokens.append(Token("punct", text[i:i + 3], line))
            i += 3
            continue
        if text[i:i + 2] in _PUNCT2:
            tokens.append(Token("punct", text[i:i + 2], line))
            i += 2
            continue
        tokens.append(Token("punct", c, line))
        i += 1
    return Lexed(tokens, allows)


def string_value(token_text: str) -> str:
    """Decode a (non-raw) string literal token to its value."""
    if token_text.startswith('R"'):
        m = re.match(r'R"([^\s()\\]{0,16})\((.*)\)\1"\Z',
                     token_text, re.S)
        return m.group(2) if m else token_text
    body = token_text
    for prefix in ("u8", "u", "U", "L"):
        if body.startswith(prefix + '"'):
            body = body[len(prefix):]
            break
    if body.startswith('"') and body.endswith('"') and len(body) >= 2:
        body = body[1:-1]
    try:
        return bytes(body, "utf-8").decode("unicode_escape")
    except UnicodeDecodeError:
        return body
