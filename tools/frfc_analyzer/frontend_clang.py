"""libclang frontend: clang.cindex cursors -> IR.

The reference frontend. Semantic facts — class definitions, base
specifiers, member functions with override/virtual bits, variable
declarations with storage class, includes — come from real AST
cursors, so macro expansion, template aliases, and inheritance resolve
exactly as the compiler sees them. Call-site argument decomposition
(string-literal keys, ``prefix + ".leaf"`` concatenations) reuses the
token-level decomposer from the internal frontend over the file's own
text, which keeps the two frontends' IR byte-compatible where they
overlap — pinned by the fixture corpus, which runs under whichever
frontend is available.

Availability is probed lazily: ``available()`` is False when the
``clang`` Python package or a loadable libclang shared object is
missing, and the driver falls back to the internal frontend (or exits
77 when ``--frontend=clang`` was forced).
"""

from pathlib import Path
from typing import List, Optional

from .ir import (ClassInfo, Include, MethodInfo, TranslationUnit,
                 TypeUse, VarDecl)
from . import frontend_internal

_HOT_TYPES = ("std::unordered_map", "std::unordered_set",
              "std::map", "std::deque")

_index = None
_probe_done = False


def available() -> bool:
    """True when clang.cindex can parse code in this environment."""
    global _index, _probe_done
    if _probe_done:
        return _index is not None
    _probe_done = True
    try:
        from clang import cindex  # type: ignore
    except ImportError:
        return False
    try:
        _index = cindex.Index.create()
    except Exception:  # library missing or ABI mismatch
        _index = None
    return _index is not None


def _rel(path: str, root: Path) -> Optional[str]:
    try:
        return Path(path).resolve().relative_to(root.resolve()).as_posix()
    except ValueError:
        return None


def parse_tu(source: Path, args: List[str], root: Path,
             seen_files: set) -> List[TranslationUnit]:
    """Parse one compile-command entry; return IR for every repo file
    in the TU not already covered by ``seen_files``."""
    from clang import cindex  # type: ignore

    tu = _index.parse(str(source), args=args)
    units = {}

    def unit_for(path: str) -> Optional[TranslationUnit]:
        rel = _rel(path, root)
        if rel is None or rel in seen_files:
            return None
        if rel not in units:
            # Token-level facts (calls, strings, range-fors, consts,
            # inline allows) come from the shared internal parser so
            # both frontends decompose arguments identically.
            units[rel] = frontend_internal.parse_file(root / rel, root)
            # Cursors below override the structural facts.
            units[rel].classes = []
            units[rel].vars = []
            units[rel].type_uses = [
                t for t in units[rel].type_uses if t.via_alias]
        return units[rel]

    for inc in tu.get_includes():
        u = unit_for(str(inc.location.file))
        if u is not None:
            target = str(inc.include)
            r = _rel(target, root)
            spelled = r
            if spelled is not None and spelled.startswith("src/"):
                spelled = spelled[len("src/"):]
            u.includes = [i for i in u.includes
                          if not (i.line == inc.location.line)]
            u.includes.append(Include(
                file=u.path, line=inc.location.line,
                target=spelled or target, system=r is None))

    CK = cindex.CursorKind

    def walk(cursor, class_stack):
        for child in cursor.get_children():
            loc = child.location
            if loc.file is None:
                walk(child, class_stack)
                continue
            u = unit_for(str(loc.file))
            if u is None:
                continue
            kind = child.kind
            if kind in (CK.CLASS_DECL, CK.STRUCT_DECL,
                        CK.CLASS_TEMPLATE) \
                    and child.is_definition():
                ci = ClassInfo(
                    name=child.spelling,
                    qualified=child.type.spelling
                    if kind != CK.CLASS_TEMPLATE else child.spelling,
                    file=u.path, line=loc.line)
                for sub in child.get_children():
                    if sub.kind == CK.CXX_BASE_SPECIFIER:
                        base = sub.type.spelling
                        ci.bases.append(base.split("<")[0])
                    elif sub.kind in (CK.CXX_METHOD, CK.CONSTRUCTOR,
                                      CK.DESTRUCTOR):
                        over = any(
                            a.kind == CK.CXX_OVERRIDE_ATTR
                            for a in sub.get_children())
                        ci.methods.append(MethodInfo(
                            name=sub.spelling,
                            line=sub.location.line,
                            is_override=over,
                            is_virtual=sub.is_virtual_method()))
                u.classes.append(ci)
                walk(child, class_stack + [ci])
                continue
            if kind in (CK.VAR_DECL, CK.FIELD_DECL):
                sem = child.semantic_parent.kind
                scope = ("namespace" if sem in (
                             CK.NAMESPACE, CK.TRANSLATION_UNIT)
                         else "class" if sem in (
                             CK.CLASS_DECL, CK.STRUCT_DECL)
                         else "function")
                tname = child.type.spelling
                storage = child.storage_class
                is_static = storage == cindex.StorageClass.STATIC
                if kind == CK.VAR_DECL and scope != "function" \
                        or is_static \
                        or "thread_local" in tname:
                    canon = child.type.get_canonical().spelling
                    u.vars.append(VarDecl(
                        file=u.path, line=loc.line,
                        name=child.spelling, type_text=tname,
                        is_static=is_static,
                        is_thread_local=getattr(
                            child, "tls_kind", None) is not None
                        and str(getattr(child, "tls_kind"))
                        not in ("TLSKind.NONE", "None"),
                        is_const=("const" in canon.split()
                                  or canon.startswith("const ")),
                        is_member=(scope == "class"),
                        scope=scope))
                # Hot-container / random_device detection on the
                # canonical type — catches aliases and typedefs.
                canon = child.type.get_canonical().spelling
                for hot in _HOT_TYPES + ("std::random_device",):
                    if canon.startswith(hot) \
                            or (" " + hot) in canon:
                        via = "" if hot in tname else tname
                        u.type_uses.append(TypeUse(
                            file=u.path, line=loc.line, name=hot,
                            via_alias=via))
            walk(child, class_stack)

    walk(tu.cursor, [])
    return list(units.values())
