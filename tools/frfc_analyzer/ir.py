"""Frontend-neutral intermediate representation.

Both frontends (libclang and the internal parser) lower a translation
unit to a ``TranslationUnit`` carrying exactly the facts the rules
consume. Keeping the IR small and explicit is what lets the rules stay
frontend-agnostic and the fixtures stay tiny: a rule never reaches
around the IR back into tokens or cursors.

All paths stored in the IR are repo-root-relative POSIX paths.
"""

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple


@dataclass
class Include:
    """One ``#include`` directive."""

    file: str          # including file (repo-relative)
    line: int
    target: str        # as spelled between the delimiters
    system: bool       # <...> include


@dataclass
class MethodInfo:
    """A member-function declaration inside a class body."""

    name: str
    line: int
    is_override: bool = False
    is_virtual: bool = False


@dataclass
class ClassInfo:
    """A class/struct definition with its base-specifier list."""

    name: str                    # unqualified name
    qualified: str               # namespace-qualified (frfc::FrRouter)
    file: str
    line: int
    bases: List[str] = field(default_factory=list)   # as spelled
    methods: List[MethodInfo] = field(default_factory=list)

    def method(self, name: str) -> Optional[MethodInfo]:
        for m in self.methods:
            if m.name == name:
                return m
        return None


@dataclass
class Arg:
    """One call argument, decomposed as far as the frontend could.

    ``literal`` is set when the argument is (a concatenation of)
    string literals; ``ident`` when it is a lone identifier;
    ``concat`` when it is ``<expr> + "literal"`` — the common
    dynamic-prefix metric-path shape — holding the literal tail.
    ``text`` always carries the raw spelling for diagnostics.
    """

    text: str
    literal: Optional[str] = None
    ident: Optional[str] = None
    concat: Optional[str] = None


@dataclass
class CallSite:
    """A member/free call expression: ``recv.callee<targs>(args)``."""

    file: str
    line: int
    callee: str                  # final name: get, scope, attachCounter
    receiver: str                # spelling of the receiver chain ('' if none)
    template_args: str           # text inside <...> ('' if none)
    args: List[Arg] = field(default_factory=list)


@dataclass
class VarDecl:
    """A variable declaration relevant to determinism/shard-safety.

    Frontends emit namespace-scope variables, static data members, and
    function-local statics/thread_locals. Plain automatic locals are
    not emitted (they are never shared state).
    """

    file: str
    line: int
    name: str
    type_text: str
    is_static: bool = False          # static storage at namespace/class/function scope
    is_thread_local: bool = False
    is_const: bool = False           # const or constexpr
    is_member: bool = False          # static data member
    scope: str = ""                  # 'namespace' | 'class' | 'function'


@dataclass
class TypeUse:
    """An appearance of a named type in a declaration context."""

    file: str
    line: int
    name: str                    # canonical: std::unordered_map, ...
    via_alias: str = ""          # alias name when reached through one


@dataclass
class RangeFor:
    """A range-based for statement: ``for (... : range_expr)``."""

    file: str
    line: int
    range_text: str              # spelling of the range expression


@dataclass
class StringLit:
    """A string literal outside comments (for key-literal rules)."""

    file: str
    line: int
    value: str


@dataclass
class ConstDef:
    """A string constant: ``constexpr const char* kX = "...";``."""

    file: str
    line: int
    name: str
    value: str


@dataclass
class TranslationUnit:
    """Everything the rules need to know about one source file."""

    path: str                                    # repo-relative
    includes: List[Include] = field(default_factory=list)
    classes: List[ClassInfo] = field(default_factory=list)
    calls: List[CallSite] = field(default_factory=list)
    vars: List[VarDecl] = field(default_factory=list)
    type_uses: List[TypeUse] = field(default_factory=list)
    range_fors: List[RangeFor] = field(default_factory=list)
    strings: List[StringLit] = field(default_factory=list)
    consts: List[ConstDef] = field(default_factory=list)
    # ConfigScope variables: name -> prefix, from declarations like
    # `const ConfigScope run = cfg.scope("run");`
    scope_vars: Dict[str, str] = field(default_factory=dict)
    # line -> set of rule ids allowed inline on that line
    allows: Dict[int, List[str]] = field(default_factory=dict)


@dataclass
class Finding:
    """One rule violation, in the shape the reporters expect."""

    rule: str
    file: str
    line: int
    message: str
    suppressed: bool = False
    suppression: str = ""        # 'inline' | 'baseline' when suppressed

    def key(self) -> Tuple[str, str, int]:
        return (self.rule, self.file, self.line)


class Program:
    """The whole-program view handed to cross-check rules."""

    def __init__(self, units: List[TranslationUnit], root: str):
        self.units = units
        self.root = root
        self._by_path = {u.path: u for u in units}

    def unit(self, path: str) -> Optional[TranslationUnit]:
        return self._by_path.get(path)

    def class_index(self) -> Dict[str, ClassInfo]:
        """Last-definition-wins map from unqualified class name.

        Class names are unique per scope in this codebase (one
        namespace, one definition per header); fixtures rely on the
        same property.
        """
        index: Dict[str, ClassInfo] = {}
        for tu in self.units:
            for ci in tu.classes:
                index.setdefault(ci.name, ci)
        return index

    def derives_from(self, cls: "ClassInfo", base: str,
                     index: Dict[str, "ClassInfo"]) -> bool:
        """Transitive inheritance walk over the base-specifier graph."""
        seen = set()
        work = list(cls.bases)
        while work:
            b = work.pop()
            name = b.split("::")[-1]
            if name == base:
                return True
            if name in seen:
                continue
            seen.add(name)
            parent = index.get(name)
            if parent is not None:
                work.extend(parent.bases)
        return False
