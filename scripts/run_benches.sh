#!/bin/sh
# Run every figure/table/ablation/stat bench and collect the structured
# JSON reports under bench_out/, validating each with json_lint.
#
# usage: scripts/run_benches.sh [options] [-- BENCH_ARGS...]
#   -b DIR   build directory (default: build)
#   -o DIR   output directory (default: bench_out)
#   -s       smoke mode: tiny samples so the whole sweep takes seconds
#   --quick  smoke mode plus a short perf_microbench pass (hot-path
#            regression sniff; full numbers come from perf_gate.py)
#   --full   paper-scale runs (passed through to every bench)
#   --validate [N]  run with the reservation-protocol sanitizer at
#            sim.validate=N (default 1; 2 = paranoid per-cycle sweeps)
#
# Everything after `--` is forwarded verbatim to each bench, e.g.
#   scripts/run_benches.sh -- run.threads=4 seed=7
set -eu

cd "$(dirname "$0")/.."

build_dir=build
out_dir=bench_out
extra=""
smoke=0
quick=0
while [ $# -gt 0 ]; do
    case "$1" in
        -b) build_dir=$2; shift 2 ;;
        -o) out_dir=$2; shift 2 ;;
        -s) smoke=1; shift ;;
        --quick) smoke=1; quick=1; shift ;;
        --full) extra="$extra --full"; shift ;;
        --validate)
            level=1
            case "${2:-}" in 0|1|2) level=$2; shift ;; esac
            extra="$extra sim.validate=$level"; shift ;;
        --) shift; extra="$extra $*"; break ;;
        *) echo "unknown option '$1' (see header comment)" >&2; exit 2 ;;
    esac
done
if [ "$smoke" = 1 ]; then
    extra="$extra run.sample_packets=50 run.min_warmup=200 \
run.max_warmup=500 run.max_cycles=5000"
fi

benches="table1_storage table2_bandwidth fig5_latency_5flit \
fig6_latency_21flit fig7_horizon fig8_leading_lead fig9_leading_vs_vc \
table3_summary stat_pool_occupancy stat_control_lead \
ablation_allornothing ablation_vc_sharedpool ablation_speedup \
kernel_idle_sweep ext_error_recovery ext_torus ext_lineage"

lint="$build_dir/bench/json_lint"
[ -x "$lint" ] || { echo "missing $lint — build the repo first" >&2; exit 1; }

mkdir -p "$out_dir"
failed=""

if [ "$quick" = 1 ]; then
    micro="$build_dir/bench/perf_microbench"
    if [ -x "$micro" ]; then
        echo "RUN  perf_microbench -> $out_dir/perf_microbench.log"
        if ! "$micro" --benchmark_min_time=0.05 \
            > "$out_dir/perf_microbench.log" 2>&1; then
            echo "FAIL perf_microbench (see $out_dir/perf_microbench.log)"
            failed="$failed perf_microbench"
        fi
    else
        echo "SKIP perf_microbench (not built)"
    fi
fi
for bench in $benches; do
    bin="$build_dir/bench/$bench"
    if [ ! -x "$bin" ]; then
        echo "SKIP $bench (not built)"
        continue
    fi
    json="$out_dir/$bench.json"
    log="$out_dir/$bench.log"
    echo "RUN  $bench -> $json"
    # shellcheck disable=SC2086  # $extra is a word list by design
    if "$bin" $extra out.format=json "out.file=$json" > "$log" 2>&1 \
        && "$lint" "$json" > /dev/null; then
        :
    else
        echo "FAIL $bench (see $log)"
        failed="$failed $bench"
    fi
done

if [ -n "$failed" ]; then
    echo "failed:$failed" >&2
    exit 1
fi
echo "all reports in $out_dir/ parse as JSON"
