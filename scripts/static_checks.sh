#!/bin/sh
# Static-analysis and sanitizer gate for the FRFC simulator.
#
# Runs, in order:
#   1. frfc-lint       textual rules (tools/frfc_lint.py) — always
#   2. frfc-analyzer   AST-grade rules over the compile database
#                      (tools/frfc_analyzer; DESIGN.md §14) — always;
#                      fails loudly when compile_commands.json is
#                      missing or stale
#   3. fault sweep     validator-paranoid loss-recovery sweep
#   4. clang-format    diff check against .clang-format — if installed
#   5. clang-tidy      FRFC_TIDY=ON build of src/ — if installed
#   6. asan+ubsan      full ctest under -fsanitize=address,undefined
#   7. tsan            parallel-executor tests under -fsanitize=thread
#
# Tools that are not installed are reported as SKIP, not failure: the
# gate must be runnable on minimal containers, and frfc-lint carries
# the repo-specific rules that matter most. Sanitizer stages build
# into their own directories so the primary build/ is untouched.
#
# usage: scripts/static_checks.sh [--quick]
#   --quick   skip the sanitizer builds (stages 4 and 5)
set -eu

cd "$(dirname "$0")/.."

quick=0
[ "${1:-}" = "--quick" ] && quick=1

failures=0
step() { printf '== %s\n' "$*"; }
fail() { printf 'FAIL %s\n' "$*" >&2; failures=$((failures + 1)); }

step "frfc-lint"
python3 tools/frfc_lint.py || fail "frfc-lint"

step "frfc-analyzer"
# The analyzer needs the CMake-exported compile database for its TU
# list and staleness gate (CMAKE_EXPORT_COMPILE_COMMANDS is always on
# in the top-level CMakeLists).
if [ ! -f build/compile_commands.json ]; then
    fail "frfc-analyzer: build/compile_commands.json is missing — \
configure the build first (cmake -B build) so the compile database \
exists"
else
    PYTHONPATH=tools python3 -m frfc_analyzer \
        --compdb build/compile_commands.json \
        --json out=build/frfc_analyzer.sarif.json \
        || fail "frfc-analyzer"
fi

step "fault sweep (sim.validate=2)"
# The PR 9 fault x recovery sweep under the paranoid validator: every
# injected-fault cell must deliver 100% with zero findings (the
# validator fail-fast panics otherwise). Uses the primary build.
if [ -x build/bench/ext_fault_recovery ]; then
    build/bench/ext_fault_recovery \
        run.sample_packets=50 run.min_warmup=200 run.max_warmup=500 \
        run.max_cycles=5000 sim.validate=2 > /dev/null \
        || fail "fault sweep"
else
    echo "SKIP fault sweep (build/bench/ext_fault_recovery not built)"
fi

step "clang-format"
if command -v clang-format > /dev/null 2>&1; then
    unformatted=0
    for f in $(find src tests bench examples tools \
                   -name '*.cpp' -o -name '*.hpp' 2> /dev/null); do
        if ! clang-format --dry-run -Werror "$f" > /dev/null 2>&1; then
            echo "needs formatting: $f"
            unformatted=$((unformatted + 1))
        fi
    done
    [ "$unformatted" = 0 ] || fail "clang-format ($unformatted files)"
else
    echo "SKIP clang-format (not installed)"
fi

step "clang-tidy"
if command -v clang-tidy > /dev/null 2>&1; then
    cmake -B build-tidy -DFRFC_TIDY=ON \
        -DCMAKE_BUILD_TYPE=RelWithDebInfo > /dev/null \
        && cmake --build build-tidy --target frfc_sim -j "$(nproc)" \
        || fail "clang-tidy"
else
    echo "SKIP clang-tidy (not installed)"
fi

if [ "$quick" = 1 ]; then
    echo "SKIP sanitizers (--quick)"
else
    step "asan+ubsan ctest"
    cmake -B build-asan -DFRFC_SANITIZE=address,undefined \
        -DCMAKE_BUILD_TYPE=RelWithDebInfo > /dev/null \
        && cmake --build build-asan -j "$(nproc)" > /dev/null \
        && (cd build-asan && ctest --output-on-failure -j "$(nproc)") \
        || fail "asan+ubsan"

    step "tsan parallel tests"
    cmake -B build-tsan -DFRFC_SANITIZE=thread \
        -DCMAKE_BUILD_TYPE=RelWithDebInfo > /dev/null \
        && cmake --build build-tsan -j "$(nproc)" > /dev/null \
        && (cd build-tsan \
            && ctest --output-on-failure -j "$(nproc)" \
                     -R 'Parallel|Thread|Executor') \
        || fail "tsan"
fi

if [ "$failures" -gt 0 ]; then
    echo "static_checks: $failures stage(s) failed" >&2
    exit 1
fi
echo "static_checks: all stages passed"
