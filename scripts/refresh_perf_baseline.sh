#!/bin/sh
# Re-measure the perf-gate baseline on this host and write it to
# bench/baselines/perf_baseline.json. Run after intentional
# performance changes (and commit the result), on an otherwise idle
# machine — the gate skips on hosts whose calibration fingerprint
# drifts from the one recorded here.
#
# usage: scripts/refresh_perf_baseline.sh [build-dir]
set -eu

cd "$(dirname "$0")/.."
build="${1:-build}"

cmake --build "$build" -j "$(nproc)" \
    --target perf_microbench kernel_idle_sweep > /dev/null

python3 scripts/perf_gate.py \
    --build-dir "$build" \
    --baseline bench/baselines/perf_baseline.json \
    --refresh
