#!/usr/bin/env python3
"""Wall-clock regression gate for the simulator hot paths.

Measures a fixed set of performance probes and compares them against
the checked-in baseline (bench/baselines/perf_baseline.json):

  * google-benchmark microbenches from perf_microbench in JSON mode
    (reservation-table ops, FR network cycle, the parallel-executor
    latency-curve sweep), and
  * one reduced kernel_idle_sweep run (every registered kernel across
    the load range), gated on its total wall_seconds.

Every metric (baseline and gate alike) is the minimum over --runs
independent measurement passes: wall-clock noise on a shared host is
one-sided — interference only ever makes code *slower* — so min-of-N
converges on the code's actual cost while mean-of-N averages in the
interference.

Shared CI hosts are noisy and heterogeneous on top of that, so the
gate also compares a calibration fingerprint — the BM_ChannelTransport
per-iteration cpu time, a tiny pure-CPU probe — against the value
recorded when the baseline was refreshed:

  * If the fingerprint is off by more than --calibration-tolerance the
    host is not comparable to the baseline host (different machine
    class, or heavily loaded right now) and the gate exits 77, which
    CTest reports as SKIP (SKIP_RETURN_CODE), not failure.
  * Otherwise every gated metric is judged twice — raw, and
    normalized by the fingerprint ratio (compensating uniform
    host-speed drift) — and fails only if it exceeds --tolerance in
    BOTH views. A uniformly slow host is rescued by the normalized
    view; non-uniform frequency drift (the fingerprint probe boosting
    while cache-bound metrics stay flat) is rescued by the raw view;
    a genuine code regression survives both. Improvements are
    reported but never fail.

The default --tolerance is deliberately loose (25%): back-to-back
min-of-3 runs on a loaded single-core CI host drift up to ~20% raw,
and a gate that cries wolf gets deleted. The gate exists to catch the
multi-x accidental regressions (an O(n) scan reintroduced on a hot
path), not single-digit drift; tighten --tolerance on quiet dedicated
hardware where the envelope allows it.

Refresh the baseline after intentional performance changes with
scripts/refresh_perf_baseline.sh (runs this script with --refresh).

Exit status: 0 clean, 1 regression, 77 host not comparable (skip),
2 usage/setup error.
"""

import argparse
import json
import os
import subprocess
import sys

MICROBENCH_FILTER = (
    "BM_ChannelTransport|BM_OutputTableReserveCredit/16|"
    "BM_FrNetworkCycle/30|BM_LatencyCurveSweep/1/real_time"
)
CALIBRATION_METRIC = "BM_ChannelTransport.cpu_ns"

# Reduced but fixed measurement protocol for the sweep probe: the
# absolute numbers only need to be comparable to the same protocol in
# the baseline, not to any paper figure.
SWEEP_ARGS = [
    "run.sample_packets=100",
    "run.min_warmup=100",
    "run.max_warmup=300",
    "run.max_cycles=5000",
    "out.format=json",
]


def run_microbench(build_dir):
    exe = os.path.join(build_dir, "bench", "perf_microbench")
    out = subprocess.run(
        [exe, "--benchmark_filter=" + MICROBENCH_FILTER,
         "--benchmark_format=json"],
        check=True, capture_output=True, text=True).stdout
    doc = json.loads(out)
    metrics = {}
    for bench in doc.get("benchmarks", []):
        name = bench["name"]
        if name.endswith("/real_time"):
            metrics[name + ".real_ns"] = float(bench["real_time"])
        else:
            metrics[name + ".cpu_ns"] = float(bench["cpu_time"])
    return metrics


def run_sweep(build_dir):
    exe = os.path.join(build_dir, "bench", "kernel_idle_sweep")
    out_file = os.path.join(build_dir, "bench", "perf_gate_sweep.json")
    subprocess.run(
        [exe] + SWEEP_ARGS + ["out.file=" + out_file],
        check=True, capture_output=True, text=True)
    with open(out_file, encoding="utf-8") as f:
        doc = json.load(f)
    return {"kernel_idle_sweep.wall_seconds": float(doc["wall_seconds"])}


def measure(build_dir, runs):
    """Min of `runs` full passes per metric (noise is one-sided)."""
    metrics = {}
    for _ in range(runs):
        sample = run_microbench(build_dir)
        sample.update(run_sweep(build_dir))
        for name, value in sample.items():
            metrics[name] = min(value, metrics.get(name, value))
    if CALIBRATION_METRIC not in metrics:
        print("perf_gate: calibration metric %s missing from "
              "perf_microbench output" % CALIBRATION_METRIC,
              file=sys.stderr)
        sys.exit(2)
    return metrics


def main(argv):
    parser = argparse.ArgumentParser(
        prog="perf_gate", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("--build-dir", required=True)
    parser.add_argument("--baseline", required=True)
    parser.add_argument("--refresh", action="store_true",
                        help="write the baseline instead of gating")
    parser.add_argument("--tolerance", type=float, default=0.25,
                        help="allowed fractional regression (default "
                             "0.25, sized to the measured noise "
                             "envelope of a loaded shared host; "
                             "tighten on quiet dedicated hardware)")
    parser.add_argument("--calibration-tolerance", type=float,
                        default=0.15,
                        help="allowed fingerprint drift before the "
                             "host is deemed not comparable (default "
                             "0.15)")
    parser.add_argument("--runs", type=int, default=3,
                        help="measurement passes per metric; the "
                             "minimum is kept (default 3)")
    args = parser.parse_args(argv)

    metrics = measure(args.build_dir, args.runs)

    if args.refresh:
        baseline = {
            "schema": 1,
            "calibration_metric": CALIBRATION_METRIC,
            "metrics": metrics,
        }
        os.makedirs(os.path.dirname(args.baseline), exist_ok=True)
        with open(args.baseline, "w", encoding="utf-8") as f:
            json.dump(baseline, f, indent=2, sort_keys=True)
            f.write("\n")
        print("perf_gate: baseline refreshed -> %s" % args.baseline)
        for name in sorted(metrics):
            print("  %-48s %.4g" % (name, metrics[name]))
        return 0

    try:
        with open(args.baseline, encoding="utf-8") as f:
            baseline = json.load(f)
    except OSError as err:
        print("perf_gate: cannot read baseline: %s" % err,
              file=sys.stderr)
        return 2
    base_metrics = baseline["metrics"]

    cal_base = base_metrics[CALIBRATION_METRIC]
    cal_now = metrics[CALIBRATION_METRIC]
    cal_ratio = cal_now / cal_base
    print("perf_gate: calibration %s: baseline %.4g, now %.4g "
          "(ratio %.3f)" % (CALIBRATION_METRIC, cal_base, cal_now,
                            cal_ratio))
    if abs(cal_ratio - 1.0) > args.calibration_tolerance:
        print("perf_gate: SKIP — host fingerprint drifted %.0f%% from "
              "the baseline host (> %.0f%%); refresh the baseline on "
              "this host class to gate here"
              % (abs(cal_ratio - 1.0) * 100.0,
                 args.calibration_tolerance * 100.0))
        return 77

    regressions = 0
    for name in sorted(base_metrics):
        if name == CALIBRATION_METRIC:
            continue
        if name not in metrics:
            print("MISSING %-48s (in baseline, not measured)" % name)
            regressions += 1
            continue
        base = base_metrics[name]
        # Two views: raw, and normalized by the fingerprint ratio. A
        # uniformly slower host inflates only the raw view; a
        # fingerprint probe that boosted while cache-bound metrics
        # stayed flat inflates only the normalized view. Fail only
        # when the regression survives both.
        raw_delta = metrics[name] / base - 1.0
        norm_delta = metrics[name] / cal_ratio / base - 1.0
        delta = min(raw_delta, norm_delta)
        verdict = "ok"
        if delta > args.tolerance:
            verdict = "REGRESSION"
            regressions += 1
        elif max(raw_delta, norm_delta) < -args.tolerance:
            verdict = "improved"
        print("%-10s %-48s base %.4g now %.4g "
              "(raw %+.1f%%, normalized %+.1f%%)"
              % (verdict, name, base, metrics[name],
                 raw_delta * 100.0, norm_delta * 100.0))

    if regressions:
        print("perf_gate: %d metric(s) regressed beyond %.0f%%"
              % (regressions, args.tolerance * 100.0), file=sys.stderr)
        return 1
    print("perf_gate: clean")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
