/**
 * @file
 * Regenerates the Section 4.4 control-lead statistic: with leading
 * control at 77% offered load, control flits with a 1-cycle lead reach
 * the destination ~14 cycles ahead of their data (vs ~15 for a 4-cycle
 * lead) — congestion on the data network lets control race ahead no
 * matter how small the initial lead.
 */

#include <cstdio>

#include "bench_common.hpp"
#include "network/fr_network.hpp"

using namespace frfc;

int
main(int argc, char** argv)
{
    return bench::benchMain(
        argc, argv,
        {"stat_control_lead",
         "Section 4.4 statistic: control flit lead over data at the "
         "destination"},
        [](bench::BenchContext& ctx) {
            RunOptions opt = ctx.options();
            if (!ctx.full()) {
                opt.samplePackets = 1200;
                opt.maxCycles = 100000;
            }

            std::printf("== Section 4.4: control flit lead over data at "
                        "the destination (leading control) ==\n\n");

            const double load = 0.72;  // near the paper's 77% point
            const double paper_lead[] = {14.0, 15.0};
            int idx = 0;
            for (int lead : {1, 4}) {
                Config cfg = baseConfig();
                applyFr6(cfg);
                applyLeadingControl(cfg, lead);
                cfg.set("workload.offered", load);
                ctx.applyOverrides(cfg);
                FrNetwork net(cfg);
                const RunResult r = runMeasurement(net, opt);
                std::printf(
                    "lead %d: control reaches destination %.1f cycles "
                    "ahead of data (paper ~%.0f)  latency %s\n",
                    lead, net.avgControlLead(), paper_lead[idx],
                    r.complete ? TextTable::num(r.avgLatency, 1).c_str()
                               : "sat");
                const std::string tag =
                    "lead" + std::to_string(lead) + "_at_72pct";
                ctx.comparison(tag + " dest lead", paper_lead[idx],
                               net.avgControlLead());
                ++idx;
            }

            std::printf("\nAt low load the lead shrinks toward the wire "
                        "difference:\n");
            for (int lead : {1, 4}) {
                Config cfg = baseConfig();
                applyFr6(cfg);
                applyLeadingControl(cfg, lead);
                cfg.set("workload.offered", 0.1);
                ctx.applyOverrides(cfg);
                FrNetwork net(cfg);
                runMeasurement(net, opt);
                std::printf(
                    "lead %d @10%% load: average lead %.1f cycles\n",
                    lead, net.avgControlLead());
                ctx.report().addScalar("measured.lead"
                                           + std::to_string(lead)
                                           + "_at_10pct.dest_lead",
                                       net.avgControlLead());
            }
            ctx.note("Congestion on the data network lets control race "
                     "ahead regardless of the initial lead "
                     "(Section 4.4).");
        });
}
