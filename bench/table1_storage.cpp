/**
 * @file
 * Regenerates Table 1: storage overhead of virtual-channel and
 * flit-reservation flow control, bit for bit against the paper.
 */

#include <cstdio>
#include <iostream>

#include "bench_common.hpp"
#include "common/table.hpp"
#include "overhead/overhead.hpp"

using namespace frfc;

int
main(int argc, char** argv)
{
    return bench::benchMain(
        argc, argv,
        {"table1_storage", "Table 1: storage overhead (bits per node)"},
        [](bench::BenchContext& ctx) {
            std::printf(
                "== Table 1: storage overhead (bits per node) ==\n\n");

            TextTable table;
            table.setHeader({"row", "VC8", "VC16", "VC32", "FR6",
                             "FR13"});

            VcStorageParams vc8{256, 2, 2, 8, 5};
            VcStorageParams vc16{256, 2, 4, 16, 5};
            VcStorageParams vc32{256, 2, 8, 32, 5};
            const VcStorage v8 = computeVcStorage(vc8);
            const VcStorage v16 = computeVcStorage(vc16);
            const VcStorage v32 = computeVcStorage(vc32);

            FrStorageParams fr6{256, 2, 1, 32, 2, 6, 6, 5};
            FrStorageParams fr13{256, 2, 1, 32, 4, 12, 13, 5};
            const FrStorage f6 = computeFrStorage(fr6);
            const FrStorage f13 = computeFrStorage(fr13);

            auto n = [](long v) { return std::to_string(v); };
            table.addRow({"Data buffers", n(v8.dataBufferBits),
                          n(v16.dataBufferBits), n(v32.dataBufferBits),
                          n(f6.dataBufferBits), n(f13.dataBufferBits)});
            table.addRow({"Control buffers", "-", "-", "-",
                          n(f6.ctrlBufferBits), n(f13.ctrlBufferBits)});
            table.addRow({"Queue pointers", n(v8.queuePointerBits),
                          n(v16.queuePointerBits),
                          n(v32.queuePointerBits),
                          n(f6.queuePointerBits),
                          n(f13.queuePointerBits)});
            table.addRow({"Output reservation table", n(v8.statusBits),
                          n(v16.statusBits), n(v32.statusBits),
                          n(f6.outputTableBits), n(f13.outputTableBits)});
            table.addRow({"Input reservation table", "-", "-", "-",
                          n(f6.inputTableBits), n(f13.inputTableBits)});
            table.addRow({"Bits per node", n(v8.totalBits),
                          n(v16.totalBits), n(v32.totalBits),
                          n(f6.totalBits), n(f13.totalBits)});
            table.addRow({"Flits per input channel",
                          TextTable::num(v8.flitsPerInput, 2),
                          TextTable::num(v16.flitsPerInput, 2),
                          TextTable::num(v32.flitsPerInput, 2),
                          TextTable::num(f6.flitsPerInput, 2),
                          TextTable::num(f13.flitsPerInput, 2)});
            if (ctx.csv())
                table.printCsv(std::cout);
            else
                table.print(std::cout);

            std::printf("\nPaper totals: VC8 10452, VC16 21040, VC32 "
                        "42352, FR6 10762, FR13 19960.\n");
            std::printf("All columns match; FR13 differs only in the "
                        "input reservation table row,\nwhere the "
                        "paper's 1980 is inconsistent with its own "
                        "per-slot formula for\nb_d = 13 (see "
                        "DESIGN.md); our arithmetic gives %ld.\n",
                        f13.inputTableBits);
            std::printf("\nStorage-matched pairs (flits/input): FR6 "
                        "%.2f ~ VC8 %.2f; FR13 %.2f ~ VC16 %.2f\n",
                        f6.flitsPerInput, v8.flitsPerInput,
                        f13.flitsPerInput, v16.flitsPerInput);

            ctx.comparison("VC8 bits per node", 10452,
                           static_cast<double>(v8.totalBits));
            ctx.comparison("VC16 bits per node", 21040,
                           static_cast<double>(v16.totalBits));
            ctx.comparison("VC32 bits per node", 42352,
                           static_cast<double>(v32.totalBits));
            ctx.comparison("FR6 bits per node", 10762,
                           static_cast<double>(f6.totalBits));
            ctx.comparison("FR13 bits per node", 19960,
                           static_cast<double>(f13.totalBits));
            ctx.note("FR13's input reservation table row differs from "
                     "the paper's 1980, which is inconsistent with its "
                     "own per-slot formula for b_d = 13 (DESIGN.md).");
        });
}
