/**
 * @file
 * ext_scaling — parallel-kernel scaling: shard count x topology size.
 *
 * For each large-topology preset (mesh32, mesh64, torus32; the 8x8
 * base mesh rides along for contrast) run one FR6 measurement under
 * the serial event kernel, then under sim.kernel=parallel at a ladder
 * of shard counts. Every parallel run is asserted bit-identical to the
 * serial baseline — the correctness claim is checked, the speedup is
 * only *measured*: on a single-core host every shard count can
 * legitimately come out at or below 1.0x, and this bench reports
 * whatever the wall clock says (EXPERIMENTS.md discusses the numbers
 * honestly). Per-shard balance statistics (components, ticks, windows,
 * lookahead) are recorded so an imbalance is visible next to its cost.
 *
 * Quick mode shrinks the sample per topology so the whole sweep stays
 * in minutes even at 4096 nodes; --full runs paper-scale samples.
 */

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "common/log.hpp"
#include "network/network.hpp"
#include "sim/parallel_kernel.hpp"

using namespace frfc;

namespace {

struct ScalePoint
{
    RunResult run;
    std::int64_t windows = 0;
    Cycle lookahead = 0;
    double tickImbalance = 1.0;  ///< max shard ticks / mean
};

ScalePoint
runPoint(const Config& cfg, const RunOptions& opt)
{
    ScalePoint p;
    const auto net = makeNetwork(cfg);
    p.run = runMeasurement(*net, opt);
    if (ParallelKernel* pk = net->parallelKernel()) {
        p.windows = pk->windowsExecuted();
        p.lookahead = pk->lookahead();
        const std::vector<std::int64_t> ticks = pk->shardTicks();
        std::int64_t total = 0;
        std::int64_t peak = 0;
        for (const std::int64_t t : ticks) {
            total += t;
            peak = std::max(peak, t);
        }
        const double mean = static_cast<double>(total)
                            / static_cast<double>(ticks.size());
        p.tickImbalance =
            mean > 0.0 ? static_cast<double>(peak) / mean : 1.0;
    }
    return p;
}

}  // namespace

int
main(int argc, char** argv)
{
    return bench::benchMain(
        argc, argv,
        {"ext_scaling",
         "Extension: parallel-kernel scaling, shard count x topology "
         "size"},
        [](bench::BenchContext& ctx) {
            const std::vector<std::string> sizes{"mesh8", "mesh32",
                                                 "mesh64", "torus32"};
            const std::vector<int> shard_counts{1, 2, 4, 8};

            const bench::WallTimer timer;
            std::vector<std::vector<RunResult>> all_runs;

            for (const auto& size : sizes) {
                Config cfg = baseConfig();
                applyFr6(cfg);
                if (size != "mesh8")
                    applyPreset(cfg, size);
                cfg.set("workload.offered", 0.40);
                ctx.applyOverrides(cfg);
                const long nodes = cfg.getInt("size_x")
                                   * cfg.getInt("size_y");

                // Per-topology sample: enough tagged packets that the
                // fabric is busy, small enough that 4096 nodes stay
                // affordable in quick mode. Command-line run.* keys
                // still override (fromConfig re-applies them on top).
                RunOptions defaults = ctx.options();
                if (!ctx.full()) {
                    defaults.samplePackets = nodes >= 1024 ? 500 : 800;
                    defaults.minWarmup = 300;
                    defaults.maxWarmup = 1000;
                    defaults.maxCycles = nodes >= 4096 ? 8000 : 20000;
                }
                const RunOptions opt =
                    RunOptions::fromConfig(ctx.overrides(), defaults);

                Config serial = cfg;
                serial.set("sim.kernel", "event");
                ScalePoint base;
                {
                    const auto net = makeNetwork(serial);
                    base.run = runMeasurement(*net, opt);
                }

                TextTable table;
                table.setHeader({"kernel", "wall(ms)", "speedup",
                                 "windows", "lookahead",
                                 "tick imbalance"});
                table.addRow({"event",
                              TextTable::num(base.run.wallSeconds * 1e3,
                                             1),
                              "1.00", "-", "-", "-"});
                ctx.report().addScalar(
                    "scaling." + size + ".event_seconds",
                    base.run.wallSeconds);

                std::vector<RunResult> runs{base.run};
                for (const int shards : shard_counts) {
                    Config par = cfg;
                    par.set("sim.kernel", "parallel");
                    par.set("sim.shards", shards);
                    const ScalePoint p = runPoint(par, opt);
                    if (!p.run.bitIdentical(base.run))
                        fatal("parallel kernel diverged from event on ",
                              size, " at shards=", shards);
                    const std::string tag =
                        "parallel x" + std::to_string(shards);
                    const double speedup =
                        p.run.wallSeconds > 0.0
                            ? base.run.wallSeconds / p.run.wallSeconds
                            : 0.0;
                    table.addRow(
                        {tag,
                         TextTable::num(p.run.wallSeconds * 1e3, 1),
                         TextTable::num(speedup, 2),
                         TextTable::num(static_cast<double>(p.windows),
                                        0),
                         TextTable::num(
                             static_cast<double>(p.lookahead), 0),
                         TextTable::num(p.tickImbalance, 2)});
                    const std::string slug =
                        "scaling." + size + ".shards"
                        + std::to_string(shards);
                    ctx.report().addScalar(slug + "_seconds",
                                           p.run.wallSeconds);
                    ctx.report().addScalar(slug + "_speedup", speedup);
                    ctx.report().addScalar(slug + "_tick_imbalance",
                                           p.tickImbalance);
                    runs.push_back(p.run);
                }

                std::printf("== %s (%ld nodes), FR6 at 40%% load ==\n",
                            size.c_str(), nodes);
                if (ctx.csv())
                    table.printCsv(std::cout);
                else
                    table.print(std::cout);
                std::printf("\n");

                ReportCurve& rc =
                    ctx.report().addCurve("scaling." + size, cfg);
                rc.runs = {base.run};
                all_runs.push_back(std::move(runs));
            }

            ctx.note("every parallel point verified bit-identical to "
                     "the serial event baseline; speedups are measured "
                     "wall-clock only and depend on host core count");
            ctx.sweepStats(timer.seconds(), all_runs, false);
        });
}
