/**
 * @file
 * Footnote 7 extension: a multi-ported input buffer ("addressed by
 * multiple Buffer Out rows") lets one input forward data flits to
 * several outputs in the same cycle. This bench quantifies how much
 * that higher-performance router buys over the baseline.
 */

#include <cstdio>

#include "bench_common.hpp"

using namespace frfc;

int
main(int argc, char** argv)
{
    const auto args = bench::parseArgs(argc, argv);
    const RunOptions opt = bench::runOptions(args);
    const auto loads = bench::curveLoads(args);

    std::vector<std::string> names;
    std::vector<Config> cfgs;
    for (int speedup : {1, 2, 4}) {
        Config cfg = baseConfig();
        applyFr6(cfg);
        applyFastControl(cfg);
        cfg.set("speedup", speedup);
        bench::applyOverrides(cfg, args);
        names.push_back("ports=" + std::to_string(speedup));
        cfgs.push_back(cfg);
    }
    const bench::WallTimer timer;
    const auto curves = latencyCurves(cfgs, loads, opt);
    const double elapsed = timer.seconds();

    bench::printCurves(args,
                       "Extension (footnote 7): multi-ported input "
                       "buffers, FR6",
                       names, curves);

    std::printf("Highest completed load (%% capacity):\n");
    for (std::size_t i = 0; i < names.size(); ++i) {
        double sat = 0.0;
        for (const auto& r : curves[i]) {
            if (r.complete && r.acceptedFraction > sat)
                sat = r.acceptedFraction;
        }
        std::printf("  %-10s %5.1f\n", names[i].c_str(), sat * 100.0);
    }
    std::printf("\n");
    bench::printSweepStats(args, elapsed, curves);
    return 0;
}
