/**
 * @file
 * Footnote 7 extension: a multi-ported input buffer ("addressed by
 * multiple Buffer Out rows") lets one input forward data flits to
 * several outputs in the same cycle. This bench quantifies how much
 * that higher-performance router buys over the baseline.
 */

#include <cstdio>

#include "bench_common.hpp"

using namespace frfc;

int
main(int argc, char** argv)
{
    return bench::benchMain(
        argc, argv,
        {"ablation_speedup",
         "Extension (footnote 7): multi-ported input buffers, FR6"},
        [](bench::BenchContext& ctx) {
            const RunOptions& opt = ctx.options();
            const auto loads = ctx.curveLoads();

            std::vector<std::string> names;
            std::vector<Config> cfgs;
            for (int speedup : {1, 2, 4}) {
                Config cfg = baseConfig();
                applyFr6(cfg);
                applyFastControl(cfg);
                cfg.set("speedup", speedup);
                ctx.applyOverrides(cfg);
                names.push_back("ports=" + std::to_string(speedup));
                cfgs.push_back(cfg);
            }
            const bench::WallTimer timer;
            const auto curves = latencyCurves(cfgs, loads, opt);
            const double elapsed = timer.seconds();

            ctx.emitCurves(
                "Extension (footnote 7): multi-ported input buffers, "
                "FR6",
                names, cfgs, curves);

            std::printf("Highest completed load (%% capacity):\n");
            for (std::size_t i = 0; i < names.size(); ++i) {
                double sat = 0.0;
                for (const auto& r : curves[i]) {
                    if (r.complete && r.acceptedFraction > sat)
                        sat = r.acceptedFraction;
                }
                std::printf("  %-10s %5.1f\n", names[i].c_str(),
                            sat * 100.0);
                ctx.report().addScalar(
                    "measured." + names[i] + ".saturation", sat * 100.0);
            }
            std::printf("\n");
            ctx.sweepStats(elapsed, curves);
        });
}
