/**
 * @file
 * Regenerates Figure 9: flit-reservation flow control with a 1-cycle
 * leading control versus virtual-channel flow control, 5-flit packets,
 * on a network where every wire (data, control, credit) takes 1 cycle.
 * Paper shape: the throughput improvement matches fast control; FR
 * reduces latency under moderate-to-high load (19 vs 21 cycles at 50%).
 */

#include <cstdio>

#include "bench_common.hpp"

using namespace frfc;

int
main(int argc, char** argv)
{
    return bench::benchMain(
        argc, argv,
        {"fig9_leading_vs_vc",
         "Figure 9: leading control (lead 1) vs virtual-channel, 5-flit "
         "packets, 1-cycle wires"},
        [](bench::BenchContext& ctx) {
            const RunOptions& opt = ctx.options();
            const auto loads = ctx.curveLoads();

            const std::vector<std::string> names{"VC8", "VC16", "FR6",
                                                 "FR13"};
            const char* presets[] = {"vc8", "vc16", "fr6", "fr13"};
            std::vector<Config> cfgs;
            for (std::size_t i = 0; i < names.size(); ++i) {
                Config cfg = baseConfig();
                applyPreset(cfg, presets[i]);
                applyLeadingControl(cfg, 1);
                ctx.applyOverrides(cfg);
                cfgs.push_back(cfg);
            }
            const bench::WallTimer timer;
            const auto curves = latencyCurves(cfgs, loads, opt);

            ctx.emitCurves(
                "Figure 9: leading control (lead 1) vs virtual-channel, "
                "5-flit packets, 1-cycle wires",
                names, cfgs, curves);

            std::printf("Saturation throughput (%% capacity):\n");
            const double paper[] = {65, 80, 75, 83};
            for (std::size_t i = 0; i < names.size(); ++i) {
                double sat = 0.0;
                for (const auto& r : curves[i]) {
                    if (r.complete && r.acceptedFraction > sat)
                        sat = r.acceptedFraction;
                }
                ctx.comparison(names[i] + " saturation", paper[i],
                               sat * 100.0);
            }

            std::printf("\nLatency at 50%% capacity (cycles):\n");
            const double paper_mid[] = {21, 21, 19, 19};
            const auto mids = latencyCurves(cfgs, {0.5}, opt);
            const double elapsed = timer.seconds();
            for (std::size_t i = 0; i < names.size(); ++i) {
                ctx.comparison(names[i] + " latency at 50pct",
                               paper_mid[i], mids[i][0].avgLatency);
            }
            std::printf("\n");
            ctx.sweepStats(elapsed, curves);
        });
}
