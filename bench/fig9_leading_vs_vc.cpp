/**
 * @file
 * Regenerates Figure 9: flit-reservation flow control with a 1-cycle
 * leading control versus virtual-channel flow control, 5-flit packets,
 * on a network where every wire (data, control, credit) takes 1 cycle.
 * Paper shape: the throughput improvement matches fast control; FR
 * reduces latency under moderate-to-high load (19 vs 21 cycles at 50%).
 */

#include <cstdio>

#include "bench_common.hpp"

using namespace frfc;

int
main(int argc, char** argv)
{
    const auto args = bench::parseArgs(argc, argv);
    const RunOptions opt = bench::runOptions(args);
    const auto loads = bench::curveLoads(args);

    const std::vector<std::string> names{"VC8", "VC16", "FR6", "FR13"};
    const char* presets[] = {"vc8", "vc16", "fr6", "fr13"};
    std::vector<Config> cfgs;
    for (std::size_t i = 0; i < names.size(); ++i) {
        Config cfg = baseConfig();
        applyPreset(cfg, presets[i]);
        applyLeadingControl(cfg, 1);
        bench::applyOverrides(cfg, args);
        cfgs.push_back(cfg);
    }
    const bench::WallTimer timer;
    const auto curves = latencyCurves(cfgs, loads, opt);

    bench::printCurves(args,
                       "Figure 9: leading control (lead 1) vs "
                       "virtual-channel, 5-flit packets, 1-cycle wires",
                       names, curves);

    std::printf("Saturation throughput (%% capacity):\n");
    const double paper[] = {65, 80, 75, 83};
    for (std::size_t i = 0; i < names.size(); ++i) {
        double sat = 0.0;
        for (const auto& r : curves[i]) {
            if (r.complete && r.acceptedFraction > sat)
                sat = r.acceptedFraction;
        }
        bench::comparison(names[i].c_str(), paper[i], sat * 100.0);
    }

    std::printf("\nLatency at 50%% capacity (cycles):\n");
    const double paper_mid[] = {21, 21, 19, 19};
    const auto mids = latencyCurves(cfgs, {0.5}, opt);
    const double elapsed = timer.seconds();
    for (std::size_t i = 0; i < names.size(); ++i) {
        bench::comparison(names[i].c_str(), paper_mid[i],
                          mids[i][0].avgLatency);
    }
    std::printf("\n");
    bench::printSweepStats(args, elapsed, curves);
    return 0;
}
