/**
 * @file
 * kernel_idle_sweep — wall-clock comparison of every registered
 * simulation kernel across the offered-load (idle-fraction) range.
 *
 * The kernel list comes from simKernelNames(), so a new kernel joins
 * the sweep automatically. At low load most components are quiescent
 * most cycles, so the activity-driven kernels should beat the stepped
 * baseline big; near saturation everything is awake every cycle and
 * the costs converge. Every kernel must produce bit-identical
 * simulation results at every point — this bench asserts that while it
 * measures the speedups, and also reports each kernel's own activity
 * counters (ticks executed, idle cycles skipped).
 */

#include <algorithm>
#include <cstdio>

#include "bench_common.hpp"
#include "common/log.hpp"
#include "network/network.hpp"
#include "sim/kernel.hpp"

using namespace frfc;

namespace {

/** One measured point: the run plus the kernel's activity counters. */
struct KernelPoint
{
    RunResult run;
    std::int64_t ticks = 0;
    Cycle idleSkipped = 0;
};

KernelPoint
runPoint(const Config& cfg, const RunOptions& opt)
{
    KernelPoint p;
    const auto net = makeNetwork(cfg);
    p.run = runMeasurement(*net, opt);
    p.ticks = net->driver().ticksExecuted();
    p.idleSkipped = net->driver().idleCyclesSkipped();
    return p;
}

/** Wall-clock repetitions per point: identical runs, minimum time kept.
 *  The shared hosts this runs on jitter far more than the 5% resolution
 *  the speedup comparison needs; min-of-N with the kernels interleaved
 *  is robust to that drift. */
constexpr int kReps = 3;

}  // namespace

int
main(int argc, char** argv)
{
    return bench::benchMain(
        argc, argv,
        {"kernel_idle_sweep",
         "Kernel microbench: every registered kernel's wall-clock "
         "across offered load"},
        [](bench::BenchContext& ctx) {
            const RunOptions& opt = ctx.options();
            const std::vector<std::string>& kernels = simKernelNames();
            FRFC_ASSERT(!kernels.empty(), "empty kernel registry");
            // 1-2%: the genuinely idle regime (background traffic on a
            // mostly sleeping fabric) where the activity-driven kernels
            // earn their keep; 75%: past both schemes' saturation knees.
            const std::vector<double> loads{0.01, 0.02, 0.05, 0.10,
                                            0.20, 0.30, 0.45, 0.60,
                                            0.75};
            const std::vector<std::string> presets{"fr6", "vc8"};

            const bench::WallTimer timer;
            std::vector<std::vector<RunResult>> latency_curves;
            std::vector<std::string> latency_names;
            std::vector<Config> latency_cfgs;

            for (const auto& preset : presets) {
                Config base = baseConfig();
                applyFastControl(base);
                base.set("workload.packet_length", 5);
                applyPreset(base, preset);
                ctx.applyOverrides(base);

                // points[k][i]: kernel k at load i.
                std::vector<std::vector<KernelPoint>> points(
                    kernels.size());
                for (const double load : loads) {
                    Config cfg = base;
                    cfg.set("workload.offered", load);
                    std::vector<KernelPoint> best(kernels.size());
                    for (int rep = 0; rep < kReps; ++rep) {
                        for (std::size_t k = 0; k < kernels.size();
                             ++k) {
                            cfg.set("sim.kernel", kernels[k]);
                            KernelPoint p = runPoint(cfg, opt);
                            if (!p.run.bitIdentical(
                                    rep == 0 && k == 0
                                        ? p.run
                                        : best[0].run))
                                fatal("kernel divergence: ", kernels[k],
                                      " vs ", kernels[0], " on ", preset,
                                      " at offered=", load);
                            if (rep == 0)
                                best[k] = p;
                            else
                                best[k].run.wallSeconds = std::min(
                                    best[k].run.wallSeconds,
                                    p.run.wallSeconds);
                        }
                    }
                    for (std::size_t k = 0; k < kernels.size(); ++k)
                        points[k].push_back(best[k]);
                }

                TextTable table;
                std::vector<std::string> header{"offered(%)"};
                for (const auto& name : kernels)
                    header.push_back(name + "(ms)");
                for (std::size_t k = 1; k < kernels.size(); ++k)
                    header.push_back(kernels[k] + " spdup");
                for (const auto& name : kernels)
                    header.push_back("ticks " + name);
                table.setHeader(header);
                for (std::size_t i = 0; i < loads.size(); ++i) {
                    const double base_ms =
                        points[0][i].run.wallSeconds;
                    std::vector<std::string> row{
                        TextTable::num(loads[i] * 100.0, 0)};
                    for (std::size_t k = 0; k < kernels.size(); ++k)
                        row.push_back(TextTable::num(
                            points[k][i].run.wallSeconds * 1e3, 1));
                    for (std::size_t k = 1; k < kernels.size(); ++k) {
                        const double w = points[k][i].run.wallSeconds;
                        row.push_back(w > 0.0
                                          ? TextTable::num(base_ms / w,
                                                           2)
                                          : std::string("-"));
                    }
                    for (std::size_t k = 0; k < kernels.size(); ++k)
                        row.push_back(TextTable::num(
                            static_cast<double>(points[k][i].ticks),
                            0));
                    table.addRow(row);

                    const std::string slug =
                        preset + ".load"
                        + TextTable::num(loads[i] * 100.0, 0);
                    for (std::size_t k = 0; k < kernels.size(); ++k) {
                        const KernelPoint& p = points[k][i];
                        const std::string& name = kernels[k];
                        ctx.report().addScalar(
                            slug + "." + name + "_seconds",
                            p.run.wallSeconds);
                        ctx.report().addScalar(
                            slug + "." + name + "_ticks",
                            static_cast<double>(p.ticks));
                        ctx.report().addScalar(
                            slug + "." + name + "_idle_skipped",
                            static_cast<double>(p.idleSkipped));
                        if (k > 0 && p.run.wallSeconds > 0.0)
                            ctx.report().addScalar(
                                slug + "." + name + "_speedup",
                                base_ms / p.run.wallSeconds);
                    }
                }
                std::printf("== %s: kernels vs %s baseline ==\n",
                            preset.c_str(), kernels[0].c_str());
                if (ctx.csv())
                    table.printCsv(std::cout);
                else
                    table.print(std::cout);
                std::printf("\n");

                // Headline numbers per non-baseline kernel: the speedup
                // at the lightest swept load (the idle regime the
                // activity-driven kernels exist for), the aggregate
                // over the low-load points (<= 0.3 of capacity), and
                // the highest swept load.
                for (std::size_t k = 1; k < kernels.size(); ++k) {
                    const std::string& name = kernels[k];
                    const double idle_base =
                        points[0].front().run.wallSeconds;
                    const double idle_k =
                        points[k].front().run.wallSeconds;
                    if (idle_k > 0.0)
                        ctx.report().addScalar(
                            preset + "." + name + "_idle_speedup",
                            idle_base / idle_k);
                    double low_base = 0.0;
                    double low_k = 0.0;
                    for (std::size_t i = 0; i < loads.size(); ++i) {
                        if (loads[i] <= 0.3) {
                            low_base +=
                                points[0][i].run.wallSeconds;
                            low_k += points[k][i].run.wallSeconds;
                        }
                    }
                    if (low_k > 0.0)
                        ctx.report().addScalar(
                            preset + "." + name + "_low_load_speedup",
                            low_base / low_k);
                    const double hi_base =
                        points[0].back().run.wallSeconds;
                    const double hi_k =
                        points[k].back().run.wallSeconds;
                    if (hi_k > 0.0)
                        ctx.report().addScalar(
                            preset + "." + name + "_high_load_speedup",
                            hi_base / hi_k);
                    std::printf(
                        "%s %s: idle (%.0f%%) speedup %.2fx, low-load "
                        "(<=30%%) speedup %.2fx, %.0f%%-load speedup "
                        "%.2fx\n",
                        preset.c_str(), name.c_str(),
                        loads.front() * 100.0,
                        idle_k > 0.0 ? idle_base / idle_k : 0.0,
                        low_k > 0.0 ? low_base / low_k : 0.0,
                        loads.back() * 100.0,
                        hi_k > 0.0 ? hi_base / hi_k : 0.0);
                }
                std::printf("\n");

                // Record the (identical) latency curve once per preset.
                std::vector<RunResult> runs;
                for (const auto& p : points.back())
                    runs.push_back(p.run);
                latency_curves.push_back(std::move(runs));
                latency_names.push_back(preset);
                latency_cfgs.push_back(base);
            }

            ctx.emitCurves("Latency (identical under every kernel)",
                           latency_names, latency_cfgs, latency_curves);
            ctx.note("all registered kernels verified bit-identical at "
                     "every swept point; wall times are the minimum of "
                     "3 interleaved repetitions");
            ctx.sweepStats(timer.seconds(), latency_curves, false);
        });
}
