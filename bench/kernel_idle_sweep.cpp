/**
 * @file
 * kernel_idle_sweep — stepped vs event kernel wall-clock across the
 * offered-load (idle-fraction) range.
 *
 * At low load most components are quiescent most cycles, so the
 * activity-driven kernel should win big; near saturation everything is
 * awake every cycle and the two kernels should cost about the same.
 * Both kernels must produce bit-identical simulation results at every
 * point — this bench asserts that while it measures the speedup, and
 * also reports the kernel's own activity counters (ticks executed,
 * idle cycles skipped).
 */

#include <algorithm>
#include <cstdio>

#include "bench_common.hpp"
#include "common/log.hpp"
#include "network/network.hpp"
#include "sim/kernel.hpp"

using namespace frfc;

namespace {

/** One measured point: the run plus the kernel's activity counters. */
struct KernelPoint
{
    RunResult run;
    std::int64_t ticks = 0;
    Cycle idleSkipped = 0;
};

KernelPoint
runPoint(const Config& cfg, const RunOptions& opt)
{
    KernelPoint p;
    const auto net = makeNetwork(cfg);
    p.run = runMeasurement(*net, opt);
    p.ticks = net->kernel().ticksExecuted();
    p.idleSkipped = net->kernel().idleCyclesSkipped();
    return p;
}

/** Wall-clock repetitions per point: identical runs, minimum time kept.
 *  The shared hosts this runs on jitter far more than the 5% resolution
 *  the speedup comparison needs; min-of-N with the two kernel modes
 *  interleaved is robust to that drift. */
constexpr int kReps = 3;

}  // namespace

int
main(int argc, char** argv)
{
    return bench::benchMain(
        argc, argv,
        {"kernel_idle_sweep",
         "Kernel microbench: stepped vs event wall-clock across offered "
         "load"},
        [](bench::BenchContext& ctx) {
            const RunOptions& opt = ctx.options();
            // 1-2%: the genuinely idle regime (background traffic on a
            // mostly sleeping fabric) where the activity-driven kernel
            // earns its keep; 75%: past both schemes' saturation knees.
            const std::vector<double> loads{0.01, 0.02, 0.05, 0.10,
                                            0.20, 0.30, 0.45, 0.60,
                                            0.75};
            const std::vector<std::string> presets{"fr6", "vc8"};

            const bench::WallTimer timer;
            std::vector<std::vector<RunResult>> latency_curves;
            std::vector<std::string> latency_names;
            std::vector<Config> latency_cfgs;

            for (const auto& preset : presets) {
                Config base = baseConfig();
                applyFastControl(base);
                base.set("packet_length", 5);
                applyPreset(base, preset);
                ctx.applyOverrides(base);

                std::vector<KernelPoint> stepped;
                std::vector<KernelPoint> event;
                for (const double load : loads) {
                    Config cfg = base;
                    cfg.set("offered", load);
                    KernelPoint st;
                    KernelPoint ev;
                    for (int rep = 0; rep < kReps; ++rep) {
                        cfg.set("sim.kernel", "stepped");
                        KernelPoint s = runPoint(cfg, opt);
                        cfg.set("sim.kernel", "event");
                        KernelPoint e = runPoint(cfg, opt);
                        if (!s.run.bitIdentical(e.run))
                            fatal("stepped/event divergence: ", preset,
                                  " at offered=", load);
                        if (rep == 0) {
                            st = s;
                            ev = e;
                        } else {
                            st.run.wallSeconds = std::min(
                                st.run.wallSeconds, s.run.wallSeconds);
                            ev.run.wallSeconds = std::min(
                                ev.run.wallSeconds, e.run.wallSeconds);
                        }
                    }
                    stepped.push_back(st);
                    event.push_back(ev);
                }

                TextTable table;
                table.setHeader({"offered(%)", "stepped(ms)", "event(ms)",
                                 "speedup", "ticks st", "ticks ev",
                                 "idle skipped"});
                for (std::size_t i = 0; i < loads.size(); ++i) {
                    const double st = stepped[i].run.wallSeconds;
                    const double ev = event[i].run.wallSeconds;
                    table.addRow(
                        {TextTable::num(loads[i] * 100.0, 0),
                         TextTable::num(st * 1e3, 1),
                         TextTable::num(ev * 1e3, 1),
                         ev > 0.0 ? TextTable::num(st / ev, 2)
                                  : std::string("-"),
                         TextTable::num(
                             static_cast<double>(stepped[i].ticks), 0),
                         TextTable::num(
                             static_cast<double>(event[i].ticks), 0),
                         TextTable::num(
                             static_cast<double>(event[i].idleSkipped),
                             0)});
                    const std::string slug =
                        preset + ".load"
                        + TextTable::num(loads[i] * 100.0, 0);
                    ctx.report().addScalar(slug + ".stepped_seconds", st);
                    ctx.report().addScalar(slug + ".event_seconds", ev);
                    if (ev > 0.0)
                        ctx.report().addScalar(slug + ".speedup",
                                               st / ev);
                }
                std::printf("== %s: stepped vs event kernel ==\n",
                            preset.c_str());
                if (ctx.csv())
                    table.printCsv(std::cout);
                else
                    table.print(std::cout);
                std::printf("\n");

                // Headline numbers: the speedup at the lightest swept
                // load (the idle regime the activity-driven kernel
                // exists for), the aggregate over the low-load points
                // (<= 0.3 of capacity), and the highest swept load.
                const double idle_st = stepped.front().run.wallSeconds;
                const double idle_ev = event.front().run.wallSeconds;
                if (idle_ev > 0.0)
                    ctx.report().addScalar(preset + ".idle_speedup",
                                           idle_st / idle_ev);
                double low_st = 0.0;
                double low_ev = 0.0;
                for (std::size_t i = 0; i < loads.size(); ++i) {
                    if (loads[i] <= 0.3) {
                        low_st += stepped[i].run.wallSeconds;
                        low_ev += event[i].run.wallSeconds;
                    }
                }
                if (low_ev > 0.0)
                    ctx.report().addScalar(preset + ".low_load_speedup",
                                           low_st / low_ev);
                const double hi_st = stepped.back().run.wallSeconds;
                const double hi_ev = event.back().run.wallSeconds;
                if (hi_ev > 0.0)
                    ctx.report().addScalar(preset + ".high_load_speedup",
                                           hi_st / hi_ev);
                std::printf(
                    "%s: idle (%.0f%%) speedup %.2fx, low-load (<=30%%) "
                    "speedup %.2fx, %.0f%%-load speedup %.2fx\n\n",
                    preset.c_str(), loads.front() * 100.0,
                    idle_ev > 0.0 ? idle_st / idle_ev : 0.0,
                    low_ev > 0.0 ? low_st / low_ev : 0.0,
                    loads.back() * 100.0,
                    hi_ev > 0.0 ? hi_st / hi_ev : 0.0);

                // Record the (identical) latency curve once per preset.
                std::vector<RunResult> runs;
                for (const auto& p : event)
                    runs.push_back(p.run);
                latency_curves.push_back(std::move(runs));
                latency_names.push_back(preset);
                latency_cfgs.push_back(base);
            }

            ctx.emitCurves("Latency (identical under both kernels)",
                           latency_names, latency_cfgs, latency_curves);
            ctx.note("stepped and event kernels verified bit-identical "
                     "at every swept point; wall times are the minimum "
                     "of 3 interleaved repetitions");
            ctx.sweepStats(timer.seconds(), latency_curves, false);
        });
}
