/**
 * @file
 * Section 5 ablation: the buffer pool is NOT where flit reservation's
 * win comes from. Virtual-channel flow control with a shared buffer
 * pool [TamFra92] shows no meaningful throughput improvement over
 * per-VC queues — the gain comes from advance scheduling and immediate
 * buffer turnaround.
 */

#include <cstdio>

#include "bench_common.hpp"

using namespace frfc;

int
main(int argc, char** argv)
{
    return bench::benchMain(
        argc, argv,
        {"ablation_vc_sharedpool",
         "Ablation: shared-pool VC [TamFra92] vs per-VC queues vs flit "
         "reservation"},
        [](bench::BenchContext& ctx) {
            const RunOptions& opt = ctx.options();
            const auto loads = ctx.curveLoads();

            std::vector<std::string> names{"VC8 per-VC queues",
                                           "VC8 shared pool", "FR6"};
            std::vector<Config> cfgs;
            for (int mode = 0; mode < 3; ++mode) {
                Config cfg = baseConfig();
                applyFastControl(cfg);
                if (mode < 2) {
                    applyVc8(cfg);
                    cfg.set("shared_pool", mode == 1);
                } else {
                    applyFr6(cfg);
                }
                ctx.applyOverrides(cfg);
                cfgs.push_back(cfg);
            }
            const bench::WallTimer timer;
            const auto curves = latencyCurves(cfgs, loads, opt);
            const double elapsed = timer.seconds();

            ctx.emitCurves(
                "Ablation: shared-pool VC [TamFra92] vs per-VC queues "
                "vs flit reservation",
                names, cfgs, curves);

            std::printf("Highest completed load (%% capacity):\n");
            for (std::size_t i = 0; i < names.size(); ++i) {
                double sat = 0.0;
                for (const auto& r : curves[i]) {
                    if (r.complete && r.acceptedFraction > sat)
                        sat = r.acceptedFraction;
                }
                std::printf("  %-20s %5.1f\n", names[i].c_str(),
                            sat * 100.0);
                ctx.report().addScalar(
                    "measured." + names[i] + ".saturation", sat * 100.0);
            }
            std::printf("\nPaper claim: \"we simulated virtual-channel "
                        "flow control with a shared buffer\npool ... "
                        "but saw no improvement in network throughput\" "
                        "— the FR gain is from\nadvance scheduling, not "
                        "pooling.\n\n");
            ctx.note("Paper claim: shared-pool VC shows no throughput "
                     "improvement; the FR gain is from advance "
                     "scheduling, not pooling.");
            ctx.sweepStats(elapsed, curves);
        });
}
