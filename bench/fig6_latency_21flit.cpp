/**
 * @file
 * Regenerates Figure 6: latency versus offered traffic with 21-flit
 * packets (fast control). Paper shape: base latency drops from 55 (VC)
 * to 46 (FR); FR13 reaches ~75% capacity, beyond VC32's ~65%; FR6 is
 * tempered by its small pool relative to the packet length (~60% vs
 * VC's ~55%).
 */

#include <cstdio>

#include "bench_common.hpp"

using namespace frfc;

int
main(int argc, char** argv)
{
    return bench::benchMain(
        argc, argv,
        {"fig6_latency_21flit",
         "Figure 6: latency vs offered traffic, 21-flit packets, fast "
         "control"},
        [](bench::BenchContext& ctx) {
            RunOptions opt = ctx.options();
            if (!ctx.full()) {
                // 21-flit packets need a little more room to drain.
                opt.maxCycles = 150000;
                opt.samplePackets = 800;
            }
            const auto loads = ctx.curveLoads();

            const std::vector<std::string> names{"VC8", "VC16", "VC32",
                                                 "FR6", "FR13"};
            const char* presets[] = {"vc8", "vc16", "vc32", "fr6",
                                     "fr13"};
            std::vector<Config> cfgs;
            for (std::size_t i = 0; i < names.size(); ++i) {
                Config cfg = baseConfig();
                applyFastControl(cfg);
                cfg.set("workload.packet_length", 21);
                applyPreset(cfg, presets[i]);
                ctx.applyOverrides(cfg);
                cfgs.push_back(cfg);
            }
            const bench::WallTimer timer;
            const auto curves = latencyCurves(cfgs, loads, opt);
            const double elapsed = timer.seconds();

            ctx.emitCurves(
                "Figure 6: latency vs offered traffic, 21-flit packets, "
                "fast control",
                names, cfgs, curves);

            std::printf("Saturation throughput (%% capacity):\n");
            const double paper[] = {55, 65, 65, 60, 75};
            for (std::size_t i = 0; i < names.size(); ++i) {
                double sat = 0.0;
                for (const auto& r : curves[i]) {
                    if (r.complete && r.acceptedFraction > sat)
                        sat = r.acceptedFraction;
                }
                ctx.comparison(names[i] + " saturation", paper[i],
                               sat * 100.0);
            }
            std::printf("\nBase latency (cycles, low-load point):\n");
            const double paper_base[] = {55, 55, 55, 46, 46};
            for (std::size_t i = 0; i < names.size(); ++i) {
                ctx.comparison(names[i] + " base latency", paper_base[i],
                               curves[i].front().avgLatency);
            }
            std::printf("\nPaper takeaway: with a buffer pool small "
                        "relative to the packet length\n(FR6, 21-flit "
                        "packets) the gain is tempered; FR13 still "
                        "clears VC32.\n\n");
            ctx.note("FR6's gain is tempered when the pool is small "
                     "relative to the packet length; FR13 still clears "
                     "VC32.");
            ctx.sweepStats(elapsed, curves);
        });
}
