# CTest step: run the golden figure bench under both kernels and diff
# the canonicalized JSON reports byte-for-byte. Driven from
# CMakeLists.txt:
#   cmake -DBENCH=... -DLINT=... -DOUTDIR=... -P kernel_equivalence.cmake
#
# json_lint --canonical strips wall-clock fields, the build stamp, and
# the sim.kernel selector itself; everything simulation-determined
# (latencies, cycle counts, metrics snapshots) must then be identical.
foreach(mode stepped event)
    set(json ${OUTDIR}/kernel_eq_${mode}.json)
    execute_process(
        COMMAND ${BENCH}
            run.sample_packets=50 run.min_warmup=200 run.max_warmup=500
            run.max_cycles=5000
            sim.kernel=${mode}
            out.format=json out.file=${json}
        RESULT_VARIABLE bench_rc
        OUTPUT_QUIET)
    if(NOT bench_rc EQUAL 0)
        message(FATAL_ERROR "bench (sim.kernel=${mode}) exited with ${bench_rc}")
    endif()
    execute_process(
        COMMAND ${LINT} --canonical ${json} ${json}.canon
        RESULT_VARIABLE lint_rc)
    if(NOT lint_rc EQUAL 0)
        message(FATAL_ERROR "json_lint rejected ${json}")
    endif()
endforeach()
execute_process(
    COMMAND ${CMAKE_COMMAND} -E compare_files
        ${OUTDIR}/kernel_eq_stepped.json.canon
        ${OUTDIR}/kernel_eq_event.json.canon
    RESULT_VARIABLE diff_rc)
if(NOT diff_rc EQUAL 0)
    message(FATAL_ERROR
        "stepped and event kernel reports differ beyond wall-clock "
        "fields (see ${OUTDIR}/kernel_eq_*.json.canon)")
endif()
