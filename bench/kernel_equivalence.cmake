# CTest step: run the golden figure bench under every registered
# kernel and diff the canonicalized JSON reports byte-for-byte. Driven
# from CMakeLists.txt:
#   cmake -DBENCH=... -DLINT=... -DOUTDIR=... -P kernel_equivalence.cmake
#
# The kernel list is queried from the bench binary itself (every bench
# accepts --list-kernels and dumps simKernelNames()), so a new kernel
# is covered here automatically. The parallel kernel additionally runs
# at two explicit shard counts — 2 (minimal sharding) and 5 (odd,
# unbalanced) — since its determinism claim is per shard count.
#
# json_lint --canonical strips wall-clock fields, the build stamp, and
# the sim.kernel / sim.shards / sim.partition selectors themselves;
# everything simulation-determined (latencies, cycle counts, metrics
# snapshots) must then be identical.
file(MAKE_DIRECTORY ${OUTDIR})
execute_process(
    COMMAND ${BENCH} --list-kernels
    RESULT_VARIABLE list_rc
    OUTPUT_VARIABLE kernel_list
    OUTPUT_STRIP_TRAILING_WHITESPACE)
if(NOT list_rc EQUAL 0)
    message(FATAL_ERROR "${BENCH} --list-kernels exited with ${list_rc}")
endif()
string(REPLACE "\n" ";" kernels "${kernel_list}")
list(LENGTH kernels kernel_count)
if(kernel_count LESS 2)
    message(FATAL_ERROR
        "--list-kernels returned '${kernel_list}' — expected at least "
        "two kernels to compare")
endif()

# One variant per run: "<kernel>" or "<kernel>;extra=config;keys".
set(variants "")
foreach(kernel ${kernels})
    if(kernel STREQUAL "parallel")
        list(APPEND variants "parallel_s2" "parallel_s5")
    else()
        list(APPEND variants "${kernel}")
    endif()
endforeach()

set(canons "")
foreach(variant ${variants})
    set(extra_args "")
    if(variant STREQUAL "parallel_s2")
        set(mode parallel)
        set(extra_args sim.shards=2)
    elseif(variant STREQUAL "parallel_s5")
        set(mode parallel)
        set(extra_args sim.shards=5)
    else()
        set(mode ${variant})
    endif()
    set(json ${OUTDIR}/kernel_eq_${variant}.json)
    execute_process(
        COMMAND ${BENCH}
            run.sample_packets=50 run.min_warmup=200 run.max_warmup=500
            run.max_cycles=5000
            sim.kernel=${mode} ${extra_args}
            out.format=json out.file=${json}
        RESULT_VARIABLE bench_rc
        OUTPUT_QUIET)
    if(NOT bench_rc EQUAL 0)
        message(FATAL_ERROR "bench (${variant}) exited with ${bench_rc}")
    endif()
    execute_process(
        COMMAND ${LINT} --canonical ${json} ${json}.canon
        RESULT_VARIABLE lint_rc)
    if(NOT lint_rc EQUAL 0)
        message(FATAL_ERROR "json_lint rejected ${json}")
    endif()
    list(APPEND canons "${json}.canon")
endforeach()

# Every canonicalized report must match the first (the baseline kernel).
list(GET canons 0 baseline)
list(GET variants 0 baseline_name)
foreach(canon ${canons})
    if(canon STREQUAL baseline)
        continue()
    endif()
    execute_process(
        COMMAND ${CMAKE_COMMAND} -E compare_files ${baseline} ${canon}
        RESULT_VARIABLE diff_rc)
    if(NOT diff_rc EQUAL 0)
        message(FATAL_ERROR
            "${canon} differs from the ${baseline_name} baseline beyond "
            "wall-clock fields (see ${OUTDIR}/kernel_eq_*.json.canon)")
    endif()
endforeach()
