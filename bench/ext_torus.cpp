/**
 * @file
 * Extension beyond the paper: flit-reservation flow control on an 8x8
 * torus. The reservation machinery is topology-agnostic; offered loads
 * are normalized to each topology's own capacity.
 *
 * Instructive outcome: on the torus, dimension-ordered routing breaks
 * wrap-distance ties eastward, so a few channels carry well above the
 * average load and the fabric — not buffering — becomes the binding
 * constraint. At a bandwidth-bound operating point better flow control
 * cannot help, and FR and VC saturate together; the FR advantage is a
 * *buffer-bound* phenomenon, exactly as the paper's buffer-turnaround
 * argument implies. (Pushing the torus further needs dateline VCs and
 * an unbiased tie-break, both out of scope.)
 */

#include <cstdio>

#include "bench_common.hpp"

using namespace frfc;

int
main(int argc, char** argv)
{
    return bench::benchMain(
        argc, argv,
        {"ext_torus",
         "Extension: FR vs VC on an 8x8 torus (topology-normalized "
         "loads)"},
        [](bench::BenchContext& ctx) {
            const RunOptions& opt = ctx.options();
            const auto loads = ctx.curveLoads();

            for (const char* topo : {"mesh", "torus"}) {
                std::vector<std::string> names{"VC8", "FR6"};
                std::vector<Config> cfgs;
                for (const char* preset : {"vc8", "fr6"}) {
                    Config cfg = baseConfig();
                    applyPreset(cfg, preset);
                    cfg.set("topology", topo);
                    ctx.applyOverrides(cfg);
                    cfgs.push_back(cfg);
                }
                const auto curves = latencyCurves(cfgs, loads, opt);
                // Curve names must be unique across the two topologies.
                std::vector<std::string> tags;
                for (const auto& n : names)
                    tags.push_back(std::string(topo) + "." + n);
                ctx.emitCurves(std::string("Extension: 8x8 ") + topo
                                   + ", 5-flit packets, fast control",
                               tags, cfgs, curves);
                std::printf(
                    "Highest completed load (%% of %s capacity):\n",
                    topo);
                for (std::size_t i = 0; i < names.size(); ++i) {
                    double sat = 0.0;
                    for (const auto& r : curves[i]) {
                        if (r.complete && r.acceptedFraction > sat)
                            sat = r.acceptedFraction;
                    }
                    std::printf("  %-5s %5.1f\n", names[i].c_str(),
                                sat * 100.0);
                    ctx.report().addScalar(
                        "measured." + tags[i] + ".saturation",
                        sat * 100.0);
                }
                std::printf("\n");
            }
            std::printf(
                "Mesh: FR6 clearly outlasts VC8 (buffer-bound). Torus "
                "with east-biased DOR ties:\nboth saturate together on "
                "the overloaded channels (bandwidth-bound) — better\n"
                "flow control only helps where buffers, not wires, are "
                "the constraint.\n");
            ctx.note("Mesh is buffer-bound (FR6 outlasts VC8); torus "
                     "with east-biased DOR is bandwidth-bound and both "
                     "saturate together.");
        });
}
