/**
 * @file
 * Section 5 ablation: per-flit versus all-or-nothing scheduling. With
 * one control flit leading several data flits (d = 4), per-flit
 * scheduling lets scheduled flits advance and free their buffers while
 * siblings wait; all-or-nothing stalls the whole group. Paper claim:
 * per-flit scheduling attains higher throughput.
 *
 * Wide control flits require pools that hold at least two flit groups:
 * with the paper's 6-buffer pools, data that overtakes a stalled
 * control flit parks without a departure reservation, and the
 * control-VC/data-pool dependency cycle the paper's Section 5 deadlock
 * discussion warns about closes even at light load (see DESIGN.md).
 * This ablation therefore uses 13-buffer (FR13-size) pools.
 */

#include <cstdio>

#include "bench_common.hpp"

using namespace frfc;

int
main(int argc, char** argv)
{
    return bench::benchMain(
        argc, argv,
        {"ablation_allornothing",
         "Ablation: per-flit vs all-or-nothing scheduling (13-buffer "
         "pools, d=4, 9-flit packets)"},
        [](bench::BenchContext& ctx) {
            RunOptions opt = ctx.options();
            std::vector<double> loads = ctx.curveLoads();
            if (!ctx.full()) {
                opt.samplePackets = 600;
                opt.maxCycles = 60000;
                // All-or-nothing grinds hard once saturated; probe
                // fewer points past the knee in quick mode.
                loads = {0.10, 0.30, 0.45, 0.55, 0.65, 0.75};
            }

            std::vector<std::string> names{"per-flit", "all-or-nothing"};
            std::vector<Config> cfgs;
            for (bool aon : {false, true}) {
                Config cfg = baseConfig();
                applyFr6(cfg);
                applyFastControl(cfg);
                cfg.set("data_buffers", 13);  // >= two 4-flit groups
                cfg.set("flits_per_ctrl", 4);
                cfg.set("workload.packet_length", 9);
                cfg.set("all_or_nothing", aon);
                ctx.applyOverrides(cfg);
                cfgs.push_back(cfg);
            }
            const bench::WallTimer timer;
            const auto curves = latencyCurves(cfgs, loads, opt);
            const double elapsed = timer.seconds();

            ctx.emitCurves(
                "Ablation: per-flit vs all-or-nothing scheduling "
                "(13-buffer pools, d=4, 9-flit packets)",
                names, cfgs, curves);

            std::printf("Highest completed load (%% capacity):\n");
            for (std::size_t i = 0; i < names.size(); ++i) {
                double sat = 0.0;
                for (const auto& r : curves[i]) {
                    if (r.complete && r.acceptedFraction > sat)
                        sat = r.acceptedFraction;
                }
                std::printf("  %-16s %5.1f\n", names[i].c_str(),
                            sat * 100.0);
                ctx.report().addScalar(
                    "measured." + names[i] + ".saturation", sat * 100.0);
            }
            std::printf("\nPaper claim: per-flit scheduling attains "
                        "higher throughput (Section 5).\n\n");
            ctx.note("Paper claim: per-flit scheduling attains higher "
                     "throughput (Section 5).");
            ctx.sweepStats(elapsed, curves);
        });
}
