/**
 * @file
 * Regenerates Figure 8: flit-reservation flow control with leading
 * control (equal 1-cycle wires, control injected 1, 2, or 4 cycles
 * ahead of data). Paper shape: throughput is independent of lead time,
 * and deferring data up to 4 cycles barely moves overall latency.
 */

#include <cstdio>

#include "bench_common.hpp"

using namespace frfc;

int
main(int argc, char** argv)
{
    return bench::benchMain(
        argc, argv,
        {"fig8_leading_lead",
         "Figure 8: FR6 with leading control, lead 1/2/4 cycles (all "
         "links 1 cycle)"},
        [](bench::BenchContext& ctx) {
            const RunOptions& opt = ctx.options();
            const auto loads = ctx.curveLoads();

            std::vector<std::string> names;
            std::vector<Config> cfgs;
            for (int lead : {1, 2, 4}) {
                Config cfg = baseConfig();
                applyFr6(cfg);
                applyLeadingControl(cfg, lead);
                ctx.applyOverrides(cfg);
                names.push_back("lead=" + std::to_string(lead));
                cfgs.push_back(cfg);
            }
            const bench::WallTimer timer;
            const auto curves = latencyCurves(cfgs, loads, opt);
            const double elapsed = timer.seconds();

            ctx.emitCurves(
                "Figure 8: FR6 with leading control, lead 1/2/4 cycles "
                "(all links 1 cycle)",
                names, cfgs, curves);

            std::printf("Highest completed load per lead (%% capacity) "
                        "— paper: independent of lead (~75%%):\n");
            for (std::size_t i = 0; i < names.size(); ++i) {
                double sat = 0.0;
                for (const auto& r : curves[i]) {
                    if (r.complete && r.acceptedFraction > sat)
                        sat = r.acceptedFraction;
                }
                std::printf("  %-8s %5.1f\n", names[i].c_str(),
                            sat * 100.0);
                ctx.report().addScalar(
                    "measured." + names[i] + ".saturation", sat * 100.0);
            }
            std::printf("\n");
            ctx.note("Paper claim: throughput is independent of lead "
                     "time (~75% capacity).");
            ctx.sweepStats(elapsed, curves);
        });
}
