/**
 * @file
 * Regenerates Table 3: the paper's summary of experimental results —
 * base latency, latency at 50% capacity, and saturation throughput for
 * FR6/FR13/VC8/VC16/VC32 under fast control (5- and 21-flit packets)
 * and leading control (5-flit packets).
 */

#include <cstdio>
#include <iostream>

#include "bench_common.hpp"
#include "common/table.hpp"

using namespace frfc;

namespace {

struct Row
{
    double base = 0.0;
    double mid = 0.0;
    double sat = 0.0;
};

}  // namespace

int
main(int argc, char** argv)
{
    return bench::benchMain(
        argc, argv,
        {"table3_summary",
         "Table 3: summary of experimental results"},
        [](bench::BenchContext& ctx) {
            RunOptions opt = ctx.options();
            if (!ctx.full()) {
                opt.samplePackets = 1000;
                opt.maxCycles = 60000;
            }
            SaturationOptions sopt;
            sopt.tolerance = ctx.full() ? 0.02 : 0.03;

            const char* presets[] = {"fr6", "fr13", "vc8", "vc16",
                                     "vc32"};
            const char* names[] = {"FR6", "FR13", "VC8", "VC16", "VC32"};

            // Paper Table 3 values, in the same row order as `names`.
            const double p_fast5_base[] = {27, 27, 32, 32, 32};
            const double p_fast5_mid[] = {33, 33, 39, 38, 38};
            const double p_fast5_sat[] = {77, 85, 63, 80, 85};
            const double p_fast21_base[] = {46, 46, 55, 55, 55};
            const double p_fast21_mid[] = {81, 75, 113, 95, 97};
            const double p_fast21_sat[] = {60, 75, 55, 65, 65};
            const double p_lead5_base[] = {15, 15, 15, 15, 15};
            const double p_lead5_mid[] = {19, 19, 21, 21, 21};
            const double p_lead5_sat[] = {75, 83, 65, 80, 85};

            struct Section
            {
                const char* title;
                const char* slug;
                int packetLength;
                int lead;  // 0 = fast control
                const double* base;
                const double* mid;
                const double* sat;
            };
            const Section sections[] = {
                {"Fast control, 5-flit packets", "fast5", 5, 0,
                 p_fast5_base, p_fast5_mid, p_fast5_sat},
                {"Fast control, 21-flit packets", "fast21", 21, 0,
                 p_fast21_base, p_fast21_mid, p_fast21_sat},
                {"Leading control (lead 1), 5-flit packets", "lead5", 5,
                 1, p_lead5_base, p_lead5_mid, p_lead5_sat},
            };

            std::printf("== Table 3: summary of experimental results "
                        "(%s mode) ==\n\n",
                        ctx.full() ? "full" : "quick");
            const bench::WallTimer timer;
            std::vector<std::vector<RunResult>> all_runs;
            for (const Section& sec : sections) {
                std::printf("-- %s --\n", sec.title);
                RunOptions sec_opt = opt;
                if (sec.packetLength == 21 && !ctx.full()) {
                    sec_opt.samplePackets = 500;
                    sec_opt.maxCycles = 100000;
                }
                std::vector<Config> cfgs;
                for (int i = 0; i < 5; ++i) {
                    Config cfg = baseConfig();
                    applyPreset(cfg, presets[i]);
                    cfg.set("workload.packet_length", sec.packetLength);
                    if (sec.lead > 0)
                        applyLeadingControl(cfg, sec.lead);
                    else
                        applyFastControl(cfg);
                    ctx.applyOverrides(cfg);
                    cfgs.push_back(cfg);
                }
                // Base and mid-load latencies for the whole section in
                // one parallel batch; each saturation search then runs
                // its own parallel grid probe.
                const auto latencies =
                    latencyCurves(cfgs, {0.02, 0.5}, sec_opt);
                all_runs.insert(all_runs.end(), latencies.begin(),
                                latencies.end());
                TextTable table;
                table.setHeader({"config", "base lat", "(paper)",
                                 "lat @50%", "(paper)", "sat %",
                                 "(paper)"});
                for (int i = 0; i < 5; ++i) {
                    Row row;
                    const auto idx = static_cast<std::size_t>(i);
                    row.base = latencies[idx][0].avgLatency;
                    row.mid = latencies[idx][1].avgLatency;
                    row.sat =
                        findSaturation(cfgs[idx], sec_opt, sopt) * 100.0;
                    table.addRow({names[i], TextTable::num(row.base, 1),
                                  TextTable::num(sec.base[i], 0),
                                  TextTable::num(row.mid, 1),
                                  TextTable::num(sec.mid[i], 0),
                                  TextTable::num(row.sat, 1),
                                  TextTable::num(sec.sat[i], 0)});
                    const std::string tag = std::string(sec.slug) + "."
                        + names[i];
                    Report& report = ctx.report();
                    report.addScalar("paper." + tag + ".base",
                                     sec.base[i]);
                    report.addScalar("measured." + tag + ".base",
                                     row.base);
                    report.addScalar("paper." + tag + ".mid",
                                     sec.mid[i]);
                    report.addScalar("measured." + tag + ".mid",
                                     row.mid);
                    report.addScalar("paper." + tag + ".sat",
                                     sec.sat[i]);
                    report.addScalar("measured." + tag + ".sat",
                                     row.sat);
                    ReportCurve& rc = report.addCurve(
                        tag, cfgs[idx]);
                    rc.runs = latencies[idx];
                }
                if (ctx.csv())
                    table.printCsv(std::cout);
                else
                    table.print(std::cout);
                std::printf("\n");
            }
            ctx.sweepStats(timer.seconds(), all_runs,
                           /*counted_all=*/false);
            std::printf("Shape checks: FR > VC saturation at equal "
                        "storage; FR base latency lower under\nfast "
                        "control; FR6 ~ VC16 saturation; gains "
                        "tempered for 21-flit packets on FR6.\n");
            ctx.note("Shape checks: FR > VC saturation at equal "
                     "storage; FR base latency lower under fast "
                     "control; FR6 ~ VC16 saturation; gains tempered "
                     "for 21-flit packets on FR6.");
        });
}
