/**
 * @file
 * Simulator performance microbenchmarks (google-benchmark): reservation
 * table operations, channel transport, router ticks, and whole-network
 * simulation throughput. These guard against performance regressions
 * in the hot paths — a full Figure 5 sweep runs millions of ticks.
 */

#include <benchmark/benchmark.h>

#include "common/config.hpp"
#include "frfc/input_table.hpp"
#include "frfc/output_table.hpp"
#include "harness/presets.hpp"
#include "network/fr_network.hpp"
#include "network/vc_network.hpp"
#include "sim/channel.hpp"

namespace frfc {
namespace {

void
BM_OutputTableReserveCredit(benchmark::State& state)
{
    OutputReservationTable ort(static_cast<int>(state.range(0)), 6, 4);
    Cycle now = 0;
    for (auto _ : state) {
        ort.advance(now);
        const Cycle d =
            ort.findDeparture(now + 1, [](Cycle) { return true; });
        if (d != kInvalidCycle) {
            ort.reserve(d);
            // Downstream departure: after the flit arrives at d + 4.
            if (d + 5 <= ort.windowEnd())
                ort.credit(d + 5);
            else
                ort.credit(ort.windowEnd());
        }
        ++now;
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_OutputTableReserveCredit)->Arg(16)->Arg(32)->Arg(128);

void
BM_InputTableFlow(benchmark::State& state)
{
    InputReservationTable irt(32, 6);
    Cycle now = 0;
    Flit flit;
    flit.packet = 1;
    for (auto _ : state) {
        irt.advance(now);
        irt.recordReservation(now, now + 2, now + 4, kEast);
        benchmark::DoNotOptimize(irt.takeDepartures(now));
        ++now;
        irt.advance(now);
        ++now;
        irt.advance(now);
        flit.payload = Flit::expectedPayload(1, 0);
        irt.acceptFlit(now, flit);
        benchmark::DoNotOptimize(irt.takeDepartures(now));
        ++now;
        irt.advance(now);
        ++now;
        irt.advance(now);
        benchmark::DoNotOptimize(irt.takeDepartures(now));
        ++now;
    }
}
BENCHMARK(BM_InputTableFlow);

void
BM_ChannelTransport(benchmark::State& state)
{
    Channel<Flit> ch("bench", 4);
    Flit flit;
    Cycle now = 0;
    for (auto _ : state) {
        ch.push(now, flit);
        benchmark::DoNotOptimize(ch.drain(now));
        ++now;
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ChannelTransport);

void
BM_VcNetworkCycle(benchmark::State& state)
{
    Config cfg = baseConfig();
    applyVc8(cfg);
    cfg.set("offered", 0.01 * static_cast<double>(state.range(0)));
    VcNetwork net(cfg);
    net.kernel().run(1000);  // warm
    for (auto _ : state)
        net.kernel().run(1);
    state.SetItemsProcessed(state.iterations()
                            * net.topology().numNodes());
    state.SetLabel("node-cycles/s");
}
BENCHMARK(BM_VcNetworkCycle)->Arg(30)->Arg(60);

void
BM_FrNetworkCycle(benchmark::State& state)
{
    Config cfg = baseConfig();
    applyFr6(cfg);
    cfg.set("offered", 0.01 * static_cast<double>(state.range(0)));
    FrNetwork net(cfg);
    net.kernel().run(1000);
    for (auto _ : state)
        net.kernel().run(1);
    state.SetItemsProcessed(state.iterations()
                            * net.topology().numNodes());
    state.SetLabel("node-cycles/s");
}
BENCHMARK(BM_FrNetworkCycle)->Arg(30)->Arg(60);

}  // namespace
}  // namespace frfc

BENCHMARK_MAIN();
