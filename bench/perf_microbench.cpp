/**
 * @file
 * Simulator performance microbenchmarks (google-benchmark): reservation
 * table operations, channel transport, router ticks, and whole-network
 * simulation throughput. These guard against performance regressions
 * in the hot paths — a full Figure 5 sweep runs millions of ticks.
 */

#include <benchmark/benchmark.h>

#include "common/config.hpp"
#include "frfc/input_table.hpp"
#include "frfc/output_table.hpp"
#include "harness/parallel.hpp"
#include "harness/presets.hpp"
#include "harness/sweep.hpp"
#include "network/fr_network.hpp"
#include "network/vc_network.hpp"
#include "sim/channel.hpp"

namespace frfc {
namespace {

void
BM_OutputTableReserveCredit(benchmark::State& state)
{
    OutputReservationTable ort(static_cast<int>(state.range(0)), 6, 4);
    Cycle now = 0;
    for (auto _ : state) {
        ort.advance(now);
        const Cycle d =
            ort.findDeparture(now + 1, [](Cycle) { return true; });
        if (d != kInvalidCycle) {
            ort.reserve(d);
            // Downstream departure: after the flit arrives at d + 4.
            if (d + 5 <= ort.windowEnd())
                ort.credit(d + 5);
            else
                ort.credit(ort.windowEnd());
        }
        ++now;
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_OutputTableReserveCredit)->Arg(16)->Arg(32)->Arg(128);

/**
 * findDeparture alone, on a table with standing reservations and a
 * tight buffer supply — the lookup the router issues several times per
 * cycle. The cached suffix-minimum frontier makes this a binary search
 * instead of an O(horizon) backward scan per call.
 */
void
BM_OutputTableFindDeparture(benchmark::State& state)
{
    const int horizon = static_cast<int>(state.range(0));
    OutputReservationTable ort(horizon, 4, 4);
    // Standing load: a few committed reservations and one credit.
    ort.reserve(1);
    ort.reserve(3);
    ort.reserve(horizon / 2);
    ort.credit(horizon / 2 + 4);
    Cycle min_depart = 0;
    for (auto _ : state) {
        min_depart = (min_depart + 1) % (horizon / 2);
        benchmark::DoNotOptimize(
            ort.findDeparture(min_depart, [](Cycle) { return true; }));
        benchmark::DoNotOptimize(
            ort.findDeparture(min_depart, [](Cycle) { return true; },
                              /*min_free=*/2));
    }
    state.SetItemsProcessed(2 * state.iterations());
}
BENCHMARK(BM_OutputTableFindDeparture)->Arg(16)->Arg(32)->Arg(128);

/**
 * Sweep-level speedup of the parallel experiment executor: an 8-point
 * latencyCurve on a reduced mesh, serial vs 8 workers. On an 8-core
 * host the 8-worker run should finish the curve >= 3x faster; results
 * are bit-identical either way (tests/test_parallel.cpp).
 */
void
BM_LatencyCurveSweep(benchmark::State& state)
{
    Config cfg = baseConfig();
    cfg.set("size_x", 4);
    cfg.set("size_y", 4);
    applyVc8(cfg);
    RunOptions opt;
    opt.samplePackets = 300;
    opt.minWarmup = 500;
    opt.maxWarmup = 1500;
    opt.maxCycles = 30000;
    opt.threads = static_cast<int>(state.range(0));
    const std::vector<double> loads{0.10, 0.20, 0.30, 0.40,
                                    0.50, 0.55, 0.60, 0.65};
    for (auto _ : state) {
        auto curve = latencyCurve(cfg, loads, opt);
        benchmark::DoNotOptimize(curve);
    }
    state.SetItemsProcessed(state.iterations()
                            * static_cast<std::int64_t>(loads.size()));
    state.SetLabel("runs/s");
}
BENCHMARK(BM_LatencyCurveSweep)
    ->Arg(1)
    ->Arg(2)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

void
BM_InputTableFlow(benchmark::State& state)
{
    InputReservationTable irt(32, 6);
    Cycle now = 0;
    Flit flit;
    flit.packet = 1;
    for (auto _ : state) {
        irt.advance(now);
        irt.recordReservation(now, now + 2, now + 4, kEast);
        benchmark::DoNotOptimize(irt.takeDepartures(now));
        ++now;
        irt.advance(now);
        ++now;
        irt.advance(now);
        flit.payload = Flit::expectedPayload(1, 0);
        irt.acceptFlit(now, flit);
        benchmark::DoNotOptimize(irt.takeDepartures(now));
        ++now;
        irt.advance(now);
        ++now;
        irt.advance(now);
        benchmark::DoNotOptimize(irt.takeDepartures(now));
        ++now;
    }
}
BENCHMARK(BM_InputTableFlow);

void
BM_ChannelTransport(benchmark::State& state)
{
    Channel<Flit> ch("bench", 4);
    Flit flit;
    Cycle now = 0;
    for (auto _ : state) {
        ch.push(now, flit);
        benchmark::DoNotOptimize(ch.drain(now));
        ++now;
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ChannelTransport);

void
BM_VcNetworkCycle(benchmark::State& state)
{
    Config cfg = baseConfig();
    applyVc8(cfg);
    cfg.set("workload.offered", 0.01 * static_cast<double>(state.range(0)));
    VcNetwork net(cfg);
    net.kernel().run(1000);  // warm
    for (auto _ : state)
        net.kernel().run(1);
    state.SetItemsProcessed(state.iterations()
                            * net.topology().numNodes());
    state.SetLabel("node-cycles/s");
}
BENCHMARK(BM_VcNetworkCycle)->Arg(30)->Arg(60);

void
BM_FrNetworkCycle(benchmark::State& state)
{
    Config cfg = baseConfig();
    applyFr6(cfg);
    cfg.set("workload.offered", 0.01 * static_cast<double>(state.range(0)));
    FrNetwork net(cfg);
    net.kernel().run(1000);
    for (auto _ : state)
        net.kernel().run(1);
    state.SetItemsProcessed(state.iterations()
                            * net.topology().numNodes());
    state.SetLabel("node-cycles/s");
}
BENCHMARK(BM_FrNetworkCycle)->Arg(30)->Arg(60);

}  // namespace
}  // namespace frfc

BENCHMARK_MAIN();
