# CTest smoke step: run one bench with tiny samples and out.format=json,
# then validate the report with json_lint. Driven from CMakeLists.txt:
#   cmake -DBENCH=... -DLINT=... -DOUT=... -P json_smoke.cmake
execute_process(
    COMMAND ${BENCH}
        run.sample_packets=50 run.min_warmup=200 run.max_warmup=500
        run.max_cycles=5000
        out.format=json out.file=${OUT}
    RESULT_VARIABLE bench_rc
    OUTPUT_QUIET)
if(NOT bench_rc EQUAL 0)
    message(FATAL_ERROR "bench exited with ${bench_rc}")
endif()
execute_process(COMMAND ${LINT} ${OUT} RESULT_VARIABLE lint_rc)
if(NOT lint_rc EQUAL 0)
    message(FATAL_ERROR "json_lint rejected ${OUT}")
endif()
