/**
 * @file
 * The Section 2 lineage in one chart: store-and-forward [Seitz85-era],
 * virtual cut-through [KerKle79], wormhole [DalSei86], virtual-channel
 * [Dally92], and flit-reservation flow control — all with 8 flit
 * buffers per input (6 for FR, its storage-matched equivalent), 5-flit
 * packets, fast control wires.
 *
 * Expected shape: each generation extends latency and/or saturation
 * over its predecessor, with flit reservation on top.
 */

#include <cstdio>

#include "bench_common.hpp"

using namespace frfc;

int
main(int argc, char** argv)
{
    return bench::benchMain(
        argc, argv,
        {"ext_lineage",
         "Extension: five generations of flow control (8-buffer "
         "inputs, 5-flit packets)"},
        [](bench::BenchContext& ctx) {
            const RunOptions& opt = ctx.options();
            const auto loads = ctx.curveLoads();

            struct Gen
            {
                const char* name;
                const char* preset;
                const char* forwarding;
            };
            const Gen generations[] = {
                {"SAF", "wormhole8", "store_and_forward"},
                {"VCT", "wormhole8", "cut_through"},
                {"WH", "wormhole8", "flit"},
                {"VC8", "vc8", "flit"},
                {"FR6", "fr6", nullptr},
            };

            std::vector<std::string> names;
            std::vector<Config> cfgs;
            std::vector<std::vector<RunResult>> curves;
            for (const Gen& g : generations) {
                Config cfg = baseConfig();
                applyPreset(cfg, g.preset);
                if (g.forwarding != nullptr)
                    cfg.set("forwarding", g.forwarding);
                ctx.applyOverrides(cfg);
                names.push_back(g.name);
                cfgs.push_back(cfg);
                curves.push_back(latencyCurve(cfg, loads, opt));
            }

            ctx.emitCurves(
                "Extension: five generations of flow control (8-buffer "
                "inputs, 5-flit packets)",
                names, cfgs, curves);

            std::printf("Base latency and highest completed load:\n");
            for (std::size_t i = 0; i < names.size(); ++i) {
                double sat = 0.0;
                for (const auto& r : curves[i]) {
                    if (r.complete && r.acceptedFraction > sat)
                        sat = r.acceptedFraction;
                }
                std::printf("  %-4s base %6.1f cycles   sat %5.1f%%\n",
                            names[i].c_str(),
                            curves[i].front().avgLatency, sat * 100.0);
                ctx.report().addScalar(
                    "measured." + names[i] + ".saturation", sat * 100.0);
                ctx.report().addScalar(
                    "measured." + names[i] + ".base_latency",
                    curves[i].front().avgLatency);
            }
            std::printf("\nStore-and-forward pays a full packet of "
                        "latency per hop; cut-through removes\nthe "
                        "latency but keeps packet-granular buffers; "
                        "wormhole shrinks buffers but\nblocks channels; "
                        "virtual channels unblock them; flit "
                        "reservation then removes\nrouting/arbitration "
                        "latency and buffer turnaround.\n");
        });
}
