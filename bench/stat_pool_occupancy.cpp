/**
 * @file
 * Regenerates the Section 4.2 buffer-occupancy statistic: with 21-flit
 * packets near saturation, a middle router's FR6 buffer pool is full
 * ~40% of the time, while virtual-channel flow control saturates with
 * its pool full < 5% of the time — FR uses the same storage far more
 * intensively.
 */

#include <cstdio>

#include "bench_common.hpp"

using namespace frfc;

int
main(int argc, char** argv)
{
    return bench::benchMain(
        argc, argv,
        {"stat_pool_occupancy",
         "Section 4.2 statistic: middle-router buffer pool occupancy, "
         "21-flit packets"},
        [](bench::BenchContext& ctx) {
            RunOptions opt = ctx.options();
            opt.trackOccupancy = true;
            if (!ctx.full()) {
                opt.samplePackets = 600;
                opt.maxCycles = 120000;
            }

            std::printf("== Section 4.2: middle-router buffer pool "
                        "occupancy, 21-flit packets near saturation "
                        "==\n\n");

            struct Case
            {
                const char* name;
                const char* slug;
                const char* preset;
                double load;
                double paperFullPct;
            };
            // Loads chosen just below each scheme's 21-flit saturation.
            const Case cases[] = {
                {"FR6 @ ~saturation", "fr6", "fr6", 0.55, 40.0},
                {"VC8 @ ~saturation", "vc8", "vc8", 0.50, 5.0},
            };

            for (const Case& c : cases) {
                Config cfg = baseConfig();
                applyPreset(cfg, c.preset);
                applyFastControl(cfg);
                cfg.set("workload.packet_length", 21);
                cfg.set("workload.offered", c.load);
                ctx.applyOverrides(cfg);
                const RunResult r = runExperiment(cfg, opt);
                std::printf(
                    "%-20s offered %4.0f%%  pool full %5.1f%% of cycles "
                    "(paper ~%2.0f%%)  avg occupancy %.2f flits  "
                    "latency %s\n",
                    c.name, c.load * 100.0, r.poolFullFraction * 100.0,
                    c.paperFullPct, r.poolAvgOccupancy,
                    r.complete ? TextTable::num(r.avgLatency, 1).c_str()
                               : "sat");
                ctx.comparison(std::string(c.slug) + " pool full pct",
                               c.paperFullPct,
                               r.poolFullFraction * 100.0);
                ctx.report().addScalar(std::string("measured.") + c.slug
                                           + ".pool_avg_occupancy",
                                       r.poolAvgOccupancy);
                ReportCurve& rc = ctx.report().addCurve(c.slug, cfg);
                rc.runs.push_back(r);
            }
            std::printf(
                "\nPaper claim: although FR uses the buffer pool more "
                "effectively, it cannot turn\nbuffers around when most "
                "are held by blocked packets — hence the tempered\ngain "
                "for long packets on small pools.\n");
            ctx.note("Paper claim: FR uses the pool more effectively "
                     "but cannot turn buffers around when most are held "
                     "by blocked packets (Section 4.2).");
        });
}
