/**
 * @file
 * Regenerates Figure 7: sensitivity of flit-reservation flow control
 * (FR6) to the scheduling horizon, swept from 16 to 128 cycles.
 * Paper shape: throughput is relatively insensitive; 16 cycles is
 * within 10% of optimum and gains beyond 32 are minimal.
 */

#include <cstdio>

#include "bench_common.hpp"

using namespace frfc;

int
main(int argc, char** argv)
{
    return bench::benchMain(
        argc, argv,
        {"fig7_horizon",
         "Figure 7: FR6 latency vs offered traffic across scheduling "
         "horizons"},
        [](bench::BenchContext& ctx) {
            const RunOptions& opt = ctx.options();
            const auto loads = ctx.curveLoads();

            std::vector<std::string> names;
            std::vector<Config> cfgs;
            for (int horizon : {16, 32, 64, 128}) {
                Config cfg = baseConfig();
                applyFastControl(cfg);
                applyFr6(cfg);
                cfg.set("horizon", horizon);
                ctx.applyOverrides(cfg);
                names.push_back("s=" + std::to_string(horizon));
                cfgs.push_back(cfg);
            }
            const bench::WallTimer timer;
            const auto curves = latencyCurves(cfgs, loads, opt);
            const double elapsed = timer.seconds();

            ctx.emitCurves(
                "Figure 7: FR6 latency vs offered traffic across "
                "scheduling horizons",
                names, cfgs, curves);

            std::printf(
                "Highest completed load per horizon (%% capacity):\n");
            for (std::size_t i = 0; i < names.size(); ++i) {
                double sat = 0.0;
                for (const auto& r : curves[i]) {
                    if (r.complete && r.acceptedFraction > sat)
                        sat = r.acceptedFraction;
                }
                std::printf("  %-8s %5.1f\n", names[i].c_str(),
                            sat * 100.0);
                ctx.report().addScalar(
                    "measured." + names[i] + ".saturation", sat * 100.0);
            }
            std::printf("\nPaper claim: a 16-cycle horizon is within "
                        "10%% of optimum; little improvement beyond "
                        "32.\n\n");
            ctx.note("Paper claim: a 16-cycle horizon is within 10% of "
                     "optimum; little improvement beyond 32.");
            ctx.sweepStats(elapsed, curves);
        });
}
