/**
 * @file
 * json_lint — validate that a file parses as JSON (exit 0) or report
 * where it fails (exit 1). Used by scripts/run_benches.sh and the CTest
 * smoke test to check the structured reports the benches emit.
 *
 *   $ ./json_lint bench_out/fig5_latency_5flit.json
 *
 * The --canonical mode additionally strips every host-dependent field
 * (wall-clock timings, the build stamp, and the `sim.kernel` mode
 * selector) and re-dumps the rest deterministically, so two reports of
 * the same experiment can be compared byte-for-byte:
 *
 *   $ ./json_lint --canonical stepped.json stepped.canon
 *   $ ./json_lint --canonical event.json event.canon
 *   $ cmp stepped.canon event.canon
 */

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "harness/json.hpp"

namespace {

/**
 * Host- or mode-dependent keys that legitimately differ between two
 * otherwise bit-identical runs: wall-clock timings (and the speedup
 * ratios derived from them), the build stamp, and the kernel and
 * validation selectors themselves.
 */
bool
volatileKey(const std::string& key)
{
    if (key == "build" || key == "sim.kernel" || key == "sim.validate"
        || key == "sim.shards" || key == "sim.partition")
        return true;
    if (key.rfind("out.", 0) == 0)  // report-emission plumbing
        return true;
    if (key.rfind("parallel.", 0) == 0)  // shard-balance observability
        return true;
    if (key.find("wall_seconds") != std::string::npos)
        return true;
    if (key.find("speedup") != std::string::npos)
        return true;
    const std::string suffix = "_seconds";
    return key.size() >= suffix.size()
           && key.compare(key.size() - suffix.size(), suffix.size(),
                          suffix)
                  == 0;
}

frfc::JsonValue
canonicalize(const frfc::JsonValue& v)
{
    if (v.isObject()) {
        frfc::JsonValue out = frfc::JsonValue::object();
        for (const auto& member : v.members()) {
            if (!volatileKey(member.first))
                out.set(member.first, canonicalize(member.second));
        }
        return out;
    }
    if (v.isArray()) {
        frfc::JsonValue out = frfc::JsonValue::array();
        for (std::size_t i = 0; i < v.size(); ++i)
            out.push(canonicalize(v.at(i)));
        return out;
    }
    return v;
}

}  // namespace

int
main(int argc, char** argv)
{
    bool canonical = false;
    const char* in_path = nullptr;
    const char* out_path = nullptr;
    if (argc == 2) {
        in_path = argv[1];
    } else if (argc == 4 && std::string(argv[1]) == "--canonical") {
        canonical = true;
        in_path = argv[2];
        out_path = argv[3];
    } else {
        std::fprintf(stderr,
                     "usage: json_lint FILE\n"
                     "       json_lint --canonical FILE OUT\n");
        return 2;
    }

    std::ifstream in(in_path, std::ios::binary);
    if (!in) {
        std::fprintf(stderr, "json_lint: cannot open '%s'\n", in_path);
        return 1;
    }
    std::ostringstream buf;
    buf << in.rdbuf();

    std::string error;
    const frfc::JsonValue v = frfc::jsonParse(buf.str(), &error);
    if (!error.empty()) {
        std::fprintf(stderr, "json_lint: %s: %s\n", in_path,
                     error.c_str());
        return 1;
    }
    if (!v.isObject()) {
        std::fprintf(stderr, "json_lint: %s: top level is not an object\n",
                     in_path);
        return 1;
    }

    if (canonical) {
        std::ofstream out(out_path, std::ios::binary);
        if (!out) {
            std::fprintf(stderr, "json_lint: cannot write '%s'\n",
                         out_path);
            return 1;
        }
        out << canonicalize(v).dump(2) << "\n";
        return out.good() ? 0 : 1;
    }

    std::printf("%s: ok\n", in_path);
    return 0;
}
