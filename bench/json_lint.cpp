/**
 * @file
 * json_lint — validate that a file parses as JSON (exit 0) or report
 * where it fails (exit 1). Used by scripts/run_benches.sh and the CTest
 * smoke test to check the structured reports the benches emit.
 *
 *   $ ./json_lint bench_out/fig5_latency_5flit.json
 */

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "harness/json.hpp"

int
main(int argc, char** argv)
{
    if (argc != 2) {
        std::fprintf(stderr, "usage: json_lint FILE\n");
        return 2;
    }
    std::ifstream in(argv[1], std::ios::binary);
    if (!in) {
        std::fprintf(stderr, "json_lint: cannot open '%s'\n", argv[1]);
        return 1;
    }
    std::ostringstream buf;
    buf << in.rdbuf();

    std::string error;
    const frfc::JsonValue v = frfc::jsonParse(buf.str(), &error);
    if (!error.empty()) {
        std::fprintf(stderr, "json_lint: %s: %s\n", argv[1],
                     error.c_str());
        return 1;
    }
    if (!v.isObject()) {
        std::fprintf(stderr, "json_lint: %s: top level is not an object\n",
                     argv[1]);
        return 1;
    }
    std::printf("%s: ok\n", argv[1]);
    return 0;
}
