/**
 * @file
 * Shared driver for the figure/table regeneration benches.
 *
 * Every bench is a body function handed to benchMain(), which owns the
 * command line, the measurement options, and the structured Report:
 *
 *   int main(int argc, char** argv) {
 *       return frfc::bench::benchMain(
 *           argc, argv,
 *           {"fig5_latency_5flit", "Figure 5: ..."},
 *           [](frfc::bench::BenchContext& ctx) { ... });
 *   }
 *
 * Command line accepted by every bench:
 *   --full        paper-scale runs (100k-packet samples, 10k+ warm-up)
 *   --csv         print the text tables in CSV form
 *   key=value     any Config override (seed=..., run.threads=..., and
 *                 the out.* report keys below)
 *
 * Structured output (see harness/report.hpp): `out.format=json` or
 * `out.format=csv` serializes the full Report — every config, load,
 * RunResult, and per-component metrics snapshot — to `out.file` (or
 * stdout when unset). The default `out.format=table` keeps the classic
 * human-readable tables only. RunOptions::fromConfig is the single
 * construction path for measurement options: `run.*` keys given on the
 * command line override either mode's defaults.
 *
 * Default (quick) mode uses reduced sample sizes so the whole bench
 * suite finishes in minutes; the curves keep their shape, with more
 * sampling noise.
 */

#ifndef FRFC_BENCH_BENCH_COMMON_HPP
#define FRFC_BENCH_BENCH_COMMON_HPP

#include <cctype>
#include <chrono>
#include <cstdio>
#include <functional>
#include <iostream>
#include <string>
#include <vector>

#include "common/config.hpp"
#include "common/table.hpp"
#include "harness/parallel.hpp"
#include "harness/presets.hpp"
#include "harness/report.hpp"
#include "harness/sweep.hpp"
#include "network/runner.hpp"
#include "sim/kernel.hpp"
#include "traffic/workload.hpp"

namespace frfc::bench {

/** Identity of one bench, shown in --help and stamped on the Report. */
struct BenchInfo
{
    const char* name;   ///< artifact name, e.g. "fig5_latency_5flit"
    const char* title;  ///< one-line human description
};

/** Wall-clock stopwatch for whole-sweep timing. */
class WallTimer
{
  public:
    double
    seconds() const
    {
        return std::chrono::duration<double>(
                   std::chrono::steady_clock::now() - start_)
            .count();
    }

  private:
    std::chrono::steady_clock::time_point start_ =
        std::chrono::steady_clock::now();
};

/**
 * Everything a bench body needs: parsed mode flags, the single
 * RunOptions, config overrides, and the Report being built. Emission
 * helpers print the human tables and record into the Report in one
 * call, so text and JSON outputs cannot drift apart.
 */
class BenchContext
{
  public:
    BenchContext(const BenchInfo& info, bool full, bool csv,
                 Config overrides)
        : info_(info), full_(full), csv_(csv),
          overrides_(std::move(overrides)),
          report_(info.name, info.title)
    {
        RunOptions base;  // paper-scale defaults
        if (!full_) {
            base.samplePackets = 1500;
            base.minWarmup = 2000;
            base.maxWarmup = 5000;
            base.maxCycles = 80000;
        }
        options_ = RunOptions::fromConfig(overrides_, base);
        report_.setMode(full_ ? "full" : "quick");
    }

    bool full() const { return full_; }
    bool csv() const { return csv_; }

    /** The bench's single set of measurement options. */
    const RunOptions& options() const { return options_; }

    /** The structured report under construction. */
    Report& report() { return report_; }

    /** The raw command-line key=value overrides. */
    const Config& overrides() const { return overrides_; }

    /** Apply command-line key=value overrides onto a config. */
    void
    applyOverrides(Config& cfg) const
    {
        for (const auto& key : overrides_.keys())
            cfg.set(canonicalWorkloadKey(key),
                    overrides_.get<std::string>(key));
    }

    /** Load points for latency-throughput curves. */
    std::vector<double>
    curveLoads() const
    {
        if (full_)
            return standardLoads();
        return {0.10, 0.30, 0.45, 0.55, 0.65, 0.70, 0.75, 0.80, 0.85,
                0.90};
    }

    /**
     * Render one latency-vs-offered-traffic figure and record every
     * (config, runs) pair into the Report. names, cfgs, and curves
     * index together.
     */
    void
    emitCurves(const std::string& title,
               const std::vector<std::string>& names,
               const std::vector<Config>& cfgs,
               const std::vector<std::vector<RunResult>>& curves)
    {
        for (std::size_t i = 0; i < curves.size(); ++i) {
            ReportCurve& rc = report_.addCurve(
                i < names.size() ? names[i] : "curve" + std::to_string(i),
                i < cfgs.size() ? cfgs[i] : Config{});
            rc.runs = curves[i];
        }
        printCurves(title, names, curves);
    }

    /** Table-only variant for derived rows that are not swept runs. */
    void
    printCurves(const std::string& title,
                const std::vector<std::string>& names,
                const std::vector<std::vector<RunResult>>& curves) const
    {
        std::printf("== %s ==\n", title.c_str());
        std::printf("(%s mode; latency in cycles; 'sat' = did not "
                    "complete the sample within the cycle budget)\n",
                    full_ ? "full" : "quick");
        TextTable table;
        std::vector<std::string> header{"offered(%)"};
        for (const auto& name : names)
            header.push_back(name);
        table.setHeader(header);
        const std::size_t points = curves.empty() ? 0 : curves[0].size();
        for (std::size_t i = 0; i < points; ++i) {
            std::vector<std::string> row{
                TextTable::num(curves[0][i].offeredFraction * 100.0, 0)};
            for (const auto& curve : curves) {
                row.push_back(curve[i].complete
                                  ? TextTable::num(curve[i].avgLatency, 1)
                                  : std::string("sat"));
            }
            table.addRow(row);
        }
        if (csv_)
            table.printCsv(std::cout);
        else
            table.print(std::cout);
        std::printf("\n");
    }

    /**
     * Print a paper-vs-measured comparison line and record both values
     * as Report scalars (`paper.<slug>` / `measured.<slug>`).
     */
    void
    comparison(const std::string& what, double paper, double measured)
    {
        std::printf("  %-44s paper %-8.1f measured %-8.1f\n",
                    what.c_str(), paper, measured);
        const std::string slug = slugify(what);
        report_.addScalar("paper." + slug, paper);
        report_.addScalar("measured." + slug, measured);
    }

    /** Annotation printed nowhere but carried into the Report. */
    void note(const std::string& text) { report_.addNote(text); }

    /**
     * Print sweep wall-clock observability: elapsed time, simulated
     * cycles per second, and the parallel speedup (aggregate per-run
     * time over elapsed time — ~1.0 when serial, approaching the
     * worker count when the executor keeps every core busy). Pass
     * counted_all = false when @p curves covers only part of the timed
     * work (e.g. saturation searches ran inside the window too) — the
     * rate and speedup would undercount, so only runs and wall time
     * are printed.
     */
    void
    sweepStats(double elapsed_seconds,
               const std::vector<std::vector<RunResult>>& curves,
               bool counted_all = true)
    {
        std::int64_t runs = 0;
        double sim_cycles = 0.0;
        double run_seconds = 0.0;
        for (const auto& curve : curves) {
            for (const RunResult& r : curve) {
                ++runs;
                sim_cycles += static_cast<double>(r.totalCycles);
                run_seconds += r.wallSeconds;
            }
        }
        report_.addScalar("sweep.runs", static_cast<double>(runs));
        report_.addScalar("sweep.sim_cycles", sim_cycles);
        if (!counted_all) {
            std::printf("sweep: %lld curve runs + saturation searches "
                        "in %.2fs wall (run.threads=%d resolves to "
                        "%d)\n",
                        static_cast<long long>(runs), elapsed_seconds,
                        options_.threads,
                        resolveThreads(options_.threads));
            return;
        }
        std::printf("sweep: %lld runs, %.0fk simulated cycles in %.2fs "
                    "wall (%.0f kcycles/s, run.threads=%d resolves to "
                    "%d, speedup %.2fx)\n",
                    static_cast<long long>(runs), sim_cycles / 1e3,
                    elapsed_seconds,
                    elapsed_seconds > 0.0
                        ? sim_cycles / elapsed_seconds / 1e3
                        : 0.0,
                    options_.threads, resolveThreads(options_.threads),
                    elapsed_seconds > 0.0
                        ? run_seconds / elapsed_seconds
                        : 1.0);
    }

  private:
    static std::string
    slugify(const std::string& text)
    {
        std::string slug;
        for (const char c : text) {
            if (std::isalnum(static_cast<unsigned char>(c)))
                slug += static_cast<char>(
                    std::tolower(static_cast<unsigned char>(c)));
            else if (!slug.empty() && slug.back() != '_')
                slug += '_';
        }
        while (!slug.empty() && slug.back() == '_')
            slug.pop_back();
        return slug;
    }

    BenchInfo info_;
    bool full_;
    bool csv_;
    Config overrides_;
    RunOptions options_;
    Report report_;
};

/**
 * The shared bench driver: parses the command line, builds the
 * BenchContext, times the body, then emits the Report per out.format /
 * out.file. Returns the process exit code.
 */
inline int
benchMain(int argc, char** argv, const BenchInfo& info,
          const std::function<void(BenchContext&)>& body)
{
    bool full = false;
    bool csv = false;
    Config overrides;
    std::vector<std::string> tokens(argv + 1, argv + argc);
    for (const std::string& positional : overrides.applyArgs(tokens)) {
        if (positional == "--full") {
            full = true;
        } else if (positional == "--csv") {
            csv = true;
        } else if (positional == "--list-kernels") {
            // Machine-readable kernel registry dump: scripts (the
            // kernel-equivalence ctest, sweep drivers) derive their
            // kernel list from here instead of hard-coding it.
            for (const std::string& name : simKernelNames())
                std::printf("%s\n", name.c_str());
            return 0;
        } else if (positional == "--help" || positional == "-h") {
            std::printf("%s — %s\n", info.name, info.title);
            std::printf("usage: %s [--full] [--csv] [--list-kernels] "
                        "[key=value ...]\n"
                        "  out.format=json|csv|table  structured report "
                        "format (default table)\n"
                        "  out.file=PATH              report file "
                        "(default stdout)\n"
                        "  out.metrics=full|none      per-run metric "
                        "snapshots (default full)\n",
                        argv[0]);
            return 0;
        } else {
            std::fprintf(stderr, "unknown argument '%s'\n",
                         positional.c_str());
            return 1;
        }
    }

    BenchContext ctx(info, full, csv, std::move(overrides));
    const WallTimer timer;
    body(ctx);
    ctx.report().setWallSeconds(timer.seconds());
    ctx.report().write(ctx.options());
    return 0;
}

}  // namespace frfc::bench

#endif  // FRFC_BENCH_BENCH_COMMON_HPP
