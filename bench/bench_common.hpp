/**
 * @file
 * Shared scaffolding for the figure/table regeneration benches.
 *
 * Every bench accepts:
 *   --full        paper-scale runs (100k-packet samples, 10k+ warm-up)
 *   --csv         emit CSV instead of an aligned table
 *   key=value     any Config override (seed=..., size_x=..., ...)
 *
 * Default (quick) mode uses reduced sample sizes so the whole bench
 * suite finishes in minutes; the curves keep their shape, with more
 * sampling noise.
 */

#ifndef FRFC_BENCH_BENCH_COMMON_HPP
#define FRFC_BENCH_BENCH_COMMON_HPP

#include <chrono>
#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "common/config.hpp"
#include "common/table.hpp"
#include "harness/parallel.hpp"
#include "harness/presets.hpp"
#include "harness/sweep.hpp"
#include "network/runner.hpp"

namespace frfc::bench {

/** Parsed common bench options. */
struct BenchArgs
{
    bool full = false;
    bool csv = false;
    Config overrides;
};

inline BenchArgs
parseArgs(int argc, char** argv)
{
    BenchArgs args;
    std::vector<std::string> tokens(argv + 1, argv + argc);
    for (const std::string& positional : args.overrides.applyArgs(tokens)) {
        if (positional == "--full")
            args.full = true;
        else if (positional == "--csv")
            args.csv = true;
        else if (positional == "--help" || positional == "-h") {
            std::printf("usage: %s [--full] [--csv] [key=value ...]\n",
                        argv[0]);
            std::exit(0);
        } else {
            std::fprintf(stderr, "unknown argument '%s'\n",
                         positional.c_str());
            std::exit(1);
        }
    }
    return args;
}

/** Apply command-line key=value overrides onto a config. */
inline void
applyOverrides(Config& cfg, const BenchArgs& args)
{
    for (const auto& key : args.overrides.keys())
        cfg.set(key, args.overrides.getString(key));
}

/** Measurement options matching quick/full mode; run.* keys given on
 *  the command line override either mode's defaults. */
inline RunOptions
runOptions(const BenchArgs& args)
{
    RunOptions opt;  // paper-scale defaults
    if (!args.full) {
        opt.samplePackets = 1500;
        opt.minWarmup = 2000;
        opt.maxWarmup = 5000;
        opt.maxCycles = 80000;
    }
    return RunOptions::fromConfig(args.overrides, opt);
}

/** Load points for latency-throughput curves. */
inline std::vector<double>
curveLoads(const BenchArgs& args)
{
    if (args.full)
        return standardLoads();
    return {0.10, 0.30, 0.45, 0.55, 0.65, 0.70, 0.75, 0.80, 0.85, 0.90};
}

/** Render one latency-vs-offered-traffic figure. */
inline void
printCurves(const BenchArgs& args, const std::string& title,
            const std::vector<std::string>& names,
            const std::vector<std::vector<RunResult>>& curves)
{
    std::printf("== %s ==\n", title.c_str());
    std::printf("(%s mode; latency in cycles; 'sat' = did not complete "
                "the sample within the cycle budget)\n",
                args.full ? "full" : "quick");
    TextTable table;
    std::vector<std::string> header{"offered(%)"};
    for (const auto& name : names)
        header.push_back(name);
    table.setHeader(header);
    const std::size_t points = curves.empty() ? 0 : curves[0].size();
    for (std::size_t i = 0; i < points; ++i) {
        std::vector<std::string> row{
            TextTable::num(curves[0][i].offeredFraction * 100.0, 0)};
        for (const auto& curve : curves) {
            row.push_back(curve[i].complete
                              ? TextTable::num(curve[i].avgLatency, 1)
                              : std::string("sat"));
        }
        table.addRow(row);
    }
    if (args.csv)
        table.printCsv(std::cout);
    else
        table.print(std::cout);
    std::printf("\n");
}

/** Print a paper-vs-measured comparison line. */
inline void
comparison(const char* what, double paper, double measured)
{
    std::printf("  %-44s paper %-8.1f measured %-8.1f\n", what, paper,
                measured);
}

/** Wall-clock stopwatch for whole-sweep timing. */
class WallTimer
{
  public:
    double
    seconds() const
    {
        return std::chrono::duration<double>(
                   std::chrono::steady_clock::now() - start_)
            .count();
    }

  private:
    std::chrono::steady_clock::time_point start_ =
        std::chrono::steady_clock::now();
};

/**
 * Print sweep wall-clock observability: elapsed time, simulated
 * cycles per second, and the parallel speedup (aggregate per-run time
 * over elapsed time — ~1.0 when serial, approaching the worker count
 * when the executor keeps every core busy). Pass counted_all = false
 * when @p curves covers only part of the timed work (e.g. saturation
 * searches ran inside the window too) — the rate and speedup would
 * undercount, so only runs and wall time are printed.
 */
inline void
printSweepStats(const BenchArgs& args, double elapsed_seconds,
                const std::vector<std::vector<RunResult>>& curves,
                bool counted_all = true)
{
    std::int64_t runs = 0;
    double sim_cycles = 0.0;
    double run_seconds = 0.0;
    for (const auto& curve : curves) {
        for (const RunResult& r : curve) {
            ++runs;
            sim_cycles += static_cast<double>(r.totalCycles);
            run_seconds += r.wallSeconds;
        }
    }
    const RunOptions opt = runOptions(args);
    if (!counted_all) {
        std::printf("sweep: %lld curve runs + saturation searches in "
                    "%.2fs wall (run.threads=%d resolves to %d)\n",
                    static_cast<long long>(runs), elapsed_seconds,
                    opt.threads, resolveThreads(opt.threads));
        return;
    }
    std::printf("sweep: %lld runs, %.0fk simulated cycles in %.2fs wall "
                "(%.0f kcycles/s, run.threads=%d resolves to %d, "
                "speedup %.2fx)\n",
                static_cast<long long>(runs), sim_cycles / 1e3,
                elapsed_seconds,
                elapsed_seconds > 0.0
                    ? sim_cycles / elapsed_seconds / 1e3
                    : 0.0,
                opt.threads, resolveThreads(opt.threads),
                elapsed_seconds > 0.0 ? run_seconds / elapsed_seconds
                                      : 1.0);
}

}  // namespace frfc::bench

#endif  // FRFC_BENCH_BENCH_COMMON_HPP
