/**
 * @file
 * Section 5 error-recovery study: data flits are corrupted in flight
 * with probability p and discarded at the receiving input. The paper
 * argues the scheduling tables "return to a consistent state with no
 * lost buffers or stalled links" — the affected reservations simply
 * execute vacuously. This bench sweeps the loss rate and shows the
 * network keeps flowing, with goodput degrading by roughly the
 * end-to-end loss probability, and quantifies the plesiochronous
 * one-cycle buffer-hold margin.
 */

#include <algorithm>
#include <cstdio>

#include "bench_common.hpp"
#include "network/fr_network.hpp"
#include "topology/topology.hpp"

using namespace frfc;

int
main(int argc, char** argv)
{
    return bench::benchMain(
        argc, argv,
        {"ext_error_recovery",
         "Section 5 extension: error recovery under data-flit loss and "
         "plesiochronous links"},
        [](bench::BenchContext& ctx) {
            const RunOptions& opt = ctx.options();
            // Fixed-horizon fault runs; run.max_cycles caps them so
            // smoke invocations stay fast.
            const Cycle cycles = std::min<Cycle>(
                opt.maxCycles, ctx.full() ? 200000 : 30000);

            std::printf("== Section 5 extension: error recovery under "
                        "data-flit loss (FR6, 40%% load) ==\n\n");
            std::printf("%-10s %-12s %-14s %-16s %-10s\n", "drop rate",
                        "flits lost", "vacuous slots",
                        "goodput (flits)", "goodput %");
            double clean_goodput = 0.0;
            for (double rate : {0.0, 0.001, 0.01, 0.05, 0.10}) {
                Config cfg = baseConfig();
                applyFr6(cfg);
                cfg.set("workload.offered", 0.4);
                cfg.set("fault.data_drop_rate", rate);
                ctx.applyOverrides(cfg);
                FrNetwork net(cfg);
                net.driver().run(cycles);
                const auto delivered = static_cast<double>(
                    net.registry().flitsDelivered());
                if (rate == 0.0)
                    clean_goodput = delivered;
                const double goodput_pct = clean_goodput > 0
                    ? delivered / clean_goodput * 100.0
                    : 100.0;
                std::printf("%-10.3f %-12lld %-14lld %-16.0f %-10.1f\n",
                            rate,
                            static_cast<long long>(net.totalDropped()),
                            static_cast<long long>(
                                net.totalLostArrivals()),
                            delivered, goodput_pct);
                const std::string tag =
                    "drop" + std::to_string(rate);
                ctx.report().addScalar(
                    "measured." + tag + ".goodput_pct", goodput_pct);
                ctx.report().addScalar(
                    "measured." + tag + ".flits_lost",
                    static_cast<double>(net.totalDropped()));
            }
            std::printf("\nEvery run above holds the full set of "
                        "internal consistency assertions: no\nbuffer "
                        "leaks, no stalled links, reservations for "
                        "lost flits pass idle.\n\n");
            ctx.note("Every fault run holds the internal consistency "
                     "assertions: no buffer leaks, no stalled links; "
                     "reservations for lost flits pass idle.");

            std::printf("== Plesiochronous links: one extra buffer-hold "
                        "cycle (Section 5) ==\n\n");
            for (bool plesio : {false, true}) {
                Config cfg = baseConfig();
                applyFr6(cfg);
                cfg.set("plesiochronous", plesio);
                ctx.applyOverrides(cfg);
                const RunResult mid = measureAtLoad(cfg, 0.5, opt);
                const auto curve =
                    latencyCurve(cfg, ctx.curveLoads(), opt);
                double sat = 0.0;
                for (const RunResult& r : curve) {
                    if (r.complete && r.acceptedFraction > sat)
                        sat = r.acceptedFraction;
                }
                const char* name =
                    plesio ? "plesiochronous" : "mesochronous";
                std::printf("%-14s latency@50%% %6.1f   highest "
                            "completed load %4.1f%%\n",
                            name, mid.avgLatency, sat * 100.0);
                ReportCurve& rc = ctx.report().addCurve(name, cfg);
                rc.runs = curve;
                ctx.report().addScalar(
                    std::string("measured.") + name + ".latency_at_50pct",
                    mid.avgLatency);
                ctx.report().addScalar(
                    std::string("measured.") + name + ".saturation",
                    sat * 100.0);
            }
            std::printf("\nThe guard cycle costs a sliver of throughput "
                        "— the price of tolerating a\ntransmit-clock "
                        "slip without buffer conflicts.\n");
        });
}
