/**
 * @file
 * Regenerates Table 2: bandwidth overhead per data flit, plus the
 * Section 4 claim that flit reservation costs 5 extra bits (2% of a
 * 256-bit flit) in the experimental configurations.
 */

#include <cstdio>
#include <iostream>

#include "bench_common.hpp"
#include "common/table.hpp"
#include "overhead/overhead.hpp"

using namespace frfc;

int
main(int argc, char** argv)
{
    return bench::benchMain(
        argc, argv,
        {"table2_bandwidth",
         "Table 2: bandwidth overhead per data flit (bits)"},
        [](bench::BenchContext& ctx) {
            const int n = 6;  // destination bits for 64 nodes

            std::printf("== Table 2: bandwidth overhead per data flit "
                        "(bits) ==\n\n");

            TextTable table;
            table.setHeader({"packet length", "VC (v=2)",
                             "FR (v_c=2,d=1,s=32)", "extra",
                             "extra % of 256b"});
            for (int length : {5, 21}) {
                const double vc = vcBandwidthOverhead(n, length, 2);
                const double fr =
                    frBandwidthOverhead(n, length, 2, 1, 32);
                table.addRow({std::to_string(length),
                              TextTable::num(vc, 2),
                              TextTable::num(fr, 2),
                              TextTable::num(fr - vc, 2),
                              TextTable::percent((fr - vc) / 256.0, 1)});
                const std::string tag = "L" + std::to_string(length);
                ctx.report().addScalar("measured." + tag + ".vc_bits",
                                       vc);
                ctx.report().addScalar("measured." + tag + ".fr_bits",
                                       fr);
                ctx.report().addScalar(
                    "measured." + tag + ".extra_bits", fr - vc);
            }
            if (ctx.csv())
                table.printCsv(std::cout);
            else
                table.print(std::cout);

            std::printf("\nPaper: overhead_VC = n/L + log2(v_d);  "
                        "overhead_FR = n/L + log2(v_c)/L * (1 + "
                        "(L-1)/d) + log2(s)\n");
            std::printf("Paper claim: FR incurs 5 more bits (log2 s), "
                        "i.e. 2%% of a 256-bit data flit.\n\n");
            ctx.note("Paper claim: FR incurs 5 more bits (log2 s), "
                     "i.e. 2% of a 256-bit data flit.");

            std::printf("Wide-control ablation (L = 21): d amortizes "
                        "the VCID share\n");
            TextTable wide;
            wide.setHeader({"d", "FR overhead (bits/flit)"});
            for (int d : {1, 2, 4, 8}) {
                const double fr =
                    frBandwidthOverhead(n, 21, 2, d, 32);
                wide.addRow(
                    {std::to_string(d), TextTable::num(fr, 3)});
                ctx.report().addScalar(
                    "measured.wide_d" + std::to_string(d) + ".fr_bits",
                    fr);
            }
            if (ctx.csv())
                wide.printCsv(std::cout);
            else
                wide.print(std::cout);
        });
}
