/**
 * @file
 * PR 9 headline: end-to-end loss recovery. Sweeps data-fault rate x
 * offered load for three configurations — VC with recovery, FR with
 * recovery, and speculative FR (data launches before the reservation
 * confirms, falling back to reserved retransmission on nack) — and
 * shows that ack/nack retransmission delivers 100% of packets under
 * every fault mix, with the latency cost confined to a bounded p99
 * inflation over the fault-free baseline.
 */

#include <cstdio>
#include <string>

#include "bench_common.hpp"
#include "network/fr_network.hpp"
#include "network/vc_network.hpp"

using namespace frfc;

namespace {

struct Cell
{
    double deliveredPct = 0.0;
    std::int64_t retransmits = 0;
    std::int64_t lost = 0;
    double p99 = 0.0;
};

/** Fixed-horizon generate + drain: with recovery on, every created
 *  packet must eventually deliver, whatever the fault mix. */
Cell
drainRun(const Config& cfg, Cycle gen_cycles)
{
    Cell cell;
    auto net = makeNetwork(cfg);
    net->driver().run(gen_cycles);
    net->setGenerating(false);
    net->driver().runUntil(
        [&] { return net->registry().packetsInFlight() == 0; }, 400000);
    const auto created =
        static_cast<double>(net->registry().packetsCreated());
    cell.deliveredPct = created > 0
        ? static_cast<double>(net->registry().packetsDelivered())
            / created * 100.0
        : 100.0;
    if (auto* fr = dynamic_cast<FrNetwork*>(net.get())) {
        cell.retransmits = fr->totalRetransmits();
        cell.lost = fr->totalDropped() + fr->totalCtrlDropped()
            + fr->totalSpecDropped() + fr->totalSpecEvicted();
    } else if (auto* vc = dynamic_cast<VcNetwork*>(net.get())) {
        cell.retransmits = vc->totalRetransmits();
        cell.lost = vc->totalPoisoned();
    }
    return cell;
}

}  // namespace

int
main(int argc, char** argv)
{
    return bench::benchMain(
        argc, argv,
        {"ext_fault_recovery",
         "PR 9 extension: ack/nack retransmission delivers 100% under "
         "injected faults (speculative FR vs FR vs VC)"},
        [](bench::BenchContext& ctx) {
            const RunOptions& opt = ctx.options();
            const Cycle gen_cycles =
                std::min<Cycle>(opt.maxCycles / 2,
                                ctx.full() ? 20000 : 3000);

            struct Scheme
            {
                const char* name;
                const char* base;  // preset
                bool spec;
            };
            const Scheme schemes[] = {
                {"vc", "vc8", false},
                {"fr", "fr6", false},
                {"fr-spec", "fr6", true},
            };
            struct Rate
            {
                double value;
                const char* tag;
            };
            const Rate rates[] = {
                {0.0, "r0"}, {0.02, "r2pct"}, {0.05, "r5pct"}};
            const double loads[] = {0.25, 0.45};

            std::printf("== PR 9: end-to-end recovery under injected "
                        "data faults (4x4 mesh) ==\n\n");
            std::printf("%-8s %-6s %-6s %-12s %-12s %-10s %-8s %-10s\n",
                        "scheme", "load", "rate", "delivered%",
                        "retransmits", "lost", "p99", "p99 infl");
            for (const Scheme& scheme : schemes) {
                for (const double load : loads) {
                    double clean_p99 = 0.0;
                    for (const Rate& rate : rates) {
                        Config cfg = baseConfig();
                        applyPreset(cfg, scheme.base);
                        cfg.set("size_x", 4);
                        cfg.set("size_y", 4);
                        cfg.set("fault.recovery", 1);
                        cfg.set("fault.ack_timeout", 400);
                        if (rate.value > 0.0)
                            cfg.set("fault.data_drop_rate", rate.value);
                        if (scheme.spec)
                            cfg.set("fr.speculative", 1);
                        cfg.set("workload.offered", load);
                        ctx.applyOverrides(cfg);

                        Cell cell = drainRun(cfg, gen_cycles);
                        const RunResult r =
                            measureAtLoad(cfg, load, opt);
                        cell.p99 = r.p99Latency;
                        if (rate.value == 0.0)
                            clean_p99 = cell.p99;
                        const double inflation =
                            clean_p99 > 0.0 ? cell.p99 / clean_p99
                                            : 1.0;
                        std::printf("%-8s %-6.2f %-6.2f %-12.1f "
                                    "%-12lld %-10lld %-8.1f %-10.2f\n",
                                    scheme.name, load, rate.value,
                                    cell.deliveredPct,
                                    static_cast<long long>(
                                        cell.retransmits),
                                    static_cast<long long>(cell.lost),
                                    cell.p99, inflation);
                        const std::string slug = std::string("measured.")
                            + scheme.name + ".load"
                            + (load < 0.3 ? "25" : "45") + "."
                            + rate.tag;
                        ctx.report().addScalar(slug + ".delivered_pct",
                                               cell.deliveredPct);
                        ctx.report().addScalar(
                            slug + ".retransmits",
                            static_cast<double>(cell.retransmits));
                        ctx.report().addScalar(
                            slug + ".lost",
                            static_cast<double>(cell.lost));
                        ctx.report().addScalar(slug + ".p99", cell.p99);
                        ctx.report().addScalar(slug + ".p99_inflation",
                                               inflation);
                    }
                }
            }
            std::printf(
                "\nWith fault.recovery=1 the delivered fraction stays "
                "at 100%% in every cell:\nlost flits are re-sent from "
                "the source retransmission buffers, duplicates\nare "
                "suppressed at the sinks, and the cost is a bounded "
                "p99 inflation.\n");
            ctx.note("Delivered fraction is 100% in every "
                     "scheme x load x fault-rate cell; losses are "
                     "repaired by ack/nack retransmission at a bounded "
                     "p99 latency cost.");
        });
}
