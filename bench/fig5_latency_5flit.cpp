/**
 * @file
 * Regenerates Figure 5: average latency versus offered traffic for
 * virtual-channel (VC8, VC16) and flit-reservation (FR6, FR13) flow
 * control with 5-flit packets on the fast-control 8x8 mesh.
 *
 * Paper shape to reproduce: VC8 saturates ~63%, FR6 ~77%, VC16 ~80%,
 * FR13 ~85%; FR base latency ~15% below VC.
 */

#include <cstdio>

#include "bench_common.hpp"

using namespace frfc;

int
main(int argc, char** argv)
{
    return bench::benchMain(
        argc, argv,
        {"fig5_latency_5flit",
         "Figure 5: latency vs offered traffic, 5-flit packets, fast "
         "control"},
        [](bench::BenchContext& ctx) {
            const RunOptions& opt = ctx.options();
            const auto loads = ctx.curveLoads();

            const std::vector<std::string> names{"VC8", "VC16", "FR6",
                                                 "FR13"};
            std::vector<Config> cfgs;
            for (const auto& name : names) {
                Config cfg = baseConfig();
                applyFastControl(cfg);
                cfg.set("workload.packet_length", 5);
                applyPreset(cfg, name == "VC8"    ? "vc8"
                                 : name == "VC16" ? "vc16"
                                 : name == "FR6"  ? "fr6"
                                                  : "fr13");
                ctx.applyOverrides(cfg);
                cfgs.push_back(cfg);
            }
            const bench::WallTimer timer;
            const auto curves = latencyCurves(cfgs, loads, opt);
            const double elapsed = timer.seconds();

            ctx.emitCurves(
                "Figure 5: latency vs offered traffic, 5-flit packets, "
                "fast control",
                names, cfgs, curves);

            // Saturation summary against the paper's reported numbers.
            std::printf("Saturation throughput (%% capacity):\n");
            const double paper[] = {63, 80, 77, 85};
            for (std::size_t i = 0; i < names.size(); ++i) {
                double sat = 0.0;
                for (const auto& r : curves[i]) {
                    if (r.complete && r.acceptedFraction > sat)
                        sat = r.acceptedFraction;
                }
                ctx.comparison(names[i] + " saturation", paper[i],
                               sat * 100.0);
            }
            std::printf("\nBase latency (cycles, low-load point):\n");
            const double paper_base[] = {32, 32, 27, 27};
            for (std::size_t i = 0; i < names.size(); ++i) {
                ctx.comparison(names[i] + " base latency", paper_base[i],
                               curves[i].front().avgLatency);
            }
            // Kernel wall-clock check: the FR6 low-load point under the
            // stepped and the event kernel. The simulation results are
            // bit-identical; the host times go on a "sweep:" line so
            // that, like the footer, they are excluded when diffing
            // stdout for cross-run/cross-thread determinism.
            Config kcfg = cfgs[2];
            kcfg.set("workload.offered", loads.front());
            kcfg.set("sim.kernel", "stepped");
            const RunResult stepped = runExperiment(kcfg, opt);
            kcfg.set("sim.kernel", "event");
            const RunResult event = runExperiment(kcfg, opt);
            std::printf("\nKernel wall-clock (FR6 at %.0f%% load): "
                        "bit-identical %s\n",
                        loads.front() * 100.0,
                        stepped.bitIdentical(event) ? "yes" : "NO");
            std::printf("sweep: kernel stepped %.3fs, event %.3fs, "
                        "speedup %.2fx\n",
                        stepped.wallSeconds, event.wallSeconds,
                        event.wallSeconds > 0.0
                            ? stepped.wallSeconds / event.wallSeconds
                            : 0.0);
            ctx.report().addScalar("kernel.stepped_wall_seconds",
                                   stepped.wallSeconds);
            ctx.report().addScalar("kernel.event_wall_seconds",
                                   event.wallSeconds);
            if (event.wallSeconds > 0.0)
                ctx.report().addScalar(
                    "kernel.low_load_speedup",
                    stepped.wallSeconds / event.wallSeconds);

            std::printf("\n");
            ctx.sweepStats(elapsed, curves);
        });
}
