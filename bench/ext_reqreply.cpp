/**
 * @file
 * Extension (beyond the paper): closed-loop request-reply workloads on
 * FR6 versus VC8. Every request packet ejected at its destination mints
 * a reply back to the requester, so reply traffic rises with delivered
 * (not offered) load and the two message classes compete for the same
 * buffers. The bench reports per-class p50/p95/p99 latency under rising
 * request load, then repeats the comparison under the memory-system
 * workload (cache-miss bursts against directory nodes, MSHR-limited).
 *
 * No paper figure corresponds to this bench; the open-loop figures
 * (5-9) are the paper's protocol. The interesting question is whether
 * FR's reservation pipeline keeps its latency edge when long replies
 * (6 flits) share links with short requests (2 flits).
 */

#include <cstdio>

#include "bench_common.hpp"
#include "traffic/workload.hpp"

using namespace frfc;

namespace {

/**
 * Print the per-class percentile table for one family of curves and
 * record every cell as a deterministic Report scalar
 * (`<prefix>.<scheme>.o<percent>.<class>_<stat>`).
 */
void
emitClassStats(bench::BenchContext& ctx, const std::string& prefix,
               const std::vector<std::string>& names,
               const std::vector<double>& loads,
               const std::vector<std::vector<RunResult>>& curves)
{
    TextTable table;
    table.setHeader({"scheme", "offered(%)", "class", "p50", "p95",
                     "p99", "avg", "delivered"});
    for (std::size_t i = 0; i < curves.size(); ++i) {
        std::string scheme = names[i];
        for (char& c : scheme)
            c = static_cast<char>(
                std::tolower(static_cast<unsigned char>(c)));
        for (std::size_t j = 0; j < curves[i].size(); ++j) {
            const RunResult& r = curves[i][j];
            const int percent =
                static_cast<int>(loads[j] * 100.0 + 0.5);
            if (!r.hasClasses) {
                table.addRow({names[i], TextTable::num(percent, 0),
                              "(open loop)", "-", "-", "-", "-", "-"});
                continue;
            }
            const struct
            {
                const char* label;
                const ClassStats& stats;
            } rows[] = {{"request", r.requestStats},
                        {"reply", r.replyStats}};
            for (const auto& row : rows) {
                table.addRow(
                    {names[i], TextTable::num(percent, 0), row.label,
                     r.complete ? TextTable::num(row.stats.p50Latency, 1)
                                : std::string("sat"),
                     r.complete ? TextTable::num(row.stats.p95Latency, 1)
                                : std::string("sat"),
                     r.complete ? TextTable::num(row.stats.p99Latency, 1)
                                : std::string("sat"),
                     r.complete ? TextTable::num(row.stats.avgLatency, 1)
                                : std::string("sat"),
                     TextTable::num(
                         static_cast<double>(row.stats.delivered), 0)});
                const std::string key = prefix + "." + scheme + ".o"
                    + std::to_string(percent) + "." + row.label;
                ctx.report().addScalar(key + "_p50",
                                       row.stats.p50Latency);
                ctx.report().addScalar(key + "_p95",
                                       row.stats.p95Latency);
                ctx.report().addScalar(key + "_p99",
                                       row.stats.p99Latency);
            }
        }
    }
    if (ctx.csv())
        table.printCsv(std::cout);
    else
        table.print(std::cout);
    std::printf("\n");
}

}  // namespace

int
main(int argc, char** argv)
{
    return bench::benchMain(
        argc, argv,
        {"ext_reqreply",
         "Extension: per-class latency under closed-loop request-reply "
         "and memory workloads, FR6 vs VC8"},
        [](bench::BenchContext& ctx) {
            const RunOptions& opt = ctx.options();
            // Offered load counts request flits only; each 2-flit
            // request that ejects mints a 6-flit reply, so total link
            // load is ~4x the request load. Keep the sweep below the
            // resulting saturation point.
            const std::vector<double> loads{0.05, 0.10, 0.15};

            const std::vector<std::string> names{"FR6", "VC8"};
            std::vector<Config> cfgs;
            for (const auto& name : names) {
                Config cfg = baseConfig();
                applyFastControl(cfg);
                cfg.set("workload.packet_length", 2);
                cfg.set("workload.reply_length", 6);
                applyPreset(cfg, name == "FR6" ? "fr6" : "vc8");
                ctx.applyOverrides(cfg);
                cfgs.push_back(cfg);
            }
            const bench::WallTimer timer;
            const auto curves = latencyCurves(cfgs, loads, opt);

            ctx.emitCurves(
                "Request-reply: latency vs offered request traffic, "
                "2-flit requests / 6-flit replies",
                names, cfgs, curves);
            std::printf("Per-class latency percentiles (cycles):\n");
            emitClassStats(ctx, "reqreply", names, loads, curves);

            // Memory-system workload: bursty cache-miss requesters
            // (1-flit read requests, MSHR-limited) against hotspot
            // directory nodes answering with 5-flit line fills.
            std::vector<Config> mem_cfgs;
            for (const auto& name : names) {
                Config cfg = baseConfig();
                applyFastControl(cfg);
                cfg.set("workload.kind", "memory");
                cfg.set("workload.memory.directories", 4);
                cfg.set("workload.memory.hotspot", 0.25);
                applyPreset(cfg, name == "FR6" ? "fr6" : "vc8");
                ctx.applyOverrides(cfg);
                mem_cfgs.push_back(cfg);
            }
            const std::vector<double> mem_loads{0.10};
            const auto mem_curves =
                latencyCurves(mem_cfgs, mem_loads, opt);
            ctx.emitCurves(
                "Memory workload: bursty misses, 4 directories, 25% "
                "hotspot",
                names, mem_cfgs, mem_curves);
            std::printf("Per-class latency percentiles (cycles):\n");
            emitClassStats(ctx, "memory", names, mem_loads, mem_curves);

            // Closure sanity: in steady state every delivered request
            // breeds one reply, so the ratio approaches 1 from below
            // (replies still in flight when the run ends).
            for (std::size_t i = 0; i < names.size(); ++i) {
                const RunResult& r = mem_curves[i].front();
                if (!r.hasClasses || r.requestStats.delivered == 0)
                    continue;
                const double ratio =
                    static_cast<double>(r.replyStats.delivered)
                    / static_cast<double>(r.requestStats.delivered);
                std::printf("  %-44s %.2f\n",
                            (names[i] + " replies per delivered request")
                                .c_str(),
                            ratio);
                ctx.report().addScalar(
                    "measured." + names[i] + ".replies_per_request",
                    ratio);
            }

            const double elapsed = timer.seconds();
            std::printf("\n");
            std::vector<std::vector<RunResult>> all = curves;
            all.insert(all.end(), mem_curves.begin(), mem_curves.end());
            ctx.sweepStats(elapsed, all);
        });
}
