# CTest step: run the golden figure bench with the reservation-protocol
# sanitizer off and at full paranoia, require both to succeed (a clean
# paranoid run proves every invariant held on every cycle), and diff
# the canonicalized reports byte-for-byte — validation must observe,
# never perturb. Driven from CMakeLists.txt:
#   cmake -DBENCH=... -DLINT=... -DOUTDIR=... -P validate_smoke.cmake
foreach(level 0 2)
    set(json ${OUTDIR}/validate_smoke_${level}.json)
    execute_process(
        COMMAND ${BENCH}
            run.sample_packets=50 run.min_warmup=200 run.max_warmup=500
            run.max_cycles=5000
            sim.validate=${level}
            out.format=json out.file=${json}
        RESULT_VARIABLE bench_rc
        OUTPUT_QUIET)
    if(NOT bench_rc EQUAL 0)
        message(FATAL_ERROR
            "bench (sim.validate=${level}) exited with ${bench_rc}")
    endif()
    execute_process(
        COMMAND ${LINT} --canonical ${json} ${json}.canon
        RESULT_VARIABLE lint_rc)
    if(NOT lint_rc EQUAL 0)
        message(FATAL_ERROR "json_lint rejected ${json}")
    endif()
endforeach()
execute_process(
    COMMAND ${CMAKE_COMMAND} -E compare_files
        ${OUTDIR}/validate_smoke_0.json.canon
        ${OUTDIR}/validate_smoke_2.json.canon
    RESULT_VARIABLE diff_rc)
if(NOT diff_rc EQUAL 0)
    message(FATAL_ERROR
        "sim.validate=2 perturbed the simulation: reports differ "
        "beyond volatile fields (see ${OUTDIR}/validate_smoke_*.canon)")
endif()
