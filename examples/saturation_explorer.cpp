/**
 * @file
 * Saturation explorer: bisect the saturation throughput of any
 * configuration and sketch its latency-load curve in the terminal.
 * Saturation probes and curve points run on the parallel experiment
 * executor; pass run.threads=N to control the worker count (0 = one
 * per hardware thread, the default).
 *
 *   $ ./saturation_explorer preset=fr6
 *   $ ./saturation_explorer preset=vc8 packet_length=21 run.threads=4
 */

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "common/config.hpp"
#include "harness/parallel.hpp"
#include "harness/presets.hpp"
#include "harness/sweep.hpp"

using namespace frfc;

int
main(int argc, char** argv)
{
    Config cfg = baseConfig();
    std::string preset = "fr6";

    std::vector<std::string> tokens(argv + 1, argv + argc);
    for (const auto& arg : cfg.applyArgs(tokens)) {
        std::fprintf(stderr, "unknown argument '%s'\n", arg.c_str());
        return 1;
    }
    if (cfg.has("preset"))
        preset = cfg.getString("preset");
    applyPreset(cfg, preset);
    // Re-apply user overrides that the preset may have clobbered.
    Config overrides;
    overrides.applyArgs(tokens);
    for (const auto& key : overrides.keys())
        cfg.set(key, overrides.getString(key));

    RunOptions opt;
    opt.samplePackets = 1500;
    opt.minWarmup = 2000;
    opt.maxWarmup = 6000;
    opt.maxCycles = 80000;
    opt = RunOptions::fromConfig(cfg, opt);  // run.* CLI overrides

    std::printf("Exploring %s on %d worker thread(s)...\n\n",
                preset.c_str(), resolveThreads(opt.threads));
    const auto wall_start = std::chrono::steady_clock::now();

    const RunResult base = measureBaseLatency(cfg, opt);
    std::printf("base latency: %.1f cycles\n", base.avgLatency);

    const double sat = findSaturation(cfg, opt);
    std::printf("saturation  : %.1f%% of capacity\n\n", sat * 100.0);

    // ASCII latency-load curve up to just past saturation; all points
    // run as one parallel batch.
    std::vector<double> loads;
    for (double frac = 0.1; frac <= sat + 0.049; frac += 0.1)
        loads.push_back(frac);
    const std::vector<RunResult> curve = latencyCurve(cfg, loads, opt);

    std::printf("offered%%  latency  curve (each # ~ 4 cycles over "
                "base)\n");
    double sim_cycles = static_cast<double>(base.totalCycles);
    for (const RunResult& r : curve)
        sim_cycles += static_cast<double>(r.totalCycles);
    for (const RunResult& r : curve) {
        if (!r.complete) {
            std::printf("%7.0f   (saturated)\n",
                        r.offeredFraction * 100.0);
            break;
        }
        const int bars =
            static_cast<int>((r.avgLatency - base.avgLatency) / 4.0);
        std::printf("%7.0f   %7.1f  %s\n", r.offeredFraction * 100.0,
                    r.avgLatency,
                    std::string(
                        static_cast<std::size_t>(std::max(0, bars)), '#')
                        .c_str());
    }

    const double elapsed = std::chrono::duration<double>(
        std::chrono::steady_clock::now() - wall_start).count();
    std::printf("\n%.2fs wall, %.0f kcycles/s simulated\n", elapsed,
                elapsed > 0.0 ? sim_cycles / elapsed / 1e3 : 0.0);
    return 0;
}
