/**
 * @file
 * Saturation explorer: bisect the saturation throughput of any
 * configuration and sketch its latency-load curve in the terminal.
 * Saturation probes and curve points run on the parallel experiment
 * executor; pass run.threads=N to control the worker count (0 = one
 * per hardware thread, the default).
 *
 *   $ ./saturation_explorer preset=fr6
 *   $ ./saturation_explorer preset=vc8 packet_length=21 run.threads=4
 *   $ ./saturation_explorer preset=fr6 out.format=json out.file=fr6.json
 */

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.hpp"

using namespace frfc;

int
main(int argc, char** argv)
{
    return bench::benchMain(
        argc, argv,
        {"saturation_explorer",
         "Bisect saturation throughput and sketch the latency-load "
         "curve"},
        [](bench::BenchContext& ctx) {
            const RunOptions& opt = ctx.options();

            const std::string preset =
                ctx.overrides().get<std::string>("preset", "fr6");
            Config cfg = baseConfig();
            applyPreset(cfg, preset);
            // Re-apply user overrides the preset may have clobbered.
            ctx.applyOverrides(cfg);

            std::printf("Exploring %s on %d worker thread(s)...\n\n",
                        preset.c_str(), resolveThreads(opt.threads));
            const bench::WallTimer timer;

            const RunResult base = measureBaseLatency(cfg, opt);
            std::printf("base latency: %.1f cycles\n", base.avgLatency);

            const double sat = findSaturation(cfg, opt);
            std::printf("saturation  : %.1f%% of capacity\n\n",
                        sat * 100.0);
            ctx.report().addScalar("measured.base_latency",
                                   base.avgLatency);
            ctx.report().addScalar("measured.saturation", sat * 100.0);

            // ASCII latency-load curve up to just past saturation; all
            // points run as one parallel batch.
            std::vector<double> loads;
            for (double frac = 0.1; frac <= sat + 0.049; frac += 0.1)
                loads.push_back(frac);
            const std::vector<RunResult> curve =
                latencyCurve(cfg, loads, opt);
            ReportCurve& rc = ctx.report().addCurve(preset, cfg);
            rc.runs = curve;

            std::printf("offered%%  latency  curve (each # ~ 4 cycles "
                        "over base)\n");
            double sim_cycles = static_cast<double>(base.totalCycles);
            for (const RunResult& r : curve)
                sim_cycles += static_cast<double>(r.totalCycles);
            for (const RunResult& r : curve) {
                if (!r.complete) {
                    std::printf("%7.0f   (saturated)\n",
                                r.offeredFraction * 100.0);
                    break;
                }
                const int bars = static_cast<int>(
                    (r.avgLatency - base.avgLatency) / 4.0);
                std::printf(
                    "%7.0f   %7.1f  %s\n", r.offeredFraction * 100.0,
                    r.avgLatency,
                    std::string(
                        static_cast<std::size_t>(std::max(0, bars)), '#')
                        .c_str());
            }

            const double elapsed = timer.seconds();
            std::printf("\n%.2fs wall, %.0f kcycles/s simulated\n",
                        elapsed,
                        elapsed > 0.0 ? sim_cycles / elapsed / 1e3 : 0.0);
        });
}
