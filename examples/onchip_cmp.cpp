/**
 * @file
 * On-chip CMP interconnect study — the scenario that motivates the
 * paper (Section 1: networks replacing buses on chip, with slow global
 * data wires and a few fast thick-metal control wires).
 *
 * A 16-core chip (4x4 mesh) sends read-reply-style packets (one cache
 * line = 512 bits = two 256-bit flits... we model 5-flit replies as in
 * the paper) to a shared memory controller at node 0 plus background
 * core-to-core coherence traffic. We compare virtual-channel flow
 * control against flit reservation in both deployment modes:
 *
 *   - fast control:   data wires 4 cycles/hop, control wires 1 (the
 *                     thick-metal-layer option), and
 *   - leading control: all wires equal; the memory controller knows the
 *                     destination while DRAM is being accessed, so the
 *                     control flits simply leave a cycle early.
 */

#include <cstdio>

#include "bench_common.hpp"
#include "network/fr_network.hpp"

using namespace frfc;

namespace {

Config
chipConfig()
{
    Config cfg = baseConfig();
    cfg.set("size_x", 4);
    cfg.set("size_y", 4);
    cfg.set("workload.packet_length", 5);
    // A quarter of all traffic converges on the memory controller at
    // node 0. Its ejection port absorbs one flit per cycle, so offered
    // load must stay below 1 / (16 * 0.25) = 25% of capacity for the
    // controller itself not to be the bottleneck.
    cfg.set("traffic", "hotspot");
    cfg.set("hotspot_node", 0);
    cfg.set("hotspot_fraction", 0.25);
    return cfg;
}

void
show(const char* label, const RunResult& r)
{
    if (r.complete) {
        std::printf("  %-28s latency %7.1f cycles   accepted %4.1f%%\n",
                    label, r.avgLatency, r.acceptedFraction * 100.0);
    } else {
        std::printf("  %-28s SATURATED (accepted %4.1f%%)\n", label,
                    r.acceptedFraction * 100.0);
    }
}

}  // namespace

int
main(int argc, char** argv)
{
    return bench::benchMain(
        argc, argv,
        {"onchip_cmp",
         "On-chip CMP interconnect: 4x4 mesh, memory-controller "
         "hotspot, FR vs VC"},
        [](bench::BenchContext& ctx) {
            RunOptions opt = ctx.options();
            if (!ctx.full()) {
                opt.samplePackets = 2000;
                opt.maxWarmup = 6000;
                opt.maxCycles = 150000;
            }

            std::printf(
                "On-chip CMP interconnect: 4x4 mesh, 16 cores, memory "
                "controller at node 0,\n25%% hotspot traffic, 5-flit "
                "read replies\n");

            for (double load : {0.12, 0.20}) {
                std::printf("\n-- offered load %2.0f%% of capacity --\n",
                            load * 100.0);
                const std::string pct =
                    std::to_string(static_cast<int>(load * 100.0));

                // Virtual-channel baseline on the slow data wires.
                Config vc = chipConfig();
                applyVc8(vc);
                applyFastControl(vc);
                vc.set("workload.offered", load);
                ctx.applyOverrides(vc);
                const RunResult rv = runExperiment(vc, opt);
                show("VC8 (4-cycle data wires)", rv);
                ctx.report().addCurve("vc8_at_" + pct, vc)
                    .runs.push_back(rv);

                // Flit reservation on fast thick-metal control wires.
                Config fr_fast = chipConfig();
                applyFr6(fr_fast);
                applyFastControl(fr_fast);
                fr_fast.set("workload.offered", load);
                ctx.applyOverrides(fr_fast);
                const RunResult rf = runExperiment(fr_fast, opt);
                show("FR6, fast control wires", rf);
                ctx.report().addCurve("fr6_fast_at_" + pct, fr_fast)
                    .runs.push_back(rf);

                // Flit reservation with leading control: the DRAM
                // access hides the 4-cycle control lead entirely.
                Config fr_lead = chipConfig();
                applyFr6(fr_lead);
                applyLeadingControl(fr_lead, 4);
                fr_lead.set("workload.offered", load);
                ctx.applyOverrides(fr_lead);
                FrNetwork net(fr_lead);
                const RunResult r = runMeasurement(net, opt);
                show("FR6, control leads by 4", r);
                std::printf(
                    "      control reaches the hotspot %.1f cycles "
                    "ahead of its data on average\n",
                    net.avgControlLead());
                ctx.report().addCurve("fr6_lead_at_" + pct, fr_lead)
                    .runs.push_back(r);
                ctx.report().addScalar(
                    "measured.control_lead_at_" + pct,
                    net.avgControlLead());
            }

            std::printf(
                "\nReading the numbers: advance reservation keeps "
                "buffers on the congested paths\ninto the memory "
                "controller turning over instantly, so flit "
                "reservation holds\nits latency advantage as the "
                "hotspot load climbs.\n");
        });
}
