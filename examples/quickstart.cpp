/**
 * @file
 * Quickstart: simulate flit-reservation flow control against the
 * virtual-channel baseline on the paper's 8x8 on-chip mesh, in about
 * thirty lines of API.
 *
 *   $ ./quickstart
 *   $ ./quickstart out.format=json          # structured report
 *
 * Walkthrough:
 *  1. A Config describes an experiment; presets apply the paper's named
 *     configurations (FR6, VC8, fast control wires).
 *  2. runExperiment() builds the network, warms it up until source
 *     queues stabilize, then measures a packet sample.
 *  3. RunResult carries latency (with confidence interval) and accepted
 *     throughput.
 */

#include <cstdio>

#include "bench_common.hpp"

using namespace frfc;

int
main(int argc, char** argv)
{
    return bench::benchMain(
        argc, argv,
        {"quickstart",
         "Quickstart: FR6 vs VC8 at 50% load on the paper's 8x8 mesh"},
        [](bench::BenchContext& ctx) {
            // Keep the demo snappy: a reduced sample (pass --full or
            // run.* keys for paper-scale measurements).
            RunOptions opt = ctx.options();
            if (!ctx.full()) {
                opt.samplePackets = 2000;
                opt.maxWarmup = 6000;
            }

            std::printf("Flit-Reservation Flow Control quickstart\n");
            std::printf("8x8 mesh, uniform traffic, 5-flit packets, "
                        "50%% offered load\n\n");

            for (const char* preset : {"vc8", "fr6"}) {
                Config cfg = baseConfig();  // 8x8 mesh, fast control
                applyPreset(cfg, preset);   // buffer organization
                cfg.set("workload.offered", 0.5);  // fraction of capacity
                ctx.applyOverrides(cfg);

                const RunResult r = runExperiment(cfg, opt);
                std::printf(
                    "%-4s  latency %6.1f +/- %.1f cycles   accepted "
                    "%4.1f%% of capacity   (%lld packets, %lld "
                    "cycles)\n",
                    preset, r.avgLatency, r.ci95,
                    r.acceptedFraction * 100.0,
                    static_cast<long long>(r.packetsDelivered),
                    static_cast<long long>(r.totalCycles));
                ReportCurve& rc = ctx.report().addCurve(preset, cfg);
                rc.runs.push_back(r);
            }

            std::printf(
                "\nWith equal storage, flit reservation delivers the "
                "same load at lower latency;\npush 'offered' toward "
                "0.7 and VC8 saturates while FR6 keeps flowing.\n");
        });
}
