/**
 * @file
 * Trace replay: record a bursty request/reply workload once, then play
 * the identical packet sequence through virtual-channel and
 * flit-reservation fabrics — an apples-to-apples comparison no
 * synthetic load sweep can give, and the workflow used when driving the
 * simulator from application traces.
 *
 *   $ ./trace_replay                  # generates and replays a demo trace
 *   $ ./trace_replay workload.trace.file=my.tr   # your own trace file
 *
 * The demo trace tags every request and marks each reply with
 * `reply_to`, so the replay is dependency-tracked: a server's reply is
 * held until its request has actually ejected there, whatever the
 * fabric's delivery time.
 */

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "common/rng.hpp"
#include "network/network.hpp"
#include "topology/topology.hpp"
#include "traffic/generator.hpp"
#include "traffic/workload.hpp"

using namespace frfc;

namespace {

/**
 * A bursty client/server workload on the 4x4 chip: clients fire short
 * 1-flit requests at one of two servers, which answer with 5-flit
 * replies after a modeled service delay.
 */
std::vector<TraceEntry>
recordDemoWorkload()
{
    const NodeId servers[] = {5, 10};
    std::vector<TraceEntry> entries;
    Rng rng(7);
    Cycle now = 0;
    for (int burst = 0; burst < 40; ++burst) {
        now += 20 + rng.nextBounded(60);
        // Burst of requests from random distinct clients.
        const int clients = 2 + static_cast<int>(rng.nextBounded(4));
        for (int c = 0; c < clients; ++c) {
            const auto client = static_cast<NodeId>(rng.nextBounded(16));
            const NodeId server = servers[rng.nextBounded(2)];
            if (client == server)
                continue;
            const int tag = static_cast<int>(entries.size());
            TraceEntry request{now, client, server, 1};
            request.tag = tag;
            entries.push_back(request);
            // The reply leaves no earlier than a 30-cycle service
            // time, and never before the request itself arrives
            // (reply_to dependency).
            TraceEntry reply{now + 30, server, client, 5};
            reply.replyTo = tag;
            entries.push_back(reply);
        }
    }
    // Replies were appended out of order; the format requires sorted
    // cycles (stable so the file is identical on every platform).
    std::stable_sort(entries.begin(), entries.end(),
                     [](const TraceEntry& a, const TraceEntry& b) {
                         return a.cycle < b.cycle;
                     });
    return entries;
}

}  // namespace

int
main(int argc, char** argv)
{
    return bench::benchMain(
        argc, argv,
        {"trace_replay",
         "Replay one recorded workload through VC and FR fabrics"},
        [](bench::BenchContext& ctx) {
            std::string path;
            // Honor both the namespaced key and the legacy "trace"
            // spelling on the command line.
            if (ctx.overrides().has(kWorkloadTraceFileKey)
                || ctx.overrides().has(
                    "trace")) {  // frfc-lint: allow(workload-keys)
                Config cfg = ctx.overrides();
                path = workloadTraceFile(cfg);
            } else {
                path = "demo_workload.tr";
                std::ofstream out(path);
                out << formatTrace(recordDemoWorkload());
                std::printf("recorded demo workload to %s\n",
                            path.c_str());
            }

            const auto total = static_cast<std::int64_t>(
                parseTraceFile(path, 16).size());

            std::printf(
                "\nReplaying the identical workload (%lld packets) "
                "through both fabrics (4x4 mesh):\n\n",
                static_cast<long long>(total));
            for (const char* preset : {"vc8", "fr6"}) {
                Config cfg = baseConfig();
                applyPreset(cfg, preset);
                cfg.set("size_x", 4);
                cfg.set("size_y", 4);
                cfg.set("data_buffers", 13);  // mixed lengths: headroom
                cfg.set(kWorkloadTraceFileKey, path);
                ctx.applyOverrides(cfg);

                auto net = makeNetwork(cfg);
                PacketRegistry& reg = net->registry();
                reg.startSampling(1u << 30);  // sample everything
                net->kernel().runUntil(
                    [&reg, total] {
                        return reg.packetsCreated() == total
                            && reg.packetsInFlight() == 0;
                    },
                    200000);
                const double avg = reg.sampleLatency().mean();
                const double p99 =
                    reg.sampleLatencyHistogram().quantile(0.99);
                std::printf(
                    "%-4s  %5lld packets, %6lld flits delivered; "
                    "avg latency %6.1f cycles (p99 %.0f)\n",
                    preset,
                    static_cast<long long>(reg.packetsDelivered()),
                    static_cast<long long>(reg.flitsDelivered()),
                    avg, p99);
                ctx.report().addScalar(
                    std::string("measured.") + preset + ".avg_latency",
                    avg);
                ctx.report().addScalar(
                    std::string("measured.") + preset + ".p99_latency",
                    p99);
                ctx.report().addScalar(
                    std::string("measured.") + preset
                        + ".packets_delivered",
                    static_cast<double>(reg.packetsDelivered()));
            }
            std::printf(
                "\nSame packets, same cycles of birth — any latency "
                "difference is pure flow control.\n");
        });
}
