/**
 * @file
 * netsim — a BookSim-style command-line front end over the library.
 * Every configuration key is exposed as key=value; a config file can
 * seed the experiment. Examples:
 *
 *   $ ./netsim scheme=fr data_buffers=6 offered=0.7
 *   $ ./netsim scheme=vc num_vcs=4 vc_depth=4 packet_length=21 \
 *              topology=torus traffic=transpose offered=0.4
 *   $ ./netsim config=myexp.cfg seed=7 run.sample_packets=100000
 *   $ ./netsim preset=fr6 out.format=json out.file=run.json
 *
 * Prints the experiment configuration, the measurement protocol
 * phases, and the resulting latency/throughput statistics; out.format
 * emits the same run as a structured report with per-router metrics.
 */

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "network/fr_network.hpp"
#include "network/network.hpp"
#include "sim/parallel_kernel.hpp"
#include "topology/topology.hpp"

using namespace frfc;

int
main(int argc, char** argv)
{
    return bench::benchMain(
        argc, argv,
        {"netsim",
         "BookSim-style front end: one fully configurable measurement "
         "run"},
        [](bench::BenchContext& ctx) {
            Config cfg = baseConfig();
            applyVc8(cfg);  // defaults; overridden freely below
            ctx.applyOverrides(cfg);
            if (cfg.has("config"))
                cfg.loadFile(cfg.get<std::string>("config"));
            if (cfg.has("preset"))
                applyPreset(cfg, cfg.get<std::string>("preset"));

            // netsim defaults to paper-scale options regardless of
            // --full; run.* keys still override.
            const RunOptions opt =
                RunOptions::fromConfig(cfg, RunOptions{});
            auto net = makeNetwork(cfg);

            std::printf("network : %s, %s flow control\n",
                        net->topology().describe().c_str(),
                        net->scheme() == "fr" ? "flit-reservation"
                                              : "virtual-channel");
            std::printf(
                "capacity: %.3f flits/node/cycle; offered %.1f%%\n",
                net->capacity(),
                net->offeredLoad() / net->capacity() * 100.0);
            std::printf(
                "sample  : %lld packets (min %lld warm-up cycles)\n\n",
                static_cast<long long>(opt.samplePackets),
                static_cast<long long>(opt.minWarmup));

            const RunResult r = runMeasurement(*net, opt);

            std::printf("warm-up    : %lld cycles\n",
                        static_cast<long long>(r.warmupCycles));
            std::printf("simulated  : %lld cycles total\n",
                        static_cast<long long>(r.totalCycles));
            std::printf("delivered  : %lld packets\n",
                        static_cast<long long>(r.packetsDelivered));
            if (!r.complete)
                std::printf("status     : SATURATED — sample not fully "
                            "delivered within run.max_cycles\n");
            std::printf("latency    : avg %.2f cycles (95%% CI +/- "
                        "%.2f), min %.0f, max %.0f\n",
                        r.avgLatency, r.ci95, r.minLatency,
                        r.maxLatency);
            std::printf("percentiles: p50 %.0f, p99 %.0f cycles\n",
                        r.p50Latency, r.p99Latency);
            std::printf("throughput : %.4f flits/node/cycle accepted "
                        "(%.1f%% of capacity)\n",
                        r.accepted, r.acceptedFraction * 100.0);

            if (auto* fr = dynamic_cast<FrNetwork*>(net.get())) {
                std::printf(
                    "fr stats   : %lld bypasses, %lld flits arrived "
                    "before control, control lead %.1f cycles\n",
                    static_cast<long long>(fr->totalBypasses()),
                    static_cast<long long>(fr->totalParked()),
                    fr->avgControlLead());
                ctx.report().addScalar(
                    "measured.bypasses",
                    static_cast<double>(fr->totalBypasses()));
                ctx.report().addScalar("measured.control_lead",
                                       fr->avgControlLead());
            }
            ctx.report().addCurve("run", cfg).runs.push_back(r);

            if (ParallelKernel* pk = net->parallelKernel()) {
                // Shard balance: a shard with a disproportionate tick
                // share is the window's critical path.
                const std::vector<std::int64_t> ticks =
                    pk->shardTicks();
                const std::vector<std::size_t> comps =
                    pk->shardComponents();
                std::int64_t total_ticks = 0;
                for (const std::int64_t t : ticks)
                    total_ticks += t;
                std::printf(
                    "parallel   : %d shards, lookahead %lld cycles, "
                    "%lld windows\n",
                    pk->shardCount(),
                    static_cast<long long>(pk->lookahead()),
                    static_cast<long long>(pk->windowsExecuted()));
                for (std::size_t s = 0; s < ticks.size(); ++s) {
                    const double share = total_ticks > 0
                        ? static_cast<double>(ticks[s])
                            / static_cast<double>(total_ticks)
                        : 0.0;
                    std::printf("  shard %2zu : %4zu components, "
                                "%10lld ticks (%.1f%%)\n",
                                s, comps[s],
                                static_cast<long long>(ticks[s]),
                                share * 100.0);
                }
                ctx.report().addScalar(
                    "parallel.shards",
                    static_cast<double>(pk->shardCount()));
                ctx.report().addScalar(
                    "parallel.windows",
                    static_cast<double>(pk->windowsExecuted()));
                ctx.report().addScalar(
                    "parallel.lookahead",
                    static_cast<double>(pk->lookahead()));
            }

            if (cfg.getBool("stats.links", false)) {
                // Busiest data links: flits forwarded over cycles.
                struct LinkLoad
                {
                    NodeId node;
                    PortId port;
                    double util;
                };
                std::vector<LinkLoad> loads;
                const auto cycles =
                    static_cast<double>(net->driver().now());
                for (NodeId node = 0; node < net->topology().numNodes();
                     ++node) {
                    for (PortId port = kEast; port <= kSouth; ++port) {
                        if (net->topology().neighbor(node, port)
                            == kInvalidNode)
                            continue;
                        loads.push_back(LinkLoad{
                            node, port,
                            static_cast<double>(
                                net->flitsForwarded(node, port))
                                / cycles});
                    }
                }
                std::sort(loads.begin(), loads.end(),
                          [](const LinkLoad& a, const LinkLoad& b) {
                              return a.util > b.util;
                          });
                std::printf("\nbusiest data links (flits/cycle):\n");
                for (std::size_t i = 0; i < loads.size() && i < 8;
                     ++i) {
                    std::printf(
                        "  node %2d %-5s -> node %2d : %.3f\n",
                        loads[i].node, directionName(loads[i].port),
                        net->topology().neighbor(loads[i].node,
                                                 loads[i].port),
                        loads[i].util);
                }
            }
        });
}
