/**
 * @file
 * netsim — a BookSim-style command-line front end over the library.
 * Every configuration key is exposed as key=value; a config file can
 * seed the experiment. Examples:
 *
 *   $ ./netsim scheme=fr data_buffers=6 offered=0.7
 *   $ ./netsim scheme=vc num_vcs=4 vc_depth=4 packet_length=21 \
 *              topology=torus traffic=transpose offered=0.4
 *   $ ./netsim config=myexp.cfg seed=7 run.sample_packets=100000
 *
 * Prints the experiment configuration, the measurement protocol
 * phases, and the resulting latency/throughput statistics.
 */

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "common/config.hpp"
#include "harness/presets.hpp"
#include "network/fr_network.hpp"
#include "network/network.hpp"
#include "network/runner.hpp"
#include "topology/topology.hpp"

using namespace frfc;

int
main(int argc, char** argv)
{
    Config cfg = baseConfig();
    applyVc8(cfg);  // defaults; overridden freely below

    std::vector<std::string> tokens(argv + 1, argv + argc);
    const auto positional = cfg.applyArgs(tokens);
    for (const auto& arg : positional) {
        if (arg == "--help" || arg == "-h") {
            std::printf(
                "usage: netsim [preset=<name>] [config=<file>] "
                "[key=value ...]\n\n"
                "presets: vc8 vc16 vc32 wormhole8 fr6 fr13\n"
                "common keys: scheme topology size_x size_y routing\n"
                "  traffic injection offered packet_length seed\n"
                "  num_vcs vc_depth shared_pool (vc)\n"
                "  data_buffers ctrl_vcs horizon lead_time (fr)\n"
                "  run.sample_packets run.min_warmup run.max_cycles\n");
            return 0;
        }
        std::fprintf(stderr, "unknown argument '%s' (try --help)\n",
                     arg.c_str());
        return 1;
    }
    if (cfg.has("config"))
        cfg.loadFile(cfg.getString("config"));
    if (cfg.has("preset"))
        applyPreset(cfg, cfg.getString("preset"));

    const RunOptions opt = RunOptions::fromConfig(cfg);
    auto net = makeNetwork(cfg);

    std::printf("network : %s, %s flow control\n",
                net->topology().describe().c_str(),
                net->scheme() == "fr" ? "flit-reservation"
                                      : "virtual-channel");
    std::printf("capacity: %.3f flits/node/cycle; offered %.1f%%\n",
                net->capacity(),
                net->offeredLoad() / net->capacity() * 100.0);
    std::printf("sample  : %lld packets (min %lld warm-up cycles)\n\n",
                static_cast<long long>(opt.samplePackets),
                static_cast<long long>(opt.minWarmup));

    const RunResult r = runMeasurement(*net, opt);

    std::printf("warm-up    : %lld cycles\n",
                static_cast<long long>(r.warmupCycles));
    std::printf("simulated  : %lld cycles total\n",
                static_cast<long long>(r.totalCycles));
    std::printf("delivered  : %lld packets\n",
                static_cast<long long>(r.packetsDelivered));
    if (!r.complete)
        std::printf("status     : SATURATED — sample not fully "
                    "delivered within run.max_cycles\n");
    std::printf("latency    : avg %.2f cycles (95%% CI +/- %.2f), min "
                "%.0f, max %.0f\n",
                r.avgLatency, r.ci95, r.minLatency, r.maxLatency);
    std::printf("percentiles: p50 %.0f, p99 %.0f cycles\n", r.p50Latency,
                r.p99Latency);
    std::printf("throughput : %.4f flits/node/cycle accepted (%.1f%% "
                "of capacity)\n",
                r.accepted, r.acceptedFraction * 100.0);

    if (auto* fr = dynamic_cast<FrNetwork*>(net.get())) {
        std::printf("fr stats   : %lld bypasses, %lld flits arrived "
                    "before control, control lead %.1f cycles\n",
                    static_cast<long long>(fr->totalBypasses()),
                    static_cast<long long>(fr->totalParked()),
                    fr->avgControlLead());
    }

    if (cfg.getBool("stats.links", false)) {
        // Busiest data links: flits forwarded / simulated cycles.
        struct LinkLoad
        {
            NodeId node;
            PortId port;
            double util;
        };
        std::vector<LinkLoad> loads;
        const auto cycles = static_cast<double>(net->kernel().now());
        for (NodeId node = 0; node < net->topology().numNodes();
             ++node) {
            for (PortId port = kEast; port <= kSouth; ++port) {
                if (net->topology().neighbor(node, port) == kInvalidNode)
                    continue;
                loads.push_back(LinkLoad{
                    node, port,
                    static_cast<double>(net->flitsForwarded(node, port))
                        / cycles});
            }
        }
        std::sort(loads.begin(), loads.end(),
                  [](const LinkLoad& a, const LinkLoad& b) {
                      return a.util > b.util;
                  });
        std::printf("\nbusiest data links (flits/cycle):\n");
        for (std::size_t i = 0; i < loads.size() && i < 8; ++i) {
            std::printf("  node %2d %-5s -> node %2d : %.3f\n",
                        loads[i].node, directionName(loads[i].port),
                        net->topology().neighbor(loads[i].node,
                                                 loads[i].port),
                        loads[i].util);
        }
    }
    return 0;
}
