/**
 * @file
 * Unit tests for the input reservation table: arrival/departure rows,
 * late buffer binding, bypass detection, and the schedule list.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "common/rng.hpp"
#include "frfc/input_table.hpp"
#include "topology/topology.hpp"

namespace frfc {
namespace {

Flit
makeFlit(PacketId id, int seq)
{
    Flit flit;
    flit.packet = id;
    flit.seq = seq;
    flit.packetLength = 4;
    flit.payload = Flit::expectedPayload(id, seq);
    return flit;
}

TEST(InputTable, ReservedFlitFlowsThrough)
{
    InputReservationTable irt(32, 6);
    // At cycle 0 a control flit schedules: arrive 5, depart 9 via East.
    irt.recordReservation(0, 5, 9, kEast);
    EXPECT_FALSE(irt.departSlotFree(9));
    EXPECT_TRUE(irt.departSlotFree(8));

    for (Cycle t = 1; t <= 5; ++t)
        irt.advance(t);
    irt.acceptFlit(5, makeFlit(1, 0));
    EXPECT_EQ(irt.pool().usedCount(), 1);

    for (Cycle t = 6; t <= 9; ++t) {
        irt.advance(t);
        auto deps = irt.takeDepartures(t);
        if (t < 9) {
            EXPECT_TRUE(deps.empty());
        } else {
            ASSERT_EQ(deps.size(), 1u);
            EXPECT_EQ(deps[0].out, kEast);
            EXPECT_EQ(deps[0].flit.packet, 1);
            EXPECT_FALSE(deps[0].bypass);
        }
    }
    EXPECT_EQ(irt.pool().usedCount(), 0);
}

TEST(InputTable, BypassIsMinimumResidency)
{
    InputReservationTable irt(32, 6);
    irt.recordReservation(0, 3, 4, kNorth);
    for (Cycle t = 1; t <= 3; ++t)
        irt.advance(t);
    irt.acceptFlit(3, makeFlit(2, 0));
    irt.advance(4);
    auto deps = irt.takeDepartures(4);
    ASSERT_EQ(deps.size(), 1u);
    EXPECT_TRUE(deps[0].bypass);
    EXPECT_EQ(irt.bypasses(), 1);
}

TEST(InputTable, ScheduleListParksEarlyFlits)
{
    InputReservationTable irt(32, 6);
    // Data beats control: flit arrives at 2 with no reservation.
    irt.advance(2);
    irt.acceptFlit(2, makeFlit(3, 0));
    EXPECT_TRUE(irt.parkedAt(2));
    EXPECT_EQ(irt.parkedCount(), 1);
    EXPECT_EQ(irt.parkedTotal(), 1);

    // Control flit shows up at cycle 4 and schedules departure at 7.
    irt.advance(3);
    irt.advance(4);
    irt.recordReservation(4, 2, 7, kWest);
    EXPECT_FALSE(irt.parkedAt(2));

    for (Cycle t = 5; t <= 7; ++t)
        irt.advance(t);
    auto deps = irt.takeDepartures(7);
    ASSERT_EQ(deps.size(), 1u);
    EXPECT_EQ(deps[0].out, kWest);
    EXPECT_EQ(deps[0].flit.packet, 3);
}

TEST(InputTable, SameCycleReservationThenArrival)
{
    // Control flit processed earlier in the same tick as the data
    // arrival: the arrival row is consulted, not the schedule list.
    InputReservationTable irt(32, 6);
    irt.advance(3);
    irt.recordReservation(3, 3, 6, kSouth);
    irt.acceptFlit(3, makeFlit(4, 0));
    EXPECT_EQ(irt.parkedCount(), 0);
    for (Cycle t = 4; t <= 6; ++t)
        irt.advance(t);
    ASSERT_EQ(irt.takeDepartures(6).size(), 1u);
}

TEST(InputTable, DepartSlotHonorsSpeedup)
{
    InputReservationTable irt(32, 6, /*speedup=*/2);
    irt.recordReservation(0, 3, 8, kEast);
    EXPECT_TRUE(irt.departSlotFree(8));  // one of two slots used
    irt.recordReservation(0, 4, 8, kWest);
    EXPECT_FALSE(irt.departSlotFree(8));
}

TEST(InputTable, MultiDepartureWithSpeedup)
{
    InputReservationTable irt(32, 6, /*speedup=*/2);
    irt.recordReservation(0, 3, 8, kEast);
    irt.recordReservation(0, 4, 8, kWest);
    for (Cycle t = 1; t <= 3; ++t)
        irt.advance(t);
    irt.acceptFlit(3, makeFlit(5, 0));
    irt.advance(4);
    irt.acceptFlit(4, makeFlit(5, 1));
    for (Cycle t = 5; t <= 8; ++t)
        irt.advance(t);
    auto deps = irt.takeDepartures(8);
    ASSERT_EQ(deps.size(), 2u);
    EXPECT_EQ(deps[0].out, kEast);
    EXPECT_EQ(deps[1].out, kWest);
}

TEST(InputTable, PoolSharedAcrossUses)
{
    InputReservationTable irt(32, 2);
    irt.advance(1);
    irt.acceptFlit(1, makeFlit(6, 0));  // parked
    irt.advance(2);
    irt.acceptFlit(2, makeFlit(6, 1));  // parked
    EXPECT_TRUE(irt.pool().full());
}

/**
 * Ring-seam edge case: a non-power-of-two horizon (13 cycles in a
 * 16-slot ring) slides its arrival/departure rows across the index
 * seam. Rows are tag-checked, so a reservation whose arrival sits just
 * before the seam and whose departure lands just after it must flow
 * through exactly like one in the middle of the window.
 */
TEST(InputTable, RowsSurviveRingWraparound)
{
    InputReservationTable irt(13, 6);
    for (Cycle t = 1; t <= 12; ++t)
        irt.advance(t);
    // Window [12, 24]: arrival 15 is ring slot 15, departure 17 is
    // ring slot 1 — the pair straddles the seam.
    irt.recordReservation(12, 15, 17, kEast);
    EXPECT_FALSE(irt.departSlotFree(17));
    for (Cycle t = 13; t <= 15; ++t)
        irt.advance(t);
    irt.acceptFlit(15, makeFlit(40, 0));
    for (Cycle t = 16; t <= 17; ++t) {
        irt.advance(t);
        auto deps = irt.takeDepartures(t);
        if (t < 17) {
            EXPECT_TRUE(deps.empty());
        } else {
            ASSERT_EQ(deps.size(), 1u);
            EXPECT_EQ(deps[0].out, kEast);
            EXPECT_EQ(deps[0].flit.packet, 40);
        }
    }
    EXPECT_EQ(irt.pool().usedCount(), 0);
    // The vacated ring slots must be clean when the window re-exposes
    // the same indices a full lap later.
    for (Cycle t = 18; t <= 33; ++t)
        irt.advance(t);
    EXPECT_TRUE(irt.departSlotFree(33));  // ring slot 1 again
    irt.recordReservation(33, 34, 36, kWest);
    irt.advance(34);
    irt.acceptFlit(34, makeFlit(41, 0));
    for (Cycle t = 35; t <= 36; ++t)
        irt.advance(t);
    ASSERT_EQ(irt.takeDepartures(36).size(), 1u);
}

/**
 * Long-run randomized flow cross-checked against a naive model:
 * >= 10k cycles per horizon shape of random reservations, arrivals,
 * parked (data-beats-control) flits, and departures, mirroring the
 * router's per-tick call order (advance, control, departures,
 * arrivals). Verifies departures pop exactly as scheduled and the
 * pool occupancy always equals resident + parked flits.
 */
TEST(InputTableProperty, RandomizedFlowMatchesModelOverLongRuns)
{
    struct Sched
    {
        Cycle arrival;
        Cycle depart;
        PortId out;
        PacketId id;
        bool arrived = false;
    };
    // 13 and 48 put the ring seam inside the live window.
    for (const int horizon : {13, 32, 48}) {
        Rng rng(20260809, static_cast<std::uint64_t>(horizon));
        const int buffers = 12;
        InputReservationTable irt(horizon, buffers);
        std::vector<Sched> live;
        std::set<Cycle> booked_arrivals;
        struct Parked
        {
            Cycle arrival;
            PacketId id;
        };
        std::vector<Parked> parked;
        PacketId next_id = 100;
        std::vector<InputReservationTable::Departure> scratch;
        for (Cycle now = 1; now <= 10000; ++now) {
            irt.advance(now);

            // "Control plane": maybe schedule a future arrival, and
            // maybe claim a parked flit.
            if (static_cast<int>(live.size() + parked.size())
                    < buffers - 2
                && rng.nextBool(0.6)) {
                const Cycle arrival =
                    now + 1 + static_cast<Cycle>(rng.nextBounded(
                        static_cast<std::uint64_t>(horizon / 2)));
                const Cycle win_end = now + horizon - 1;
                if (booked_arrivals.count(arrival) == 0
                    && arrival < win_end) {
                    const Cycle depart = arrival + 1
                        + static_cast<Cycle>(rng.nextBounded(
                            static_cast<std::uint64_t>(
                                win_end - arrival)));
                    if (irt.departSlotFree(depart)) {
                        const auto out = static_cast<PortId>(
                            rng.nextBounded(kNumPorts));
                        irt.recordReservation(now, arrival, depart, out);
                        live.push_back(
                            Sched{arrival, depart, out, next_id});
                        booked_arrivals.insert(arrival);
                        ++next_id;
                    }
                }
            }
            if (!parked.empty() && rng.nextBool(0.5)) {
                const Parked claim = parked.front();
                const Cycle depart = now + 1
                    + static_cast<Cycle>(rng.nextBounded(4));
                if (irt.departSlotFree(depart)) {
                    irt.recordReservation(now, claim.arrival, depart,
                                          kLocal);
                    EXPECT_FALSE(irt.parkedAt(claim.arrival));
                    live.push_back(Sched{claim.arrival, depart, kLocal,
                                         claim.id, /*arrived=*/true});
                    parked.erase(parked.begin());
                }
            }

            // Departures due this cycle, checked against the model.
            irt.takeDeparturesInto(now, scratch);
            std::vector<std::pair<PortId, PacketId>> expected;
            for (auto it = live.begin(); it != live.end();) {
                if (it->depart == now) {
                    EXPECT_TRUE(it->arrived);
                    expected.emplace_back(it->out, it->id);
                    it = live.erase(it);
                } else {
                    ++it;
                }
            }
            ASSERT_EQ(scratch.size(), expected.size()) << "cycle " << now;
            for (const auto& dep : scratch) {
                const auto want = std::find(
                    expected.begin(), expected.end(),
                    std::make_pair(dep.out, dep.flit.packet));
                EXPECT_NE(want, expected.end())
                    << "unexpected departure at " << now;
            }

            // "Data plane": at most one flit arrives per cycle.
            bool accepted = false;
            for (Sched& sched : live) {
                if (sched.arrival == now) {
                    irt.acceptFlit(now, makeFlit(sched.id, 0));
                    sched.arrived = true;
                    booked_arrivals.erase(now);
                    accepted = true;
                }
            }
            if (!accepted && rng.nextBool(0.15)
                && static_cast<int>(live.size() + parked.size())
                    < buffers - 2) {
                // Data beats control: park an unscheduled flit.
                irt.acceptFlit(now, makeFlit(next_id, 0));
                EXPECT_TRUE(irt.parkedAt(now));
                parked.push_back(Parked{now, next_id});
                ++next_id;
            }

            // Pool occupancy == resident scheduled flits + parked.
            int arrived_live = 0;
            for (const Sched& sched : live)
                arrived_live += sched.arrived ? 1 : 0;
            ASSERT_EQ(irt.pool().usedCount(),
                      arrived_live + static_cast<int>(parked.size()))
                << "cycle " << now;
            ASSERT_EQ(irt.parkedCount(),
                      static_cast<int>(parked.size()));
        }
    }
}

TEST(InputTableDeath, OverSubscribedDepartSlotPanics)
{
    InputReservationTable irt(32, 6);
    irt.recordReservation(0, 3, 8, kEast);
    EXPECT_DEATH(irt.recordReservation(0, 4, 8, kWest),
                 "over-subscribed");
}

TEST(InputTableDeath, PastReservationWithoutParkedFlitPanics)
{
    InputReservationTable irt(32, 6);
    irt.advance(5);
    EXPECT_DEATH(irt.recordReservation(5, 2, 9, kEast),
                 "no parked flit");
}

TEST(InputTableDeath, MissedArrivalPanicsOnExpiry)
{
    InputReservationTable irt(8, 6);
    irt.recordReservation(0, 3, 7, kEast);
    irt.advance(3);
    // The scheduled flit never arrives; sliding past cycle 3 must trip
    // the consistency check.
    EXPECT_DEATH(irt.advance(4), "never materialized");
}

TEST(InputTableDeath, UnexecutedDeparturePanicsOnExpiry)
{
    InputReservationTable irt(8, 6);
    irt.recordReservation(0, 2, 5, kEast);
    irt.advance(2);
    irt.acceptFlit(2, makeFlit(7, 0));
    for (Cycle t = 3; t <= 5; ++t)
        irt.advance(t);
    // Departure at 5 never taken.
    EXPECT_DEATH(irt.advance(6), "never executed");
}

TEST(InputTableDeath, PoolExhaustionPanics)
{
    InputReservationTable irt(32, 1);
    irt.advance(1);
    irt.acceptFlit(1, makeFlit(8, 0));
    irt.advance(2);
    EXPECT_DEATH(irt.acceptFlit(2, makeFlit(8, 1)), "pool exhausted");
}

}  // namespace
}  // namespace frfc
