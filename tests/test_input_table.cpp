/**
 * @file
 * Unit tests for the input reservation table: arrival/departure rows,
 * late buffer binding, bypass detection, and the schedule list.
 */

#include <gtest/gtest.h>

#include "frfc/input_table.hpp"
#include "topology/topology.hpp"

namespace frfc {
namespace {

Flit
makeFlit(PacketId id, int seq)
{
    Flit flit;
    flit.packet = id;
    flit.seq = seq;
    flit.packetLength = 4;
    flit.payload = Flit::expectedPayload(id, seq);
    return flit;
}

TEST(InputTable, ReservedFlitFlowsThrough)
{
    InputReservationTable irt(32, 6);
    // At cycle 0 a control flit schedules: arrive 5, depart 9 via East.
    irt.recordReservation(0, 5, 9, kEast);
    EXPECT_FALSE(irt.departSlotFree(9));
    EXPECT_TRUE(irt.departSlotFree(8));

    for (Cycle t = 1; t <= 5; ++t)
        irt.advance(t);
    irt.acceptFlit(5, makeFlit(1, 0));
    EXPECT_EQ(irt.pool().usedCount(), 1);

    for (Cycle t = 6; t <= 9; ++t) {
        irt.advance(t);
        auto deps = irt.takeDepartures(t);
        if (t < 9) {
            EXPECT_TRUE(deps.empty());
        } else {
            ASSERT_EQ(deps.size(), 1u);
            EXPECT_EQ(deps[0].out, kEast);
            EXPECT_EQ(deps[0].flit.packet, 1);
            EXPECT_FALSE(deps[0].bypass);
        }
    }
    EXPECT_EQ(irt.pool().usedCount(), 0);
}

TEST(InputTable, BypassIsMinimumResidency)
{
    InputReservationTable irt(32, 6);
    irt.recordReservation(0, 3, 4, kNorth);
    for (Cycle t = 1; t <= 3; ++t)
        irt.advance(t);
    irt.acceptFlit(3, makeFlit(2, 0));
    irt.advance(4);
    auto deps = irt.takeDepartures(4);
    ASSERT_EQ(deps.size(), 1u);
    EXPECT_TRUE(deps[0].bypass);
    EXPECT_EQ(irt.bypasses(), 1);
}

TEST(InputTable, ScheduleListParksEarlyFlits)
{
    InputReservationTable irt(32, 6);
    // Data beats control: flit arrives at 2 with no reservation.
    irt.advance(2);
    irt.acceptFlit(2, makeFlit(3, 0));
    EXPECT_TRUE(irt.parkedAt(2));
    EXPECT_EQ(irt.parkedCount(), 1);
    EXPECT_EQ(irt.parkedTotal(), 1);

    // Control flit shows up at cycle 4 and schedules departure at 7.
    irt.advance(3);
    irt.advance(4);
    irt.recordReservation(4, 2, 7, kWest);
    EXPECT_FALSE(irt.parkedAt(2));

    for (Cycle t = 5; t <= 7; ++t)
        irt.advance(t);
    auto deps = irt.takeDepartures(7);
    ASSERT_EQ(deps.size(), 1u);
    EXPECT_EQ(deps[0].out, kWest);
    EXPECT_EQ(deps[0].flit.packet, 3);
}

TEST(InputTable, SameCycleReservationThenArrival)
{
    // Control flit processed earlier in the same tick as the data
    // arrival: the arrival row is consulted, not the schedule list.
    InputReservationTable irt(32, 6);
    irt.advance(3);
    irt.recordReservation(3, 3, 6, kSouth);
    irt.acceptFlit(3, makeFlit(4, 0));
    EXPECT_EQ(irt.parkedCount(), 0);
    for (Cycle t = 4; t <= 6; ++t)
        irt.advance(t);
    ASSERT_EQ(irt.takeDepartures(6).size(), 1u);
}

TEST(InputTable, DepartSlotHonorsSpeedup)
{
    InputReservationTable irt(32, 6, /*speedup=*/2);
    irt.recordReservation(0, 3, 8, kEast);
    EXPECT_TRUE(irt.departSlotFree(8));  // one of two slots used
    irt.recordReservation(0, 4, 8, kWest);
    EXPECT_FALSE(irt.departSlotFree(8));
}

TEST(InputTable, MultiDepartureWithSpeedup)
{
    InputReservationTable irt(32, 6, /*speedup=*/2);
    irt.recordReservation(0, 3, 8, kEast);
    irt.recordReservation(0, 4, 8, kWest);
    for (Cycle t = 1; t <= 3; ++t)
        irt.advance(t);
    irt.acceptFlit(3, makeFlit(5, 0));
    irt.advance(4);
    irt.acceptFlit(4, makeFlit(5, 1));
    for (Cycle t = 5; t <= 8; ++t)
        irt.advance(t);
    auto deps = irt.takeDepartures(8);
    ASSERT_EQ(deps.size(), 2u);
    EXPECT_EQ(deps[0].out, kEast);
    EXPECT_EQ(deps[1].out, kWest);
}

TEST(InputTable, PoolSharedAcrossUses)
{
    InputReservationTable irt(32, 2);
    irt.advance(1);
    irt.acceptFlit(1, makeFlit(6, 0));  // parked
    irt.advance(2);
    irt.acceptFlit(2, makeFlit(6, 1));  // parked
    EXPECT_TRUE(irt.pool().full());
}

TEST(InputTableDeath, OverSubscribedDepartSlotPanics)
{
    InputReservationTable irt(32, 6);
    irt.recordReservation(0, 3, 8, kEast);
    EXPECT_DEATH(irt.recordReservation(0, 4, 8, kWest),
                 "over-subscribed");
}

TEST(InputTableDeath, PastReservationWithoutParkedFlitPanics)
{
    InputReservationTable irt(32, 6);
    irt.advance(5);
    EXPECT_DEATH(irt.recordReservation(5, 2, 9, kEast),
                 "no parked flit");
}

TEST(InputTableDeath, MissedArrivalPanicsOnExpiry)
{
    InputReservationTable irt(8, 6);
    irt.recordReservation(0, 3, 7, kEast);
    irt.advance(3);
    // The scheduled flit never arrives; sliding past cycle 3 must trip
    // the consistency check.
    EXPECT_DEATH(irt.advance(4), "never materialized");
}

TEST(InputTableDeath, UnexecutedDeparturePanicsOnExpiry)
{
    InputReservationTable irt(8, 6);
    irt.recordReservation(0, 2, 5, kEast);
    irt.advance(2);
    irt.acceptFlit(2, makeFlit(7, 0));
    for (Cycle t = 3; t <= 5; ++t)
        irt.advance(t);
    // Departure at 5 never taken.
    EXPECT_DEATH(irt.advance(6), "never executed");
}

TEST(InputTableDeath, PoolExhaustionPanics)
{
    InputReservationTable irt(32, 1);
    irt.advance(1);
    irt.acceptFlit(1, makeFlit(8, 0));
    irt.advance(2);
    EXPECT_DEATH(irt.acceptFlit(2, makeFlit(8, 1)), "pool exhausted");
}

}  // namespace
}  // namespace frfc
