#pragma once
using Cycle = unsigned long long;

class Clocked
{
  public:
    virtual void tick(Cycle now) = 0;
    virtual Cycle nextWake(Cycle now) const;
};
