#pragma once
#include "sim/clocked.hpp"

class Good : public Clocked
{
  public:
    void tick(Cycle now) override;
    Cycle nextWake(Cycle now) const override;
};

class Mid : public Clocked
{
  public:
    Cycle nextWake(Cycle now) const override;
};

class Leaf : public Mid
{
  public:
    void tick(Cycle now) override;
};
