struct FaultRng
{
    bool nextBool(double p);
};

bool maybeDrop(FaultRng& rng)
{
    const bool drop = rng.nextBool(0.5);
    const char* key = "fault.data_drop_rate";
    return drop && key != nullptr;
}
