#pragma once
#include "common/cfg.hpp"

struct Router
{
    Cfg cfg;
};
