struct Config
{
    template <typename T>
    T get(const char* key, T dflt) const;
};

int readAlpha(const Config& cfg)
{
    return cfg.get<int>("alpha.beta", 3);
}
