#pragma once
#include <array>
#include <vector>

struct FlatTable
{
    std::vector<int> ring;
    std::array<unsigned long long, 4> busy;
};
