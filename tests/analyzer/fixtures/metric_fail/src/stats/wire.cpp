struct Reg
{
    void attachCounter(const char* path, long* c);
};

void wire(Reg& metrics, long* a, long* b)
{
    metrics.attachCounter("sink.flits", a);
    metrics.attachCounter("sink.flits", b);
    metrics.attachCounter("Sink.Bad", a);
}
