struct Config
{
    template <typename T>
    T get(const char* key, T dflt) const;
};

int readKeys(const Config& cfg)
{
    int a = cfg.get<int>("alpha.beta", 3);
    int g = cfg.get<int>("gamma.leaf", 1);
    int b = cfg.get<int>("Bad.Key", 0);
    return a + g + b;
}
