#pragma once
struct Cfg
{
    int value;
};
