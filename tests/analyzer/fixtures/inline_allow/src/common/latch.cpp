namespace frfc {

// frfc-analyzer: allow(determinism.static): fixture latch
int allowed_counter = 0;

int allowed_flag = 0;  // frfc-analyzer: allow(determinism): same line

}  // namespace frfc
