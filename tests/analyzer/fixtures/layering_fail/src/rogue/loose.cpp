int loose()
{
    return 1;
}
