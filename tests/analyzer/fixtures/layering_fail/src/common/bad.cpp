#include "frfc/router.hpp"

int probe(const Router& r)
{
    return r.cfg.value;
}
