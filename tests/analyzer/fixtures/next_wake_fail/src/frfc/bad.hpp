#pragma once
#include "sim/clocked.hpp"

class Bad : public Clocked
{
  public:
    void tick(Cycle now) override;
};

class Mid2 : public Clocked
{
};

class Leaf2 : public Mid2
{
  public:
    void tick(Cycle now) override;
};
