#pragma once
#include <map>
#include <unordered_map>

struct Hot
{
    std::unordered_map<int, int> index;
};

using Table = std::map<int, long>;

struct Hot2
{
    Table lookup;
};
