#include <vector>

namespace frfc {

const int kTableSize = 8;
constexpr double kRatio = 0.5;

int sumAll(const std::vector<int>& xs)
{
    static const int kBias = 1;
    int s = kBias;
    for (int x : xs)
        s += x;
    return s;
}

}  // namespace frfc
