#include <chrono>
#include <cstdlib>
#include <random>
#include <unordered_map>

namespace frfc {

int counter = 0;

thread_local int scratch = 0;

int entropy()
{
    std::random_device rd;
    return static_cast<int>(rd() + rand());
}

long stamp()
{
    return std::chrono::steady_clock::now().time_since_epoch().count();
}

struct Table
{
    std::unordered_map<int, int> slots;
    int sum()
    {
        int s = 0;
        for (const auto& kv : slots)
            s += kv.second;
        return s;
    }
};

}  // namespace frfc
