struct Reg
{
    void attachCounter(const char* path, long* c);
};

void wire(Reg& metrics, long* a)
{
    metrics.attachCounter("sink.flits", a);
}
