struct FaultInjector
{
    bool dataDropped(unsigned long long now);
};

bool forward(FaultInjector& faults, unsigned long long now)
{
    return !faults.dataDropped(now);
}
