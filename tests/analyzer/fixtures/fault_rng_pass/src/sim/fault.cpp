struct Rng
{
    bool nextBool(double p);
};

bool resolveDrop(Rng& rng, const char* key)
{
    const char* accepted = "fault.data_drop_rate";
    return rng.nextBool(0.5) && key == accepted;
}
