#!/usr/bin/env python3
"""Fixture tests for tools/frfc_analyzer.

Each directory under tests/analyzer/fixtures/ is a miniature repo
root (its own src/, optional README.md, layers.conf, suppression
file) plus an expect.json:

    {
      "families": ["determinism"],        # rule families to run
      "findings": {"determinism.static": 1, ...},  # exact ACTIVE
                                          # finding counts per rule
      "write_schemas_first": false        # run once with
    }                                     # --write-schemas semantics
                                          # before the checked run

The case is copied to a temp directory before running, so cases that
generate schema files (write_schemas_first) never write into the
source tree. Counts are exact: a missing rule key means zero findings
of that rule are tolerated, which pins both the positive and the
false-positive behavior of every rule family.
"""

import argparse
import json
import shutil
import sys
import tempfile
from pathlib import Path


def run_case(case: Path, mods) -> list:
    frontend_internal, suppress, Program, Context, run_all = mods
    expect = json.loads((case / "expect.json").read_text(
        encoding="utf-8"))
    families = expect["families"]
    expected = expect.get("findings", {})
    errors = []

    with tempfile.TemporaryDirectory() as td:
        croot = Path(td) / case.name
        shutil.copytree(case, croot)

        def run_once(write_schemas: bool):
            units = []
            for p in sorted(croot.rglob("*")):
                if p.suffix in (".cpp", ".hpp", ".h") and p.is_file():
                    units.append(
                        frontend_internal.parse_file(p, croot))
            program = Program(units, str(croot))
            ctx = Context(croot, write_schemas=write_schemas)
            return run_all(program, ctx, families)

        if expect.get("write_schemas_first"):
            run_once(True)
        findings = run_once(False)

        sup_file = croot / "tools" / "frfc_analyzer.suppressions"
        if sup_file.is_file():
            sup = suppress.load(sup_file,
                                "tools/frfc_analyzer.suppressions")
            findings.extend(sup.problems)
            sup.apply(findings)
            findings.extend(sup.stale_entries())

        got = {}
        for f in findings:
            if not f.suppressed:
                got[f.rule] = got.get(f.rule, 0) + 1
        if got != expected:
            errors.append("%s: expected %s, got %s" % (
                case.name, json.dumps(expected, sort_keys=True),
                json.dumps(got, sort_keys=True)))
            for f in findings:
                errors.append("    %s %s:%d: [%s] %s" % (
                    "(suppressed)" if f.suppressed else "    ",
                    f.file, f.line, f.rule, f.message))
    return errors


def main(argv) -> int:
    parser = argparse.ArgumentParser()
    parser.add_argument("--root", required=True)
    parser.add_argument("--case", default=None,
                        help="run a single named case")
    args = parser.parse_args(argv)
    repo = Path(args.root).resolve()
    sys.path.insert(0, str(repo / "tools"))

    from frfc_analyzer import frontend_internal, suppress
    from frfc_analyzer.ir import Program
    from frfc_analyzer.rules import Context, run_all
    mods = (frontend_internal, suppress, Program, Context, run_all)

    fixtures = repo / "tests" / "analyzer" / "fixtures"
    cases = sorted(p for p in fixtures.iterdir() if p.is_dir())
    if args.case:
        cases = [c for c in cases if c.name == args.case]
        if not cases:
            print("no such case: %s" % args.case, file=sys.stderr)
            return 2

    failures = []
    for case in cases:
        failures.extend(run_case(case, mods))

    if failures:
        print("\n".join(failures), file=sys.stderr)
        print("analyzer fixtures: %d case(s) FAILED of %d"
              % (sum(1 for f in failures if not f.startswith(" ")),
                 len(cases)), file=sys.stderr)
        return 1
    print("analyzer fixtures: %d case(s) passed" % len(cases))
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
