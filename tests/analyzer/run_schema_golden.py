#!/usr/bin/env python3
"""Golden test: committed schemas must regenerate byte-identically.

Re-harvests docs/config_schema.json and docs/metric_schema.json from
the current tree (same frontend selection as the analyzer CLI) and
byte-compares against the committed files, without writing anything.
A mismatch means someone changed config/metric surface without
running:

    python3 -m frfc_analyzer --compdb build/compile_commands.json \
        --write-schemas
"""

import argparse
import sys
from pathlib import Path


def main(argv) -> int:
    parser = argparse.ArgumentParser()
    parser.add_argument("--root", required=True)
    parser.add_argument("--compdb", required=True)
    args = parser.parse_args(argv)
    repo = Path(args.root).resolve()
    sys.path.insert(0, str(repo / "tools"))

    from frfc_analyzer import cli, compdb, frontend_clang
    from frfc_analyzer.ir import Program
    from frfc_analyzer.rules import config_schema, metric_paths

    try:
        commands = compdb.load(Path(args.compdb), repo)
    except compdb.CompDbError as exc:
        print("schema golden: %s" % exc, file=sys.stderr)
        return 1

    if frontend_clang.available():
        units = cli._parse_clang(repo, commands)
    else:
        units = cli._parse_internal(repo)
    program = Program(units, str(repo))

    ok = True
    pairs = (
        ("docs/config_schema.json",
         config_schema.build_schema(config_schema.harvest(program))),
        ("docs/metric_schema.json",
         metric_paths.build_schema(metric_paths.harvest(program))),
    )
    for rel, generated in pairs:
        path = repo / rel
        committed = path.read_text(encoding="utf-8") \
            if path.is_file() else ""
        if committed != generated:
            ok = False
            print("schema golden: %s is stale (regenerate with "
                  "--write-schemas)" % rel, file=sys.stderr)
    if ok:
        print("schema golden: both schemas regenerate byte-identically")
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
