/**
 * @file
 * Unit and property tests for dimension-ordered routing.
 */

#include <gtest/gtest.h>

#include "common/config.hpp"
#include "routing/routing.hpp"
#include "topology/mesh.hpp"
#include "topology/topology.hpp"
#include "topology/torus.hpp"

namespace frfc {
namespace {

TEST(RoutingXY, ResolvesXFirst)
{
    Mesh2D mesh(8, 8);
    DimensionOrderRouting xy(mesh, true);
    const NodeId src = mesh.nodeAt(2, 2);
    EXPECT_EQ(xy.route(src, mesh.nodeAt(5, 6)), kEast);
    EXPECT_EQ(xy.route(src, mesh.nodeAt(0, 6)), kWest);
    EXPECT_EQ(xy.route(src, mesh.nodeAt(2, 6)), kSouth);
    EXPECT_EQ(xy.route(src, mesh.nodeAt(2, 0)), kNorth);
    EXPECT_EQ(xy.route(src, src), kLocal);
}

TEST(RoutingYX, ResolvesYFirst)
{
    Mesh2D mesh(8, 8);
    DimensionOrderRouting yx(mesh, false);
    const NodeId src = mesh.nodeAt(2, 2);
    EXPECT_EQ(yx.route(src, mesh.nodeAt(5, 6)), kSouth);
    EXPECT_EQ(yx.route(src, mesh.nodeAt(5, 2)), kEast);
}

TEST(RoutingFactory, BuildsFromConfig)
{
    Mesh2D mesh(4, 4);
    Config cfg;
    cfg.set("routing", "yx");
    const auto routing = makeRouting(cfg, mesh);
    EXPECT_EQ(routing->describe(), "dimension-ordered YX");
}

TEST(RoutingFactoryDeath, RejectsUnknownKind)
{
    Mesh2D mesh(4, 4);
    Config cfg;
    cfg.set("routing", "adaptive");
    EXPECT_EXIT(makeRouting(cfg, mesh), ::testing::ExitedWithCode(1),
                "unknown routing");
}

TEST(RoutingTorus, TakesShortestWrap)
{
    Torus2D torus(8, 8);
    DimensionOrderRouting xy(torus, true);
    // 0 -> 7 in x: one hop west around the wrap.
    EXPECT_EQ(xy.route(torus.nodeAt(0, 0), torus.nodeAt(7, 0)), kWest);
    EXPECT_EQ(xy.route(torus.nodeAt(7, 0), torus.nodeAt(0, 0)), kEast);
}

/**
 * Walking the route from every source to every destination terminates
 * at the destination in exactly hopDistance() steps — the routing
 * function is minimal and loop-free.
 */
class RoutingWalk
    : public ::testing::TestWithParam<std::tuple<const char*, const char*>>
{
};

TEST_P(RoutingWalk, ReachesEveryDestinationMinimally)
{
    const auto [topo_kind, routing_kind] = GetParam();
    Config cfg;
    cfg.set("topology", topo_kind);
    cfg.set("size_x", 6);
    cfg.set("size_y", 6);
    cfg.set("routing", routing_kind);
    const auto topo = makeTopology(cfg);
    const auto routing = makeRouting(cfg, *topo);

    for (NodeId src = 0; src < topo->numNodes(); ++src) {
        for (NodeId dest = 0; dest < topo->numNodes(); ++dest) {
            NodeId at = src;
            int steps = 0;
            while (at != dest) {
                const PortId port = routing->route(at, dest);
                ASSERT_NE(port, kLocal);
                const NodeId next = topo->neighbor(at, port);
                ASSERT_NE(next, kInvalidNode)
                    << "routed off the edge at node " << at;
                at = next;
                ASSERT_LE(++steps, topo->numNodes())
                    << "routing loop " << src << "->" << dest;
            }
            EXPECT_EQ(steps, topo->hopDistance(src, dest))
                << src << "->" << dest << " not minimal";
            EXPECT_EQ(routing->route(dest, dest), kLocal);
        }
    }
}

INSTANTIATE_TEST_SUITE_P(
    Combos, RoutingWalk,
    ::testing::Values(std::make_tuple("mesh", "xy"),
                      std::make_tuple("mesh", "yx"),
                      std::make_tuple("torus", "xy"),
                      std::make_tuple("torus", "yx")));

}  // namespace
}  // namespace frfc
