/**
 * @file
 * End-to-end loss recovery (PR 9): the retransmission buffer state
 * machine, 100% delivery under every fault mix with `fault.recovery=1`
 * (zero validator findings at sim.validate=2), speculative-FR fallback,
 * and bit-identity of faulted runs across stepped|event|parallel
 * kernels at shard counts {1, 2, 5}.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "harness/presets.hpp"
#include "network/fr_network.hpp"
#include "network/runner.hpp"
#include "network/vc_network.hpp"
#include "proto/recovery.hpp"
#include "topology/topology.hpp"

namespace frfc {
namespace {

// ---------------------------------------------------------------- //
// RetransmitBuffer state machine                                   //
// ---------------------------------------------------------------- //

TEST(RetransmitBuffer, DeadlineDoublesPerAttemptUpToCap)
{
    RetransmitBuffer rtx;
    rtx.configure(100, 2, 16);
    rtx.add(7, 1, 5, 0, MessageClass::kRequest);
    std::vector<RetransmitRecord> out;

    rtx.armDeadline(7, 10);  // attempt 0: timeout << 0
    EXPECT_EQ(rtx.nextDeadline(), 110);
    rtx.takeExpired(110, out);
    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(out[0].attempts, 1);

    rtx.armDeadline(7, 200);  // attempt 1: timeout << 1
    EXPECT_EQ(rtx.nextDeadline(), 400);
    out.clear();
    rtx.takeExpired(400, out);
    ASSERT_EQ(out.size(), 1u);

    rtx.armDeadline(7, 500);  // attempt 2: timeout << 2
    EXPECT_EQ(rtx.nextDeadline(), 900);
    out.clear();
    rtx.takeExpired(900, out);
    ASSERT_EQ(out.size(), 1u);

    rtx.armDeadline(7, 1000);  // attempt 3: capped at << 2
    EXPECT_EQ(rtx.nextDeadline(), 1400);
    EXPECT_EQ(rtx.retransmitsTotal(), 3);
}

TEST(RetransmitBuffer, AckWhileStreamingSurvivesUntilArm)
{
    RetransmitBuffer rtx;
    rtx.configure(100, 4, 16);
    rtx.add(3, 1, 5, 0, MessageClass::kRequest);
    // Ack lands while the packet is still streaming (sending): the
    // record must survive so the later armDeadline finds it.
    rtx.ack(3);
    EXPECT_EQ(rtx.unackedCount(), 0);
    rtx.armDeadline(3, 50);  // no deadline: already acked
    EXPECT_EQ(rtx.nextDeadline(), kInvalidCycle);
    EXPECT_TRUE(rtx.ackedOrUntracked(3));
}

TEST(RetransmitBuffer, AckedQueuedPacketIsSkippedAndDropped)
{
    RetransmitBuffer rtx;
    rtx.configure(100, 4, 16);
    rtx.add(11, 2, 5, 0, MessageClass::kRequest);
    rtx.add(12, 3, 5, 1, MessageClass::kRequest);
    rtx.ack(11);  // acked while still waiting in the injection queue
    EXPECT_TRUE(rtx.ackedOrUntracked(11));
    EXPECT_FALSE(rtx.ackedOrUntracked(12));
    rtx.dropQueued(11);
    EXPECT_EQ(rtx.unackedCount(), 1);
}

TEST(RetransmitBuffer, NackExpiresOnlyIdlePackets)
{
    RetransmitBuffer rtx;
    rtx.configure(100, 4, 16);
    rtx.add(5, 1, 5, 0, MessageClass::kRequest);
    // Still marked sending (queued): a nack must not double-expire it.
    rtx.nack(5, 20);
    EXPECT_EQ(rtx.nextDeadline(), kInvalidCycle);
    rtx.armDeadline(5, 30);
    rtx.nack(5, 40);  // idle with an armed deadline: expire now
    EXPECT_EQ(rtx.nextDeadline(), 40);
    std::vector<RetransmitRecord> out;
    rtx.takeExpired(40, out);
    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(out[0].attempts, 1);
}

// ---------------------------------------------------------------- //
// Full-network recovery: every fault mix delivers 100%             //
// ---------------------------------------------------------------- //

struct FaultMix
{
    const char* name;
    const char* scheme;
    std::vector<std::pair<std::string, std::string>> keys;
};

std::vector<FaultMix>
faultMixes()
{
    return {
        {"fr_data", "fr", {{"fault.data_drop_rate", "0.03"}}},
        {"fr_all",
         "fr",
         {{"fault.data_drop_rate", "0.02"},
          {"fault.ctrl_drop_rate", "0.01"},
          {"fault.credit_drop_rate", "0.02"}}},
        {"fr_outage",
         "fr",
         {{"fault.data_drop_rate", "0.01"},
          {"fault.schedule", "5->6@800:1200;6->5@800:1200"}}},
        {"fr_spec",
         "fr",
         {{"fault.data_drop_rate", "0.03"}, {"fr.speculative", "1"}}},
        {"vc_data", "vc", {{"fault.data_drop_rate", "0.03"}}},
    };
}

Config
mixConfig(const FaultMix& mix, long seed)
{
    Config cfg = baseConfig();
    if (std::string(mix.scheme) == "fr")
        applyFr6(cfg);
    else
        applyVc8(cfg);
    cfg.set("size_x", 4);
    cfg.set("size_y", 4);
    cfg.set("workload.offered", 0.3);
    cfg.set("seed", seed);
    cfg.set("fault.recovery", 1);
    cfg.set("fault.ack_timeout", 400);
    for (const auto& kv : mix.keys)
        cfg.set(kv.first, kv.second);
    return cfg;
}

TEST(FaultRecovery, EveryMixDeliversEverythingValidated)
{
    for (const FaultMix& mix : faultMixes()) {
        Config cfg = mixConfig(mix, 1);
        cfg.set("sim.validate", 2);
        auto net = makeNetwork(cfg);
        net->kernel().run(4000);
        net->setGenerating(false);
        const bool drained = net->kernel().runUntil(
            [&] { return net->registry().packetsInFlight() == 0; },
            400000);
        EXPECT_TRUE(drained) << mix.name;
        EXPECT_EQ(net->registry().packetsInFlight(), 0) << mix.name;
        EXPECT_EQ(net->registry().packetsDelivered(),
                  net->registry().packetsCreated())
            << mix.name;
        net->validateState(net->kernel().now());
        EXPECT_TRUE(net->validator().clean()) << mix.name;
        EXPECT_GT(net->registry().packetsDelivered(), 0) << mix.name;
    }
}

TEST(FaultRecovery, FaultsActuallyFireAndRetransmissionsHappen)
{
    // The delivery guarantee above is only meaningful if the mixes
    // exercise real losses; pin the loss and retransmit counters.
    Config cfg = mixConfig(faultMixes()[1], 1);  // fr_all
    FrNetwork net(cfg);
    net.kernel().run(4000);
    net.setGenerating(false);
    ASSERT_TRUE(net.kernel().runUntil(
        [&] { return net.registry().packetsInFlight() == 0; }, 400000));
    EXPECT_GT(net.totalDropped(), 0);
    EXPECT_GT(net.totalCtrlDropped(), 0);
    EXPECT_GT(net.totalCreditsCorrupted(), 0);
    EXPECT_GT(net.totalRetransmits(), 0);
    EXPECT_GT(net.totalDupDiscarded(), 0);
}

TEST(FaultRecovery, VcPoisonsAndRedelivers)
{
    Config cfg = mixConfig(faultMixes()[4], 1);  // vc_data
    VcNetwork net(cfg);
    net.kernel().run(4000);
    net.setGenerating(false);
    ASSERT_TRUE(net.kernel().runUntil(
        [&] { return net.registry().packetsInFlight() == 0; }, 400000));
    EXPECT_GT(net.totalPoisoned(), 0);
    EXPECT_EQ(net.totalPoisoned(), net.totalPoisonedDiscarded());
    EXPECT_GT(net.totalRetransmits(), 0);
}

TEST(FaultRecovery, SpeculativeModeLaunchesAndFallsBack)
{
    Config cfg = mixConfig(faultMixes()[3], 1);  // fr_spec
    // Load high enough that reserved slots run out and sources gamble.
    cfg.set("workload.offered", 0.55);
    FrNetwork net(cfg);
    net.kernel().run(6000);
    net.setGenerating(false);
    ASSERT_TRUE(net.kernel().runUntil(
        [&] { return net.registry().packetsInFlight() == 0; }, 400000));
    EXPECT_EQ(net.registry().packetsDelivered(),
              net.registry().packetsCreated());
}

// ---------------------------------------------------------------- //
// Bit-identity across kernels and shard counts under faults        //
// ---------------------------------------------------------------- //

RunOptions
fastOpts()
{
    RunOptions opt;
    opt.samplePackets = 200;
    opt.minWarmup = 300;
    opt.maxWarmup = 1200;
    opt.maxCycles = 120000;
    return opt;
}

RunResult
runKernel(Config cfg, const char* kernel, int shards)
{
    cfg.set("sim.kernel", kernel);
    if (std::string(kernel) == "parallel")
        cfg.set("sim.shards", shards);
    cfg.set("sim.validate", 2);
    auto net = makeNetwork(cfg);
    const RunResult r = runMeasurement(*net, fastOpts());
    EXPECT_TRUE(net->validator().clean())
        << kernel << " shards " << shards;
    return r;
}

TEST(FaultRecoveryEquivalence, BitIdenticalAcrossKernelsAndShards)
{
    for (const FaultMix& mix : faultMixes()) {
        const Config cfg = mixConfig(mix, 1);
        const RunResult stepped = runKernel(cfg, "stepped", 0);
        ASSERT_TRUE(stepped.complete) << mix.name;
        const RunResult event = runKernel(cfg, "event", 0);
        ASSERT_TRUE(stepped.bitIdentical(event))
            << mix.name << ": serial kernels diverge";
        for (const int shards : {1, 2, 5}) {
            const RunResult par = runKernel(cfg, "parallel", shards);
            EXPECT_TRUE(stepped.bitIdentical(par))
                << mix.name << " shards " << shards;
        }
    }
}

// ---------------------------------------------------------------- //
// Config gating                                                    //
// ---------------------------------------------------------------- //

TEST(FaultRecoveryConfig, SpeculativeRequiresRecovery)
{
    Config cfg = baseConfig();
    applyFr6(cfg);
    cfg.set("fr.speculative", 1);
    EXPECT_EXIT(FrNetwork net(cfg), ::testing::ExitedWithCode(1),
                "requires fault.recovery=1");
}

TEST(FaultRecoveryConfig, VcRejectsControlFaultKeys)
{
    Config cfg = baseConfig();
    applyVc8(cfg);
    cfg.set("fault.ctrl_drop_rate", 0.01);
    EXPECT_EXIT(VcNetwork net(cfg), ::testing::ExitedWithCode(1),
                "fault.ctrl_drop_rate");
}

TEST(FaultRecoveryConfig, UnknownFaultKeyDies)
{
    Config cfg = baseConfig();
    applyFr6(cfg);
    cfg.set("fault.data_droprate", 0.01);  // typo
    EXPECT_EXIT(FrNetwork net(cfg), ::testing::ExitedWithCode(1),
                "known keys");
}

}  // namespace
}  // namespace frfc
